// A "sorting service" on the applicative machine: parallel mergesort over a
// large list, compared across recovery policies while a processor dies
// mid-sort. Demonstrates that the same program runs unmodified under every
// policy — recovery is a property of the machine, not the program (the
// paper's central design point).
//
//   $ ./resilient_sort [length]
#include <cstdio>
#include <cstdlib>

#include "core/simulation.h"
#include "lang/programs.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace splice;
  const std::size_t length = argc > 1
                                 ? static_cast<std::size_t>(std::atoll(argv[1]))
                                 : 192;

  const lang::Program program = lang::programs::mergesort(length, 2026);

  core::SystemConfig base;
  base.processors = 12;
  base.topology = net::TopologyKind::kTorus2D;
  base.scheduler.kind = core::SchedulerKind::kLocalFirst;
  base.heartbeat_interval = 1500;
  base.seed = 7;

  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(base, program);
  std::printf("mergesort(%zu) on 12 processors, fault-free makespan %lld\n",
              length, static_cast<long long>(makespan));
  std::printf("killing processor 4 at t=%lld (40%% through the sort)\n\n",
              static_cast<long long>(makespan * 2 / 5));

  util::Table table({"policy", "completed", "sorted", "makespan", "overhead%",
                     "respawned", "salvaged", "messages"});
  table.set_title("mergesort under a mid-run crash");

  for (auto policy :
       {core::RecoveryKind::kNone, core::RecoveryKind::kRestart,
        core::RecoveryKind::kRollback, core::RecoveryKind::kSplice,
        core::RecoveryKind::kPeriodicGlobal}) {
    core::SystemConfig cfg = base;
    cfg.recovery.kind = policy;
    cfg.deadline_ticks = makespan * 30;  // bound the no-recovery hang
    const core::RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(4, sim::SimTime(makespan * 2 / 5)));
    table.add_row(
        {std::string(core::to_string(policy)), r.completed ? "yes" : "NO",
         r.completed && r.answer_correct ? "yes" : "-",
         r.completed ? util::Table::num(r.makespan_ticks) : "-",
         r.completed
             ? util::Table::num(100.0 *
                                    static_cast<double>(r.makespan_ticks -
                                                        makespan) /
                                    static_cast<double>(makespan),
                                1)
             : "-",
         util::Table::num(r.counters.tasks_respawned),
         util::Table::num(r.counters.orphan_results_salvaged),
         util::Table::num(r.net.total_sent())});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  return 0;
}
