// Quickstart: evaluate an applicative program on a simulated multiprocessor,
// kill a node mid-run, and watch splice recovery salvage the computation.
//
//   $ ./quickstart
//
// The public API in four steps:
//   1. describe the machine (core::SystemConfig)
//   2. pick a program (lang::programs::* or build your own with
//      lang::FunctionBuilder)
//   3. optionally schedule faults (net::FaultPlan)
//   4. run (core::Simulation) and read the metrics (core::RunResult)
#include <cstdio>

#include "core/simulation.h"
#include "lang/programs.h"

int main() {
  using namespace splice;

  // 1. A 16-processor 4x4 mesh running the gradient-model load balancer
  //    with splice recovery (the paper's full configuration).
  core::SystemConfig cfg;
  cfg.processors = 16;
  cfg.topology = net::TopologyKind::kMesh2D;
  cfg.scheduler.kind = core::SchedulerKind::kGradient;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 2000;
  cfg.seed = 2026;

  // 2. fib(16) with 100 ticks of compute per leaf: ~3193 tasks.
  const lang::Program program = lang::programs::fib(16, 100);

  // Reference answer, for show.
  std::printf("reference answer : %s\n",
              lang::reference_answer(program).to_string().c_str());

  // 3. Measure the fault-free makespan, then re-run killing processor 5
  //    halfway through.
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  std::printf("fault-free makespan: %lld ticks\n",
              static_cast<long long>(makespan));

  core::Simulation simulation(cfg, program);
  simulation.set_fault_plan(net::FaultPlan::single(/*target=*/5, sim::SimTime(/*when=*/makespan / 2)));
  // 4. Run and inspect.
  const core::RunResult r = simulation.run();
  std::printf("faulted run      : %s\n", r.summary().c_str());
  std::printf("  makespan        : %lld ticks (+%.1f%% recovery cost)\n",
              static_cast<long long>(r.makespan_ticks),
              100.0 * static_cast<double>(r.makespan_ticks - makespan) /
                  static_cast<double>(makespan));
  std::printf("  detection       : t=%lld (fault at t=%lld)\n",
              static_cast<long long>(r.detection_ticks),
              static_cast<long long>(r.first_failure_ticks));
  std::printf("  tasks respawned : %llu, step-parent twins: %llu\n",
              static_cast<unsigned long long>(r.counters.tasks_respawned),
              static_cast<unsigned long long>(r.counters.twins_created));
  std::printf("  orphan results salvaged: %llu (relayed %llu)\n",
              static_cast<unsigned long long>(
                  r.counters.orphan_results_salvaged),
              static_cast<unsigned long long>(r.counters.results_relayed));
  std::printf("  messages        : %llu (%llu units)\n",
              static_cast<unsigned long long>(r.net.total_sent()),
              static_cast<unsigned long long>(r.net.total_units));
  return r.completed && r.answer_correct ? 0 : 1;
}
