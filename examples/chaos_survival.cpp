// Chaos test as an application: an n-queens solver keeps answering while
// random processors are killed one after another until only a quarter of
// the machine survives. Splice recovery + the super-root keep the program
// alive through every wave.
//
//   $ ./chaos_survival [n] [processors]
#include <cstdio>
#include <cstdlib>

#include "core/simulation.h"
#include "lang/programs.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace splice;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6;
  const std::uint32_t procs =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;

  const lang::Program program = lang::programs::nqueens(n);
  std::printf("%u-queens on %u processors under rolling crashes\n", n, procs);
  std::printf("reference count: %s solutions\n\n",
              lang::reference_answer(program).to_string().c_str());

  core::SystemConfig cfg;
  cfg.processors = procs;
  cfg.topology = net::TopologyKind::kHypercube;
  cfg.scheduler.kind = core::SchedulerKind::kRandom;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.recovery.ancestor_depth = 3;  // great-grandparent extension (§5.2)
  cfg.heartbeat_interval = 1000;
  cfg.seed = 99;

  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);

  // Kill 3/4 of the machine in evenly spaced waves.
  util::Xoshiro256 rng(4321);
  net::FaultPlan plan;
  std::vector<net::ProcId> victims;
  for (net::ProcId p = 0; p < procs; ++p) victims.push_back(p);
  rng.shuffle(victims);
  const std::uint32_t kills = procs * 3 / 4;
  for (std::uint32_t k = 0; k < kills; ++k) {
    const auto when = makespan / 4 + static_cast<std::int64_t>(k) *
                                         std::max<std::int64_t>(
                                             1, makespan / (2 * kills));
    plan.timed.push_back({victims[k], sim::SimTime(when)});
    std::printf("  scheduled crash: P%-2u at t=%lld\n", victims[k],
                static_cast<long long>(when));
  }

  const core::RunResult r = core::run_once(cfg, program, plan);
  std::printf("\n%s\n", r.summary().c_str());
  std::printf("faults injected   : %llu (alive at end: %u/%u)\n",
              static_cast<unsigned long long>(r.faults_injected),
              r.processors_alive_at_end, r.processors);
  std::printf("tasks respawned   : %llu, twins %llu, salvaged %llu\n",
              static_cast<unsigned long long>(r.counters.tasks_respawned),
              static_cast<unsigned long long>(r.counters.twins_created),
              static_cast<unsigned long long>(
                  r.counters.orphan_results_salvaged));
  std::printf("makespan          : %lld (fault-free %lld, %.1fx)\n",
              static_cast<long long>(r.makespan_ticks),
              static_cast<long long>(makespan),
              static_cast<double>(r.makespan_ticks) /
                  static_cast<double>(makespan));
  if (!r.completed || !r.answer_correct) {
    std::printf("FAILED: the machine lost the computation\n");
    return 1;
  }
  std::printf("survived: the answer emerged from the wreckage intact\n");
  return 0;
}
