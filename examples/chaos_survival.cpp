// Chaos test as an application: an n-queens solver keeps answering while
// the machine is wrecked around it. By default random processors are killed
// one after another until only a quarter survives; pass a fault-scenario
// spec to wreck it your own way (regional outages, cascades, Poisson fault
// rates, crash-recovery rejoin — see core::parse_fault_plan).
//
//   $ ./chaos_survival [n] [processors] [scenario] [backend]
//   $ ./chaos_survival 6 16 "rect:0,0,2x2@20000;rejoin:8000"
//   $ ./chaos_survival 6 16 "cascade:5@15000,p=0.9,hops=2;rejoin:10000"
//   $ ./chaos_survival 6 16 "poisson:mean=9000,stop=200000;rejoin:12000" shm
//   $ ./chaos_survival 6 16 "rect:0,0,2x2@20000;rejoin:8000" pdes4
//
// `backend` is inproc (default) or shm — the latter routes every message
// through the wire codec and shared-memory rings (same seeded answer, real
// bytes; net/transport.h) — or pdesK for the sharded parallel engine with
// K worker threads (runtime/pdes_engine.h; same seeded answer as pdes1).
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "core/simulation.h"
#include "lang/programs.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace splice;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6;
  const std::uint32_t procs =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;

  const lang::Program program = lang::programs::nqueens(n);
  std::printf("%u-queens on %u processors under rolling crashes\n", n, procs);
  std::printf("reference count: %s solutions\n\n",
              lang::reference_answer(program).to_string().c_str());

  core::SystemConfig cfg;
  cfg.processors = procs;
  // The scenario DSL's mesh regions need a grid; everything else works on
  // the hypercube the original chaos run used.
  cfg.topology = argc > 3 ? net::TopologyKind::kMesh2D
                          : net::TopologyKind::kHypercube;
  cfg.scheduler.kind = core::SchedulerKind::kRandom;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.recovery.ancestor_depth = 3;  // great-grandparent extension (§5.2)
  cfg.heartbeat_interval = 1000;
  cfg.seed = 99;
  if (argc > 4) {
    const std::string_view backend = argv[4];
    if (backend.starts_with("pdes")) {
      const int shards = std::atoi(argv[4] + 4);
      if (shards < 1) {
        std::fprintf(stderr, "bad backend: expected pdesK with K >= 1\n");
        return 2;
      }
      cfg.parallel.shards = static_cast<std::uint32_t>(shards);
      std::printf("backend: sharded engine, %u shards\n", cfg.parallel.shards);
    } else {
      try {
        cfg.transport.backend = net::parse_transport(argv[4]);
      } catch (const std::exception& err) {
        std::fprintf(stderr, "bad transport: %s\n", err.what());
        return 2;
      }
      std::printf("transport: %.*s\n",
                  static_cast<int>(
                      net::to_string(cfg.transport.backend).size()),
                  net::to_string(cfg.transport.backend).data());
    }
  }

  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);

  net::FaultPlan plan;
  if (argc > 3) {
    try {
      plan = core::parse_fault_plan(argv[3]);
    } catch (const std::exception& err) {
      std::fprintf(stderr, "bad scenario: %s\n", err.what());
      return 2;
    }
    std::printf("scenario: %s\n", plan.describe().c_str());
    if (plan.rejoin.mode == net::RejoinMode::kWarm) {
      // The DSL picks the rejoin mode; persistency is a machine property
      // (core::StoreConfig). Give warm scenarios the full mechanism —
      // durable-log replay on top of survivor state transfer.
      cfg.store.model = store::Persistency::kLocal;
      std::printf("store: local durable log (warm rejoin scenario)\n");
    }
  } else {
    // Kill 3/4 of the machine in evenly spaced waves.
    util::Xoshiro256 rng(4321);
    std::vector<net::ProcId> victims;
    for (net::ProcId p = 0; p < procs; ++p) victims.push_back(p);
    rng.shuffle(victims);
    const std::uint32_t kills = procs * 3 / 4;
    for (std::uint32_t k = 0; k < kills; ++k) {
      const auto when = makespan / 4 + static_cast<std::int64_t>(k) *
                                           std::max<std::int64_t>(
                                               1, makespan / (2 * kills));
      plan.timed.push_back({victims[k], sim::SimTime(when)});
      std::printf("  scheduled crash: P%-2u at t=%lld\n", victims[k],
                  static_cast<long long>(when));
    }
  }

  core::RunResult r;
  try {
    r = core::run_once(cfg, program, plan);
  } catch (const std::invalid_argument& err) {
    // e.g. a ring arc requested on the mesh: regions resolve at arm time.
    std::fprintf(stderr, "bad scenario: %s\n", err.what());
    return 2;
  }
  std::printf("\n%s\n", r.summary().c_str());
  std::printf("faults injected   : %llu (alive at end: %u/%u)\n",
              static_cast<unsigned long long>(r.faults_injected),
              r.processors_alive_at_end, r.processors);
  if (r.nodes_revived > 0) {
    std::printf("nodes repaired    : %llu rejoined %s mid-run\n",
                static_cast<unsigned long long>(r.nodes_revived),
                plan.rejoin.mode == net::RejoinMode::kWarm ? "warm" : "blank");
  }
  std::printf("tasks respawned   : %llu, twins %llu, salvaged %llu\n",
              static_cast<unsigned long long>(r.counters.tasks_respawned),
              static_cast<unsigned long long>(r.counters.twins_created),
              static_cast<unsigned long long>(
                  r.counters.orphan_results_salvaged));
  std::printf("makespan          : %lld (fault-free %lld, %.1fx)\n",
              static_cast<long long>(r.makespan_ticks),
              static_cast<long long>(makespan),
              static_cast<double>(r.makespan_ticks) /
                  static_cast<double>(makespan));
  if (!r.completed || !r.answer_correct) {
    std::printf("FAILED: the machine lost the computation\n");
    return 1;
  }
  std::printf("survived: the answer emerged from the wreckage intact\n");
  return 0;
}
