// Replays the paper's running example (Figures 1-3) with a narrated trace:
//
//   * the call tree A1..D5 is pinned onto processors A,B,C,D exactly as in
//     Figure 1;
//   * functional checkpoints accumulate in the per-processor tables;
//   * processor B is killed mid-run;
//   * splice recovery creates the step-parent B2' (Figure 3) and the
//     grandparent C1 relays D4's orphan result into it.
//
//   $ ./figure1_walkthrough [node_work]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulation.h"
#include "lang/programs.h"

int main(int argc, char** argv) {
  using namespace splice;
  const std::int64_t node_work = argc > 1 ? std::atoll(argv[1]) : 2500;

  core::SystemConfig cfg;
  cfg.processors = 4;  // A=0, B=1, C=2, D=3
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 800;
  cfg.collect_trace = true;

  const lang::Program program = lang::programs::figure1_tree(node_work);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);

  std::printf("Figure 1 call tree (17 tasks) pinned to processors A-D\n");
  std::printf("fault-free makespan %lld ticks; killing processor B at t=%lld\n\n",
              static_cast<long long>(makespan),
              static_cast<long long>(makespan / 2));

  core::Simulation simulation(cfg, program);
  simulation.set_fault_plan(net::FaultPlan::single(1, sim::SimTime(makespan / 2)));
  const core::RunResult r = simulation.run();

  auto proc_name = [](net::ProcId p) {
    if (p == net::kNoProc) return std::string("host");
    return std::string(1, static_cast<char>('A' + p));
  };
  for (const auto& e : simulation.trace().events()) {
    // Print the protocol-level story; skip raw placement noise.
    if (e.kind == "place") continue;
    std::printf("t=%-7lld [%s] %-10s %s\n", static_cast<long long>(e.ticks),
                proc_name(e.proc).c_str(), e.kind.c_str(), e.detail.c_str());
  }

  std::printf("\n%s\n", r.summary().c_str());
  std::printf("twins created (B2' and friends): %llu\n",
              static_cast<unsigned long long>(r.counters.twins_created));
  std::printf("orphan results relayed via grandparents: %llu, salvaged: %llu\n",
              static_cast<unsigned long long>(r.counters.results_relayed),
              static_cast<unsigned long long>(
                  r.counters.orphan_results_salvaged));
  return r.completed && r.answer_correct ? 0 : 1;
}
