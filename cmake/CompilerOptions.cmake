# Defines splice_options: the warning/sanitizer interface target every
# splice target links against. Kept out of the root CMakeLists so the
# warning contract is visible (and editable) in one place.
#
# Consumes: SPLICE_WERROR, SPLICE_SANITIZE, SPLICE_TSAN.

add_library(splice_options INTERFACE)

target_compile_options(splice_options INTERFACE
  -Wall
  -Wextra
  -Wpedantic
  -Wshadow
  -Wextra-semi
  -Wnon-virtual-dtor
  -Wcast-qual
  -Wdouble-promotion)

if(SPLICE_WERROR)
  target_compile_options(splice_options INTERFACE -Werror)
endif()

if(SPLICE_SANITIZE AND SPLICE_TSAN)
  message(FATAL_ERROR "SPLICE_SANITIZE (ASan) and SPLICE_TSAN are mutually exclusive")
endif()

if(SPLICE_SANITIZE)
  target_compile_options(splice_options INTERFACE
    -fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all)
  target_link_options(splice_options INTERFACE -fsanitize=address,undefined)
endif()

# ThreadSanitizer: the witness for the PDES engine's lock-light protocol.
# Every cross-thread edge in the sharded simulator (inbox slots, window
# state, the barrier handoffs) is meant to be ordered by the two window
# barriers alone — TSan checks that claim on every run of the suite.
if(SPLICE_TSAN)
  target_compile_options(splice_options INTERFACE
    -fsanitize=thread -fno-omit-frame-pointer -fno-sanitize-recover=all)
  target_link_options(splice_options INTERFACE -fsanitize=thread)
endif()
