# Defines splice_options: the warning/sanitizer interface target every
# splice target links against. Kept out of the root CMakeLists so the
# warning contract is visible (and editable) in one place.
#
# Consumes: SPLICE_WERROR, SPLICE_SANITIZE.

add_library(splice_options INTERFACE)

target_compile_options(splice_options INTERFACE
  -Wall
  -Wextra
  -Wpedantic
  -Wshadow
  -Wextra-semi
  -Wnon-virtual-dtor
  -Wcast-qual
  -Wdouble-promotion)

if(SPLICE_WERROR)
  target_compile_options(splice_options INTERFACE -Werror)
endif()

if(SPLICE_SANITIZE)
  target_compile_options(splice_options INTERFACE
    -fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all)
  target_link_options(splice_options INTERFACE -fsanitize=address,undefined)
endif()
