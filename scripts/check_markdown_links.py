#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Checks that every relative link target in the given markdown files exists in
the repository. External links (http/https/mailto) and pure in-page anchors
are skipped — CI must not depend on the network or on other services.

Usage: check_markdown_links.py FILE.md [FILE.md ...]
"""
import re
import sys
from pathlib import Path

# [text](target) — excluding images' surrounding syntax is unnecessary:
# image targets must exist too.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: Path) -> list[str]:
    errors = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        return [f"{path}: unreadable: {err}"]
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        # Strip an in-page anchor from a file link.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(f"{path}:{line}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    all_errors = []
    for name in argv[1:]:
        all_errors.extend(check_file(Path(name)))
    for error in all_errors:
        print(error, file=sys.stderr)
    checked = len(argv) - 1
    if all_errors:
        print(f"FAIL: {len(all_errors)} broken link(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"OK: no broken relative links in {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
