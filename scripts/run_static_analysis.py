#!/usr/bin/env python3
"""Static-analysis driver with a committed ratchet.

Runs both analysis layers and compares the findings against the committed
baseline (scripts/static_analysis_baseline.json):

  1. tools/splice_lint.py  -- the project-invariant linter (always runs;
     pure Python, no toolchain dependency).
  2. clang-tidy            -- runs when a clang-tidy binary and a
     compile_commands.json are found; skipped (with a notice) otherwise,
     so the driver works in toolchains that only ship GCC.

Ratchet semantics:
  * A finding whose key (tool:rule:file) appears in the baseline with a
    count >= the observed count is grandfathered: reported, never fatal.
  * Any finding NOT covered by the baseline fails the run. CI therefore
    fails on *new* findings only; the grandfathered debt is visible and
    shrinks monotonically (see --update-baseline).
  * Every baseline entry must carry a non-empty "reason". An empty or
    missing reason is itself an error: debt without a justification is
    just debt.

Exit codes: 0 clean (or fully grandfathered), 1 new findings or baseline
format errors, 2 usage/environment errors.

Usage:
  scripts/run_static_analysis.py [--build-dir build/release]
                                 [--update-baseline] [--json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO / "scripts" / "static_analysis_baseline.json"
SPLICE_LINT = REPO / "tools" / "splice_lint.py"

# clang-tidy findings are advisory until they are ratcheted: the reference
# toolchain for this repo is GCC, so clang-tidy may be absent locally. When
# it IS available (CI installs it), new findings still fail the run.
TIDY_DIRS = ("src", "tools")


def run_splice_lint() -> list[dict]:
    """Run the project linter; returns a list of finding dicts."""
    proc = subprocess.run(
        [sys.executable, str(SPLICE_LINT), "--root", str(REPO), "--json"],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode not in (0, 1):
        print(proc.stdout, file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        raise RuntimeError(f"splice_lint failed with exit {proc.returncode}")
    payload = json.loads(proc.stdout) if proc.stdout.strip() else {}
    findings = payload.get("findings", [])
    return [
        {
            "tool": "splice_lint",
            "rule": f["rule"],
            "file": f["path"],
            "line": f["line"],
            "message": f["message"],
        }
        for f in findings
    ]


def find_compile_db(build_dir: pathlib.Path | None) -> pathlib.Path | None:
    candidates = []
    if build_dir is not None:
        candidates.append(build_dir)
    candidates += [REPO / "build" / "release", REPO / "build" / "debug"]
    for c in candidates:
        if (c / "compile_commands.json").is_file():
            return c
    return None


def run_clang_tidy(build_dir: pathlib.Path) -> list[dict]:
    """Run clang-tidy over the library/tool TUs listed in the compile db."""
    tidy = shutil.which("clang-tidy")
    assert tidy is not None
    db = json.loads((build_dir / "compile_commands.json").read_text())
    sources = sorted(
        {
            entry["file"]
            for entry in db
            if any(
                pathlib.Path(entry["file"])
                .resolve()
                .is_relative_to(REPO / d)
                for d in TIDY_DIRS
            )
        }
    )
    findings: list[dict] = []
    for i in range(0, len(sources), 8):
        chunk = sources[i : i + 8]
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", *chunk],
            capture_output=True,
            text=True,
            check=False,
        )
        findings.extend(parse_tidy_output(proc.stdout))
    return findings


def parse_tidy_output(text: str) -> list[dict]:
    out = []
    for line in text.splitlines():
        # /path/file.cpp:12:3: warning: message [check-name]
        if ": warning: " not in line and ": error: " not in line:
            continue
        loc, _, rest = line.partition(": warning: ")
        if not rest:
            loc, _, rest = line.partition(": error: ")
        if not rest or "[" not in rest:
            continue
        msg, _, check = rest.rpartition("[")
        check = check.rstrip("]")
        parts = loc.rsplit(":", 2)
        if len(parts) != 3:
            continue
        path = pathlib.Path(parts[0])
        try:
            rel = str(path.resolve().relative_to(REPO))
        except ValueError:
            continue
        out.append(
            {
                "tool": "clang-tidy",
                "rule": check,
                "file": rel,
                "line": int(parts[1]),
                "message": msg.strip(),
            }
        )
    return out


def key_of(finding: dict) -> str:
    return f"{finding['tool']}:{finding['rule']}:{finding['file']}"


def load_baseline() -> tuple[dict[str, dict], list[str]]:
    """Returns (entries, format_errors)."""
    errors: list[str] = []
    if not BASELINE_PATH.is_file():
        return {}, [f"baseline missing: {BASELINE_PATH}"]
    data = json.loads(BASELINE_PATH.read_text())
    entries = data.get("entries", {})
    for key, entry in entries.items():
        if not isinstance(entry, dict) or "count" not in entry:
            errors.append(f"baseline entry {key!r}: missing count")
            continue
        if not str(entry.get("reason", "")).strip():
            errors.append(
                f"baseline entry {key!r}: empty reason — every "
                "grandfathered finding needs a justification"
            )
    return entries, errors


def write_baseline(findings: list[dict]) -> None:
    counts: dict[str, int] = {}
    for f in findings:
        counts[key_of(f)] = counts.get(key_of(f), 0) + 1
    old_entries, _ = load_baseline() if BASELINE_PATH.is_file() else ({}, [])
    entries = {
        key: {
            "count": count,
            "reason": old_entries.get(key, {}).get(
                "reason", "TODO: justify or fix"
            ),
        }
        for key, count in sorted(counts.items())
    }
    BASELINE_PATH.write_text(
        json.dumps(
            {
                "_comment": (
                    "Static-analysis ratchet. Keys are tool:rule:file; a "
                    "finding is grandfathered while its count stays <= the "
                    "recorded count AND carries a reason. New findings fail "
                    "scripts/run_static_analysis.py. Shrink this file, "
                    "never grow it."
                ),
                "entries": entries,
            },
            indent=2,
        )
        + "\n"
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", type=pathlib.Path, default=None)
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings (keeps reasons)",
    )
    ap.add_argument("--json", action="store_true", help="emit findings JSON")
    args = ap.parse_args()

    findings = run_splice_lint()

    tidy_ran = False
    if shutil.which("clang-tidy"):
        build_dir = find_compile_db(args.build_dir)
        if build_dir is None:
            print(
                "note: clang-tidy found but no compile_commands.json; "
                "configure a preset first (CMAKE_EXPORT_COMPILE_COMMANDS "
                "is on in every preset)",
                file=sys.stderr,
            )
        else:
            tidy_ran = True
            findings.extend(run_clang_tidy(build_dir))
    else:
        print(
            "note: clang-tidy not on PATH — skipping that layer "
            "(splice_lint still enforced)",
            file=sys.stderr,
        )

    if args.update_baseline:
        write_baseline(findings)
        print(f"baseline rewritten: {BASELINE_PATH}")
        return 0

    baseline, fmt_errors = load_baseline()
    for err in fmt_errors:
        print(f"error: {err}", file=sys.stderr)

    counts: dict[str, int] = {}
    for f in findings:
        counts[key_of(f)] = counts.get(key_of(f), 0) + 1

    new_findings = []
    grandfathered = 0
    for f in findings:
        entry = baseline.get(key_of(f))
        if entry is not None and counts[key_of(f)] <= int(entry["count"]):
            grandfathered += 1
        else:
            new_findings.append(f)

    if args.json:
        print(json.dumps(findings, indent=2))
    else:
        for f in new_findings:
            print(
                f"{f['file']}:{f['line']}: {f['rule']}: {f['message']} "
                f"[{f['tool']}]"
            )

    layers = "splice_lint" + (" + clang-tidy" if tidy_ran else "")
    print(
        f"static analysis ({layers}): {len(findings)} finding(s), "
        f"{grandfathered} grandfathered, {len(new_findings)} new",
        file=sys.stderr,
    )
    if fmt_errors:
        return 1
    return 1 if new_findings else 0


if __name__ == "__main__":
    sys.exit(main())
