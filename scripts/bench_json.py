#!/usr/bin/env python3
"""Emit and check the repo's recorded perf trajectory (BENCH_PR9.json).

Emit: runs the E16 throughput + E21 sharded-engine sections of
tab_scalability (and, when present, the BM_SimThroughput /
BM_JournalRecordSharded gates plus the wire-codec benches in
micro_structures), then writes one merged JSON:

    python3 scripts/bench_json.py --bin-dir build/release --out BENCH_PR9.json

Check: compares a freshly emitted JSON against the trajectory checked into
the repo and fails (exit 1) if events/sec regressed by more than the
threshold at any machine size, or if the E21 aggregate events/sec/thread
(the sharded engine's per-worker efficiency, normalized) regressed:

    python3 scripts/bench_json.py --bin-dir build/release \
        --out /tmp/fresh.json --check BENCH_PR9.json

Machines differ, so the guard compares *normalized* throughput: events/sec
divided by a fixed pure-CPU calibration loop's rate measured in the same
binary on the same machine (normalized_events_per_mop). Raw events/sec is
recorded alongside for the trajectory table in EXPERIMENTS.md.

Historic baseline blocks ("baseline_pre_pr4", then one "baseline_prN" per
recorded PR) are carried forward verbatim from the previous JSON (via
--carry, which --check implies): the trajectory keeps every recorded point.
The JSON also carries the E17 reclaim table, the E19 link-chaos table
(goodput + reclaim latency under partition-heal and gray-failure churn)
emitted by tab_scalability --perf-json, and a "wire" section with the
codec's bytes/event, bytes/msg, and encode/decode ns/msg measured by
BM_WireBytesPerEvent + BM_CodecEncode/BM_CodecDecode over the
shared-memory ring backend. PR8 adds a "recorder_overhead" section (E20):
throughput with the flight recorder off vs. on, plus the partition-heal
goodput/latency time series summary, emitted by tab_scalability. PR9 adds
the "e21_pdes" section: the sharded engine's thread-scaling curve and the
scheduler x workload matrix at 1 and 8 shards.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

DEFAULT_DROP_THRESHOLD = 0.20  # fail if normalized events/sec drops > 20%


def run_tab_scalability(bin_dir: str, smoke: bool) -> dict:
    exe = os.path.join(bin_dir, "bench", "tab_scalability")
    if not os.path.exists(exe):
        sys.exit(f"bench binary not found: {exe} (build the release preset)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        path = tmp.name
    try:
        cmd = [exe, "--perf-json", path] + (["--smoke"] if smoke else [])
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(path)


def run_micro(bin_dir: str) -> dict:
    """BM_SimThroughput gate: google-benchmark JSON, keyed by bench name.

    Returns {} when the micro_structures binary is absent (google-benchmark
    not installed) — the gate is optional, the trajectory is not.
    """
    exe = os.path.join(bin_dir, "bench", "micro_structures")
    if not os.path.exists(exe):
        return {}
    out = subprocess.run(
        [exe, "--benchmark_filter="
              "BM_SimThroughput|BM_EventQueue|BM_Codec|BM_WireBytesPerEvent"
              "|BM_JournalRecordSharded",
         "--benchmark_min_time=0.05", "--benchmark_format=json"],
        check=True, capture_output=True, text=True).stdout
    data = json.loads(out)
    micro = {}
    counters = ("bytes_per_event", "bytes_per_msg", "encode_ns_per_msg",
                "decode_ns_per_msg", "bytes_per_second")
    for bench in data.get("benchmarks", []):
        entry = {"cpu_time_ns": bench.get("cpu_time")}
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        for key in counters:
            if key in bench:
                entry[key] = bench[key]
        micro[bench["name"]] = entry
    return micro


def wire_section(micro: dict) -> dict:
    """Distil the PR6 wire numbers: bytes/event from the shm-backend run,
    serialization ns/msg from the codec micro benches (ns/msg = 1e9 /
    messages-per-second over the representative traffic mix)."""
    wire = {}
    whole = micro.get("BM_WireBytesPerEvent")
    if whole:
        for key in ("bytes_per_event", "bytes_per_msg", "encode_ns_per_msg",
                    "decode_ns_per_msg"):
            if key in whole:
                wire[key] = round(whole[key], 3)
    for name, field in (("BM_CodecEncode", "codec_encode_ns_per_msg"),
                        ("BM_CodecDecode", "codec_decode_ns_per_msg")):
        bench = micro.get(name, {})
        if bench.get("items_per_second"):
            wire[field] = round(1e9 / bench["items_per_second"], 3)
    return wire


def e21_aggregate(data: dict):
    """Aggregate normalized events/sec/thread across every E21 cell — the
    sharded engine's per-worker efficiency. One number so the guard is not
    hostage to a single noisy cell."""
    rows = data.get("e21_pdes") or []
    vals = [row["normalized_events_per_mop"] / row["shards"]
            for row in rows if row.get("shards")]
    return sum(vals) / len(vals) if vals else None


def check(fresh: dict, baseline_path: str, threshold: float) -> int:
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    base_rows = {row["procs"]: row for row in baseline["throughput"]}
    failures = []
    for row in fresh["throughput"]:
        base = base_rows.get(row["procs"])
        if base is None:
            continue
        have = row["normalized_events_per_mop"]
        want = base["normalized_events_per_mop"]
        if have < want * (1.0 - threshold):
            failures.append(
                f"  {row['procs']} procs: normalized events/sec "
                f"{have:.3f} vs recorded {want:.3f} "
                f"({(1 - have / want) * 100:.0f}% drop > "
                f"{threshold * 100:.0f}% threshold)")
        else:
            print(f"  {row['procs']} procs: {have:.3f} vs recorded "
                  f"{want:.3f} normalized events/mop — ok")
    agg_have = e21_aggregate(fresh)
    agg_want = e21_aggregate(baseline)
    if agg_have is not None and agg_want is not None:
        if agg_have < agg_want * (1.0 - threshold):
            failures.append(
                f"  E21 aggregate events/sec/thread: {agg_have:.3f} vs "
                f"recorded {agg_want:.3f} "
                f"({(1 - agg_have / agg_want) * 100:.0f}% drop > "
                f"{threshold * 100:.0f}% threshold)")
        else:
            print(f"  E21 aggregate events/sec/thread: {agg_have:.3f} vs "
                  f"recorded {agg_want:.3f} normalized — ok")
    if failures:
        print("PERF REGRESSION against " + baseline_path + ":")
        print("\n".join(failures))
        return 1
    print(f"perf guard passed ({baseline_path})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin-dir", default="build/release",
                        help="CMake binary dir holding bench/ executables")
    parser.add_argument("--out", default="BENCH_PR9.json",
                        help="where to write the merged JSON")
    parser.add_argument("--full", action="store_true",
                        help="run the full (non --smoke) throughput sweep")
    parser.add_argument("--carry", metavar="JSON",
                        help="carry baseline_pre_pr4 forward from this file")
    parser.add_argument("--check", metavar="JSON",
                        help="compare against this recorded trajectory and "
                             "fail on >threshold normalized regression "
                             "(implies --carry JSON)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_DROP_THRESHOLD,
                        help="allowed fractional drop (default 0.20)")
    args = parser.parse_args()

    merged = run_tab_scalability(args.bin_dir, smoke=not args.full)
    merged["generated_by"] = "scripts/bench_json.py"
    micro = run_micro(args.bin_dir)
    if micro:
        merged["micro"] = micro
        wire = wire_section(micro)
        if wire:
            merged["wire"] = wire

    carry_from = args.carry or args.check
    if carry_from and os.path.exists(carry_from):
        with open(carry_from, encoding="utf-8") as f:
            previous = json.load(f)
        for block in ("baseline_pre_pr4", "baseline_pr4", "baseline_pr5",
                      "baseline_pr6", "baseline_pr7", "baseline_pr8"):
            if block in previous:
                merged[block] = previous[block]
        # First carry from the PR8 JSON: snapshot its live measurements as
        # the "baseline_pr8" trajectory point.
        if "baseline_pr8" not in previous and "throughput" in previous:
            merged["baseline_pr8"] = {
                "workload": previous.get("workload"),
                "calibration_mops": previous.get("calibration_mops"),
                "throughput": previous["throughput"],
            }

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        return check(merged, args.check, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
