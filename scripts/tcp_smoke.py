#!/usr/bin/env python3
"""Multi-process TCP smoke test: spawn a recovery group, kill -9 a rank,
restart it with --rejoin --warm, and assert the group still completes.

This is the end-to-end drill the paper describes (a processor fails
mid-computation, the survivors splice around it, the replacement warm-
rejoins) run against real OS processes wired by the TCP transport — no
simulator fault injector involved.

Checked stdout markers (printed by tools/splice_noded.cpp):
  READY rank=R            every rank, once the listener is bound
  REJOIN_COMPLETE rank=R  the restarted rank, once catch-up finishes
  DONE answer=V           rank 0, with the program's correct answer
  SHUTDOWN rank=R         every other rank, on the teardown broadcast

Usage: scripts/tcp_smoke.py [path/to/splice_noded]
Exit 0 on success, 1 on any failed assertion (logs are dumped).
"""

import pathlib
import random
import signal
import subprocess
import sys
import time

RANKS = 4
VICTIM = 2
PROGRAM = "nqueens:6"
ANSWER = "4"
# 20k ticks/s: slow enough that the kill lands mid-computation, fast
# enough that tick-denominated timeouts (failure 400, warm grace 20000)
# elapse in tenths of a second.
TICK_NS = "50000"
TIMEOUT_S = 120


def spawn(binary, rank, port, logdir, rejoin=False):
    log = open(logdir / f"rank{rank}.log", "ab")
    argv = [
        str(binary),
        "--rank", str(rank),
        "--ranks", str(RANKS),
        "--base-port", str(port),
        "--program", PROGRAM,
        "--tick-ns", TICK_NS,
        "--warm",
    ]
    if rejoin:
        argv.append("--rejoin")
    return subprocess.Popen(argv, stdout=log, stderr=subprocess.STDOUT)


def read_log(logdir, rank):
    path = logdir / f"rank{rank}.log"
    return path.read_text() if path.exists() else ""


def wait_for(logdir, rank, marker, deadline):
    while time.time() < deadline:
        if marker in read_log(logdir, rank):
            return True
        time.sleep(0.05)
    return False


def main():
    binary = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "build/release/tools/splice_noded"
    )
    if not binary.exists():
        print(f"FAIL: {binary} not built", file=sys.stderr)
        return 1

    logdir = pathlib.Path("tcp_smoke_logs")
    logdir.mkdir(exist_ok=True)
    for old in logdir.glob("rank*.log"):
        old.unlink()

    port = random.randint(20000, 40000)
    deadline = time.time() + TIMEOUT_S
    procs = {r: spawn(binary, r, port, logdir) for r in range(RANKS)}
    failures = []

    try:
        for r in range(RANKS):
            if not wait_for(logdir, r, "READY", deadline):
                failures.append(f"rank {r} never printed READY")
                raise RuntimeError

        # Let the group get some real work in flight, then hard-kill one
        # rank mid-run — SIGKILL, no cleanup, exactly like a crash.
        time.sleep(1.0)
        procs[VICTIM].send_signal(signal.SIGKILL)
        procs[VICTIM].wait()
        print(f"killed rank {VICTIM} (SIGKILL)")

        # Give the survivors a beat to detect the death via bounced
        # traffic, then bring the replacement up on the same port.
        time.sleep(1.0)
        procs[VICTIM] = spawn(binary, VICTIM, port, logdir, rejoin=True)

        if not wait_for(logdir, VICTIM, "REJOIN_COMPLETE", deadline):
            failures.append(f"rank {VICTIM} never completed its warm rejoin")
        if not wait_for(logdir, 0, "DONE", deadline):
            failures.append("rank 0 never completed the program")
        else:
            done = [
                line for line in read_log(logdir, 0).splitlines()
                if line.startswith("DONE")
            ]
            if not any(f"answer={ANSWER}" in line for line in done):
                failures.append(
                    f"wrong answer: {done} (expected answer={ANSWER})"
                )
        for r in range(RANKS):
            if r == 0:
                continue
            if not wait_for(logdir, r, "SHUTDOWN", deadline):
                failures.append(f"rank {r} never saw the shutdown broadcast")
    except RuntimeError:
        pass
    finally:
        for p in procs.values():
            if p.poll() is None:
                p.kill()
        for p in procs.values():
            p.wait()

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        for r in range(RANKS):
            print(f"--- rank {r} log ---", file=sys.stderr)
            print(read_log(logdir, r), file=sys.stderr)
        return 1

    print(f"PASS: kill -9 rank {VICTIM} -> warm rejoin -> "
          f"DONE answer={ANSWER} across {RANKS} processes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
