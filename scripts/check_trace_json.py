#!/usr/bin/env python3
"""Validate a Perfetto/Chrome trace_event JSON emitted by splice_trace.

Schema checks (stdlib only, no perfetto dependency):

  * top level is an object with a "traceEvents" list;
  * every event carries "ph", "ts", "pid" and a "ph" from the emitted set
    (X = slice, M = metadata, s/f = flow start/finish, C = counter);
  * slices carry name/tid/dur, counters carry an "args" value object;
  * flow events pair up: every flow id opened by "s" is closed by exactly
    one "f" (and vice versa), binding_point "e" on the finish side;
  * timestamps are non-negative and every referenced tid has a thread_name
    metadata record.

Exit 0 and print a one-line summary on success; exit 1 with the first
violations otherwise.

    python3 scripts/check_trace_json.py trace.json
"""

from __future__ import annotations

import json
import sys

KNOWN_PH = {"X", "M", "s", "f", "C"}


def check(path: str) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    errors: list[str] = []

    def err(msg: str) -> None:
        if len(errors) < 20:
            errors.append(msg)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        sys.exit(f"{path}: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        sys.exit(f"{path}: 'traceEvents' must be a non-empty list")

    counts = {ph: 0 for ph in KNOWN_PH}
    flow_open: dict[object, int] = {}
    flow_close: dict[object, int] = {}
    named_tids: set[object] = set()
    used_tids: set[object] = set()

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            err(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PH:
            err(f"{where}: unknown ph {ph!r}")
            continue
        counts[ph] += 1
        # Metadata records are timeless; everything else sits on the axis.
        required = ("pid",) if ph == "M" else ("ts", "pid")
        for key in required:
            if key not in ev:
                err(f"{where}: ph={ph} missing {key!r}")
        if isinstance(ev.get("ts"), (int, float)) and ev["ts"] < 0:
            err(f"{where}: negative ts {ev['ts']}")
        if ph == "X":
            for key in ("name", "tid", "dur"):
                if key not in ev:
                    err(f"{where}: slice missing {key!r}")
            used_tids.add(ev.get("tid"))
        elif ph == "M":
            if ev.get("name") == "thread_name":
                named_tids.add(ev.get("tid"))
        elif ph in ("s", "f"):
            fid = ev.get("id")
            if fid is None:
                err(f"{where}: flow event missing 'id'")
                continue
            if ph == "s":
                flow_open[fid] = flow_open.get(fid, 0) + 1
            else:
                flow_close[fid] = flow_close.get(fid, 0) + 1
                if ev.get("bp") != "e":
                    err(f"{where}: flow finish id={fid} missing bp:'e'")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                err(f"{where}: counter missing 'args' values")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                err(f"{where}: counter args must be numeric: {args}")

    for fid, n in flow_open.items():
        closes = flow_close.get(fid, 0)
        if closes != n:
            err(f"flow id={fid}: {n} start(s) but {closes} finish(es)")
    for fid in flow_close:
        if fid not in flow_open:
            err(f"flow id={fid}: finish without start")
    for tid in used_tids:
        if tid not in named_tids:
            err(f"tid={tid}: slices present but no thread_name metadata")

    if counts["X"] == 0:
        err("no slice ('X') events at all — empty trace?")

    if errors:
        print(f"{path}: INVALID trace_event JSON")
        for msg in errors:
            print(f"  {msg}")
        return 1
    print(f"{path}: ok — {counts['X']} slices, {counts['s']} flows, "
          f"{counts['C']} counter samples, {counts['M']} metadata records "
          f"across {len(named_tids)} tracks")
    return 0


def main() -> int:
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    rc = 0
    for path in sys.argv[1:]:
        rc |= check(path)
    return rc


if __name__ == "__main__":
    sys.exit(main())
