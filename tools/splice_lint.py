#!/usr/bin/env python3
"""splice_lint: project-invariant static analysis for the splice tree.

The repo's hardest correctness properties are invariants no off-the-shelf
tool knows about: seeded runs must be bit-identical (no nondeterminism
sources), the wire payload is a *closed* 15-kind variant (every kind-indexed
switch and table must stay exhaustive), envelopes are consumed exactly once
(use-after-move in handler-reachable code is a latent ASan report), and the
PDES window protocol confines shard state behind barrier-ordered entry
points. Each rule below rejects one of those bug classes at lint time.

Engine: rules run on a token stream produced by a small C++ lexer (comments
and string literals handled, brace/paren structure tracked) — an "AST-lite"
engine. When a Python libclang binding is importable the driver reports it
and the engine choice is recorded in the output header; the rules themselves
are written against the token API so they behave identically either way
(this container ships no libclang, so the token engine is the one CI vets).

Rules (each has a fixture in tests/lint_fixture/ that must fail):

  SPL001  nondeterminism sources (std::random_device, rand()/srand(),
          time(), std::chrono::system_clock, default-seeded std::mt19937)
          outside the wall-clock allowlist (net/tcp_transport.cpp, tools/,
          scripts/).
  SPL002  banned includes: <fcntl.h> (glibc declares the splice(2) syscall
          and the declaration collides with `namespace splice` in any TU
          that is ADL-reachable), <stdlib.h> (use <cstdlib>), plus the
          C rand family (drand48 & friends) from any header.
  SPL003  MsgKind/EventKind exhaustiveness: every switch over these enums
          must name every enumerator (a `default:` does not count — adding
          a 16th MsgKind must fail lint at every site that needs updating),
          and every block marked `// splice-lint: exhaustive(Enum)` must
          mention every enumerator by name.
  SPL004  Envelope use-after-move: an Envelope (or its payload) consumed by
          std::move must not be touched again on the same straight-line
          path. Scoped to src/ — the Processor::handle-reachable code where
          the consume-at-argument-evaluation contract lives.
  SPL005  PDES shard confinement: members annotated SPLICE_SHARD_CONFINED
          (util/annotations.h) may only be accessed inside functions marked
          SPLICE_SHARD_ENTRY — the vetted barrier-ordered entry points.

Suppression: `// splice-lint: allow(SPL00N): reason` on the finding's line
or the line above. A suppression without a reason is itself a finding
(SPL000), so every escape hatch is justified in-source.

Exit status: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

# Directories scanned in tree mode, relative to --root.
SCAN_DIRS = ["src", "tools", "tests", "bench", "examples"]
# Lint fixtures are *supposed* to fail; never scan them in tree mode.
EXCLUDE_PREFIXES = ["tests/lint_fixture"]

CXX_EXTENSIONS = {".cpp", ".cc", ".cxx", ".h", ".hpp"}

# SPL001: files/dirs where wall-clock and OS entropy are the point.
SPL001_ALLOW = ["src/net/tcp_transport.cpp", "tools/", "scripts/"]

# SPL003: the closed enums and the headers that define them.
SPL003_ENUMS = {
    "MsgKind": "src/net/message.h",
    "EventKind": "src/obs/journal.h",
}
# Sentinel enumerators: never required in switches or marked tables.
SPL003_SENTINELS = {"kCount"}

# SPL004 runs only on library code (handler-reachable paths); tests build
# throwaway envelopes in patterns that are fine for a test's lifetime.
SPL004_PREFIXES = ["src/"]

RULE_HINTS = {
    "SPL000": "add a reason: // splice-lint: allow(SPLxxx): <why this is safe>",
    "SPL001": "route randomness through util::Rng seeded from SystemConfig::seed; "
    "sim time comes from Simulator::now()",
    "SPL002": "<fcntl.h> collides with namespace splice (glibc splice(2)); use "
    "ioctl(FIONBIO) for nonblocking mode and <cstdlib> for the C library",
    "SPL003": "name every enumerator explicitly (default: does not count); a new "
    "kind must fail lint at every site that needs updating",
    "SPL004": "an Envelope is consumed at argument evaluation; re-reads after "
    "std::move are use-after-move (hoist fields you need first)",
    "SPL005": "access confined shard state only from a SPLICE_SHARD_ENTRY "
    "function whose barrier ordering has been argued (util/annotations.h)",
}


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

@dataclass
class Tok:
    kind: str  # 'id' | 'num' | 'str' | 'char' | 'punct'
    text: str
    line: int


_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"\.?[0-9](?:[0-9a-fA-F'.xXbBpP]|[eE][+-]|[pP][+-])*")
# Longest-match punctuators that matter for structure/meaning.
_PUNCTS = [
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",
]


@dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    text: str
    toks: list = field(default_factory=list)
    # line -> concatenated comment text ending on that line
    comments: dict = field(default_factory=dict)
    # (line, header, is_angle) per #include
    includes: list = field(default_factory=list)
    # line -> 1-based char offset of line start (for block text extraction)
    line_starts: list = field(default_factory=list)


def lex(path: str, text: str) -> SourceFile:
    f = SourceFile(path=path, text=text)
    i, n, line = 0, len(text), 1
    f.line_starts = [0]
    for m in re.finditer(r"\n", text):
        f.line_starts.append(m.end())

    def add_comment(ln: int, body: str) -> None:
        f.comments[ln] = f.comments.get(ln, "") + " " + body

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            add_comment(line, text[i + 2 : j])
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            body = text[i + 2 : j]
            add_comment(line, body)
            line += body.count("\n")
            i = j + 2
            continue
        if c == "#":
            # Preprocessor line (with continuations). Record includes; the
            # token stream skips the directive so rules see pure C++.
            j = i
            while j < n:
                k = text.find("\n", j)
                k = n if k < 0 else k
                if text[k - 1 : k] == "\\":
                    j = k + 1
                else:
                    break
            directive = text[i:k]
            m = re.match(r"#\s*include\s*([<\"])([^>\"]+)[>\"]", directive)
            if m:
                f.includes.append((line, m.group(2), m.group(1) == "<"))
            line += directive.count("\n")
            i = k
            continue
        if text.startswith('R"', i):
            m = re.match(r'R"([^()\\ ]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n - len(close) if j < 0 else j
                body = text[i : j + len(close)]
                f.toks.append(Tok("str", body, line))
                line += body.count("\n")
                i = j + len(close)
                continue
        if c == '"' or (c == "'" and not _NUM_RE.match(text, i)):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            f.toks.append(
                Tok("str" if quote == '"' else "char", text[i : j + 1], line))
            i = j + 1
            continue
        m = _ID_RE.match(text, i)
        if m:
            f.toks.append(Tok("id", m.group(0), line))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            f.toks.append(Tok("num", m.group(0), line))
            i = m.end()
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                f.toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            f.toks.append(Tok("punct", c, line))
            i += 1
    return f


# ---------------------------------------------------------------------------
# Shared token helpers
# ---------------------------------------------------------------------------

def match_brace(toks: list, open_idx: int) -> int:
    """Index of the '}' matching toks[open_idx] == '{' (len(toks) if none)."""
    depth = 0
    for i in range(open_idx, len(toks)):
        t = toks[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(toks)


def next_of(toks: list, i: int, text: str) -> int:
    while i < len(toks) and toks[i].text != text:
        i += 1
    return i


def path_matches(path: str, prefixes: list) -> bool:
    return any(
        path == p or (p.endswith("/") and path.startswith(p)) or
        path.startswith(p.rstrip("/") + "/")
        for p in prefixes)


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

_ALLOW_RE = re.compile(r"splice-lint:\s*allow\((SPL\d{3})\)\s*:?\s*(\S?.*)")


class Suppressions:
    def __init__(self, f: SourceFile, findings: list):
        self.by_rule_line = set()
        for ln, body in f.comments.items():
            for m in _ALLOW_RE.finditer(body):
                rule, reason = m.group(1), m.group(2).strip()
                if not reason:
                    findings.append(
                        Finding("SPL000", f.path, ln,
                                f"suppression of {rule} carries no reason"))
                # A comment suppresses its own line and the line below
                # (the common "comment above the statement" shape).
                self.by_rule_line.add((rule, ln))
                self.by_rule_line.add((rule, ln + 1))

    def active(self, rule: str, line: int) -> bool:
        return (rule, line) in self.by_rule_line


# ---------------------------------------------------------------------------
# SPL001 — nondeterminism sources
# ---------------------------------------------------------------------------

def check_spl001(f: SourceFile, out: list) -> None:
    if path_matches(f.path, SPL001_ALLOW):
        return
    toks = f.toks
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prev = toks[i - 1].text if i > 0 else ""
        if t.text == "random_device":
            out.append(Finding(
                "SPL001", f.path, t.line,
                "std::random_device is OS entropy; seeded runs must replay"))
        elif t.text in ("rand", "srand") and nxt == "(" and prev != ".":
            out.append(Finding(
                "SPL001", f.path, t.line,
                f"C {t.text}() draws from hidden global state"))
        elif t.text == "system_clock":
            out.append(Finding(
                "SPL001", f.path, t.line,
                "std::chrono::system_clock reads the wall clock"))
        elif (t.text == "time" and nxt == "(" and
              prev in ("::", ";", "{", "}", "(", ",", "=", "return")):
            # `::time(...)` / bare `time(nullptr)` call positions only;
            # member calls (`sim.time()`) and declarations don't match.
            if prev == "::" and i >= 2 and toks[i - 2].kind == "id" and \
                    toks[i - 2].text not in ("std",):
                continue  # some_ns::time(...) — qualified user function
            out.append(Finding(
                "SPL001", f.path, t.line,
                "time() reads the wall clock"))
        elif t.text in ("mt19937", "mt19937_64"):
            # Default-constructed engine ⇒ fixed seed nobody chose; flag
            # `std::mt19937 g;` / `g{}` / `g()`. A seeded constructor or a
            # type-alias position is fine.
            j = i + 1
            if j < len(toks) and toks[j].kind == "id":
                decl = toks[j]
                k = j + 1
                after = toks[k].text if k < len(toks) else ""
                unseeded = after == ";" or (
                    after in ("{", "(") and k + 1 < len(toks) and
                    toks[k + 1].text in ("}", ")"))
                if unseeded:
                    out.append(Finding(
                        "SPL001", f.path, decl.line,
                        f"std::{t.text} {decl.text} is default-seeded; "
                        "seed it from SystemConfig::seed"))


# ---------------------------------------------------------------------------
# SPL002 — banned includes + C rand family
# ---------------------------------------------------------------------------

_SPL002_RAND_FAMILY = {
    "drand48", "erand48", "lrand48", "nrand48", "mrand48", "jrand48",
    "rand_r", "srand48",
}


def check_spl002(f: SourceFile, out: list) -> None:
    for line, header, is_angle in f.includes:
        if not is_angle:
            continue
        if header == "fcntl.h":
            out.append(Finding(
                "SPL002", f.path, line,
                "#include <fcntl.h> is banned: glibc declares splice(2) and "
                "the declaration collides with namespace splice"))
        elif header == "stdlib.h":
            out.append(Finding(
                "SPL002", f.path, line,
                "#include <stdlib.h> is banned: use <cstdlib> (and nothing "
                "from its rand family)"))
    for t in f.toks:
        if t.kind == "id" and t.text in _SPL002_RAND_FAMILY:
            out.append(Finding(
                "SPL002", f.path, t.line,
                f"C rand-family function {t.text}() is banned "
                "(hidden global state; not seedable per-run)"))


# ---------------------------------------------------------------------------
# SPL003 — closed-enum exhaustiveness
# ---------------------------------------------------------------------------

def parse_enumerators(root: str, enum: str, header_rel: str) -> list:
    path = os.path.join(root, header_rel)
    with open(path, encoding="utf-8") as fh:
        f = lex(header_rel, fh.read())
    toks = f.toks
    for i in range(len(toks) - 2):
        if (toks[i].text == "enum" and toks[i + 1].text == "class" and
                toks[i + 2].text == enum):
            open_idx = next_of(toks, i + 3, "{")
            close_idx = match_brace(toks, open_idx)
            names, expect_name = [], True
            depth = 0
            for t in toks[open_idx + 1 : close_idx]:
                if t.text in ("(", "{", "["):
                    depth += 1
                elif t.text in (")", "}", "]"):
                    depth -= 1
                elif depth == 0 and t.text == ",":
                    expect_name = True
                elif depth == 0 and expect_name and t.kind == "id":
                    names.append(t.text)
                    expect_name = False
            return names
    raise SystemExit(f"splice_lint: enum {enum} not found in {header_rel}")


_EXHAUSTIVE_RE = re.compile(r"splice-lint:\s*exhaustive\((\w+)\)")


def check_spl003(f: SourceFile, enums: dict, out: list) -> None:
    toks = f.toks
    # -- switches ----------------------------------------------------------
    for i, t in enumerate(toks):
        if t.text != "switch" or t.kind != "id":
            continue
        body_open = next_of(toks, i, "{")
        body_close = match_brace(toks, body_open)
        # Which closed enum (if any) do the case labels name?
        for enum, enumerators in enums.items():
            present = set()
            j = body_open
            while j < body_close:
                if (toks[j].text == "case" and j + 3 < len(toks) and
                        toks[j + 1].text == enum and
                        toks[j + 2].text == "::"):
                    present.add(toks[j + 3].text)
                j += 1
            if not present:
                continue
            required = [e for e in enumerators if e not in SPL003_SENTINELS]
            missing = [e for e in required if e not in present]
            if missing:
                out.append(Finding(
                    "SPL003", f.path, t.line,
                    f"switch over {enum} misses "
                    f"{', '.join(enum + '::' + m for m in missing)}"))
    # -- marked tables -----------------------------------------------------
    for ln, body in f.comments.items():
        for m in _EXHAUSTIVE_RE.finditer(body):
            enum = m.group(1)
            if enum not in enums:
                out.append(Finding(
                    "SPL003", f.path, ln,
                    f"exhaustive({enum}) marker names an unknown enum"))
                continue
            # The marked block: first '{' at/after the marker line to its
            # matching '}'. Enumerator names may appear as tokens or in
            # comments (name tables document entries per-line).
            start = None
            for i, t in enumerate(toks):
                if t.line >= ln and t.text == "{":
                    start = i
                    break
            if start is None:
                out.append(Finding(
                    "SPL003", f.path, ln,
                    f"exhaustive({enum}) marker is not followed by a block"))
                continue
            end = match_brace(toks, start)
            lo = f.line_starts[toks[start].line - 1]
            hi_line = toks[end].line if end < len(toks) else toks[-1].line
            hi = (f.line_starts[hi_line] if hi_line < len(f.line_starts)
                  else len(f.text))
            block_text = f.text[lo:hi]
            words = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", block_text))
            required = [e for e in enums[enum]
                        if e not in SPL003_SENTINELS]
            missing = [e for e in required if e not in words]
            if missing:
                out.append(Finding(
                    "SPL003", f.path, ln,
                    f"exhaustive({enum}) block misses {', '.join(missing)}"))


# ---------------------------------------------------------------------------
# SPL004 — Envelope use-after-move
# ---------------------------------------------------------------------------

_CONTROL_EXITS = {"break", "return", "continue", "throw", "goto"}


def check_spl004(f: SourceFile, out: list) -> None:
    if not path_matches(f.path, SPL004_PREFIXES):
        return
    toks = f.toks
    n = len(toks)
    # Envelope-typed names currently in scope: name -> declaration depth.
    tracked: dict = {}
    # Poisoned names: name -> (depth of the move, token index, member|None).
    poisoned: dict = {}
    # Depths at which a name was shadowed by a lambda init-capture; while
    # inside that lambda body the name refers to the capture, not the moved
    # outer variable.
    shadowed: dict = {}
    # Depth of a control-exit keyword whose statement is still open; its
    # poison clearing happens at the terminating ';' (see below).
    pending_exit = None
    depth = 0
    i = 0
    while i < n:
        t = toks[i]
        txt = t.text
        if txt == "{":
            depth += 1
            i += 1
            continue
        if txt == "}":
            # Leaving a block ends every poison and shadow opened inside it.
            for name in [k for k, v in poisoned.items() if v[0] >= depth]:
                del poisoned[name]
            for name in [k for k, v in shadowed.items() if v >= depth]:
                del shadowed[name]
            for name in [k for k, v in tracked.items() if v >= depth]:
                del tracked[name]
            depth -= 1
            pending_exit = None
            i += 1
            continue
        if t.kind == "id" and txt in _CONTROL_EXITS:
            # Control leaves this statement sequence: a move made at this
            # depth or deeper cannot flow past (break ends the case branch,
            # return ends the function). Shallower moves stay poisoned —
            # a conditional early-out does not clean them. The clearing is
            # deferred to the statement's ';' because the exit's own
            # expression still reads: `return envelope.to;` after a move
            # is a live use-after-move.
            pending_exit = depth
            i += 1
            continue
        if txt == ";" and pending_exit is not None:
            for name in [k for k, v in poisoned.items()
                         if v[0] >= pending_exit]:
                del poisoned[name]
            pending_exit = None
            i += 1
            continue
        if t.kind == "id" and txt in ("case", "default"):
            # A new switch branch: moves made in earlier branches at this
            # depth (or deeper) are not live here.
            for name in [k for k, v in poisoned.items() if v[0] >= depth]:
                del poisoned[name]
            i += 1
            continue
        # Declarations: [const] [net::]Envelope [&&|&] name
        if t.kind == "id" and txt == "Envelope":
            j = i + 1
            while j < n and toks[j].text in ("&&", "&", "const"):
                j += 1
            if j < n and toks[j].kind == "id":
                name = toks[j].text
                tracked[name] = depth
                poisoned.pop(name, None)
                i = j + 1
                continue
        # Lambda init-capture shadowing: [..., name = std::move(name), ...]
        if txt == "[":
            close = i
            d = 0
            while close < n:
                if toks[close].text == "[":
                    d += 1
                elif toks[close].text == "]":
                    d -= 1
                    if d == 0:
                        break
                close += 1
            j = i + 1
            while j < close:
                if (toks[j].kind == "id" and toks[j].text in tracked and
                        j + 1 < close and toks[j + 1].text == "=" ):
                    # The capture's initializer may itself move the outer
                    # variable — handled by the std::move scan below. The
                    # *name* is shadowed from the lambda body on.
                    shadowed[toks[j].text] = depth + 1
                j += 1
        # std::move(name[.member])
        if (t.kind == "id" and txt == "move" and i >= 2 and
                toks[i - 1].text == "::" and toks[i - 2].text == "std" and
                i + 1 < n and toks[i + 1].text == "("):
            j = i + 2
            if j < n and toks[j].kind == "id" and toks[j].text in tracked:
                name = toks[j].text
                member = None
                if j + 2 < n and toks[j + 1].text == "." and \
                        toks[j + 2].kind == "id":
                    member = toks[j + 2].text
                    close_paren = j + 3
                else:
                    close_paren = j + 1
                if close_paren < n and toks[close_paren].text == ")":
                    if name in poisoned and poisoned[name][2] is None and \
                            name not in shadowed:
                        out.append(Finding(
                            "SPL004", f.path, toks[j].line,
                            f"{name} moved again after std::move "
                            f"(first at line {toks[poisoned[name][1]].line})"))
                    poisoned[name] = (depth, j, member)
                    i = close_paren + 1
                    continue
        # Uses of a poisoned name. `x.envelope` / `ns::envelope` is a
        # member or qualified name that merely shares the identifier.
        if t.kind == "id" and txt in poisoned and txt not in shadowed and \
                (i == 0 or toks[i - 1].text not in (".", "->", "::")):
            move_depth, move_idx, member = poisoned[txt]
            # Reassignment heals: `name = ...` in statement position.
            prev = toks[i - 1].text if i > 0 else ";"
            nxt = toks[i + 1].text if i + 1 < n else ""
            if nxt == "=" and prev in (";", "{", "}", "(", ")"):
                del poisoned[txt]
                i += 1
                continue
            if member is not None:
                # Only the moved member is dead; flag name.member reads.
                if (i + 2 < n and toks[i + 1].text == "." and
                        toks[i + 2].text == member):
                    out.append(Finding(
                        "SPL004", f.path, t.line,
                        f"{txt}.{member} read after std::move "
                        f"(moved at line {toks[move_idx].line})"))
            else:
                out.append(Finding(
                    "SPL004", f.path, t.line,
                    f"{txt} used after std::move "
                    f"(moved at line {toks[move_idx].line})"))
        i += 1


# ---------------------------------------------------------------------------
# SPL005 — PDES shard confinement
# ---------------------------------------------------------------------------

def collect_confined(files: dict) -> tuple:
    """Return ({member names}, {paths where the annotations live})."""
    members, owner_paths = set(), set()
    for f in files.values():
        toks = f.toks
        for i, t in enumerate(toks):
            if t.text != "SPLICE_SHARD_CONFINED":
                continue
            owner_paths.add(f.path)
            # Member name: last identifier before the declaration's end.
            j = i + 1
            name = None
            while j < len(toks) and toks[j].text not in (";", "=", "{"):
                if toks[j].kind == "id":
                    name = toks[j].text
                j += 1
            if name:
                members.add(name)
    return members, owner_paths


def entry_spans(f: SourceFile) -> list:
    """Token-index ranges covered by SPLICE_SHARD_ENTRY functions."""
    spans = []
    toks = f.toks
    for i, t in enumerate(toks):
        if t.text != "SPLICE_SHARD_ENTRY":
            continue
        # The function body is the first '{' at paren depth zero after the
        # macro (member-init lists and parameter defaults live in parens).
        open_idx, pd = i, 0
        for j in range(i, len(toks)):
            if toks[j].text == "(":
                pd += 1
            elif toks[j].text == ")":
                pd -= 1
            elif toks[j].text == "{" and pd == 0:
                open_idx = j
                break
        spans.append((i, match_brace(toks, open_idx)))
    return spans


def check_spl005(f: SourceFile, members: set, owner_paths: set,
                 out: list) -> None:
    if not members:
        return
    # Scope: the annotating files themselves plus any file that includes one
    # of them (suffix match on the include path).
    applies = f.path in owner_paths or any(
        any(op.endswith(inc) for op in owner_paths)
        for _, inc, _ in f.includes)
    if not applies:
        return
    spans = entry_spans(f)
    toks = f.toks

    def inside_entry(idx: int) -> bool:
        return any(lo <= idx <= hi for lo, hi in spans)

    # Annotation sites (the member declarations) are not accesses.
    decl_lines = {t.line for t in toks if t.text == "SPLICE_SHARD_CONFINED"}
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in members:
            continue
        if t.line in decl_lines or t.line - 1 in decl_lines:
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prev = toks[i - 1].text if i > 0 else ""
        is_member_access = prev in (".", "->") and nxt != "("
        is_bare_field = t.text.endswith("_") and prev not in (".", "->", "::")
        if not (is_member_access or is_bare_field):
            continue
        if not inside_entry(i):
            out.append(Finding(
                "SPL005", f.path, t.line,
                f"confined shard member '{t.text}' accessed outside a "
                "SPLICE_SHARD_ENTRY function"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def gather_files(root: str, explicit: list) -> dict:
    files = {}

    def add(rel: str) -> None:
        rel = rel.replace(os.sep, "/")
        full = os.path.join(root, rel)
        if os.path.splitext(rel)[1] not in CXX_EXTENSIONS:
            return
        with open(full, encoding="utf-8", errors="replace") as fh:
            files[rel] = lex(rel, fh.read())

    if explicit:
        for p in explicit:
            rel = os.path.relpath(os.path.abspath(p), root)
            add(rel)
        return files
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for fn in sorted(filenames):
                rel = os.path.relpath(os.path.join(dirpath, fn), root)
                rel = rel.replace(os.sep, "/")
                if any(rel.startswith(e) for e in EXCLUDE_PREFIXES):
                    continue
                add(rel)
    return files


def engine_name() -> str:
    try:
        import clang.cindex  # noqa: F401
        return "libclang"
    except ImportError:
        return "tokens"


def run_lint(root: str, explicit: list, fixture_mode: bool) -> list:
    files = gather_files(root, explicit)
    enums = {}
    for enum, header in SPL003_ENUMS.items():
        try:
            enums[enum] = parse_enumerators(root, enum, header)
        except (OSError, SystemExit):
            if not fixture_mode:
                raise
    members, owner_paths = collect_confined(files)
    findings: list = []
    for f in files.values():
        raw: list = []
        sup = Suppressions(f, findings)
        if fixture_mode:
            # Fixtures opt every rule in regardless of path allowlists.
            saved001, saved004 = SPL001_ALLOW[:], SPL004_PREFIXES[:]
            SPL001_ALLOW.clear()
            SPL004_PREFIXES.clear()
            SPL004_PREFIXES.append(f.path)
            try:
                check_spl001(f, raw)
                check_spl004(f, raw)
            finally:
                SPL001_ALLOW.extend(saved001)
                SPL004_PREFIXES.clear()
                SPL004_PREFIXES.extend(saved004)
        else:
            check_spl001(f, raw)
            check_spl004(f, raw)
        check_spl002(f, raw)
        check_spl003(f, enums, raw)
        fm, fo = (members, owner_paths) if not fixture_mode else \
            collect_confined({f.path: f})
        check_spl005(f, fm, fo if not fixture_mode else {f.path}, raw)
        findings.extend(
            fi for fi in raw if not sup.active(fi.rule, fi.line))
    findings.sort(key=lambda fi: (fi.path, fi.line, fi.rule))
    return findings


def main(argv: list) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: parent of tools/)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON on stdout")
    ap.add_argument("--fixture", action="store_true",
                    help="fixture mode: scan only the given files, ignore "
                    "path allowlists (tests/lint_fixture)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("files", nargs="*", help="explicit files (default: tree)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, hint in sorted(RULE_HINTS.items()):
            print(f"{rule}: {hint}")
        return 0
    if args.fixture and not args.files:
        print("splice_lint: --fixture requires explicit files",
              file=sys.stderr)
        return 2

    findings = run_lint(args.root, args.files, args.fixture)
    if args.json:
        print(json.dumps({
            "engine": engine_name(),
            "findings": [vars(fi) for fi in findings],
        }, indent=2))
    else:
        for fi in findings:
            print(fi.render())
            print(f"    fix: {RULE_HINTS[fi.rule]}")
        if findings:
            print(f"splice_lint: {len(findings)} finding(s) "
                  f"[engine: {engine_name()}]", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
