// splice_noded: one rank of a real multi-process recovery group.
//
// Launch N of these (rank 0..N-1) and the same Processor/Runtime/recovery
// stack that runs inside the single-process simulator runs as N OS
// processes wired by the TCP transport — same protocol code, same wire
// codec, real process kills:
//
//   $ for r in 0 1 2 3; do
//       ./splice_noded --rank $r --ranks 4 --base-port 7800 &
//     done
//
// Crash-recovery drill: kill -9 one rank mid-run, then restart it with
// --rejoin (add --warm on every rank for survivor-assisted state
// transfer). The restarted process announces itself, catches up, and the
// group completes; rank 0 prints `DONE answer=...` and broadcasts a
// kShutdown control message so every rank exits.
//
// Each process paces its simulated clock against the wall clock
// (--tick-ns nanoseconds per tick) so tick-denominated protocol timeouts
// (failure detection, warm grace) elapse at comparable real rates across
// the group; between event batches the driver polls the sockets.
//
// Markers on stdout (machine-checked by scripts/tcp_smoke.py):
//   READY rank=R            listener bound, runtime started
//   REJOIN_COMPLETE rank=R  warm/cold catch-up finished
//   DONE answer=V           rank 0 only: root program completed
//   SHUTDOWN rank=R         exiting on the group teardown broadcast
//   JOURNAL rank=R file=F   flight-recorder dump written (--journal only)
//
// With --journal FILE the per-rank flight recorder is on: the journal dumps
// to FILE on exit and on SIGUSR1 (live inspection of a running group), a
// periodic STATS line reports recorder counters, and `splice_trace merge`
// stitches the per-rank dumps into one timeline. Log lines are prefixed
// with `[rank R inc I]` so interleaved stderr from the group stays
// attributable.
#include <csignal>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "lang/programs.h"
#include "obs/journal.h"
#include "util/logging.h"
#include "net/tcp_transport.h"
#include "runtime/runtime.h"

namespace {

volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_dump_requested = 1; }

struct Options {
  std::uint32_t rank = 0;
  std::uint32_t ranks = 4;
  std::uint16_t base_port = 7800;
  std::string program = "nqueens:5";
  std::int64_t tick_ns = 2000;  // 2us per tick: failure_timeout(400) = 0.8ms
  std::int64_t deadline_ticks = 60'000'000;
  bool rejoin = false;
  bool warm = false;
  std::uint64_t seed = 1;
  std::string log_level;
  std::string journal;               // empty: recorder off
  std::int64_t stats_ticks = 2'000'000;  // STATS cadence (with --journal)
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --rank R --ranks N [--base-port P] [--program NAME:ARG]\n"
      "          [--tick-ns NS] [--deadline-ticks T] [--seed S]\n"
      "          [--rejoin] [--warm] [--journal FILE] [--stats-ticks T]\n",
      argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--rank") {
      opt.rank = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--ranks") {
      opt.ranks = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--base-port") {
      opt.base_port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--program") {
      opt.program = value();
    } else if (arg == "--tick-ns") {
      opt.tick_ns = std::atoll(value());
    } else if (arg == "--deadline-ticks") {
      opt.deadline_ticks = std::atoll(value());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--log") {
      opt.log_level = value();
    } else if (arg == "--journal") {
      opt.journal = value();
    } else if (arg == "--stats-ticks") {
      opt.stats_ticks = std::atoll(value());
    } else if (arg == "--rejoin") {
      opt.rejoin = true;
    } else if (arg == "--warm") {
      opt.warm = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.ranks == 0 || opt.rank >= opt.ranks || opt.tick_ns <= 0) {
    usage(argv[0]);
  }
  return opt;
}

splice::lang::Program make_program(const std::string& spec) {
  using namespace splice::lang;
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::int64_t arg =
      colon == std::string::npos ? -1 : std::atoll(spec.c_str() + colon + 1);
  if (name == "nqueens") {
    return programs::nqueens(arg < 0 ? 5 : static_cast<std::uint32_t>(arg));
  }
  if (name == "fib") return programs::fib(arg < 0 ? 14 : arg);
  if (name == "tak") return programs::tak(12, 8, 4);
  if (name == "mergesort") {
    return programs::mergesort(arg < 0 ? 64 : static_cast<std::size_t>(arg));
  }
  std::fprintf(stderr, "unknown program: %s\n", spec.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace splice;
  using Clock = std::chrono::steady_clock;
  const Options opt = parse_args(argc, argv);
  if (!opt.log_level.empty()) {
    util::Logger::instance().set_level(util::parse_log_level(opt.log_level));
  }

  core::SystemConfig cfg;
  cfg.processors = opt.ranks;
  cfg.topology = net::TopologyKind::kRing;  // any N works; no grid constraint
  cfg.scheduler.kind = core::SchedulerKind::kRandom;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 2000;
  cfg.seed = opt.seed;
  cfg.transport.backend = net::TransportKind::kTcp;
  cfg.obs.recorder = !opt.journal.empty();

  const lang::Program program = make_program(opt.program);

  std::vector<net::TcpPeer> peers(opt.ranks);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    peers[r].port = static_cast<std::uint16_t>(opt.base_port + r);
  }

  sim::Simulator sim;
  std::unique_ptr<net::Transport> transport;
  try {
    transport = net::make_tcp_transport(sim, opt.rank, peers);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "rank %u: %s\n", opt.rank, err.what());
    return 1;
  }
  net::Network network(sim, net::Topology(cfg.topology, cfg.processors),
                       cfg.latency, std::move(transport));
  runtime::Runtime rt(sim, network, cfg, program);
  rt.set_warm_rejoin(opt.warm);
  rt.recorder().set_rank(opt.rank);
  // Interleaved stderr from N ranks must stay attributable: prefix every
  // log line with the rank and the local node's incarnation (bumps when
  // this rank's processor is crashed, e.g. a --rejoin arrival).
  util::Logger::instance().set_sink(
      [&rt, rank = opt.rank](util::LogLevel level, std::string_view message) {
        std::fprintf(stderr, "[rank %u inc %llu] [%s] %.*s\n", rank,
                     static_cast<unsigned long long>(
                         rt.processor(rank).incarnation()),
                     util::to_string(level).data(),
                     static_cast<int>(message.size()), message.data());
      });
  const auto dump_journal = [&](const char* why) {
    if (opt.journal.empty()) return;
    const obs::Journal journal = rt.recorder().snapshot();
    const std::vector<std::uint8_t> bytes = obs::serialize(journal);
    std::ofstream out(opt.journal, std::ios::binary | std::ios::trunc);
    if (!out.write(reinterpret_cast<const char*>(bytes.data()),
                   static_cast<std::streamsize>(bytes.size()))) {
      std::fprintf(stderr, "rank %u: cannot write %s\n", opt.rank,
                   opt.journal.c_str());
      return;
    }
    std::printf("JOURNAL rank=%u file=%s events=%zu reason=%s\n", opt.rank,
                opt.journal.c_str(), journal.events.size(), why);
    std::fflush(stdout);
  };
  if (!opt.journal.empty()) std::signal(SIGUSR1, on_sigusr1);

  rt.start();
  if (opt.rejoin) {
    // This process replaces a killed rank: run the crash-recovery arrival
    // protocol (rejoin broadcast; under --warm also survivor-assisted
    // state transfer) exactly as the in-simulator FaultInjector would.
    network.kill(opt.rank);
    rt.on_kill(opt.rank);
    network.revive(opt.rank);
    rt.on_revive(opt.rank);
  }
  std::printf("READY rank=%u ranks=%u port=%u%s\n", opt.rank, opt.ranks,
              opt.base_port + opt.rank,
              opt.rejoin ? (opt.warm ? " rejoin=warm" : " rejoin=cold") : "");
  std::fflush(stdout);

  bool rejoin_pending = opt.rejoin;
  bool done_announced = false;
  std::int64_t linger_until = -1;  // rank 0: flush window after DONE
  std::int64_t next_stats = opt.stats_ticks;
  const auto wall0 = Clock::now();

  for (;;) {
    network.poll();

    if (g_dump_requested) {
      g_dump_requested = 0;
      dump_journal("sigusr1");
    }
    if (!opt.journal.empty() && opt.stats_ticks > 0 &&
        sim.now().ticks() >= next_stats) {
      next_stats = sim.now().ticks() + opt.stats_ticks;
      std::printf(
          "STATS rank=%u t=%lld events=%llu dropped=%llu windows=%zu "
          "in_flight=%llu\n",
          opt.rank, static_cast<long long>(sim.now().ticks()),
          static_cast<unsigned long long>(rt.recorder().total_recorded()),
          static_cast<unsigned long long>(rt.recorder().dropped()),
          rt.recorder().metrics().series().size(),
          static_cast<unsigned long long>(network.in_flight()));
      std::fflush(stdout);
    }

    const std::int64_t target_ticks =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             wall0)
            .count() /
        opt.tick_ns;
    sim.run_until(sim::SimTime(target_ticks));
    sim.advance_to(sim::SimTime(target_ticks));

    if (rejoin_pending && !rt.processor(opt.rank).warm_rejoined()) {
      // Cold rejoin finishes immediately; warm flips the flag when
      // survivor catch-up completes.
      rejoin_pending = false;
      std::printf("REJOIN_COMPLETE rank=%u t=%lld\n", opt.rank,
                  static_cast<long long>(sim.now().ticks()));
      std::fflush(stdout);
    }

    if (rt.hosts_super_root() && rt.done() && !done_announced) {
      done_announced = true;
      std::printf("DONE answer=%s t=%lld\n", rt.answer().to_string().c_str(),
                  static_cast<long long>(sim.now().ticks()));
      std::fflush(stdout);
      for (net::ProcId p = 0; p < opt.ranks; ++p) {
        if (p == opt.rank) continue;
        net::Envelope env;
        env.kind = net::MsgKind::kControl;
        env.from = opt.rank;
        env.to = p;
        env.size_units = 1;
        env.payload = runtime::ControlMsg{runtime::ControlKind::kShutdown};
        network.send(std::move(env));
      }
      // Brief linger so late frames (acks, result redeliveries) drain
      // before the listener disappears.
      linger_until = sim.now().ticks() + 20000;
    }
    if (linger_until >= 0 && sim.now().ticks() >= linger_until) break;

    if (rt.shutdown_requested()) {
      std::printf("SHUTDOWN rank=%u t=%lld\n", opt.rank,
                  static_cast<long long>(sim.now().ticks()));
      std::fflush(stdout);
      break;
    }
    if (sim.now().ticks() >= opt.deadline_ticks) {
      std::fprintf(stderr, "rank %u: deadline reached without completion\n",
                   opt.rank);
      dump_journal("deadline");
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  dump_journal("exit");
  return 0;
}
