// splice_trace: flight-recorder toolbox.
//
//   record   run a seeded link-chaos scenario (E19's partition-and-heal or
//            gray-churn recipe) with the recorder on; dump the binary
//            journal, and optionally the Perfetto trace and metrics series,
//            in one go. The run is validated by the RecoveryOracle with the
//            journal attached, so a violation prints its causal chain.
//   export   journal dump -> Perfetto/Chrome trace_event JSON
//            (load into ui.perfetto.dev or chrome://tracing)
//   explain  walk a task's causal chain back to the fault that doomed it
//            (--uid N, or --first-reissue for the first recovery action)
//   merge    stitch per-rank dumps (splice_noded --journal) into one
//            timeline with remapped causal edges
//   stats    header + per-kind event counts of a dump
//
// Journal dumps are the "SPLJ" binary format of obs/journal.h; any file
// name works, `.splj` by convention.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "lang/programs.h"
#include "net/fault_plan.h"
#include "obs/causal.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "recovery/recovery_oracle.h"

namespace {

using namespace splice;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: splice_trace <command> [options]\n"
      "  record  [--procs N] [--seed S] [--scenario partition|gray]\n"
      "          [--transport inproc|shm] [--out FILE.splj]\n"
      "          [--perfetto FILE.json] [--series-csv FILE]\n"
      "          [--series-json FILE]\n"
      "  export  --in FILE.splj --out FILE.json\n"
      "  explain --in FILE.splj (--uid N | --first-reissue)\n"
      "  merge   --out FILE.splj IN.splj [IN.splj ...]\n"
      "  stats   --in FILE.splj\n");
  std::exit(2);
}

obs::Journal load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "splice_trace: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  try {
    return obs::deserialize(bytes.data(), bytes.size());
  } catch (const std::exception& err) {
    std::fprintf(stderr, "splice_trace: %s: %s\n", path.c_str(), err.what());
    std::exit(1);
  }
}

void save_journal(const obs::Journal& journal, const std::string& path) {
  const std::vector<std::uint8_t> bytes = obs::serialize(journal);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
    std::fprintf(stderr, "splice_trace: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

struct Args {
  std::string in, out, perfetto, series_csv, series_json;
  std::string scenario = "partition";
  std::string transport = "inproc";
  std::uint32_t procs = 32;
  std::uint64_t seed = 7;
  std::uint64_t uid = 0;
  bool first_reissue = false;
  std::vector<std::string> positional;
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--in") {
      args.in = value();
    } else if (arg == "--out") {
      args.out = value();
    } else if (arg == "--perfetto") {
      args.perfetto = value();
    } else if (arg == "--series-csv") {
      args.series_csv = value();
    } else if (arg == "--series-json") {
      args.series_json = value();
    } else if (arg == "--scenario") {
      args.scenario = value();
    } else if (arg == "--transport") {
      args.transport = value();
    } else if (arg == "--procs") {
      args.procs = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--uid") {
      args.uid = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--first-reissue") {
      args.first_reissue = true;
    } else if (!arg.empty() && arg[0] != '-') {
      args.positional.push_back(arg);
    } else {
      usage();
    }
  }
  return args;
}

std::ofstream open_text(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "splice_trace: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  return out;
}

int cmd_record(const Args& args) {
  if (args.procs < 4) {
    std::fprintf(stderr, "splice_trace: record needs --procs >= 4\n");
    return 2;
  }
  // The E19 chaos recipe (bench/tab_scalability.cpp): link-level faults
  // only, cancel-protocol reclaim, a tree deep enough that the cut has
  // concurrent subtrees to orphan. Deterministic per (procs, seed,
  // scenario) — the transport choice must not change the journal.
  core::SystemConfig cfg;
  cfg.processors = args.procs;
  cfg.topology = net::TopologyKind::kTorus2D;
  cfg.scheduler.kind = core::SchedulerKind::kLocalFirst;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 2000;
  cfg.seed = args.seed * 41 + 29;
  cfg.reclaim.cancellation = true;
  cfg.reclaim.gc_interval = 0;
  cfg.obs.recorder = true;
  cfg.obs.journal_capacity = 1u << 18;
  if (args.transport == "shm") {
    cfg.transport.backend = net::TransportKind::kShmRing;
  } else if (args.transport != "inproc") {
    std::fprintf(stderr, "splice_trace: unknown transport %s\n",
                 args.transport.c_str());
    return 2;
  }
  const lang::Program program = lang::programs::tree_sum(
      args.procs >= 256 ? 11 : args.procs >= 128 ? 10 : 9, 2, 400, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);

  net::FaultPlan plan;
  if (args.scenario == "partition") {
    plan = net::FaultPlan::partition(
        net::RegionSpec::neighborhood(
            static_cast<net::ProcId>(cfg.processors - 1), 2),
        sim::SimTime(makespan / 4), sim::SimTime(makespan / 3));
  } else if (args.scenario == "gray") {
    net::GraySpec gray;
    gray.node = static_cast<net::ProcId>(cfg.processors / 2);
    gray.start = sim::SimTime(makespan / 6);
    plan = net::FaultPlan::gray(gray);
  } else {
    std::fprintf(stderr, "splice_trace: unknown scenario %s\n",
                 args.scenario.c_str());
    return 2;
  }
  plan.with_seed(args.seed * 31 + 7);

  core::Simulation simulation(cfg, program);
  simulation.set_fault_plan(plan);
  const core::RunResult result = simulation.run();
  const obs::Journal journal = simulation.recorder().snapshot();
  const std::vector<obs::TimePoint>& series =
      simulation.recorder().metrics().series();

  std::printf("%s\n", result.summary().c_str());
  std::printf("journal: %llu recorded, %llu dropped, %zu retained, "
              "%zu sample windows\n",
              static_cast<unsigned long long>(journal.header.total_recorded),
              static_cast<unsigned long long>(journal.header.dropped),
              journal.events.size(), series.size());

  recovery::RecoveryOracle::Expect expect;
  expect.no_detection = args.scenario == "gray";
  const auto report =
      recovery::RecoveryOracle::check(result, journal, expect);
  if (!report.ok()) {
    std::fprintf(stderr, "oracle violations:\n%s", report.to_string().c_str());
    return 1;
  }
  std::printf("oracle: ok\n");

  if (!args.out.empty()) {
    save_journal(journal, args.out);
    std::printf("journal dump written to %s\n", args.out.c_str());
  }
  if (!args.perfetto.empty()) {
    auto out = open_text(args.perfetto);
    obs::write_perfetto(journal, series, out);
    std::printf("perfetto trace written to %s\n", args.perfetto.c_str());
  }
  if (!args.series_csv.empty()) {
    auto out = open_text(args.series_csv);
    obs::write_series_csv(series, out);
  }
  if (!args.series_json.empty()) {
    auto out = open_text(args.series_json);
    obs::write_series_json(series, out);
  }
  return 0;
}

int cmd_export(const Args& args) {
  if (args.in.empty() || args.out.empty()) usage();
  const obs::Journal journal = load_journal(args.in);
  auto out = open_text(args.out);
  obs::write_perfetto(journal, out);
  std::printf("perfetto trace written to %s (%zu events)\n", args.out.c_str(),
              journal.events.size());
  return 0;
}

int cmd_explain(const Args& args) {
  if (args.in.empty() || (args.uid == 0 && !args.first_reissue)) usage();
  const obs::Journal journal = load_journal(args.in);
  if (args.first_reissue) {
    const obs::EventId leaf = obs::first_reissued(journal);
    if (leaf == obs::kNoEvent) {
      std::printf("no reissue/twin event journaled (fault-free run?)\n");
      return 1;
    }
    std::printf("first recovery action, walked back to its root cause:\n%s",
                obs::render_chain(journal, leaf).c_str());
    return 0;
  }
  std::printf("%s", obs::explain_task(journal, args.uid).c_str());
  return 0;
}

int cmd_merge(const Args& args) {
  if (args.out.empty() || args.positional.empty()) usage();
  std::vector<obs::Journal> journals;
  journals.reserve(args.positional.size());
  for (const std::string& path : args.positional) {
    journals.push_back(load_journal(path));
  }
  const obs::Journal merged = obs::merge(journals);
  save_journal(merged, args.out);
  std::printf("merged %zu dumps -> %s (%zu events)\n", journals.size(),
              args.out.c_str(), merged.events.size());
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.in.empty()) usage();
  const obs::Journal journal = load_journal(args.in);
  std::printf("rank=%u processors=%u recorded=%llu dropped=%llu retained=%zu\n",
              journal.header.rank, journal.header.processors,
              static_cast<unsigned long long>(journal.header.total_recorded),
              static_cast<unsigned long long>(journal.header.dropped),
              journal.events.size());
  std::uint64_t by_kind[obs::kEventKindCount] = {};
  for (const obs::Event& event : journal.events) {
    ++by_kind[static_cast<std::size_t>(event.kind)];
  }
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    if (by_kind[k] == 0) continue;
    std::printf("  %-14s %llu\n",
                std::string(obs::to_string(static_cast<obs::EventKind>(k)))
                    .c_str(),
                static_cast<unsigned long long>(by_kind[k]));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  if (cmd == "record") return cmd_record(args);
  if (cmd == "export") return cmd_export(args);
  if (cmd == "explain") return cmd_explain(args);
  if (cmd == "merge") return cmd_merge(args);
  if (cmd == "stats") return cmd_stats(args);
  usage();
}
