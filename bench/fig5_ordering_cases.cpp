// E3 — Figure 5: "All possible orderings with respect to completion of C".
//
// The paper enumerates eight orderings of {C completes, P fails, P'
// invoked, C' invoked, C'/P' complete}. We sweep the fault time across the
// makespan and classify what actually happened to orphan results through
// the protocol's observable outcomes:
//
//   never-ran / recomputed  — cases 1,2,3 (no orphan result exists: the
//                             twin recomputes the child)
//   salvaged                — cases 4,5 and the C-first half of 6 (orphan
//                             result reached the step-parent and was used)
//   duplicate-ignored       — cases 6,7 (both C and C' delivered; second
//                             copy dropped)
//   late-discarded          — case 8 (nobody recognises the result)
//
// Rows: fault time as a fraction of the fault-free makespan.
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  const lang::Program program = lang::programs::tree_sum(6, 2, 600, 40);

  util::Table table({"fault@", "runs", "correct", "twins", "salvaged",
                     "dup-ignored", "late-discarded", "recomputed",
                     "stranded"});
  table.set_title(
      "Fig. 5 — outcome classification of orphan results vs fault time "
      "(splice, 8 procs)");

  for (int pct : {10, 25, 40, 55, 70, 85, 95}) {
    auto reps = bench::run_replicates(
        opt.replicates, program,
        [&](std::uint64_t seed) {
          core::SystemConfig cfg;
          cfg.processors = 8;
          cfg.topology = net::TopologyKind::kMesh2D;
          cfg.recovery.kind = core::RecoveryKind::kSplice;
          cfg.heartbeat_interval = 1200;
          cfg.seed = seed * 37 + 5;
          return cfg;
        },
        [&](const core::SystemConfig& cfg, std::int64_t makespan,
            std::uint64_t seed) {
          const auto victim = static_cast<net::ProcId>(
              (seed * 3) % cfg.processors);
          return net::FaultPlan::single(victim, sim::SimTime(makespan * pct / 100));
        });

    const double twins = bench::mean_of(reps, [](const bench::Replicate& r) {
      return static_cast<double>(r.result.counters.twins_created);
    });
    const double salvaged =
        bench::mean_of(reps, [](const bench::Replicate& r) {
          return static_cast<double>(
              r.result.counters.orphan_results_salvaged);
        });
    const double dup = bench::mean_of(reps, [](const bench::Replicate& r) {
      return static_cast<double>(
          r.result.counters.duplicate_results_ignored);
    });
    const double late = bench::mean_of(reps, [](const bench::Replicate& r) {
      return static_cast<double>(r.result.counters.late_results_discarded);
    });
    // Recomputed = respawned twins whose slots were filled by their own
    // fresh children rather than salvage (cases 1-3): approximate as
    // respawns minus salvage, floored at zero.
    const double recomputed =
        bench::mean_of(reps, [](const bench::Replicate& r) {
          const double v =
              static_cast<double>(r.result.counters.tasks_respawned) -
              static_cast<double>(r.result.counters.orphan_results_salvaged);
          return v > 0 ? v : 0.0;
        });
    const double stranded =
        bench::mean_of(reps, [](const bench::Replicate& r) {
          return static_cast<double>(r.result.counters.orphans_stranded);
        });
    table.add_row({std::to_string(pct) + "%",
                   util::Table::num(static_cast<std::int64_t>(reps.size())),
                   std::to_string(bench::correct_count(reps)) + "/" +
                       std::to_string(static_cast<int>(reps.size())),
                   util::Table::num(twins, 1), util::Table::num(salvaged, 1),
                   util::Table::num(dup, 1), util::Table::num(late, 1),
                   util::Table::num(recomputed, 1),
                   util::Table::num(stranded, 1)});
  }
  bench::emit(table, opt);
  std::printf(
      "reading: early faults -> orphans finish before twins spawn (salvage,\n"
      "cases 4/5); mid faults -> twin and orphan race (duplicates, cases\n"
      "6/7); very late faults -> little left to salvage (case 8 / clean\n"
      "finish). Every cell row must stay correct.\n");
  return 0;
}
