// E7 — §4's claim: splice recovery salvages intermediate results that
// rollback abandons.
//
// Orphan-heavy workload (deep chains keep computing under the failure
// point). Rows: fault time. Columns per scheme: salvaged results, relay
// messages, recovery latency, stranded tasks.
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  // Deep unbalanced recursion: long-running subtrees below every victim.
  const lang::Program program = lang::programs::fib(13, 450);

  auto config_for = [&](core::RecoveryKind kind, std::uint64_t seed) {
    core::SystemConfig cfg;
    cfg.processors = 8;
    cfg.topology = net::TopologyKind::kTorus2D;
    cfg.recovery.kind = kind;
    cfg.heartbeat_interval = 1500;
    cfg.seed = seed * 211 + 3;
    return cfg;
  };

  util::Table table({"fault@", "scheme", "correct", "salvaged", "relays",
                     "dup ignored", "recovery latency", "stranded tasks"});
  table.set_title("§4 — splice vs rollback: salvage of intermediate results");

  for (int pct : {20, 40, 60, 80}) {
    for (auto kind :
         {core::RecoveryKind::kRollback, core::RecoveryKind::kSplice}) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) { return config_for(kind, s); },
          [&](const core::SystemConfig& cfg, std::int64_t makespan,
              std::uint64_t seed) {
            const auto victim =
                static_cast<net::ProcId>((seed * 7 + 2) % cfg.processors);
            return net::FaultPlan::single(victim, sim::SimTime(makespan * pct / 100));
          });
      table.add_row(
          {std::to_string(pct) + "%", std::string(core::to_string(kind)),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size())),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.counters.orphan_results_salvaged);
                              }),
               1),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.counters.results_relayed);
                              }),
               1),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.counters
                                        .duplicate_results_ignored);
                              }),
               1),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.makespan_ticks -
                                    r.clean_makespan);
                              }),
               0),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.stranded_tasks);
                              }),
               1)});
    }
  }
  bench::emit(table, opt);
  std::printf(
      "expected shape: rollback salvages 0 by construction and discards\n"
      "orphan returns; splice converts them into salvage (grandparent\n"
      "relays), trading a few duplicate results (cases 6/7) for reduced\n"
      "recovery latency on orphan-heavy workloads.\n");
  return 0;
}
