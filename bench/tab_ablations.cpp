// E13 — ablations of the design choices DESIGN.md §6 calls out:
//
//   A. Detection machinery: heartbeat interval vs detection latency vs
//      probe traffic (the paper assumes detection exists; this measures
//      what it costs in our model).
//   B. Ancestor-chain depth (§5.2): how long a chain is worth carrying,
//      under same-branch multi-faults.
//   C. Reissue scope: topmost-only (paper §3.2/§4.2) vs eager per-parent
//      respawn — message and work blowup vs salvage gain.
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  // ---- A. heartbeat interval ------------------------------------------
  {
    const lang::Program program = lang::programs::tree_sum(5, 2, 400, 40);
    util::Table table({"heartbeat", "detection latency", "probe msgs",
                       "recovery latency", "correct"});
    table.set_title("ablation A — failure-detection cadence (splice, 8 procs)");
    for (std::int64_t interval : {500, 1000, 2000, 4000, 8000}) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) {
            core::SystemConfig cfg;
            cfg.processors = 8;
            cfg.topology = net::TopologyKind::kMesh2D;
            cfg.recovery.kind = core::RecoveryKind::kSplice;
            cfg.heartbeat_interval = interval;
            cfg.seed = s * 19 + 3;
            return cfg;
          },
          [&](const core::SystemConfig& cfg, std::int64_t makespan,
              std::uint64_t seed) {
            return net::FaultPlan::single(
                static_cast<net::ProcId>((seed * 3 + 1) % cfg.processors), sim::SimTime(makespan / 2));
          });
      table.add_row(
          {util::Table::num(interval),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.detection_ticks -
                                    r.result.first_failure_ticks);
                              }),
               0),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.net.sent[static_cast<std::size_t>(
                                        net::MsgKind::kHeartbeat)]);
                              }),
               0),
           util::Table::num(bench::mean_of(reps,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.makespan_ticks -
                                                 r.clean_makespan);
                                           }),
                            0),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size()))});
    }
    bench::emit(table, opt);
  }

  // ---- B. ancestor-chain depth ----------------------------------------
  {
    const lang::Program program = lang::programs::fib(12, 400);
    util::Table table({"chain depth", "correct", "stranded", "salvaged",
                       "packet units"});
    table.set_title(
        "ablation B — ancestor-chain depth under a 2-processor fault "
        "(splice, 8 procs)");
    for (std::uint32_t depth : {1U, 2U, 3U, 4U}) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) {
            core::SystemConfig cfg;
            cfg.processors = 8;
            cfg.topology = net::TopologyKind::kComplete;
            cfg.recovery.kind = core::RecoveryKind::kSplice;
            cfg.recovery.ancestor_depth = depth;
            cfg.heartbeat_interval = 1200;
            cfg.seed = s * 29 + 7;
            return cfg;
          },
          [&](const core::SystemConfig& cfg, std::int64_t makespan,
              std::uint64_t seed) {
            net::FaultPlan plan;
            // Two simultaneous victims: same-branch double faults occur by
            // chance across replicates.
            plan.timed.push_back(
                {static_cast<net::ProcId>(seed % cfg.processors),
                 sim::SimTime(makespan / 2)});
            plan.timed.push_back(
                {static_cast<net::ProcId>((seed + 3) % cfg.processors),
                 sim::SimTime(makespan / 2)});
            return plan;
          });
      table.add_row(
          {util::Table::num(static_cast<std::uint64_t>(depth)),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size())),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.counters.orphans_stranded);
                              }),
               2),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.counters
                                        .orphan_results_salvaged);
                              }),
               1),
           // Wire cost of the chain: mean task-packet units sent.
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                           r.result.net.total_units) /
                                       static_cast<double>(
                                           r.result.net.total_sent());
                              }),
               2)});
    }
    bench::emit(table, opt);
  }

  // ---- C. reissue scope -----------------------------------------------
  {
    const lang::Program program = lang::programs::tree_sum(6, 2, 500, 40);
    util::Table table({"scope", "faults", "correct", "reissued",
                       "recovery latency", "redone work"});
    table.set_title("ablation C — topmost-only vs eager reissue (splice)");
    for (std::uint32_t faults : {1U, 3U}) {
      for (bool eager : {false, true}) {
        auto reps = bench::run_replicates(
            opt.replicates, program,
            [&](std::uint64_t s) {
              core::SystemConfig cfg;
              cfg.processors = 8;
              cfg.topology = net::TopologyKind::kMesh2D;
              cfg.recovery.kind = core::RecoveryKind::kSplice;
              cfg.recovery.eager_respawn = eager;
              cfg.heartbeat_interval = 1200;
              cfg.seed = s * 47 + 1;
              return cfg;
            },
            [&](const core::SystemConfig& cfg, std::int64_t makespan,
                std::uint64_t seed) {
              net::FaultPlan plan;
              for (std::uint32_t f = 0; f < faults; ++f) {
                plan.timed.push_back(
                    {static_cast<net::ProcId>((seed + f * 2) %
                                              cfg.processors),
                     sim::SimTime(makespan / 2 +
                                  static_cast<std::int64_t>(f) * 500)});
              }
              return plan;
            });
        table.add_row(
            {eager ? "eager per-parent" : "topmost-only (paper)",
             util::Table::num(static_cast<std::uint64_t>(faults)),
             std::to_string(bench::correct_count(reps)) + "/" +
                 std::to_string(static_cast<int>(reps.size())),
             util::Table::num(
                 bench::mean_of(reps,
                                [](const bench::Replicate& r) {
                                  return static_cast<double>(
                                      r.result.counters.tasks_respawned);
                                }),
                 1),
             util::Table::num(bench::mean_of(reps,
                                             [](const bench::Replicate& r) {
                                               return static_cast<double>(
                                                   r.result.makespan_ticks -
                                                   r.clean_makespan);
                                             }),
                              0),
             util::Table::num(
                 bench::mean_of(reps,
                                [](const bench::Replicate& r) {
                                  return static_cast<double>(
                                      r.result.counters.busy_ticks);
                                }),
                 0)});
      }
    }
    bench::emit(table, opt);
  }
  std::printf(
      "reading: A — detection latency tracks the probe cadence, cost is\n"
      "linear probe traffic; B — depth 2 (the paper's grandparent) already\n"
      "catches most orphans, depth 3 removes the same-branch stranding at\n"
      "one extra packet unit; C — eager reissue respawns more and buys\n"
      "little over the paper's topmost rule.\n");
  return 0;
}
