// E1 — Figure 1: call tree mapped onto processors A-D and the resulting
// distribution of functional checkpoints.
//
// Regenerates, from a live run of the pinned Figure-1 tree:
//   * the task -> processor mapping (matches the figure);
//   * the per-processor checkpoint tables toward processor B, showing the
//     paper's claim: A holds B1; C holds B2 and B3 (with B5 subsumed under
//     B2, §3's "C does nothing" case); D holds B7;
//   * the reissue sets after B fails.
#include <cstdio>
#include <map>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  core::SystemConfig cfg;
  cfg.processors = 4;
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.recovery.kind = core::RecoveryKind::kRollback;
  cfg.heartbeat_interval = 800;
  cfg.collect_trace = true;

  // Long-running tasks so every spawn happens while nothing completes: the
  // static snapshot the paper's figure depicts.
  const lang::Program program = lang::programs::figure1_tree(50000);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);

  // Fault-free twin: gives the placement and checkpoint-distribution
  // tables of Figure 1 (the faulted run below re-places B tasks after B
  // dies, which is recovery, not the figure).
  core::Simulation clean_sim(cfg, program);
  const core::RunResult clean = clean_sim.run();
  const core::Trace& trace = clean_sim.trace();

  core::Simulation faulted_sim(cfg, program);
  faulted_sim.set_fault_plan(net::FaultPlan::single(/*B=*/1, sim::SimTime(makespan / 2)));
  const core::RunResult r = faulted_sim.run();

  auto pname = [](net::ProcId p) {
    return std::string(1, static_cast<char>('A' + p));
  };

  // Table 1: task placement.
  util::Table placement({"task", "processor (paper)", "processor (run)"});
  placement.set_title("Fig. 1 — call tree mapping");
  std::map<std::string, net::ProcId> placed;
  for (const auto& e : trace.of_kind("place")) {
    const std::string task = e.detail.substr(0, e.detail.find(' '));
    if (!placed.contains(task)) placed[task] = e.proc;
  }
  for (const auto& node : lang::programs::figure1_nodes()) {
    placement.add_row({node.name, std::string(1, node.name[0]),
                       placed.contains(node.name) ? pname(placed[node.name])
                                                  : "?"});
  }
  bench::emit(placement, opt);

  // Table 2: checkpoint distribution toward processor B.
  util::Table dist({"owner proc", "checkpoint", "outcome"});
  dist.set_title("Fig. 1 — functional checkpoints held against processor B");
  for (const auto& e : trace.of_kind("checkpoint")) {
    if (e.detail.find("entry P1") == std::string::npos) continue;
    const bool subsumed = e.detail.find("subsumed") != std::string::npos;
    dist.add_row({pname(e.proc), e.detail.substr(0, e.detail.find(" entry")),
                  subsumed ? "subsumed (descendant of a topmost)" : "topmost"});
  }
  bench::emit(dist, opt);

  // Table 3: recovery obligations executed when B died (faulted twin run).
  util::Table reissue({"proc", "reissued task", "kind"});
  reissue.set_title(
      "Fig. 1 — reissue set after B fails mid-run (rollback; B tasks that "
      "already returned need no reissue)");
  for (const auto& e : faulted_sim.trace().of_kind("reissue")) {
    reissue.add_row({pname(e.proc), e.detail, "rollback"});
  }
  for (const auto& e : faulted_sim.trace().of_kind("twin")) {
    reissue.add_row({pname(e.proc), e.detail, "step-parent"});
  }
  bench::emit(reissue, opt);

  std::printf("fault-free: %s\nfaulted   : %s\n", clean.summary().c_str(),
              r.summary().c_str());
  return r.completed && r.answer_correct && clean.completed ? 0 : 1;
}
