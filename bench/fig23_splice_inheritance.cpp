// E2 — Figures 2 & 3: grandparent pointers and step-parent inheritance.
//
// Replays the Figure-1 tree under splice recovery, kills B mid-run, and
// prints the protocol narrative: error detection, B2' creation by C (the
// grandparent C1 duplicating B2's retained packet), and the relay of
// orphan results (D4's return travels D -> C1 -> B2').
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  core::SystemConfig cfg;
  cfg.processors = 4;
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 800;
  cfg.collect_trace = true;

  const lang::Program program = lang::programs::figure1_tree(2500);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);

  core::Simulation sim(cfg, program);
  sim.set_fault_plan(net::FaultPlan::single(/*B=*/1, sim::SimTime(makespan / 2)));
  const core::RunResult r = sim.run();

  auto pname = [](net::ProcId p) {
    return p == net::kNoProc ? std::string("host")
                             : std::string(1, static_cast<char>('A' + p));
  };

  util::Table events({"t", "proc", "event", "detail"});
  events.set_title("Figs. 2/3 — splice recovery narrative (B dies mid-run)");
  for (const auto& e : sim.trace().events()) {
    if (e.kind != "crash" && e.kind != "detect" && e.kind != "twin" &&
        e.kind != "relay" && e.kind != "salvage" && e.kind != "reissue" &&
        e.kind != "stranded") {
      continue;
    }
    events.add_row({util::Table::num(e.ticks), pname(e.proc), e.kind,
                    e.detail});
  }
  bench::emit(events, opt);

  util::Table summary({"metric", "value"});
  summary.set_title("Figs. 2/3 — inheritance summary");
  summary.add_row({"completed & correct",
                   r.completed && r.answer_correct ? "yes" : "NO"});
  summary.add_row({"step-parent twins created",
                   util::Table::num(r.counters.twins_created)});
  summary.add_row({"orphan results relayed by grandparents",
                   util::Table::num(r.counters.results_relayed)});
  summary.add_row({"orphan results salvaged into twins",
                   util::Table::num(r.counters.orphan_results_salvaged)});
  summary.add_row({"duplicate results ignored (cases 6/7)",
                   util::Table::num(r.counters.duplicate_results_ignored)});
  summary.add_row({"late results discarded (case 8)",
                   util::Table::num(r.counters.late_results_discarded)});
  bench::emit(summary, opt);
  return r.completed && r.answer_correct ? 0 : 1;
}
