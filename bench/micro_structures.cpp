// E12 — google-benchmark micro-benchmarks of the core data structures:
// level-stamp algebra, checkpoint-table operations, the event queue, the
// gradient proximity relaxation, and whole-simulation throughput.
#include <benchmark/benchmark.h>

#include "checkpoint/checkpoint_table.h"
#include "core/simulation.h"
#include "lang/programs.h"
#include "net/codec.h"
#include "net/transport.h"
#include "runtime/level_stamp.h"
#include "sched/gradient.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace {

using namespace splice;

runtime::LevelStamp random_stamp(util::Xoshiro256& rng, std::size_t depth) {
  runtime::LevelStamp s;
  for (std::size_t i = 0; i < depth; ++i) {
    s = s.child(static_cast<runtime::StampDigit>(rng.next_below(4)));
  }
  return s;
}

void BM_LevelStampChild(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  const runtime::LevelStamp base =
      random_stamp(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.child(7));
  }
}
BENCHMARK(BM_LevelStampChild)->Arg(4)->Arg(16)->Arg(64);

void BM_LevelStampAncestry(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  const auto depth = static_cast<std::size_t>(state.range(0));
  const runtime::LevelStamp a = random_stamp(rng, depth);
  const runtime::LevelStamp b = a.child(1).child(2).child(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.is_ancestor_of(b));
  }
}
BENCHMARK(BM_LevelStampAncestry)->Arg(4)->Arg(16)->Arg(64);

void BM_CheckpointTableRecord(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<checkpoint::CheckpointRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    checkpoint::CheckpointRecord r;
    r.owner = i;
    r.site = 1;
    r.packet.stamp = random_stamp(rng, 1 + rng.next_below(6));
    records.push_back(std::move(r));
  }
  for (auto _ : state) {
    checkpoint::CheckpointTable table(0, 8);
    for (const auto& r : records) {
      benchmark::DoNotOptimize(
          table.record(static_cast<net::ProcId>(r.owner % 8), r));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CheckpointTableRecord)->Arg(64)->Arg(512)->Arg(4096);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(4);
  std::vector<std::int64_t> times(n);
  for (auto& t : times) t = static_cast<std::int64_t>(rng.next_below(100000));
  for (auto _ : state) {
    sim::EventQueue q;
    std::int64_t sink = 0;
    for (std::int64_t t : times) {
      q.schedule(sim::SimTime(t), [&sink] { ++sink; });
    }
    while (!q.empty()) q.run_next();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

// Steady-state ladder behaviour: a rolling horizon of pending events, pop
// one / push one — the simulator's actual access pattern (near-future
// window hits, no heap churn).
void BM_EventQueueSteadyState(benchmark::State& state) {
  const auto horizon = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(5);
  sim::EventQueue q;
  std::int64_t now = 0;
  std::int64_t sink = 0;
  for (std::size_t i = 0; i < horizon; ++i) {
    q.schedule(sim::SimTime(static_cast<std::int64_t>(rng.next_below(500))),
               [&sink] { ++sink; });
  }
  for (auto _ : state) {
    now = q.run_next().ticks();
    q.schedule(
        sim::SimTime(now + 2 + static_cast<std::int64_t>(rng.next_below(500))),
        [&sink] { ++sink; });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueSteadyState)->Arg(256)->Arg(4096);

// Cancel/reschedule storm: heartbeat-style timers armed and torn down in
// bulk. Exercises slot recycling and the tombstone compactor; callback
// memory must stay bounded by *live* events.
void BM_EventQueueCancelReschedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(6);
  std::int64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids(n);
    std::int64_t now = 0;
    for (std::size_t round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        ids[i] = q.schedule(
            sim::SimTime(now + 1 +
                         static_cast<std::int64_t>(rng.next_below(2000))),
            [&sink] { ++sink; });
      }
      // Cancel most, fire the rest — the detector-timer lifecycle.
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 8 != 0) q.cancel(ids[i]);
      }
      while (!q.empty()) now = q.run_next().ticks();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * n));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueCancelReschedule)->Arg(1024)->Arg(8192);

// Variant-payload envelope round trip: build, move through a pool slot, and
// dispatch — the allocation-free messaging path. items/sec ~ envelopes/sec.
void BM_EnvelopeVariantRoundtrip(benchmark::State& state) {
  runtime::TaskPacket packet;
  packet.stamp = runtime::LevelStamp::root().child(3).child(1).child(4);
  packet.fn = 1;
  packet.args = {lang::Value::integer(42), lang::Value::integer(7)};
  packet.ancestors.push_back(runtime::TaskRef{1, 10});
  packet.ancestors.push_back(runtime::TaskRef{2, 20});
  std::vector<net::Envelope> pool(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    net::Envelope env;
    env.kind = net::MsgKind::kTaskPacket;
    env.from = 1;
    env.to = 2;
    env.payload = packet;  // the one copy a real send performs
    pool[0] = std::move(env);               // pool_acquire
    net::Envelope delivered = std::move(pool[0]);  // pool_release
    auto got = std::get<runtime::TaskPacket>(std::move(delivered.payload));
    sink += got.stamp.depth() + got.args.size();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnvelopeVariantRoundtrip);

// Representative wire traffic for the codec benches: the kinds that
// dominate a run (task packets, returned results, spawn acks, heartbeats),
// with realistic stamp depths and ancestor chains.
std::vector<net::Envelope> sample_wire_mix() {
  std::vector<net::Envelope> mix;

  runtime::TaskPacket packet;
  packet.stamp = runtime::LevelStamp::root().child(3).child(1).child(4);
  packet.fn = 2;
  packet.args = {lang::Value::integer(42), lang::Value::integer(7)};
  packet.call_site = 3;
  packet.ancestors.push_back(runtime::TaskRef{1, 10});
  packet.ancestors.push_back(runtime::TaskRef{2, 20});
  net::Envelope spawn;
  spawn.kind = net::MsgKind::kTaskPacket;
  spawn.from = 1;
  spawn.to = 2;
  spawn.payload = std::move(packet);
  mix.push_back(std::move(spawn));

  runtime::ResultMsg result;
  result.stamp = runtime::LevelStamp::root().child(3).child(1).child(4);
  result.call_site = 3;
  result.value = lang::Value::integer(123456789);
  result.target = runtime::TaskRef{1, 10};
  result.ancestors.push_back(runtime::TaskRef{2, 20});
  net::Envelope ret;
  ret.kind = net::MsgKind::kForwardResult;
  ret.from = 2;
  ret.to = 1;
  ret.payload = std::move(result);
  mix.push_back(std::move(ret));

  runtime::AckMsg ack;
  ack.stamp = runtime::LevelStamp::root().child(3).child(1);
  ack.call_site = 1;
  ack.parent = runtime::TaskRef{1, 10};
  ack.child = runtime::TaskRef{2, 21};
  net::Envelope acked;
  acked.kind = net::MsgKind::kSpawnAck;
  acked.from = 2;
  acked.to = 1;
  acked.payload = ack;
  mix.push_back(std::move(acked));

  net::Envelope beat;
  beat.kind = net::MsgKind::kHeartbeat;
  beat.from = 3;
  beat.to = 4;
  beat.payload = runtime::HeartbeatMsg{977};
  mix.push_back(std::move(beat));
  return mix;
}

// Serialization cost per message: items/sec over the representative mix is
// messages/sec (ns/msg = 1e9 / items_per_second); bytes/sec reflects the
// encoded density. bench_json.py records both into BENCH_PR9.json.
void BM_CodecEncode(benchmark::State& state) {
  const std::vector<net::Envelope> mix = sample_wire_mix();
  std::vector<std::uint8_t> buf;
  std::size_t bytes = 0;
  for (auto _ : state) {
    buf.clear();
    for (const net::Envelope& env : mix) {
      net::codec::encode_envelope(env, buf);
    }
    bytes = buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mix.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  std::vector<std::vector<std::uint8_t>> encoded;
  std::size_t bytes = 0;
  for (const net::Envelope& env : sample_wire_mix()) {
    encoded.push_back(net::codec::encode_envelope(env));
    bytes += encoded.back().size();
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (const auto& buf : encoded) {
      const net::Envelope env =
          net::codec::decode_envelope(buf.data(), buf.size());
      sink += static_cast<std::uint64_t>(env.kind) + env.to;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CodecDecode);

// End-to-end wire density: a full seeded run over the shared-memory ring
// backend (every protocol message serialized through the codec) reporting
// encoded bytes per simulated event and per message, plus the measured
// encode/decode ns per message. These counters land in BENCH_PR9.json.
void BM_WireBytesPerEvent(benchmark::State& state) {
  const lang::Program program = lang::programs::tree_sum(8, 2, 60, 10);
  core::SystemConfig cfg;
  cfg.processors = 16;
  cfg.topology = net::TopologyKind::kTorus2D;
  cfg.scheduler.kind = core::SchedulerKind::kLocalFirst;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 2000;
  cfg.seed = 71;
  cfg.transport.backend = net::TransportKind::kShmRing;
  std::uint64_t frames = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t encode_ns = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    core::Simulation sim(cfg, program);
    const core::RunResult r = sim.run();
    if (!r.completed) state.SkipWithError("did not complete");
    const net::WireStats& wire = sim.runtime_for_test().network().wire();
    frames += wire.frames;
    payload_bytes += wire.payload_bytes;
    encode_ns += wire.encode_ns;
    decode_ns += wire.decode_ns;
    events += r.sim_events;
  }
  if (frames > 0 && events > 0) {
    const auto d = [](std::uint64_t num, std::uint64_t den) {
      return static_cast<double>(num) / static_cast<double>(den);
    };
    state.counters["bytes_per_event"] = d(payload_bytes, events);
    state.counters["bytes_per_msg"] = d(payload_bytes, frames);
    state.counters["encode_ns_per_msg"] = d(encode_ns, frames);
    state.counters["decode_ns_per_msg"] = d(decode_ns, frames);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_WireBytesPerEvent)->Unit(benchmark::kMillisecond);

// Whole-simulator throughput gate (bench_json.py records items/sec =
// simulated events/sec into BENCH_PR9.json alongside the tab_scalability
// sweep).
void BM_SimThroughput(benchmark::State& state) {
  const auto procs = static_cast<std::uint32_t>(state.range(0));
  const lang::Program program = lang::programs::tree_sum(10, 2, 60, 10);
  core::SystemConfig cfg;
  cfg.processors = procs;
  cfg.topology = net::TopologyKind::kTorus2D;
  cfg.scheduler.kind = core::SchedulerKind::kLocalFirst;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 2000;
  cfg.seed = 71;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const auto plan = net::FaultPlan::single(
      static_cast<net::ProcId>(procs / 3), sim::SimTime(makespan / 2));
  std::int64_t events = 0;
  for (auto _ : state) {
    const core::RunResult r = core::run_once(cfg, program, plan);
    if (!r.completed) state.SkipWithError("did not complete");
    events += static_cast<std::int64_t>(r.sim_events);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_SimThroughput)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

// Per-shard journal rings: in engine mode each worker records into its own
// ring during the window and merge_journals() splices them into the
// canonical journal afterwards, so journaling a sharded run must cost about
// what the single-ring recorder does (~12% over recorder-off is the gate
// bench_json.py tracks). Arg = shard count; 0 is the classic single-queue
// path with the recorder on, the baseline the sharded rings are held to.
void BM_JournalRecordSharded(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  const lang::Program program = lang::programs::tree_sum(8, 2, 60, 10);
  core::SystemConfig cfg;
  cfg.processors = 32;
  cfg.topology = net::TopologyKind::kTorus2D;
  cfg.scheduler.kind = core::SchedulerKind::kLocalFirst;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 2000;
  cfg.seed = 71;
  cfg.parallel.shards = shards;
  cfg.obs.recorder = true;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const auto plan = net::FaultPlan::single(
      static_cast<net::ProcId>(32 / 3), sim::SimTime(makespan / 2));
  std::int64_t events = 0;
  for (auto _ : state) {
    const core::RunResult r = core::run_once(cfg, program, plan);
    if (!r.completed) state.SkipWithError("did not complete");
    events += static_cast<std::int64_t>(r.sim_events);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_JournalRecordSharded)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_GradientRelaxation(benchmark::State& state) {
  const auto n = static_cast<net::ProcId>(state.range(0));
  net::Topology topo(net::TopologyKind::kTorus2D, n);
  lang::Program program = lang::programs::fib(3);
  std::vector<std::uint32_t> load(n, 5);
  load[n / 2] = 0;
  sched::GradientScheduler sched(100, 0);
  sched::SchedulerEnv env;
  env.topology = &topo;
  env.program = &program;
  env.alive = [](net::ProcId) { return true; };
  env.queue_length = [&load](net::ProcId p) { return load[p]; };
  env.seed = 1;
  sched.attach(env);
  for (auto _ : state) {
    sched.refresh_now();
    benchmark::DoNotOptimize(sched.proximities().data());
  }
}
BENCHMARK(BM_GradientRelaxation)->Arg(16)->Arg(64)->Arg(256);

void BM_WholeSimulationFib(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    core::SystemConfig cfg;
    cfg.processors = 8;
    cfg.topology = net::TopologyKind::kMesh2D;
    cfg.recovery.kind = core::RecoveryKind::kSplice;
    cfg.heartbeat_interval = 2000;
    const core::RunResult r =
        core::run_once(cfg, lang::programs::fib(n, 20));
    if (!r.completed) state.SkipWithError("did not complete");
    benchmark::DoNotOptimize(r.makespan_ticks);
  }
}
BENCHMARK(BM_WholeSimulationFib)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_WholeSimulationWithFault(benchmark::State& state) {
  const lang::Program program = lang::programs::tree_sum(4, 3, 150, 30);
  core::SystemConfig cfg;
  cfg.processors = 8;
  cfg.topology = net::TopologyKind::kMesh2D;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 2000;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (auto _ : state) {
    const core::RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(3, sim::SimTime(makespan / 2)));
    if (!r.completed) state.SkipWithError("did not complete");
    benchmark::DoNotOptimize(r.makespan_ticks);
  }
}
BENCHMARK(BM_WholeSimulationWithFault)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
