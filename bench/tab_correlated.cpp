// E14 — correlated & regional faults with node rejoin.
//
// The paper injects isolated crashes; its confinement claim (recovery touches
// only the residue of the failed subtree) is stressed hardest when failures
// are *correlated*. Three sweeps:
//
// Part 1: regional faults — a growing mesh quadrant loses power at mid-run.
// Part 2: cascades — a failure wave rolls outward from a mesh hot spot with
//         per-hop decay; sweep the spread probability.
// Part 3: fault *rates* — Poisson background crashes over the whole machine,
//         with and without repair (rejoin), sweeping the mean inter-fault
//         interval; crash-recovery keeps capacity up and the makespan down.
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  const lang::Program program = lang::programs::tree_sum(5, 3, 300, 40);

  // ---- Part 1: mesh quadrant outage ------------------------------------
  util::Table part1({"region", "scheme", "correct", "recovery latency",
                     "reissued", "salvaged"});
  part1.set_title(
      "E14a — regional outage: a mesh rectangle dies at makespan/2 "
      "(16 procs, 4x4)");
  struct Rect {
    const char* name;
    std::uint32_t rows, cols;
  };
  const Rect rects[] = {{"1x2 edge", 1, 2}, {"2x2 quadrant", 2, 2},
                        {"2x3 block", 2, 3}};
  for (const Rect& rect : rects) {
    for (auto kind :
         {core::RecoveryKind::kRollback, core::RecoveryKind::kSplice}) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) {
            core::SystemConfig cfg;
            cfg.processors = 16;
            cfg.topology = net::TopologyKind::kMesh2D;
            cfg.recovery.kind = kind;
            cfg.heartbeat_interval = 1500;
            cfg.seed = s * 131 + 7;
            return cfg;
          },
          [&](const core::SystemConfig&, std::int64_t makespan,
              std::uint64_t seed) {
            // Different replicate: different corner, same shape.
            const std::uint32_t row0 = seed % 2 == 0 ? 0 : 4 - rect.rows;
            const std::uint32_t col0 = seed % 3 == 0 ? 0 : 4 - rect.cols;
            return net::FaultPlan::region(
                net::RegionSpec::grid_rect(row0, col0, rect.rows, rect.cols),
                sim::SimTime(makespan / 2));
          });
      part1.add_row(
          {rect.name, std::string(core::to_string(kind)),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size())),
           util::Table::num(bench::mean_of(reps,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.makespan_ticks -
                                                 r.clean_makespan);
                                           }),
                            0),
           util::Table::num(bench::mean_of(reps,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.counters
                                                     .tasks_respawned);
                                           }),
                            1),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.counters.orphan_results_salvaged);
                              }),
               1)});
    }
  }
  bench::emit(part1, opt);

  // ---- Part 2: failure cascade from a hot spot -------------------------
  util::Table part2({"spread p", "mean kills", "correct", "recovery latency",
                     "reissued"});
  part2.set_title(
      "E14b — cascade from mesh centre, 2 hops, decay 0.5 (splice, 16 "
      "procs)");
  for (double p : {0.25, 0.5, 0.9}) {
    auto reps = bench::run_replicates(
        opt.replicates, program,
        [&](std::uint64_t s) {
          core::SystemConfig cfg;
          cfg.processors = 16;
          cfg.topology = net::TopologyKind::kMesh2D;
          cfg.recovery.kind = core::RecoveryKind::kSplice;
          cfg.heartbeat_interval = 1500;
          cfg.seed = s * 131 + 7;
          return cfg;
        },
        [&](const core::SystemConfig&, std::int64_t makespan,
            std::uint64_t seed) {
          net::CascadeFault wave;
          wave.seed = 5;  // interior node of the 4x4 mesh
          wave.when = sim::SimTime(makespan / 2);
          wave.probability = p;
          wave.decay = 0.5;
          wave.max_hops = 2;
          wave.stagger = sim::SimTime(400);
          return net::FaultPlan::cascade(wave).with_seed(seed);
        });
    part2.add_row(
        {util::Table::num(p, 2),
         util::Table::num(bench::mean_of(reps,
                                         [](const bench::Replicate& r) {
                                           return static_cast<double>(
                                               r.result.faults_injected);
                                         }),
                          1),
         std::to_string(bench::correct_count(reps)) + "/" +
             std::to_string(static_cast<int>(reps.size())),
         util::Table::num(bench::mean_of(reps,
                                         [](const bench::Replicate& r) {
                                           return static_cast<double>(
                                               r.result.makespan_ticks -
                                               r.clean_makespan);
                                         }),
                          0),
         util::Table::num(bench::mean_of(reps,
                                         [](const bench::Replicate& r) {
                                           return static_cast<double>(
                                               r.result.counters
                                                   .tasks_respawned);
                                         }),
                          1)});
  }
  bench::emit(part2, opt);

  // ---- Part 3: fault-rate sweep, crash-stop vs crash-recovery ----------
  util::Table part3({"mean interval", "rejoin", "kills", "revived", "correct",
                     "slowdown", "alive at end"});
  part3.set_title(
      "E14c — Poisson fault rate over the whole machine (splice, 16 procs)");
  const std::int64_t intervals[] = {60000, 20000, 8000};
  for (const std::int64_t mean : intervals) {
    for (const bool rejoin : {false, true}) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) {
            core::SystemConfig cfg;
            cfg.processors = 16;
            cfg.topology = net::TopologyKind::kMesh2D;
            cfg.recovery.kind = core::RecoveryKind::kSplice;
            cfg.heartbeat_interval = 1500;
            cfg.seed = s * 131 + 7;
            return cfg;
          },
          [&](const core::SystemConfig&, std::int64_t makespan,
              std::uint64_t seed) {
            net::RecurringFault arrivals;
            arrivals.start = sim::SimTime(makespan / 10);
            // Leave the survivors room to finish: faults stop arriving
            // after 3x the clean makespan.
            arrivals.stop = sim::SimTime(makespan * 3);
            arrivals.mean_interval = static_cast<double>(mean);
            arrivals.max_faults = 12;
            net::FaultPlan plan = net::FaultPlan::poisson(arrivals);
            plan.with_seed(seed);
            if (rejoin) plan.with_rejoin(sim::SimTime(makespan / 5));
            return plan;
          });
      part3.add_row(
          {util::Table::num(static_cast<std::uint64_t>(mean)),
           rejoin ? "yes" : "no",
           util::Table::num(bench::mean_of(reps,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.faults_injected);
                                           }),
                            1),
           util::Table::num(bench::mean_of(reps,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.nodes_revived);
                                           }),
                            1),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size())),
           util::Table::num(bench::mean_of(reps,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                        r.result
                                                            .makespan_ticks) /
                                                    static_cast<double>(
                                                        r.clean_makespan);
                                           }),
                            2),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.processors_alive_at_end);
                              }),
               1)});
    }
  }
  bench::emit(part3, opt);
  std::printf(
      "expected shape: splice stays correct as the dead region grows and as\n"
      "cascades widen (reissues scale with the damage, not the program);\n"
      "under a sustained fault rate, rejoin restores end-of-run capacity to\n"
      "full while crash-stop bleeds processors as the rate climbs.\n");
  return 0;
}
