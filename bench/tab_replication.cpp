// E9 — §5.3: replicated-task redundancy.
//
// "Replicating tasks provides a means of emulating hardware redundancy in
//  applicative systems." Replicas run asynchronously; a majority consensus
//  (identical by determinacy) resolves each slot; crashes are *masked*
//  rather than recovered — no recovery pause at all.
//
// Rows: replication factor x voting mode. Columns: fault-free overhead
// (work, makespan), and under a single fault: completion without any
// respawn (pure masking), recovery latency.
#include <cstdio>

#include "bench/harness.h"
#include "recovery/replicated.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  const lang::Program program = lang::programs::tree_sum(4, 2, 350, 40);

  auto config_for = [&](std::uint32_t factor, bool majority,
                        std::uint64_t seed) {
    core::SystemConfig cfg;
    cfg.processors = 12;
    cfg.topology = net::TopologyKind::kTorus2D;
    // §5.3 masking is policy-free: keep kNone so every completion is due
    // to replication alone.
    cfg.recovery.kind = core::RecoveryKind::kNone;
    cfg.replication.factor = factor;
    cfg.replication.max_depth = 1;
    cfg.replication.majority = majority;
    cfg.heartbeat_interval = 1500;
    cfg.deadline_ticks = 0;
    cfg.seed = seed * 61 + 17;
    return cfg;
  };

  util::Table table({"replicas", "voting", "tolerates", "work x", "makespan x",
                     "faulted: completed", "faulted: masked latency"});
  table.set_title("§5.3 — replicated-task redundancy (12 procs, policy=none)");

  // Fault-free baseline for the multipliers.
  auto base = bench::run_replicates(
      opt.replicates, program,
      [&](std::uint64_t s) { return config_for(1, false, s); });
  const double base_busy = bench::mean_of(base, [](const bench::Replicate& r) {
    return static_cast<double>(r.result.counters.busy_ticks);
  });
  const double base_makespan =
      bench::mean_of(base, [](const bench::Replicate& r) {
        return static_cast<double>(r.result.makespan_ticks);
      });

  struct Mode {
    std::uint32_t factor;
    bool majority;
  };
  for (const Mode mode : {Mode{1, false}, Mode{3, false}, Mode{3, true},
                          Mode{5, false}, Mode{5, true}}) {
    auto clean = bench::run_replicates(
        opt.replicates, program,
        [&](std::uint64_t s) { return config_for(mode.factor, mode.majority, s); });
    auto faulted = bench::run_replicates(
        opt.replicates, program,
        [&](std::uint64_t s) { return config_for(mode.factor, mode.majority, s); },
        [&](const core::SystemConfig& cfg, std::int64_t makespan,
            std::uint64_t seed) {
          const auto victim =
              static_cast<net::ProcId>((seed * 11 + 1) % cfg.processors);
          return net::FaultPlan::single(victim, sim::SimTime(makespan / 2));
        });
    const double busy = bench::mean_of(clean, [](const bench::Replicate& r) {
      return static_cast<double>(r.result.counters.busy_ticks);
    });
    const double makespan =
        bench::mean_of(clean, [](const bench::Replicate& r) {
          return static_cast<double>(r.result.makespan_ticks);
        });
    const double masked_latency =
        bench::mean_of(faulted, [](const bench::Replicate& r) {
          if (!r.result.completed) return 0.0;
          return static_cast<double>(r.result.makespan_ticks -
                                     r.clean_makespan);
        });
    table.add_row(
        {util::Table::num(static_cast<std::uint64_t>(mode.factor)),
         mode.factor == 1 ? "-" : (mode.majority ? "majority" : "first"),
         util::Table::num(static_cast<std::uint64_t>(
             recovery::replicas_tolerated(mode.factor, mode.majority))),
         util::Table::num(busy / base_busy, 2),
         util::Table::num(makespan / base_makespan, 2),
         std::to_string(bench::correct_count(faulted)) + "/" +
             std::to_string(static_cast<int>(faulted.size())),
         util::Table::num(masked_latency, 0)});
  }
  bench::emit(table, opt);
  std::printf(
      "expected shape: r replicas cost ~r x work; first-result voting adds\n"
      "little makespan (asynchronous redundancy, §5.3: no waiting for the\n"
      "slowest); majority waits for the quorum-th return. A single fault is\n"
      "masked with near-zero latency for r>=3 in most placements, versus a\n"
      "hang (0/n) for r=1 with no recovery policy.\n");
  return 0;
}
