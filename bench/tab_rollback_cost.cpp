// E6 — §6's claim: "The [rollback] scheme is simple and has very little
// overhead in a normal operation. But, if a fault happens at a later stage
// of the evaluation, the rollback recovery may be costly."
//
// Rows: fault time as a fraction of fault-free makespan.
// Columns: recovery latency (extra makespan), redone work (extra busy
// ticks), tasks reissued — for rollback, restart, and splice.
// Also includes the topmost-vs-eager reissue ablation (DESIGN.md §6).
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  const lang::Program program = lang::programs::tree_sum(6, 2, 500, 40);

  auto config_for = [&](core::RecoveryKind kind, bool eager,
                        std::uint64_t seed) {
    core::SystemConfig cfg;
    cfg.processors = 8;
    cfg.topology = net::TopologyKind::kMesh2D;
    cfg.recovery.kind = kind;
    cfg.recovery.eager_respawn = eager;
    cfg.heartbeat_interval = 1500;
    cfg.seed = seed * 173 + 11;
    return cfg;
  };

  struct Scheme {
    const char* name;
    core::RecoveryKind kind;
    bool eager;
  };
  const Scheme schemes[] = {
      {"restart", core::RecoveryKind::kRestart, false},
      {"rollback", core::RecoveryKind::kRollback, false},
      {"splice", core::RecoveryKind::kSplice, false},
      {"splice-eager", core::RecoveryKind::kSplice, true},
  };

  util::Table table({"fault@", "scheme", "correct", "recovery latency",
                     "latency %", "redone work", "reissued"});
  table.set_title(
      "§3/§6 — recovery cost vs fault time (single fault, 8 procs)");

  for (int pct : {10, 30, 50, 70, 90}) {
    for (const Scheme& scheme : schemes) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) {
            return config_for(scheme.kind, scheme.eager, s);
          },
          [&](const core::SystemConfig& cfg, std::int64_t makespan,
              std::uint64_t seed) {
            const auto victim =
                static_cast<net::ProcId>((seed * 5 + 1) % cfg.processors);
            return net::FaultPlan::single(victim, sim::SimTime(makespan * pct / 100));
          });
      const double latency = bench::mean_of(reps, [](const bench::Replicate& r) {
        return static_cast<double>(r.result.makespan_ticks -
                                   r.clean_makespan);
      });
      const double latency_pct =
          bench::mean_of(reps, [](const bench::Replicate& r) {
            return 100.0 *
                   static_cast<double>(r.result.makespan_ticks -
                                       r.clean_makespan) /
                   static_cast<double>(r.clean_makespan);
          });
      const double redone = bench::mean_of(reps, [](const bench::Replicate& r) {
        return static_cast<double>(r.result.counters.busy_ticks);
      });
      const double reissued =
          bench::mean_of(reps, [](const bench::Replicate& r) {
            return static_cast<double>(r.result.counters.tasks_respawned);
          });
      table.add_row({std::to_string(pct) + "%", scheme.name,
                     std::to_string(bench::correct_count(reps)) + "/" +
                         std::to_string(static_cast<int>(reps.size())),
                     util::Table::num(latency, 0),
                     util::Table::num(latency_pct, 1),
                     util::Table::num(redone, 0),
                     util::Table::num(reissued, 1)});
    }
  }
  bench::emit(table, opt);
  std::printf(
      "expected shape: restart's cost grows ~linearly with fault time\n"
      "(everything redone); rollback grows but stays below restart (only\n"
      "severed branches redone); splice stays at or below rollback by\n"
      "splicing surviving partial results back in.\n");
  return 0;
}
