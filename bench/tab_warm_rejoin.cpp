// E15 — warm vs blank rejoin: what a durable checkpoint store buys.
//
// Crash-recovery runs where every killed node is repaired. Blank (cold)
// rejoin forces survivors to reissue every checkpoint held against the
// dead node and the rejoiner to relearn the world; warm rejoin replays the
// node's durable log and streams its obligations back from survivors
// (store/ subsystem). Expected: warm reissues strictly fewer tasks and
// returns to steady state faster at the same seed and fault plan, at the
// price of state-transfer traffic; the persistency sweep shows how much of
// that survives torn media.
#include <cstdio>
#include <string>

#include "bench/harness.h"

using namespace splice;

namespace {

struct Mode {
  const char* name;
  net::RejoinMode rejoin;
  store::Persistency model;
  double survive_p;
};

constexpr Mode kModes[] = {
    {"cold (blank)", net::RejoinMode::kCold, store::Persistency::kNone, 1.0},
    {"warm none", net::RejoinMode::kWarm, store::Persistency::kNone, 1.0},
    {"warm lossy(.5)", net::RejoinMode::kWarm, store::Persistency::kLossy,
     0.5},
    {"warm local", net::RejoinMode::kWarm, store::Persistency::kLocal, 1.0},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  const lang::Program program = lang::programs::tree_sum(5, 3, 300, 40);

  auto config_for = [&](const Mode& mode, std::uint64_t seed) {
    core::SystemConfig cfg;
    cfg.processors = 16;
    cfg.topology = net::TopologyKind::kMesh2D;
    cfg.recovery.kind = core::RecoveryKind::kSplice;
    cfg.heartbeat_interval = 1000;
    cfg.store.model = mode.model;
    cfg.store.survive_p = mode.survive_p;
    cfg.seed = seed * 37 + 11;
    return cfg;
  };

  // ---- one mid-run fault, repaired: the four store modes head to head ----
  util::Table head({"rejoin", "correct", "reissued", "transferred",
                    "xfer units", "catch-up", "recovery latency",
                    "slowdown"});
  head.set_title("warm vs blank rejoin — one mid-run fault, repaired");
  for (const Mode& mode : kModes) {
    auto reps = bench::run_replicates(
        opt.replicates, program,
        [&](std::uint64_t s) {
          core::SystemConfig cfg = config_for(mode, s);
          return cfg;
        },
        [&](const core::SystemConfig& cfg, std::int64_t makespan,
            std::uint64_t seed) {
          const auto victim =
              static_cast<net::ProcId>((seed * 13 + 5) % cfg.processors);
          net::FaultPlan plan =
              net::FaultPlan::single(victim, sim::SimTime(makespan / 2));
          plan.with_rejoin(sim::SimTime(makespan / 8), mode.rejoin);
          return plan;
        });
    auto mean = [&](auto metric) { return bench::mean_of(reps, metric); };
    head.add_row(
        {mode.name,
         std::to_string(bench::correct_count(reps)) + "/" +
             std::to_string(static_cast<int>(reps.size())),
         util::Table::num(mean([](const bench::Replicate& r) {
                            return static_cast<double>(
                                r.result.counters.tasks_respawned);
                          }),
                          1),
         util::Table::num(
             mean([](const bench::Replicate& r) {
               return static_cast<double>(
                   r.result.counters.state_packets_transferred);
             }),
             1),
         util::Table::num(
             mean([](const bench::Replicate& r) {
               return static_cast<double>(
                   r.result.counters.state_units_transferred);
             }),
             0),
         util::Table::num(mean([](const bench::Replicate& r) {
                            return static_cast<double>(
                                r.result.counters.catch_up_ticks);
                          }),
                          0),
         util::Table::num(mean([](const bench::Replicate& r) {
                            return static_cast<double>(
                                r.result.makespan_ticks - r.clean_makespan);
                          }),
                          0),
         util::Table::num(mean([](const bench::Replicate& r) {
                            return static_cast<double>(r.result.makespan_ticks) /
                                   static_cast<double>(r.clean_makespan);
                          }),
                          2)});
  }
  bench::emit(head, opt);

  // ---- Poisson fault rates with repair: blank vs warm(local) across load --
  util::Table rates({"mean interval", "rejoin", "kills", "revived", "correct",
                     "reissued", "transferred", "slowdown"});
  rates.set_title("recurring faults + repair — fault-rate sweep");
  const std::vector<double> means =
      opt.quick ? std::vector<double>{9000} : std::vector<double>{6000, 12000};
  for (double mean_interval : means) {
    for (const Mode& mode : {kModes[0], kModes[3]}) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) { return config_for(mode, s); },
          [&](const core::SystemConfig&, std::int64_t makespan,
              std::uint64_t seed) {
            net::RecurringFault arrivals;
            arrivals.start = sim::SimTime(makespan / 4);
            arrivals.stop = sim::SimTime(makespan * 2);
            arrivals.mean_interval = mean_interval;
            arrivals.max_faults = 6;
            net::FaultPlan plan = net::FaultPlan::poisson(arrivals);
            plan.with_rejoin(sim::SimTime(makespan / 8), mode.rejoin);
            plan.with_seed(seed * 7 + 3);
            return plan;
          });
      auto mean = [&](auto metric) { return bench::mean_of(reps, metric); };
      rates.add_row(
          {util::Table::num(mean_interval, 0), mode.name,
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.faults_injected);
                            }),
                            1),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.nodes_revived);
                            }),
                            1),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size())),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.counters.tasks_respawned);
                            }),
                            1),
           util::Table::num(
               mean([](const bench::Replicate& r) {
                 return static_cast<double>(
                     r.result.counters.state_packets_transferred);
               }),
               1),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                         r.result.makespan_ticks) /
                                     static_cast<double>(r.clean_makespan);
                            }),
                            2)});
    }
  }
  bench::emit(rates, opt);

  std::printf(
      "expected shape: warm rejoin reissues strictly fewer tasks than blank\n"
      "at the same seed and fault plan — deferred obligations travel as\n"
      "state chunks instead of respawns, and replayed checkpoints let the\n"
      "rejoiner await surviving orphan subtrees instead of recomputing\n"
      "them. Recovery latency shrinks accordingly; the cost is the\n"
      "transfer volume, which the persistency sweep (none/lossy/local)\n"
      "scales with how much of the local log survives the crash.\n");
  return 0;
}
