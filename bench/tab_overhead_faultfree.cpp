// E5 — §2's claim: functional checkpointing is asynchronous, concise, and
// nearly free in fault-free operation, unlike periodic global
// checkpointing which "virtually stops all computational operations".
//
// Rows: recovery machinery armed on a fault-free run.
// Columns: makespan overhead vs no-FT, extra messages, checkpoint storage.
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  const lang::Program program = lang::programs::tree_sum(5, 3, 250, 40);

  // Baseline: no fault tolerance at all.
  auto config_for = [&](core::RecoveryKind kind, std::uint64_t seed) {
    core::SystemConfig cfg;
    cfg.processors = 16;
    cfg.topology = net::TopologyKind::kMesh2D;
    cfg.recovery.kind = kind;
    cfg.recovery.checkpoint_interval = 1200;
    cfg.heartbeat_interval = 2000;
    cfg.seed = seed * 131 + 7;
    return cfg;
  };

  auto none = bench::run_replicates(
      opt.replicates, program,
      [&](std::uint64_t s) { return config_for(core::RecoveryKind::kNone, s); });
  const double base_makespan =
      bench::mean_of(none, [](const bench::Replicate& r) {
        return static_cast<double>(r.result.makespan_ticks);
      });
  const double base_msgs = bench::mean_of(none, [](const bench::Replicate& r) {
    return static_cast<double>(r.result.net.total_sent());
  });

  util::Table table({"scheme", "makespan", "overhead%", "messages", "msg+%",
                     "ckpt peak units", "freeze ticks", "snapshots"});
  table.set_title(
      "§2 — fault-free overhead of checkpointing schemes (16 procs, "
      "tree(5,3))");

  for (auto kind :
       {core::RecoveryKind::kNone, core::RecoveryKind::kRestart,
        core::RecoveryKind::kRollback, core::RecoveryKind::kSplice,
        core::RecoveryKind::kPeriodicGlobal}) {
    auto reps = bench::run_replicates(
        opt.replicates, program,
        [&](std::uint64_t s) { return config_for(kind, s); });
    const double makespan = bench::mean_of(reps, [](const bench::Replicate& r) {
      return static_cast<double>(r.result.makespan_ticks);
    });
    const double msgs = bench::mean_of(reps, [](const bench::Replicate& r) {
      return static_cast<double>(r.result.net.total_sent());
    });
    const double peak = bench::mean_of(reps, [](const bench::Replicate& r) {
      return static_cast<double>(r.result.counters.checkpoint_peak_units);
    });
    const double freeze = bench::mean_of(reps, [](const bench::Replicate& r) {
      return static_cast<double>(r.result.counters.freeze_ticks);
    });
    const double snaps = bench::mean_of(reps, [](const bench::Replicate& r) {
      return static_cast<double>(r.result.counters.snapshots_taken);
    });
    table.add_row(
        {std::string(core::to_string(kind)), util::Table::num(makespan, 0),
         util::Table::num(100.0 * (makespan - base_makespan) / base_makespan,
                          2),
         util::Table::num(msgs, 0),
         util::Table::num(100.0 * (msgs - base_msgs) / base_msgs, 2),
         util::Table::num(peak, 0), util::Table::num(freeze, 0),
         util::Table::num(snaps, 1)});
  }
  bench::emit(table, opt);
  std::printf(
      "expected shape (paper §2/§6): rollback and splice cost ~0%% extra\n"
      "time (checkpointing rides on spawns already paid for) while\n"
      "periodic-global pays freeze time proportional to state size.\n");
  return 0;
}
