// Shared experiment harness for the bench binaries.
//
// Every binary regenerates one table/figure of EXPERIMENTS.md: it sweeps a
// parameter, runs seeded replicates in parallel (simulations themselves are
// single-threaded and deterministic), and prints the aggregate rows with
// util::Table. `--quick` shrinks replicate counts for smoke runs; `--csv`
// switches output to CSV.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "lang/programs.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace splice::bench {

struct Options {
  int replicates = 10;
  bool quick = false;
  bool csv = false;

  static Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0 ||
          std::strcmp(argv[i], "--smoke") == 0) {
        opt.quick = true;
        opt.replicates = 3;
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        opt.csv = true;
      } else if (std::strcmp(argv[i], "--replicates") == 0 && i + 1 < argc) {
        opt.replicates = std::atoi(argv[++i]);
      }
    }
    return opt;
  }
};

struct Replicate {
  core::RunResult result;
  std::int64_t clean_makespan = 0;
};

/// Run `n` seeded replicates of (config(seed), program, plan(cfg, clean
/// makespan, seed)) across hardware threads. Seeds are 1..n, so results are
/// reproducible regardless of thread interleaving.
inline std::vector<Replicate> run_replicates(
    int n, const lang::Program& program,
    const std::function<core::SystemConfig(std::uint64_t)>& make_config,
    const std::function<net::FaultPlan(const core::SystemConfig&, std::int64_t,
                                       std::uint64_t)>& make_plan = nullptr) {
  std::vector<Replicate> out(static_cast<std::size_t>(n));
  util::parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
    const std::uint64_t seed = i + 1;
    core::SystemConfig cfg = make_config(seed);
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, program);
    net::FaultPlan plan;
    if (make_plan) plan = make_plan(cfg, makespan, seed);
    out[i] = Replicate{core::run_once(cfg, program, plan), makespan};
  });
  return out;
}

/// Mean of a per-replicate metric.
inline double mean_of(const std::vector<Replicate>& reps,
                      const std::function<double(const Replicate&)>& metric) {
  util::Samples s;
  for (const Replicate& r : reps) s.add(metric(r));
  return s.mean();
}

inline int completed_count(const std::vector<Replicate>& reps) {
  int n = 0;
  for (const Replicate& r : reps) n += r.result.completed ? 1 : 0;
  return n;
}

inline int correct_count(const std::vector<Replicate>& reps) {
  int n = 0;
  for (const Replicate& r : reps) {
    n += (r.result.completed && r.result.answer_correct) ? 1 : 0;
  }
  return n;
}

inline void emit(const util::Table& table, const Options& opt) {
  if (opt.csv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_ascii().c_str(), stdout);
  }
  std::fputs("\n", stdout);
}

}  // namespace splice::bench
