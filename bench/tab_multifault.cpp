// E8 — §5.2: multiple faults.
//
// Part 1: k simultaneous faults on disjoint branches — "separate recoveries
// take place at different parts of the program in parallel".
// Part 2: the same-branch double fault (parent + grandparent hosts die
// together): with ancestor_depth=2 orphans strand; the great-grandparent
// extension (depth 3) catches them.
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

namespace {

lang::Program chain_program() {
  using lang::programs::ScriptedNode;
  const std::vector<ScriptedNode> nodes = {
      {"root", {"mid"}, 50, 0},    {"mid", {"deep"}, 50, 1},
      {"deep", {"leafA", "leafB"}, 50, 2}, {"leafA", {}, 4000, 3},
      {"leafB", {}, 4000, 3},
  };
  return lang::programs::scripted_tree(nodes);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  // ---- Part 1: k faults on a wide tree --------------------------------
  const lang::Program wide = lang::programs::tree_sum(5, 3, 300, 40);
  util::Table part1({"faults", "scheme", "correct", "recovery latency",
                     "reissued", "salvaged"});
  part1.set_title("§5.2 — simultaneous faults on disjoint branches (16 procs)");
  for (std::uint32_t k : {1U, 2U, 4U, 6U}) {
    for (auto kind :
         {core::RecoveryKind::kRollback, core::RecoveryKind::kSplice}) {
      auto reps = bench::run_replicates(
          opt.replicates, wide,
          [&](std::uint64_t s) {
            core::SystemConfig cfg;
            cfg.processors = 16;
            cfg.topology = net::TopologyKind::kMesh2D;
            cfg.recovery.kind = kind;
            cfg.heartbeat_interval = 1500;
            cfg.seed = s * 97 + 31;
            return cfg;
          },
          [&](const core::SystemConfig& cfg, std::int64_t makespan,
              std::uint64_t seed) {
            net::FaultPlan plan;
            // k distinct victims, all at mid-run.
            for (std::uint32_t i = 0; i < k; ++i) {
              plan.timed.push_back(
                  {static_cast<net::ProcId>((seed + i * 3) % cfg.processors),
                   sim::SimTime(makespan / 2)});
            }
            // Deduplicate victims (same processor twice is one fault).
            return plan;
          });
      part1.add_row(
          {util::Table::num(static_cast<std::uint64_t>(k)),
           std::string(core::to_string(kind)),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size())),
           util::Table::num(bench::mean_of(reps,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.makespan_ticks -
                                                 r.clean_makespan);
                                           }),
                            0),
           util::Table::num(bench::mean_of(reps,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.counters
                                                     .tasks_respawned);
                                           }),
                            1),
           util::Table::num(
               bench::mean_of(reps,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.counters.orphan_results_salvaged);
                              }),
               1)});
    }
  }
  bench::emit(part1, opt);

  // ---- Part 2: same-branch double fault --------------------------------
  util::Table part2({"ancestor chain", "completed", "correct", "stranded",
                     "salvaged"});
  part2.set_title(
      "§5.2 — parent+grandparent die together (pinned chain, splice)");
  for (std::uint32_t depth : {2U, 3U, 4U}) {
    core::SystemConfig cfg;
    cfg.processors = 4;
    cfg.topology = net::TopologyKind::kComplete;
    cfg.scheduler.kind = core::SchedulerKind::kPinned;
    cfg.recovery.kind = core::RecoveryKind::kSplice;
    cfg.recovery.ancestor_depth = depth;
    cfg.heartbeat_interval = 700;
    net::FaultPlan plan;
    plan.timed.push_back({1, sim::SimTime(600)});  // mid's host
    plan.timed.push_back({2, sim::SimTime(600)});  // deep's host
    const core::RunResult r = core::run_once(cfg, chain_program(), plan);
    part2.add_row(
        {depth == 2 ? "parent+grandparent (paper)"
                    : depth == 3 ? "+great-grandparent (§5.2 ext.)"
                                 : "+great-great-grandparent",
         r.completed ? "yes" : "NO",
         r.completed && r.answer_correct ? "yes" : "NO",
         util::Table::num(r.counters.orphans_stranded),
         util::Table::num(r.counters.orphan_results_salvaged)});
  }
  bench::emit(part2, opt);
  std::printf(
      "expected shape: disjoint-branch faults recover in parallel (latency\n"
      "grows slowly with k); the same-branch double fault strands orphans\n"
      "at chain depth 2 and salvages them from depth 3 on.\n");
  return 0;
}
