// E4 — Figures 6 & 7: residue-free recovery across the task state machine.
//
// The paper argues (§4.3.2) that a failure of the middle task P is
// residue-free no matter which state a-g the three-task chain G -> P -> C
// occupies. We script exactly that chain, pin it so the victim processor is
// P's host, and trigger the crash at each observable state transition:
//
//   state b/c : P spawned / acked          -> trigger "spawn:P" / "ack:P"
//   state d/e : P running, C spawned/acked -> trigger "exec:P" / "spawn:C" / "ack:C"
//   state f   : C returned to P            -> trigger "complete:C"
//   state g   : P returned to G            -> trigger "complete:P"
//
// For every state the run must complete with the right answer and no
// aborted-but-used results — determinacy is the residue detector.
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

namespace {

lang::Program chain() {
  using lang::programs::ScriptedNode;
  const std::vector<ScriptedNode> nodes = {
      {"G", {"P"}, 800, 0},
      {"P", {"C"}, 800, 1},
      {"C", {}, 800, 2},
  };
  return lang::programs::scripted_tree(nodes);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  struct StateCase {
    const char* state;
    const char* trigger;
    std::int64_t delay;
  };
  const StateCase cases[] = {
      {"b: P packet sent, unacked", "spawn:P", 0},
      {"c: P acked (G->P pointer)", "ack:P", 0},
      {"d: P running, spawning C", "exec:P", 0},
      {"d': C packet sent", "spawn:C", 0},
      {"e: C placed (acked)", "ack:C", 0},
      {"f: C completed, returned", "complete:C", 40},
      {"g: P completed, returned", "complete:P", 40},
  };

  for (auto policy :
       {core::RecoveryKind::kRollback, core::RecoveryKind::kSplice}) {
    util::Table table({"state at P's failure", "completed", "correct",
                       "respawned", "salvaged", "makespan"});
    table.set_title(std::string("Figs. 6/7 — residue-free recovery per "
                                "state (policy: ") +
                    std::string(core::to_string(policy)) + ")");
    for (const StateCase& c : cases) {
      core::SystemConfig cfg;
      cfg.processors = 4;
      cfg.topology = net::TopologyKind::kComplete;
      cfg.scheduler.kind = core::SchedulerKind::kPinned;
      cfg.recovery.kind = policy;
      cfg.heartbeat_interval = 500;
      core::Simulation sim(cfg, chain());
      net::FaultPlan plan;
      plan.triggered.push_back(
          {/*target P's host=*/1, c.trigger, sim::SimTime(c.delay)});
      sim.set_fault_plan(plan);
      const core::RunResult r = sim.run();
      table.add_row({c.state, r.completed ? "yes" : "NO",
                     r.completed && r.answer_correct ? "yes" : "NO",
                     util::Table::num(r.counters.tasks_respawned),
                     util::Table::num(r.counters.orphan_results_salvaged),
                     util::Table::num(r.makespan_ticks)});
    }
    bench::emit(table, opt);
  }
  std::printf(
      "reading: state b recovers by spawn-timeout reissue; states c-e by\n"
      "checkpoint reissue; state f loses C's stored result with P and\n"
      "recomputes (rollback) or salvages a late duplicate (splice); state g\n"
      "needs no recovery at all — P's result already reached G.\n");
  return 0;
}
