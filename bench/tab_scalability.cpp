// E11 — scalability: processors 2..256 across topologies.
// E16 — simulator throughput: the recorded perf trajectory.
// E17 — duplicate reclaim: omniscient sweep-GC vs. the cancel protocol.
// E19 — goodput + reclaim latency under link-level chaos (partition-and-heal
//       and gray-failure churn) at 128/256 processors.
// E20 — flight-recorder cost + the recovery story as a time series: E19's
//       partition-heal at 128 processors with the recorder on, reported as
//       per-window goodput and latency quantiles, plus the recorder's
//       throughput overhead (off vs. on) on the E16 workload.
//
// The paper positions applicative systems as "promising candidates for
// achieving high performance computing through aggregation of processors"
// (§1); recovery must not destroy that scaling. Table 1: machine size x
// topology — fault-free makespan/speedup, recovery latency and
// error-broadcast traffic for a mid-run fault. Table 2: the 64- to
// 256-processor machines under recurring (Poisson) fault *rates* with
// repair, the regime large fleets actually live in. Table 3 (E16): wall-
// clock throughput of the simulator itself — events/sec, heap allocations
// per event (global counting allocator in this binary), and peak RSS — at
// 32/64/128/256 processors. `--perf-json PATH` dumps table 3 as JSON;
// scripts/bench_json.py wraps it into BENCH_PR9.json and enforces the
// regression guard.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "bench/harness.h"
#include "sim/inplace_function.h"

// ---------------------------------------------------------------------------
// Counting allocator: every heap allocation in this binary bumps a counter,
// so the throughput table can report allocations *per simulated event* — the
// metric the allocation-free messaging work is held to.
// ---------------------------------------------------------------------------
namespace {
std::atomic<unsigned long long> g_allocs{0};
}  // namespace

// noinline: when GCC >= 12 inlines these TU-local replacements into STL
// container code it pairs the malloc in the inlined new with the free in the
// inlined delete and misreports -Wmismatched-new-delete; keeping the bodies
// opaque preserves the standard new/delete pairing the analyzer checks.
__attribute__((noinline)) void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new(std::size_t n,
                                             std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::align_val_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p, std::size_t,
                                               std::align_val_t) noexcept {
  std::free(p);
}

using namespace splice;

namespace {

/// Machine-speed calibration: a fixed, pure-CPU integer loop whose rate
/// scales with single-core speed. The perf JSON stores events/sec both raw
/// and divided by this, so the regression guard compares machines fairly.
double calibration_mops() {
  volatile std::uint64_t sink = 0;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const auto t0 = std::chrono::steady_clock::now();
  constexpr std::uint64_t kIters = 60'000'000;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    sink = sink + x;
  }
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(kIters) /
         std::chrono::duration<double>(t1 - t0).count() / 1e6;
}

struct ThroughputRow {
  std::uint32_t procs = 0;
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t events = 0;
  long peak_rss_kb = 0;
  std::uint64_t checkpoint_peak = 0;
  std::uint64_t eventfn_heap_fallbacks = 0;
};

[[nodiscard]] long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  const char* perf_json = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-json") == 0 && i + 1 < argc) {
      perf_json = argv[i + 1];
    }
  }

  const lang::Program program = lang::programs::tree_sum(6, 2, 400, 30);

  auto config_for = [&](std::uint32_t procs, net::TopologyKind topo,
                        std::uint64_t seed) {
    core::SystemConfig cfg;
    cfg.processors = procs;
    cfg.topology = topo;
    cfg.scheduler.kind = core::SchedulerKind::kLocalFirst;
    cfg.recovery.kind = core::RecoveryKind::kSplice;
    cfg.heartbeat_interval = 2000;
    cfg.seed = seed * 41 + 29;
    return cfg;
  };

  // Serial reference: one processor.
  auto serial = bench::run_replicates(
      2, program,
      [&](std::uint64_t s) {
        return config_for(1, net::TopologyKind::kComplete, s);
      });
  const double serial_makespan =
      bench::mean_of(serial, [](const bench::Replicate& r) {
        return static_cast<double>(r.result.makespan_ticks);
      });

  util::Table table({"procs", "topology", "makespan", "speedup",
                     "faulted correct", "recovery latency", "error msgs"});
  table.set_title("scalability — machine size x topology under one fault");

  for (std::uint32_t procs : {2U, 4U, 8U, 16U, 32U, 64U, 128U, 256U}) {
    for (auto topo : {net::TopologyKind::kMesh2D, net::TopologyKind::kTorus2D,
                      net::TopologyKind::kHypercube}) {
      if (topo == net::TopologyKind::kHypercube &&
          (procs & (procs - 1)) != 0) {
        continue;
      }
      auto clean = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) { return config_for(procs, topo, s); });
      auto faulted = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) { return config_for(procs, topo, s); },
          [&](const core::SystemConfig& cfg, std::int64_t makespan,
              std::uint64_t seed) {
            const auto victim =
                static_cast<net::ProcId>((seed * 17 + 3) % cfg.processors);
            return net::FaultPlan::single(victim, sim::SimTime(makespan / 2));
          });
      const double makespan =
          bench::mean_of(clean, [](const bench::Replicate& r) {
            return static_cast<double>(r.result.makespan_ticks);
          });
      table.add_row(
          {util::Table::num(static_cast<std::uint64_t>(procs)),
           std::string(net::to_string(topo)), util::Table::num(makespan, 0),
           util::Table::num(serial_makespan / makespan, 2),
           std::to_string(bench::correct_count(faulted)) + "/" +
               std::to_string(static_cast<int>(faulted.size())),
           util::Table::num(bench::mean_of(faulted,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.makespan_ticks -
                                                 r.clean_makespan);
                                           }),
                            0),
           util::Table::num(
               bench::mean_of(faulted,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.net.sent[static_cast<std::size_t>(
                                        net::MsgKind::kErrorDetection)]);
                              }),
               0)});
    }
  }
  bench::emit(table, opt);

  // ---- 64..256 processors under Poisson fault rates with repair -----------
  // Driven by the recurring fault plans: background failures arrive at a
  // mean interval over the whole machine and every victim is repaired, so
  // the machine hovers below full strength instead of draining. The cancel
  // protocol runs here (sweeps off): recovery under churn is what leaves
  // duplicate tasks behind, and their reclaim is now protocol traffic.
  util::Table churn({"procs", "faults/run", "kills", "revived", "correct",
                     "reissued", "cancelled", "cancel msgs", "error msgs",
                     "slowdown", "alive at end"});
  churn.set_title("large machines under recurring faults + repair");
  // The Poisson mean interval is derived from the fault-free makespan so a
  // row targets a fault *rate* (expected faults per run) independent of how
  // fast the machine happens to be.
  const std::vector<double> rates =
      opt.quick ? std::vector<double>{4} : std::vector<double>{4, 8};
  for (std::uint32_t procs : {64U, 128U, 256U}) {
    for (double expected_faults : rates) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) {
            return config_for(procs, net::TopologyKind::kTorus2D, s);
          },
          [&](const core::SystemConfig&, std::int64_t makespan,
              std::uint64_t seed) {
            net::RecurringFault arrivals;
            arrivals.start = sim::SimTime(makespan / 5);
            arrivals.stop = sim::SimTime(makespan * 2);
            arrivals.mean_interval =
                static_cast<double>(makespan) / expected_faults;
            arrivals.max_faults = 24;
            net::FaultPlan plan = net::FaultPlan::poisson(arrivals);
            plan.with_rejoin(sim::SimTime(makespan / 6));
            plan.with_seed(seed * 29 + 13);
            return plan;
          });
      auto mean = [&](auto metric) { return bench::mean_of(reps, metric); };
      churn.add_row(
          {util::Table::num(static_cast<std::uint64_t>(procs)),
           util::Table::num(expected_faults, 0),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.faults_injected);
                            }),
                            1),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.nodes_revived);
                            }),
                            1),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size())),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.counters.tasks_respawned);
                            }),
                            1),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.counters.tasks_cancelled);
                            }),
                            1),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.counters.cancels_sent);
                            }),
                            1),
           util::Table::num(
               mean([](const bench::Replicate& r) {
                 return static_cast<double>(
                     r.result.net.sent[static_cast<std::size_t>(
                         net::MsgKind::kErrorDetection)]);
               }),
               0),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                         r.result.makespan_ticks) /
                                     static_cast<double>(r.clean_makespan);
                            }),
                            2),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.processors_alive_at_end);
                            }),
                            1)});
    }
  }
  bench::emit(churn, opt);

  // ---- E17: duplicate reclaim — sweep-GC vs. cancel protocol --------------
  // The duplicate generator: warm rejoin under recurring faults with an
  // immediately-expiring pre-link grace, so re-hosted parents respawn
  // surviving orphan subtrees as twins while the originals keep computing.
  // Mode "sweep" reclaims with the legacy omniscient sweep (cancellation
  // off); mode "cancel" with protocol messages only (sweeps off). Reclaim
  // latency is mean ticks from a reclaimed duplicate's creation to its
  // abort — the same proxy in both modes, so rows compare like for like.
  struct E17Row {
    std::uint32_t procs = 0;
    const char* mode = nullptr;
    double reclaimed = 0;
    double latency = 0;
    double cancel_msgs = 0;
    double total_msgs = 0;
    double slowdown = 0;
    int correct = 0;
    int runs = 0;
  };
  std::vector<E17Row> e17_rows;
  // Deeper trees than the scalability workload: duplicate races need
  // enough concurrent subtrees per processor for a fault to actually
  // collide, so the tree grows with the machine (~8+ tasks/processor).
  const auto reclaim_program_for = [](std::uint32_t procs) {
    return lang::programs::tree_sum(procs >= 256 ? 11 : procs >= 128 ? 10 : 9,
                                    2, 400, 30);
  };
  util::Table reclaim({"procs", "mode", "correct", "reclaimed",
                       "reclaim latency", "cancel msgs", "total msgs",
                       "slowdown"});
  reclaim.set_title(
      "E17 duplicate reclaim — omniscient sweep vs. cancel protocol "
      "(warm rejoin churn, pre-link race)");
  const std::vector<std::uint32_t> e17_sizes =
      opt.quick ? std::vector<std::uint32_t>{64U}
                : std::vector<std::uint32_t>{64U, 128U, 256U};
  for (std::uint32_t procs : e17_sizes) {
    const lang::Program reclaim_program = reclaim_program_for(procs);
    for (const bool cancel_mode : {false, true}) {
      auto reps = bench::run_replicates(
          opt.replicates, reclaim_program,
          [&](std::uint64_t s) {
            core::SystemConfig cfg =
                config_for(procs, net::TopologyKind::kTorus2D, s);
            cfg.store.model = store::Persistency::kLocal;
            cfg.store.warm_grace = 40000;
            cfg.store.prelink_grace = 1;  // guaranteed respawn race
            if (cancel_mode) {
              cfg.reclaim.cancellation = true;
              cfg.reclaim.gc_interval = 0;  // protocol only
            } else {
              cfg.reclaim.cancellation = false;
              cfg.reclaim.gc_interval = 500;  // the omniscient baseline
            }
            return cfg;
          },
          [&](const core::SystemConfig&, std::int64_t makespan,
              std::uint64_t seed) {
            net::RecurringFault arrivals;
            arrivals.start = sim::SimTime(makespan / 6);
            arrivals.stop = sim::SimTime(makespan * 2);
            arrivals.mean_interval = static_cast<double>(makespan) / 12;
            arrivals.max_faults = 24;
            net::FaultPlan plan = net::FaultPlan::poisson(arrivals);
            plan.with_rejoin(sim::SimTime(makespan / 16),
                             net::RejoinMode::kWarm);
            plan.with_seed(seed * 29 + 13);
            return plan;
          });
      auto mean = [&](auto metric) { return bench::mean_of(reps, metric); };
      E17Row row;
      row.procs = procs;
      row.mode = cancel_mode ? "cancel" : "sweep";
      row.reclaimed = mean([](const bench::Replicate& r) {
        return static_cast<double>(r.result.counters.tasks_cancelled +
                                   r.result.counters.orphans_gced);
      });
      row.latency = mean([](const bench::Replicate& r) {
        const auto n = r.result.counters.tasks_cancelled +
                       r.result.counters.orphans_gced;
        return n == 0 ? 0.0
                      : static_cast<double>(
                            r.result.counters.reclaim_latency_ticks) /
                            static_cast<double>(n);
      });
      row.cancel_msgs = mean([](const bench::Replicate& r) {
        return static_cast<double>(r.result.net.sent[static_cast<std::size_t>(
            net::MsgKind::kCancel)]);
      });
      row.total_msgs = mean([](const bench::Replicate& r) {
        return static_cast<double>(r.result.net.total_sent());
      });
      row.slowdown = mean([](const bench::Replicate& r) {
        return static_cast<double>(r.result.makespan_ticks) /
               static_cast<double>(r.clean_makespan);
      });
      row.correct = bench::correct_count(reps);
      row.runs = static_cast<int>(reps.size());
      e17_rows.push_back(row);
      reclaim.add_row(
          {util::Table::num(static_cast<std::uint64_t>(procs)),
           std::string(row.mode),
           std::to_string(row.correct) + "/" + std::to_string(row.runs),
           util::Table::num(row.reclaimed, 1),
           util::Table::num(row.latency, 0),
           util::Table::num(row.cancel_msgs, 1),
           util::Table::num(row.total_msgs, 0),
           util::Table::num(row.slowdown, 2)});
    }
  }
  bench::emit(reclaim, opt);

  // ---- E19: goodput + reclaim latency under link-level chaos --------------
  // No processor dies in either scenario; the wire itself misbehaves.
  // "partition-heal" cuts the far corner's 2-hop neighbourhood off for a
  // window sized off the fault-free makespan — both sides declare each
  // other dead, reissue each other's subtrees, then reconcile on the heal,
  // so the cancel protocol has real duplicates to reclaim. "gray-churn"
  // starves one node's payload traffic (heartbeats still flow: detection
  // must stay silent) on top of background lossy links. Goodput is
  // completed tasks per kilotick of makespan — the rate useful work keeps
  // landing while the links misbehave; reclaim latency is the E17 proxy.
  struct E19Row {
    std::uint32_t procs = 0;
    const char* scenario = nullptr;
    int correct = 0;
    int runs = 0;
    double goodput = 0;    // completed tasks per 1000 ticks
    double slowdown = 0;   // makespan vs. the fault-free reference
    double reclaimed = 0;  // duplicates reclaimed (cancel protocol)
    double latency = 0;    // mean ticks creation -> reclaim
    double msgs_lost = 0;  // partition_cut + link_dropped + gray_dropped
    double cancel_msgs = 0;
  };
  std::vector<E19Row> e19_rows;
  util::Table chaos({"procs", "scenario", "correct", "goodput/ktick",
                     "slowdown", "reclaimed", "reclaim latency", "msgs lost",
                     "cancel msgs"});
  chaos.set_title(
      "E19 goodput under link-level chaos — partition-and-heal vs. "
      "gray-failure churn (no crashes)");
  const std::vector<std::uint32_t> e19_sizes =
      opt.quick ? std::vector<std::uint32_t>{128U}
                : std::vector<std::uint32_t>{128U, 256U};
  for (std::uint32_t procs : e19_sizes) {
    const lang::Program chaos_program = reclaim_program_for(procs);
    for (const bool gray_mode : {false, true}) {
      auto reps = bench::run_replicates(
          opt.replicates, chaos_program,
          [&](std::uint64_t s) {
            core::SystemConfig cfg =
                config_for(procs, net::TopologyKind::kTorus2D, s);
            cfg.reclaim.cancellation = true;
            cfg.reclaim.gc_interval = 0;  // protocol reclaim only
            return cfg;
          },
          [&](const core::SystemConfig& cfg, std::int64_t makespan,
              std::uint64_t seed) {
            if (!gray_mode) {
              return net::FaultPlan::partition(
                         net::RegionSpec::neighborhood(
                             static_cast<net::ProcId>(cfg.processors - 1), 2),
                         sim::SimTime(makespan / 4),
                         sim::SimTime(makespan / 3))
                  .with_seed(seed * 31 + 7);
            }
            net::GraySpec g;
            g.node = static_cast<net::ProcId>(cfg.processors / 2);
            g.start = sim::SimTime(makespan / 6);
            net::LinkQuality q;  // background lossy wire under the gray node
            q.drop_p = 0.02;
            q.reorder_p = 0.04;
            q.jitter = 10;
            net::FaultPlan plan = net::FaultPlan::gray(g);
            plan.merge(net::FaultPlan::link(q));
            plan.with_seed(seed * 31 + 7);
            return plan;
          });
      auto mean = [&](auto metric) { return bench::mean_of(reps, metric); };
      E19Row row;
      row.procs = procs;
      row.scenario = gray_mode ? "gray-churn" : "partition-heal";
      row.correct = bench::correct_count(reps);
      row.runs = static_cast<int>(reps.size());
      row.goodput = mean([](const bench::Replicate& r) {
        return r.result.makespan_ticks == 0
                   ? 0.0
                   : static_cast<double>(r.result.counters.tasks_completed) *
                         1000.0 /
                         static_cast<double>(r.result.makespan_ticks);
      });
      row.slowdown = mean([](const bench::Replicate& r) {
        return static_cast<double>(r.result.makespan_ticks) /
               static_cast<double>(r.clean_makespan);
      });
      row.reclaimed = mean([](const bench::Replicate& r) {
        return static_cast<double>(r.result.counters.tasks_cancelled +
                                   r.result.counters.orphans_gced);
      });
      row.latency = mean([](const bench::Replicate& r) {
        const auto n = r.result.counters.tasks_cancelled +
                       r.result.counters.orphans_gced;
        return n == 0 ? 0.0
                      : static_cast<double>(
                            r.result.counters.reclaim_latency_ticks) /
                            static_cast<double>(n);
      });
      row.msgs_lost = mean([](const bench::Replicate& r) {
        return static_cast<double>(r.result.net.partition_cut +
                                   r.result.net.link_dropped +
                                   r.result.net.gray_dropped);
      });
      row.cancel_msgs = mean([](const bench::Replicate& r) {
        return static_cast<double>(r.result.net.sent[static_cast<std::size_t>(
            net::MsgKind::kCancel)]);
      });
      e19_rows.push_back(row);
      chaos.add_row(
          {util::Table::num(static_cast<std::uint64_t>(procs)),
           std::string(row.scenario),
           std::to_string(row.correct) + "/" + std::to_string(row.runs),
           util::Table::num(row.goodput, 2),
           util::Table::num(row.slowdown, 2),
           util::Table::num(row.reclaimed, 1),
           util::Table::num(row.latency, 0),
           util::Table::num(row.msgs_lost, 0),
           util::Table::num(row.cancel_msgs, 1)});
    }
  }
  bench::emit(chaos, opt);

  // ---- E20: the recovery story as a time series ---------------------------
  // One seeded partition-heal run at 128 processors with the flight
  // recorder on: the per-window series shows goodput dipping when the cut
  // opens, reissue work landing, and the post-heal cancel wave — the HEAL
  // framing (goodput *during* recovery) instead of a recovery-latency
  // scalar. Quantiles are spawn→complete latency within each window.
  const std::uint32_t e20_procs = 128;
  const lang::Program e20_program = reclaim_program_for(e20_procs);
  core::SystemConfig e20_cfg =
      config_for(e20_procs, net::TopologyKind::kTorus2D, 7);
  e20_cfg.reclaim.cancellation = true;
  e20_cfg.reclaim.gc_interval = 0;
  e20_cfg.obs.recorder = true;
  const std::int64_t e20_makespan =
      core::Simulation::fault_free_makespan(e20_cfg, e20_program);
  net::FaultPlan e20_plan = net::FaultPlan::partition(
      net::RegionSpec::neighborhood(static_cast<net::ProcId>(e20_procs - 1),
                                    2),
      sim::SimTime(e20_makespan / 4), sim::SimTime(e20_makespan / 3));
  e20_plan.with_seed(7 * 31 + 7);
  core::Simulation e20_sim(e20_cfg, e20_program);
  e20_sim.set_fault_plan(e20_plan);
  const core::RunResult e20_result = e20_sim.run();
  if (!e20_result.completed || !e20_result.answer_correct) {
    std::fprintf(stderr, "E20 partition-heal run failed\n");
    return 1;
  }
  const std::vector<obs::TimePoint> e20_series =
      e20_sim.recorder().metrics().series();
  const obs::LogHistogram& e20_lat = e20_sim.recorder().metrics().latency();

  util::Table e20({"window start", "spawned", "completed", "queue depth",
                   "in flight", "ckpt resident", "p50", "p99", "p999"});
  e20.set_title(
      "E20 partition-heal at 128 procs, recorder on — per-window goodput "
      "and spawn->complete latency quantiles (cut at makespan/4, heal "
      "+makespan/3)");
  // The table strides to ~16 rows; the perf JSON carries every window.
  const std::size_t stride = std::max<std::size_t>(1, e20_series.size() / 16);
  for (std::size_t i = 0; i < e20_series.size(); i += stride) {
    const obs::TimePoint& w = e20_series[i];
    e20.add_row({util::Table::num(static_cast<std::uint64_t>(w.window_start)),
                 util::Table::num(w.spawned), util::Table::num(w.completed),
                 util::Table::num(w.queue_depth),
                 util::Table::num(w.in_flight),
                 util::Table::num(w.checkpoint_residency),
                 util::Table::num(w.latency_p50),
                 util::Table::num(w.latency_p99),
                 util::Table::num(w.latency_p999)});
  }
  bench::emit(e20, opt);
  std::printf(
      "E20 whole-run spawn->complete latency: p50=%llu p99=%llu p999=%llu "
      "ticks over %llu completions\n\n",
      static_cast<unsigned long long>(e20_lat.percentile(0.5)),
      static_cast<unsigned long long>(e20_lat.percentile(0.99)),
      static_cast<unsigned long long>(e20_lat.percentile(0.999)),
      static_cast<unsigned long long>(e20_lat.count()));

  // ---- E20b: recorder overhead on the E16 workload ------------------------
  // Same 128-processor throughput measurement twice: recorder off (the
  // default every other bench runs under — the 20% trajectory guard keeps
  // this honest) and recorder on (journal + metrics, details off). The
  // delta is the observability tax.
  double recorder_eps[2] = {0, 0};  // [0]=off, [1]=on
  {
    const lang::Program ov_program = lang::programs::tree_sum(12, 2, 60, 10);
    const int ov_reps = opt.quick ? 2 : 3;
    for (const bool rec_on : {false, true}) {
      core::SystemConfig cfg =
          config_for(128, net::TopologyKind::kTorus2D, 71);
      cfg.obs.recorder = rec_on;
      const std::int64_t makespan =
          core::Simulation::fault_free_makespan(cfg, ov_program);
      const auto plan = net::FaultPlan::single(
          static_cast<net::ProcId>(128 / 3), sim::SimTime(makespan / 2));
      (void)core::run_once(cfg, ov_program, plan);  // warm-up
      double best = 0;
      for (int batch = 0; batch < 2; ++batch) {
        std::uint64_t events = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < ov_reps; ++i) {
          cfg.seed = 71 + static_cast<std::uint64_t>(i);
          const core::RunResult r = core::run_once(cfg, ov_program, plan);
          events += r.sim_events;
          if (!r.completed || !r.answer_correct) {
            std::fprintf(stderr, "E20 overhead run failed\n");
            return 1;
          }
        }
        const auto t1 = std::chrono::steady_clock::now();
        best = std::max(best,
                        static_cast<double>(events) /
                            std::chrono::duration<double>(t1 - t0).count());
      }
      recorder_eps[rec_on ? 1 : 0] = best;
    }
    std::printf(
        "E20 recorder overhead at 128 procs: %.0f events/sec off, %.0f "
        "events/sec on (%.1f%% tax)\n\n",
        recorder_eps[0], recorder_eps[1],
        recorder_eps[0] > 0
            ? (1.0 - recorder_eps[1] / recorder_eps[0]) * 100.0
            : 0.0);
  }

  // ---- E16: simulator throughput (the recorded perf trajectory) -----------
  // Sequential, wall-clock timed, with one mid-run fault so recovery code is
  // on the measured path. The workload (8191-task balanced tree) is sized to
  // keep even the 256-processor machine busy.
  const lang::Program perf_program = lang::programs::tree_sum(12, 2, 60, 10);
  const int perf_reps = opt.quick ? 3 : 5;
  util::Table perf({"procs", "events/sec", "allocs/event", "events/run",
                    "peak RSS (KB)", "ckpt peak", "EventFn spills"});
  perf.set_title(
      "simulator throughput — tree_sum(12,2) + one fault, sequential runs");
  std::vector<ThroughputRow> rows;
  for (std::uint32_t procs : {32U, 64U, 128U, 256U}) {
    core::SystemConfig cfg =
        config_for(procs, net::TopologyKind::kTorus2D, 71);
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, perf_program);
    const auto plan = net::FaultPlan::single(
        static_cast<net::ProcId>(procs / 3), sim::SimTime(makespan / 2));
    (void)core::run_once(cfg, perf_program, plan);  // warm-up
    ThroughputRow row;
    row.procs = procs;
    const std::uint64_t spills0 = sim::EventFn::heap_fallbacks();
    const unsigned long long allocs0 = g_allocs.load();
    // Best of three timed batches: a short batch is one scheduler hiccup
    // away from a 25% misreading, and the trajectory guard needs stability.
    double best_events_per_sec = 0;
    for (int batch = 0; batch < 3; ++batch) {
      std::uint64_t batch_events = 0;
      row.events = 0;
      row.checkpoint_peak = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < perf_reps; ++i) {
        cfg.seed = 71 + static_cast<std::uint64_t>(i);
        const core::RunResult r = core::run_once(cfg, perf_program, plan);
        batch_events += r.sim_events;
        row.events += r.sim_events;
        row.checkpoint_peak += r.counters.checkpoint_peak_entries;
        if (!r.completed || !r.answer_correct) {
          std::fprintf(stderr, "throughput run failed at %u procs\n", procs);
          return 1;
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      best_events_per_sec =
          std::max(best_events_per_sec,
                   static_cast<double>(batch_events) / secs);
    }
    const unsigned long long allocs = g_allocs.load() - allocs0;
    row.events_per_sec = best_events_per_sec;
    row.allocs_per_event = static_cast<double>(allocs) /
                           static_cast<double>(3 * row.events);
    row.events /= static_cast<std::uint64_t>(perf_reps);
    row.checkpoint_peak /= static_cast<std::uint64_t>(perf_reps);
    row.peak_rss_kb = peak_rss_kb();
    row.eventfn_heap_fallbacks = sim::EventFn::heap_fallbacks() - spills0;
    rows.push_back(row);
    perf.add_row({util::Table::num(static_cast<std::uint64_t>(procs)),
                  util::Table::num(row.events_per_sec, 0),
                  util::Table::num(row.allocs_per_event, 2),
                  util::Table::num(row.events),
                  util::Table::num(static_cast<std::uint64_t>(row.peak_rss_kb)),
                  util::Table::num(row.checkpoint_peak),
                  util::Table::num(row.eventfn_heap_fallbacks)});
  }
  bench::emit(perf, opt);

  // ---- E21: sharded-engine scaling + scheduler x workload matrix ----------
  // The PDES engine runs the same seeded computation at every shard count,
  // so this sweep is pure wall-clock: events/sec at 1/2/4/8 worker threads
  // (the scaling curve), and the E16 workload matrix re-run across
  // schedulers at 1 and 8 shards (the "does any scheduler break the
  // parallel path" gate — every cell must stay answer-correct, and the
  // events/sec/thread aggregate feeds the bench_json.py regression guard).
  // On a single-core host the curve is honest overhead measurement: shards
  // > 1 pay barrier + context-switch cost with no parallel speedup.
  struct E21Row {
    const char* workload = nullptr;
    const char* scheduler = nullptr;
    std::uint32_t shards = 0;
    double events_per_sec = 0;
    std::uint64_t events = 0;
    int correct = 0;
    int runs = 0;
  };
  std::vector<E21Row> e21_rows;
  {
    const struct {
      const char* name;
      lang::Program program;
    } workloads[] = {
        {"tree_sum(10,2)", lang::programs::tree_sum(10, 2, 60, 10)},
        {"nqueens(6)", lang::programs::nqueens(6)},
    };
    const struct {
      const char* name;
      core::SchedulerKind kind;
    } scheds[] = {
        {"random", core::SchedulerKind::kRandom},
        {"local-first", core::SchedulerKind::kLocalFirst},
        {"gradient", core::SchedulerKind::kGradient},
    };
    const int e21_reps = opt.quick ? 1 : 2;
    auto run_cell = [&](const lang::Program& wl_program, const char* wl_name,
                        const char* sc_name, core::SchedulerKind kind,
                        std::uint32_t shards) {
      core::SystemConfig cfg =
          config_for(64, net::TopologyKind::kTorus2D, 71);
      cfg.scheduler.kind = kind;
      cfg.parallel.shards = shards;
      const std::int64_t makespan =
          core::Simulation::fault_free_makespan(cfg, wl_program);
      const auto plan = net::FaultPlan::single(
          static_cast<net::ProcId>(64 / 3), sim::SimTime(makespan / 2));
      E21Row row;
      row.workload = wl_name;
      row.scheduler = sc_name;
      row.shards = shards;
      double best = 0;
      for (int batch = 0; batch < 2; ++batch) {
        std::uint64_t batch_events = 0;
        row.events = 0;
        row.correct = 0;
        row.runs = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < e21_reps; ++i) {
          cfg.seed = 71 + static_cast<std::uint64_t>(i);
          const core::RunResult r = core::run_once(cfg, wl_program, plan);
          batch_events += r.sim_events;
          row.events += r.sim_events;
          ++row.runs;
          if (r.completed && r.answer_correct) ++row.correct;
        }
        const auto t1 = std::chrono::steady_clock::now();
        best = std::max(best,
                        static_cast<double>(batch_events) /
                            std::chrono::duration<double>(t1 - t0).count());
      }
      row.events_per_sec = best;
      row.events /= static_cast<std::uint64_t>(e21_reps);
      e21_rows.push_back(row);
    };
    // Scaling curve: one workload/scheduler across the full thread sweep.
    for (std::uint32_t shards : {1U, 2U, 4U, 8U}) {
      run_cell(workloads[0].program, workloads[0].name, scheds[1].name,
               scheds[1].kind, shards);
    }
    // Matrix: every workload x scheduler at the endpoints (1 and 8 shards),
    // skipping the curve's own cells.
    for (const auto& wl : workloads) {
      for (const auto& sc : scheds) {
        for (std::uint32_t shards : {1U, 8U}) {
          if (wl.name == workloads[0].name && sc.name == scheds[1].name) {
            continue;
          }
          run_cell(wl.program, wl.name, sc.name, sc.kind, shards);
        }
      }
    }
    util::Table e21({"workload", "scheduler", "shards", "events/sec",
                     "events/sec/thread", "correct"});
    e21.set_title(
        "E21 sharded engine — scaling curve + scheduler x workload matrix "
        "(engine(K) vs engine(1), same seeded computation)");
    for (const E21Row& r : e21_rows) {
      e21.add_row({std::string(r.workload), std::string(r.scheduler),
                   util::Table::num(static_cast<std::uint64_t>(r.shards)),
                   util::Table::num(r.events_per_sec, 0),
                   util::Table::num(r.events_per_sec / r.shards, 0),
                   std::to_string(r.correct) + "/" +
                       std::to_string(r.runs)});
    }
    bench::emit(e21, opt);
  }

  if (perf_json != nullptr) {
    const double calib = calibration_mops();
    std::FILE* out = std::fopen(perf_json, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", perf_json);
      return 1;
    }
    std::fprintf(out, "{\n  \"schema_version\": 1,\n");
    std::fprintf(out,
                 "  \"workload\": \"tree_sum(12,2,60,10) torus2d splice, one "
                 "mid-run fault, %d sequential runs\",\n",
                 perf_reps);
    std::fprintf(out, "  \"calibration_mops\": %.1f,\n", calib);
    std::fprintf(out, "  \"throughput\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ThroughputRow& r = rows[i];
      std::fprintf(out,
                   "    {\"procs\": %u, \"events_per_sec\": %.0f, "
                   "\"normalized_events_per_mop\": %.1f, "
                   "\"allocs_per_event\": %.2f, \"events_per_run\": %llu, "
                   "\"peak_rss_kb\": %ld, \"checkpoint_peak_records\": %llu, "
                   "\"eventfn_heap_fallbacks\": %llu}%s\n",
                   r.procs, r.events_per_sec,
                   r.events_per_sec / calib,
                   r.allocs_per_event,
                   static_cast<unsigned long long>(r.events), r.peak_rss_kb,
                   static_cast<unsigned long long>(r.checkpoint_peak),
                   static_cast<unsigned long long>(r.eventfn_heap_fallbacks),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"e17_reclaim\": [\n");
    for (std::size_t i = 0; i < e17_rows.size(); ++i) {
      const E17Row& r = e17_rows[i];
      std::fprintf(out,
                   "    {\"procs\": %u, \"mode\": \"%s\", "
                   "\"correct\": %d, \"runs\": %d, "
                   "\"reclaimed_mean\": %.1f, "
                   "\"reclaim_latency_ticks_mean\": %.0f, "
                   "\"cancel_msgs_mean\": %.1f, \"total_msgs_mean\": %.0f, "
                   "\"slowdown_mean\": %.2f}%s\n",
                   r.procs, r.mode, r.correct, r.runs, r.reclaimed, r.latency,
                   r.cancel_msgs, r.total_msgs, r.slowdown,
                   i + 1 < e17_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"e19_chaos\": [\n");
    for (std::size_t i = 0; i < e19_rows.size(); ++i) {
      const E19Row& r = e19_rows[i];
      std::fprintf(out,
                   "    {\"procs\": %u, \"scenario\": \"%s\", "
                   "\"correct\": %d, \"runs\": %d, "
                   "\"goodput_tasks_per_ktick_mean\": %.2f, "
                   "\"slowdown_mean\": %.2f, \"reclaimed_mean\": %.1f, "
                   "\"reclaim_latency_ticks_mean\": %.0f, "
                   "\"msgs_lost_mean\": %.0f, \"cancel_msgs_mean\": %.1f}%s\n",
                   r.procs, r.scenario, r.correct, r.runs, r.goodput,
                   r.slowdown, r.reclaimed, r.latency, r.msgs_lost,
                   r.cancel_msgs, i + 1 < e19_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"e21_pdes\": [\n");
    for (std::size_t i = 0; i < e21_rows.size(); ++i) {
      const E21Row& r = e21_rows[i];
      std::fprintf(out,
                   "    {\"workload\": \"%s\", \"scheduler\": \"%s\", "
                   "\"shards\": %u, \"events_per_sec\": %.0f, "
                   "\"normalized_events_per_mop\": %.1f, "
                   "\"events_per_sec_per_thread\": %.0f, "
                   "\"events_per_run\": %llu, \"correct\": %d, "
                   "\"runs\": %d}%s\n",
                   r.workload, r.scheduler, r.shards, r.events_per_sec,
                   r.events_per_sec / calib,
                   r.events_per_sec / r.shards,
                   static_cast<unsigned long long>(r.events), r.correct,
                   r.runs, i + 1 < e21_rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"recorder_overhead\": {\"procs\": 128, "
                 "\"events_per_sec_off\": %.0f, \"events_per_sec_on\": %.0f, "
                 "\"overhead_pct\": %.1f},\n",
                 recorder_eps[0], recorder_eps[1],
                 recorder_eps[0] > 0
                     ? (1.0 - recorder_eps[1] / recorder_eps[0]) * 100.0
                     : 0.0);
    std::fprintf(out,
                 "  \"e20_partition_heal_series\": {\"procs\": %u, "
                 "\"makespan_ticks\": %lld, \"latency_p50\": %llu, "
                 "\"latency_p99\": %llu, \"latency_p999\": %llu, "
                 "\"windows\": [\n",
                 e20_procs, static_cast<long long>(e20_result.makespan_ticks),
                 static_cast<unsigned long long>(e20_lat.percentile(0.5)),
                 static_cast<unsigned long long>(e20_lat.percentile(0.99)),
                 static_cast<unsigned long long>(e20_lat.percentile(0.999)));
    for (std::size_t i = 0; i < e20_series.size(); ++i) {
      const obs::TimePoint& w = e20_series[i];
      std::fprintf(out,
                   "    {\"t\": %lld, \"spawned\": %llu, \"completed\": %llu, "
                   "\"queue_depth\": %llu, \"in_flight\": %llu, "
                   "\"ckpt_resident\": %llu, \"p50\": %llu, \"p99\": %llu, "
                   "\"p999\": %llu}%s\n",
                   static_cast<long long>(w.window_start),
                   static_cast<unsigned long long>(w.spawned),
                   static_cast<unsigned long long>(w.completed),
                   static_cast<unsigned long long>(w.queue_depth),
                   static_cast<unsigned long long>(w.in_flight),
                   static_cast<unsigned long long>(w.checkpoint_residency),
                   static_cast<unsigned long long>(w.latency_p50),
                   static_cast<unsigned long long>(w.latency_p99),
                   static_cast<unsigned long long>(w.latency_p999),
                   i + 1 < e20_series.size() ? "," : "");
    }
    std::fprintf(out, "  ]}\n}\n");
    std::fclose(out);
    std::printf("perf json written to %s\n", perf_json);
  }

  std::printf(
      "expected shape: speedup grows with processors until the tree's\n"
      "parallelism saturates; recovery latency stays roughly flat (only\n"
      "the dead node's resident subtree is redone) while error-broadcast\n"
      "traffic grows linearly with machine size. Under recurring faults\n"
      "with repair, large machines stay correct and near full strength at\n"
      "the end of the run; reissues scale with the fault rate, not the\n"
      "machine size. E17: the cancel protocol reclaims duplicates with a\n"
      "latency bounded by message propagation (well under the sweep's\n"
      "period-quantized latency, and never worse than 2x) at the cost of\n"
      "explicit cancel traffic. E19: with only the wire misbehaving — a\n"
      "partition that heals, or a gray node under lossy links — every run\n"
      "stays correct, goodput degrades smoothly with the loss volume, and\n"
      "cross-cut duplicates are reclaimed at protocol latency after the\n"
      "heal. Simulator throughput (E16) should stay\n"
      "flat-to-rising across machine sizes — per-event cost must not grow\n"
      "with the processor count — and allocs/event should stay near zero.\n");
  return 0;
}
