// E11 — scalability: processors 2..128 across topologies.
//
// The paper positions applicative systems as "promising candidates for
// achieving high performance computing through aggregation of processors"
// (§1); recovery must not destroy that scaling. Table 1: machine size x
// topology — fault-free makespan/speedup, recovery latency and
// error-broadcast traffic for a mid-run fault. Table 2: the 64- and
// 128-processor machines under recurring (Poisson) fault *rates* with
// repair, the regime large fleets actually live in.
#include <cstdio>
#include <string>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  const lang::Program program = lang::programs::tree_sum(6, 2, 400, 30);

  auto config_for = [&](std::uint32_t procs, net::TopologyKind topo,
                        std::uint64_t seed) {
    core::SystemConfig cfg;
    cfg.processors = procs;
    cfg.topology = topo;
    cfg.scheduler.kind = core::SchedulerKind::kLocalFirst;
    cfg.recovery.kind = core::RecoveryKind::kSplice;
    cfg.heartbeat_interval = 2000;
    cfg.seed = seed * 41 + 29;
    return cfg;
  };

  // Serial reference: one processor.
  auto serial = bench::run_replicates(
      2, program,
      [&](std::uint64_t s) {
        return config_for(1, net::TopologyKind::kComplete, s);
      });
  const double serial_makespan =
      bench::mean_of(serial, [](const bench::Replicate& r) {
        return static_cast<double>(r.result.makespan_ticks);
      });

  util::Table table({"procs", "topology", "makespan", "speedup",
                     "faulted correct", "recovery latency", "error msgs"});
  table.set_title("scalability — machine size x topology under one fault");

  for (std::uint32_t procs : {2U, 4U, 8U, 16U, 32U, 64U, 128U}) {
    for (auto topo : {net::TopologyKind::kMesh2D, net::TopologyKind::kTorus2D,
                      net::TopologyKind::kHypercube}) {
      if (topo == net::TopologyKind::kHypercube &&
          (procs & (procs - 1)) != 0) {
        continue;
      }
      auto clean = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) { return config_for(procs, topo, s); });
      auto faulted = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) { return config_for(procs, topo, s); },
          [&](const core::SystemConfig& cfg, std::int64_t makespan,
              std::uint64_t seed) {
            const auto victim =
                static_cast<net::ProcId>((seed * 17 + 3) % cfg.processors);
            return net::FaultPlan::single(victim, sim::SimTime(makespan / 2));
          });
      const double makespan =
          bench::mean_of(clean, [](const bench::Replicate& r) {
            return static_cast<double>(r.result.makespan_ticks);
          });
      table.add_row(
          {util::Table::num(static_cast<std::uint64_t>(procs)),
           std::string(net::to_string(topo)), util::Table::num(makespan, 0),
           util::Table::num(serial_makespan / makespan, 2),
           std::to_string(bench::correct_count(faulted)) + "/" +
               std::to_string(static_cast<int>(faulted.size())),
           util::Table::num(bench::mean_of(faulted,
                                           [](const bench::Replicate& r) {
                                             return static_cast<double>(
                                                 r.result.makespan_ticks -
                                                 r.clean_makespan);
                                           }),
                            0),
           util::Table::num(
               bench::mean_of(faulted,
                              [](const bench::Replicate& r) {
                                return static_cast<double>(
                                    r.result.net.sent[static_cast<std::size_t>(
                                        net::MsgKind::kErrorDetection)]);
                              }),
               0)});
    }
  }
  bench::emit(table, opt);

  // ---- 64/128 processors under Poisson fault rates with repair ------------
  // Driven by the recurring fault plans: background failures arrive at a
  // mean interval over the whole machine and every victim is repaired, so
  // the machine hovers below full strength instead of draining.
  util::Table churn({"procs", "faults/run", "kills", "revived", "correct",
                     "reissued", "error msgs", "slowdown", "alive at end"});
  churn.set_title("large machines under recurring faults + repair");
  // The Poisson mean interval is derived from the fault-free makespan so a
  // row targets a fault *rate* (expected faults per run) independent of how
  // fast the machine happens to be.
  const std::vector<double> rates =
      opt.quick ? std::vector<double>{4} : std::vector<double>{4, 8};
  for (std::uint32_t procs : {64U, 128U}) {
    for (double expected_faults : rates) {
      auto reps = bench::run_replicates(
          opt.replicates, program,
          [&](std::uint64_t s) {
            return config_for(procs, net::TopologyKind::kTorus2D, s);
          },
          [&](const core::SystemConfig&, std::int64_t makespan,
              std::uint64_t seed) {
            net::RecurringFault arrivals;
            arrivals.start = sim::SimTime(makespan / 5);
            arrivals.stop = sim::SimTime(makespan * 2);
            arrivals.mean_interval =
                static_cast<double>(makespan) / expected_faults;
            arrivals.max_faults = 24;
            net::FaultPlan plan = net::FaultPlan::poisson(arrivals);
            plan.with_rejoin(sim::SimTime(makespan / 6));
            plan.with_seed(seed * 29 + 13);
            return plan;
          });
      auto mean = [&](auto metric) { return bench::mean_of(reps, metric); };
      churn.add_row(
          {util::Table::num(static_cast<std::uint64_t>(procs)),
           util::Table::num(expected_faults, 0),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.faults_injected);
                            }),
                            1),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.nodes_revived);
                            }),
                            1),
           std::to_string(bench::correct_count(reps)) + "/" +
               std::to_string(static_cast<int>(reps.size())),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.counters.tasks_respawned);
                            }),
                            1),
           util::Table::num(
               mean([](const bench::Replicate& r) {
                 return static_cast<double>(
                     r.result.net.sent[static_cast<std::size_t>(
                         net::MsgKind::kErrorDetection)]);
               }),
               0),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                         r.result.makespan_ticks) /
                                     static_cast<double>(r.clean_makespan);
                            }),
                            2),
           util::Table::num(mean([](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.processors_alive_at_end);
                            }),
                            1)});
    }
  }
  bench::emit(churn, opt);

  std::printf(
      "expected shape: speedup grows with processors until the tree's\n"
      "parallelism saturates; recovery latency stays roughly flat (only\n"
      "the dead node's resident subtree is redone) while error-broadcast\n"
      "traffic grows linearly with machine size. Under recurring faults\n"
      "with repair, large machines stay correct and near full strength at\n"
      "the end of the run; reissues scale with the fault rate, not the\n"
      "machine size.\n");
  return 0;
}
