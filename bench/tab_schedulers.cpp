// E10 — §3.3: "the ability to recover by simply reissuing checkpointed
// tasks depends on the availability of a dynamic allocation strategy, such
// as the gradient model approach".
//
// Rows: scheduler. Columns: fault-free makespan & load balance (CoV of
// per-processor busy time), and recovery success/latency under a mid-run
// fault. All dynamic schedulers must recover transparently; the pinned
// (static) scheduler works only because its fallback is dynamic — the
// paper's §3.3 point about static allocation needing linkage surgery.
#include <cstdio>

#include "bench/harness.h"

using namespace splice;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);

  const lang::Program program = lang::programs::fib(13, 220);

  auto config_for = [&](core::SchedulerKind kind, std::uint64_t seed) {
    core::SystemConfig cfg;
    cfg.processors = 16;
    cfg.topology = net::TopologyKind::kTorus2D;
    cfg.scheduler.kind = kind;
    cfg.scheduler.gradient_refresh = 400;
    cfg.recovery.kind = core::RecoveryKind::kSplice;
    cfg.heartbeat_interval = 1500;
    cfg.seed = seed * 57 + 13;
    return cfg;
  };

  util::Table table({"scheduler", "makespan", "sched msgs", "faulted correct",
                     "recovery latency", "reissued"});
  table.set_title(
      "§3.3 — dynamic allocation strategies under splice recovery (16 procs)");

  for (auto kind :
       {core::SchedulerKind::kRandom, core::SchedulerKind::kRoundRobin,
        core::SchedulerKind::kLocalFirst, core::SchedulerKind::kGradient,
        core::SchedulerKind::kNeighbor}) {
    auto clean = bench::run_replicates(
        opt.replicates, program,
        [&](std::uint64_t s) { return config_for(kind, s); });
    auto faulted = bench::run_replicates(
        opt.replicates, program,
        [&](std::uint64_t s) { return config_for(kind, s); },
        [&](const core::SystemConfig& cfg, std::int64_t makespan,
            std::uint64_t seed) {
          const auto victim =
              static_cast<net::ProcId>((seed * 13 + 4) % cfg.processors);
          return net::FaultPlan::single(victim, sim::SimTime(makespan / 2));
        });
    table.add_row(
        {std::string(core::to_string(kind)),
         util::Table::num(bench::mean_of(clean,
                                         [](const bench::Replicate& r) {
                                           return static_cast<double>(
                                               r.result.makespan_ticks);
                                         }),
                          0),
         util::Table::num(
             bench::mean_of(clean,
                            [](const bench::Replicate& r) {
                              return static_cast<double>(
                                  r.result.net.sent[static_cast<std::size_t>(
                                      net::MsgKind::kLoadUpdate)]);
                            }),
             0),
         std::to_string(bench::correct_count(faulted)) + "/" +
             std::to_string(static_cast<int>(faulted.size())),
         util::Table::num(bench::mean_of(faulted,
                                         [](const bench::Replicate& r) {
                                           return static_cast<double>(
                                               r.result.makespan_ticks -
                                               r.clean_makespan);
                                         }),
                          0),
         util::Table::num(bench::mean_of(faulted,
                                         [](const bench::Replicate& r) {
                                           return static_cast<double>(
                                               r.result.counters
                                                   .tasks_respawned);
                                         }),
                          1)});
  }
  bench::emit(table, opt);
  std::printf(
      "expected shape: every dynamic scheduler recovers all runs; the\n"
      "gradient model pays load-update traffic for better placement under\n"
      "skewed load. Recovery needs no scheduler-specific logic — reissued\n"
      "tasks are ordinary tasks (§3.3).\n");
  return 0;
}
