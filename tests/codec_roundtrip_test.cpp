// Wire-codec round-trip property suite.
//
// The codec contract is bijectivity on the canonical form: for every
// envelope e, decode(encode(e)) == e, and for every canonical byte string
// b, encode(decode(b)) == b byte for byte. The suite drives all 15
// MsgKinds through seeded fuzz generators (random stamps, deep ancestor
// chains, extreme integers, empty and huge lists, nested bounce boxes)
// and asserts the re-encode is byte-identical. Truncation and mutation
// fuzz additionally pin the safety contract: malformed input raises
// CodecError, never an out-of-bounds read (this suite runs under
// ASan/UBSan in the sanitize preset).
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "net/codec.h"
#include "net/message.h"

namespace splice {
namespace {

using net::Envelope;
using net::EnvelopeBox;
using net::MsgKind;
using net::codec::CodecError;
using runtime::LevelStamp;
using runtime::TaskRef;

using Rng = std::mt19937_64;

constexpr MsgKind kAllKinds[net::kMsgKindCount] = {
    MsgKind::kTaskPacket,      MsgKind::kSpawnAck,
    MsgKind::kForwardResult,   MsgKind::kFetchData,
    MsgKind::kDataReply,       MsgKind::kErrorDetection,
    MsgKind::kDeliveryFailure, MsgKind::kHeartbeat,
    MsgKind::kLoadUpdate,      MsgKind::kCheckpointXfer,
    MsgKind::kRejoinNotice,    MsgKind::kStateRequest,
    MsgKind::kStateChunk,      MsgKind::kCancel,
    MsgKind::kControl,
};

std::uint64_t pick(Rng& rng, std::uint64_t bound) { return rng() % bound; }

/// Integers with occasional extremes: varint/zigzag boundary values are
/// exactly where a codec bug would hide.
std::int64_t fuzz_i64(Rng& rng) {
  switch (pick(rng, 8)) {
    case 0: return 0;
    case 1: return -1;
    case 2: return INT64_MAX;
    case 3: return INT64_MIN;
    case 4: return static_cast<std::int64_t>(rng());
    default: return static_cast<std::int64_t>(pick(rng, 1000)) - 500;
  }
}

LevelStamp fuzz_stamp(Rng& rng) {
  // Bias toward depths beyond kInlineDepth(12) sometimes: the heap-spill
  // path of the digit SmallVec must encode identically to the inline path.
  const std::size_t depth =
      pick(rng, 4) == 0 ? 12 + pick(rng, 20) : pick(rng, 8);
  LevelStamp::Digits digits;
  for (std::size_t i = 0; i < depth; ++i) {
    digits.push_back(pick(rng, 8) == 0
                         ? static_cast<runtime::StampDigit>(rng())
                         : static_cast<runtime::StampDigit>(pick(rng, 16)));
  }
  return LevelStamp(std::move(digits));
}

TaskRef fuzz_ref(Rng& rng) {
  TaskRef ref;
  ref.proc = static_cast<net::ProcId>(pick(rng, 256));
  ref.uid = pick(rng, 4) == 0 ? rng() : pick(rng, 100000);
  return ref;
}

util::SmallVec<TaskRef, 4> fuzz_ancestors(Rng& rng) {
  util::SmallVec<TaskRef, 4> chain;
  // Up to depth 9: well past the inline capacity, so max-lineage chains
  // (the §5.2 great-grandparent extension at its deepest) are covered.
  const std::size_t n = pick(rng, 10);
  for (std::size_t i = 0; i < n; ++i) chain.push_back(fuzz_ref(rng));
  return chain;
}

lang::Value fuzz_value(Rng& rng) {
  switch (pick(rng, 4)) {
    case 0: {
      std::vector<std::int64_t> items;
      const std::size_t n = pick(rng, 3) == 0 ? 2000 + pick(rng, 3000)
                                              : pick(rng, 8);
      items.reserve(n);
      std::int64_t v = fuzz_i64(rng) / 4;
      for (std::size_t i = 0; i < n; ++i) {
        v += static_cast<std::int64_t>(pick(rng, 7)) - 3;
        items.push_back(v);
      }
      return lang::Value::list(std::move(items));
    }
    default:
      return lang::Value::integer(fuzz_i64(rng));
  }
}

runtime::TaskPacket fuzz_packet(Rng& rng) {
  runtime::TaskPacket p;
  p.stamp = fuzz_stamp(rng);
  p.fn = static_cast<lang::FuncId>(pick(rng, 64));
  p.call_site = static_cast<lang::ExprId>(pick(rng, 4096));
  const std::size_t arity = pick(rng, 6);  // beyond the inline-4 Args too
  for (std::size_t i = 0; i < arity; ++i) p.args.push_back(fuzz_value(rng));
  p.ancestors = fuzz_ancestors(rng);
  p.replica = static_cast<std::uint32_t>(pick(rng, 4));
  p.lineage = static_cast<std::uint32_t>(pick(rng, 1000));
  p.zone = static_cast<std::int32_t>(pick(rng, 5)) - 1;
  return p;
}

Envelope fuzz_envelope(MsgKind kind, Rng& rng, int box_depth = 0);

net::Payload fuzz_payload(MsgKind kind, Rng& rng, int box_depth) {
  switch (kind) {
    case MsgKind::kFetchData:
    case MsgKind::kDataReply:
    case MsgKind::kCheckpointXfer:
      return std::monostate{};
    case MsgKind::kTaskPacket:
      return fuzz_packet(rng);
    case MsgKind::kSpawnAck: {
      runtime::AckMsg m;
      m.stamp = fuzz_stamp(rng);
      m.call_site = static_cast<lang::ExprId>(pick(rng, 4096));
      m.parent = fuzz_ref(rng);
      m.child = fuzz_ref(rng);
      m.replica = static_cast<std::uint32_t>(pick(rng, 4));
      m.lineage = static_cast<std::uint32_t>(pick(rng, 1000));
      return m;
    }
    case MsgKind::kForwardResult: {
      runtime::ResultMsg m;
      m.stamp = fuzz_stamp(rng);
      m.call_site = static_cast<lang::ExprId>(pick(rng, 4096));
      m.value = fuzz_value(rng);
      m.target = fuzz_ref(rng);
      m.relation = pick(rng, 2) == 0 ? runtime::ResultRelation::kToParent
                                     : runtime::ResultRelation::kToAncestor;
      m.ancestor_index = static_cast<std::uint32_t>(pick(rng, 4));
      m.ancestors = fuzz_ancestors(rng);
      m.replica = static_cast<std::uint32_t>(pick(rng, 4));
      m.relayed = pick(rng, 2) == 0;
      return m;
    }
    case MsgKind::kErrorDetection: {
      runtime::ErrorMsg m;
      m.dead = static_cast<net::ProcId>(pick(rng, 256));
      m.reporter = static_cast<net::ProcId>(pick(rng, 256));
      return m;
    }
    case MsgKind::kHeartbeat: {
      runtime::HeartbeatMsg m;
      m.sequence = rng();
      return m;
    }
    case MsgKind::kRejoinNotice: {
      runtime::RejoinMsg m;
      m.who = static_cast<net::ProcId>(pick(rng, 256));
      return m;
    }
    case MsgKind::kLoadUpdate: {
      runtime::LoadMsg m;
      m.pressure = static_cast<std::uint32_t>(rng());
      m.proximity = static_cast<std::uint32_t>(pick(rng, 64));
      return m;
    }
    case MsgKind::kControl: {
      runtime::ControlMsg m;
      m.kind = static_cast<runtime::ControlKind>(pick(rng, 4));
      return m;
    }
    case MsgKind::kCancel: {
      runtime::CancelMsg m;
      m.stamp = fuzz_stamp(rng);
      m.replica = static_cast<std::uint32_t>(pick(rng, 4));
      m.uid = pick(rng, 3) == 0 ? runtime::kNoTask : rng();
      m.parent = fuzz_ref(rng);
      m.issued_at = sim::SimTime(static_cast<std::int64_t>(pick(rng, 1u << 20)));
      return m;
    }
    case MsgKind::kStateRequest: {
      store::StateRequestMsg m;
      m.who = static_cast<net::ProcId>(pick(rng, 256));
      m.incarnation = pick(rng, 16);
      return m;
    }
    case MsgKind::kStateChunk: {
      store::StateChunkMsg m;
      m.incarnation = pick(rng, 16);
      m.seq = static_cast<std::uint32_t>(pick(rng, 64));
      m.last = pick(rng, 2) == 0;
      const std::size_t packets = pick(rng, 5);
      for (std::size_t i = 0; i < packets; ++i) {
        m.packets.push_back(fuzz_packet(rng));
      }
      const std::size_t dead = pick(rng, 5);
      for (std::size_t i = 0; i < dead; ++i) {
        m.known_dead.push_back(static_cast<net::ProcId>(pick(rng, 256)));
      }
      return m;
    }
    case MsgKind::kDeliveryFailure: {
      if (box_depth >= 2 || pick(rng, 8) == 0) return EnvelopeBox{};
      // Nested bounce: a failure notice whose lost envelope is itself a
      // failure notice (a bounce that bounced). Recursion must terminate
      // and stay canonical at every level.
      const MsgKind inner =
          box_depth < 1 && pick(rng, 4) == 0
              ? MsgKind::kDeliveryFailure
              : kAllKinds[pick(rng, net::kMsgKindCount)];
      return EnvelopeBox(fuzz_envelope(
          inner == MsgKind::kDeliveryFailure && box_depth >= 1
              ? MsgKind::kHeartbeat
              : inner,
          rng, box_depth + 1));
    }
  }
  return std::monostate{};
}

Envelope fuzz_envelope(MsgKind kind, Rng& rng, int box_depth) {
  Envelope env;
  env.kind = kind;
  env.from = static_cast<net::ProcId>(pick(rng, 256));
  env.to = static_cast<net::ProcId>(pick(rng, 256));
  env.size_units = static_cast<std::uint32_t>(1 + pick(rng, 1000));
  env.sent_at = sim::SimTime(static_cast<std::int64_t>(pick(rng, 1u << 30)));
  env.payload = fuzz_payload(kind, rng, box_depth);
  return env;
}

/// The bijectivity property for one envelope: decode inverts encode, and
/// re-encoding the decoded message reproduces the exact bytes.
void expect_roundtrip(const Envelope& env) {
  const std::vector<std::uint8_t> bytes = net::codec::encode_envelope(env);
  const Envelope back = net::codec::decode_envelope(bytes.data(), bytes.size());
  EXPECT_EQ(back.kind, env.kind);
  EXPECT_EQ(back.from, env.from);
  EXPECT_EQ(back.to, env.to);
  EXPECT_EQ(back.size_units, env.size_units);
  EXPECT_EQ(back.sent_at, env.sent_at);
  EXPECT_EQ(back.payload.index(), env.payload.index());
  const std::vector<std::uint8_t> again = net::codec::encode_envelope(back);
  ASSERT_EQ(again, bytes) << "re-encode not byte-identical, kind="
                          << net::to_string(env.kind);
}

TEST(CodecRoundtrip, AllKindsSeededFuzz) {
  for (const MsgKind kind : kAllKinds) {
    Rng rng(0x5EED0000 + static_cast<std::uint64_t>(kind));
    for (int trial = 0; trial < 200; ++trial) {
      expect_roundtrip(fuzz_envelope(kind, rng));
    }
  }
}

TEST(CodecRoundtrip, FieldFidelitySpotChecks) {
  // Beyond byte-identity: decoded fields must equal the originals (byte
  // equality alone would also hold for a codec that scrambled two fields
  // symmetrically).
  Rng rng(42);
  {
    Envelope env = fuzz_envelope(MsgKind::kTaskPacket, rng);
    auto& p = std::get<runtime::TaskPacket>(env.payload);
    const auto bytes = net::codec::encode_envelope(env);
    const Envelope back =
        net::codec::decode_envelope(bytes.data(), bytes.size());
    const auto& q = std::get<runtime::TaskPacket>(back.payload);
    EXPECT_EQ(q.stamp, p.stamp);
    EXPECT_EQ(q.fn, p.fn);
    EXPECT_EQ(q.call_site, p.call_site);
    ASSERT_EQ(q.args.size(), p.args.size());
    for (std::size_t i = 0; i < p.args.size(); ++i) {
      EXPECT_EQ(q.args[i], p.args[i]);
    }
    ASSERT_EQ(q.ancestors.size(), p.ancestors.size());
    for (std::size_t i = 0; i < p.ancestors.size(); ++i) {
      EXPECT_EQ(q.ancestors[i], p.ancestors[i]);
    }
    EXPECT_EQ(q.replica, p.replica);
    EXPECT_EQ(q.lineage, p.lineage);
    EXPECT_EQ(q.zone, p.zone);
  }
  {
    Envelope env = fuzz_envelope(MsgKind::kForwardResult, rng);
    auto& m = std::get<runtime::ResultMsg>(env.payload);
    m.value = lang::Value::list({INT64_MIN, -1, 0, 1, INT64_MAX});
    const auto bytes = net::codec::encode_envelope(env);
    const Envelope back =
        net::codec::decode_envelope(bytes.data(), bytes.size());
    const auto& n = std::get<runtime::ResultMsg>(back.payload);
    EXPECT_EQ(n.value, m.value);
    EXPECT_EQ(n.target, m.target);
    EXPECT_EQ(n.relation, m.relation);
    EXPECT_EQ(n.relayed, m.relayed);
  }
  {
    Envelope env = fuzz_envelope(MsgKind::kCancel, rng);
    const auto& m = std::get<runtime::CancelMsg>(env.payload);
    const auto bytes = net::codec::encode_envelope(env);
    const Envelope back =
        net::codec::decode_envelope(bytes.data(), bytes.size());
    const auto& n = std::get<runtime::CancelMsg>(back.payload);
    EXPECT_EQ(n.stamp, m.stamp);
    EXPECT_EQ(n.uid, m.uid);
    EXPECT_EQ(n.parent, m.parent);
    EXPECT_EQ(n.issued_at, m.issued_at);
  }
}

TEST(CodecRoundtrip, NestedBounceBoxes) {
  Rng rng(7);
  // Hand-build a depth-3 bounce chain: notice(notice(notice(task packet))).
  Envelope inner = fuzz_envelope(MsgKind::kTaskPacket, rng);
  for (int level = 0; level < 3; ++level) {
    Envelope notice;
    notice.kind = MsgKind::kDeliveryFailure;
    notice.from = inner.to;
    notice.to = inner.from;
    notice.payload = EnvelopeBox(std::move(inner));
    inner = std::move(notice);
  }
  expect_roundtrip(inner);

  Envelope empty;
  empty.kind = MsgKind::kDeliveryFailure;
  empty.payload = EnvelopeBox{};
  expect_roundtrip(empty);
}

TEST(CodecRoundtrip, ZigzagIsAnInvolutionOnExtremes) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1}, INT64_MIN,
        INT64_MAX, std::int64_t{-2}, INT64_MIN + 1}) {
    EXPECT_EQ(net::codec::unzigzag(net::codec::zigzag(v)), v);
  }
  // Small magnitudes of either sign must stay in one varint byte.
  EXPECT_LT(net::codec::zigzag(-64), 128u);
  EXPECT_LT(net::codec::zigzag(63), 128u);
}

TEST(CodecRoundtrip, FramingRoundtrip) {
  Rng rng(11);
  std::vector<std::uint8_t> wire;
  std::vector<std::vector<std::uint8_t>> bodies;
  for (const MsgKind kind :
       {MsgKind::kTaskPacket, MsgKind::kHeartbeat, MsgKind::kStateChunk}) {
    const Envelope env = fuzz_envelope(kind, rng);
    net::codec::encode_frame(env, wire);
    bodies.push_back(net::codec::encode_envelope(env));
  }
  // Parse the concatenated stream back frame by frame.
  std::size_t off = 0;
  for (const auto& body : bodies) {
    std::uint32_t len = 0;
    ASSERT_TRUE(net::codec::read_frame_header(wire.data() + off,
                                              wire.size() - off, &len));
    ASSERT_EQ(len, body.size());
    off += net::codec::kFrameHeaderBytes;
    const Envelope env = net::codec::decode_envelope(wire.data() + off, len);
    EXPECT_EQ(net::codec::encode_envelope(env), body);
    off += len;
  }
  EXPECT_EQ(off, wire.size());
  std::uint32_t len = 0;
  EXPECT_FALSE(net::codec::read_frame_header(wire.data(), 3, &len));
}

TEST(CodecRoundtrip, TruncationAlwaysThrows) {
  // Canonical parses are prefix-free: no proper prefix of a valid encoding
  // can itself decode (the full parse would have stopped there and choked
  // on the trailing bytes). Every truncation must raise CodecError —
  // and, under ASan, never read past the shortened buffer.
  for (const MsgKind kind : kAllKinds) {
    Rng rng(0xCAFE + static_cast<std::uint64_t>(kind));
    const auto bytes =
        net::codec::encode_envelope(fuzz_envelope(kind, rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_THROW(net::codec::decode_envelope(bytes.data(), cut),
                   CodecError)
          << "kind=" << net::to_string(kind) << " cut=" << cut;
    }
  }
}

TEST(CodecRoundtrip, MutationFuzzNeverCrashes) {
  // Flip bytes at random positions: decode must either throw CodecError or
  // produce some envelope — never crash, hang, or trip a sanitizer. (The
  // decoded message need not re-encode identically: redundant varint forms
  // exist off the canonical surface.)
  Rng rng(0xF00D);
  for (const MsgKind kind : kAllKinds) {
    auto bytes = net::codec::encode_envelope(fuzz_envelope(kind, rng));
    for (int trial = 0; trial < 100; ++trial) {
      auto mutated = bytes;
      const std::size_t hits = 1 + pick(rng, 3);
      for (std::size_t h = 0; h < hits; ++h) {
        mutated[pick(rng, mutated.size())] ^=
            static_cast<std::uint8_t>(1 + pick(rng, 255));
      }
      try {
        const Envelope env =
            net::codec::decode_envelope(mutated.data(), mutated.size());
        (void)net::codec::encode_envelope(env);  // must also be re-encodable
      } catch (const CodecError&) {
        // malformed: the expected outcome
      }
    }
  }
}

}  // namespace
}  // namespace splice
