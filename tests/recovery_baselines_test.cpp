// Baseline policies: no recovery, restart-from-scratch, periodic global
// checkpointing.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

// ---------------------------------------------------------------------------
// No recovery (control arm)
// ---------------------------------------------------------------------------

TEST(NoRecovery, FaultFreeRunsComplete) {
  SystemConfig cfg = base_config();
  cfg.recovery.kind = RecoveryKind::kNone;
  const RunResult r = core::run_once(cfg, lang::programs::fib(10, 30));
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.counters.checkpoint_records, 0U);  // no checkpointing at all
}

TEST(NoRecovery, LosesComputationOnFault) {
  // Killing a processor mid-run with no recovery must hang the program (we
  // stop at the deadline) — demonstrating that fault tolerance is needed.
  SystemConfig cfg = base_config(4, 3);
  cfg.recovery.kind = RecoveryKind::kNone;
  cfg.topology = net::TopologyKind::kComplete;
  const auto program = lang::programs::tree_sum(4, 2, 500, 50);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  cfg.deadline_ticks = makespan * 20;
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(1, sim::SimTime(makespan / 2)));
  EXPECT_FALSE(r.completed) << r.summary();
}

// ---------------------------------------------------------------------------
// Restart-from-scratch
// ---------------------------------------------------------------------------

TEST(Restart, CompletesAfterFaultByRerunning) {
  SystemConfig cfg = base_config(8, 3);
  cfg.recovery.kind = RecoveryKind::kRestart;
  const auto program = lang::programs::tree_sum(4, 3, 200, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(3, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
}

TEST(Restart, LateFaultNearlyDoublesBusyWork) {
  SystemConfig cfg = base_config(8, 3);
  cfg.recovery.kind = RecoveryKind::kRestart;
  const auto program = lang::programs::tree_sum(5, 2, 400, 50);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult clean = core::run_once(cfg, program);
  const RunResult faulted = core::run_once(
      cfg, program, net::FaultPlan::single(2, sim::SimTime(makespan * 3 / 4)));
  ASSERT_TRUE(faulted.completed);
  EXPECT_TRUE(faulted.answer_correct);
  // Restart reruns the program: busy work grows far more than under the
  // functional-checkpoint schemes (most of a full second execution).
  EXPECT_GT(faulted.counters.busy_ticks,
            clean.counters.busy_ticks * 3 / 2);
}

// ---------------------------------------------------------------------------
// Periodic global checkpointing
// ---------------------------------------------------------------------------

SystemConfig periodic_config(std::uint32_t procs = 8, std::uint64_t seed = 3) {
  SystemConfig cfg = base_config(procs, seed);
  cfg.recovery.kind = RecoveryKind::kPeriodicGlobal;
  cfg.recovery.checkpoint_interval = 4000;
  return cfg;
}

TEST(PeriodicGlobal, FaultFreeRunsCompleteWithFreezeOverhead) {
  SystemConfig cfg = periodic_config();
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  const RunResult r = core::run_once(cfg, program);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_GT(r.counters.snapshots_taken, 0U);
  EXPECT_GT(r.counters.freeze_ticks, 0);
  EXPECT_EQ(r.counters.restores, 0U);
  // Freezing must cost wall-clock versus splice on the same workload.
  SystemConfig splice_cfg = cfg;
  splice_cfg.recovery.kind = RecoveryKind::kSplice;
  const RunResult s = core::run_once(splice_cfg, program);
  ASSERT_TRUE(s.completed);
  EXPECT_GT(r.makespan_ticks, s.makespan_ticks);
}

TEST(PeriodicGlobal, RecoversFromFaultViaRestore) {
  SystemConfig cfg = periodic_config();
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(3, sim::SimTime(makespan * 2 / 3)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_GE(r.counters.restores, 1U);
}

TEST(PeriodicGlobal, FaultBeforeFirstSnapshotRestartsProgram) {
  SystemConfig cfg = periodic_config();
  cfg.recovery.checkpoint_interval = 1000000;  // effectively never
  const auto program = lang::programs::tree_sum(4, 2, 300, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(2, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_GE(r.counters.restores, 1U);
  EXPECT_EQ(r.counters.snapshots_taken, 0U);
}

TEST(PeriodicGlobal, ShorterIntervalMeansMoreSnapshots) {
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  SystemConfig fast = periodic_config();
  fast.recovery.checkpoint_interval = 2000;
  SystemConfig slow = periodic_config();
  slow.recovery.checkpoint_interval = 16000;
  const RunResult rf = core::run_once(fast, program);
  const RunResult rs = core::run_once(slow, program);
  ASSERT_TRUE(rf.completed && rs.completed);
  EXPECT_GT(rf.counters.snapshots_taken, rs.counters.snapshots_taken);
}

TEST(PeriodicGlobal, SurvivesFaultOnEveryProcessor) {
  SystemConfig cfg = periodic_config(4, 7);
  cfg.topology = net::TopologyKind::kComplete;
  const auto program = lang::programs::tree_sum(4, 2, 250, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (net::ProcId target = 0; target < 4; ++target) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(target, sim::SimTime(makespan / 2)));
    EXPECT_TRUE(r.completed) << "killing P" << target << ": " << r.summary();
    EXPECT_TRUE(r.answer_correct) << "killing P" << target;
  }
}

}  // namespace
}  // namespace splice
