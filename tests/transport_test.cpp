// Transport backend suite: the pluggable byte surfaces under the Network.
//
// The load-bearing property is the A/B oracle: a seeded run over the
// shared-memory ring backend — every envelope serialized through the wire
// codec, shipped through an SPSC byte ring, decoded on the far side —
// must produce *bit-identical* results to the same run over the
// in-process mailbox. Any divergence means the codec or the ring dropped,
// duplicated, or reordered protocol state, exactly the class of bug that
// would silently corrupt the multi-process TCP deployment.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "net/codec.h"
#include "net/shm_ring.h"
#include "net/transport.h"
#include "test_util.h"

namespace splice {
namespace {

core::RunResult run_with_backend(net::TransportKind backend,
                                 std::uint32_t ring_bytes,
                                 const lang::Program& program,
                                 std::uint64_t seed,
                                 const net::FaultPlan& plan,
                                 net::WireStats* wire_out = nullptr) {
  core::SystemConfig cfg = testing::base_config(8, seed);
  cfg.transport.backend = backend;
  cfg.transport.shm_ring_bytes = ring_bytes;
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  core::RunResult result = sim.run();
  if (wire_out != nullptr) {
    *wire_out = sim.runtime_for_test().network().wire();
  }
  return result;
}

/// Bit-identical across backends: every observable of the run must match,
/// from the answer through protocol counters to per-kind message totals.
void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_EQ(a.answer_correct, b.answer_correct);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.detection_ticks, b.detection_ticks);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.stranded_tasks, b.stranded_tasks);

  EXPECT_EQ(a.counters.tasks_created, b.counters.tasks_created);
  EXPECT_EQ(a.counters.tasks_completed, b.counters.tasks_completed);
  EXPECT_EQ(a.counters.tasks_respawned, b.counters.tasks_respawned);
  EXPECT_EQ(a.counters.twins_created, b.counters.twins_created);
  EXPECT_EQ(a.counters.orphan_results_salvaged,
            b.counters.orphan_results_salvaged);
  EXPECT_EQ(a.counters.cancels_sent, b.counters.cancels_sent);
  EXPECT_EQ(a.counters.tasks_cancelled, b.counters.tasks_cancelled);
  EXPECT_EQ(a.counters.checkpoint_records, b.counters.checkpoint_records);
  EXPECT_EQ(a.counters.busy_ticks, b.counters.busy_ticks);

  for (std::size_t k = 0; k < net::kMsgKindCount; ++k) {
    EXPECT_EQ(a.net.sent[k], b.net.sent[k]) << "sent kind " << k;
    EXPECT_EQ(a.net.delivered[k], b.net.delivered[k]) << "delivered kind "
                                                      << k;
  }
  EXPECT_EQ(a.net.dropped_dead_dest, b.net.dropped_dead_dest);
  EXPECT_EQ(a.net.failure_notices, b.net.failure_notices);
  EXPECT_EQ(a.net.total_units, b.net.total_units);
  EXPECT_EQ(a.net.total_hop_units, b.net.total_hop_units);

  // Link-fault layer: every perturbation draw must land identically.
  EXPECT_EQ(a.net.partition_cut, b.net.partition_cut);
  EXPECT_EQ(a.net.link_dropped, b.net.link_dropped);
  EXPECT_EQ(a.net.gray_dropped, b.net.gray_dropped);
  EXPECT_EQ(a.net.link_duplicated, b.net.link_duplicated);
  EXPECT_EQ(a.net.link_reordered, b.net.link_reordered);
  EXPECT_EQ(a.net.link_delay_ticks, b.net.link_delay_ticks);
}

TEST(TransportAB, ShmRingMatchesInProcessFaultFree) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const lang::Program program = lang::programs::fib(12, 40);
    const auto inproc =
        run_with_backend(net::TransportKind::kInProcess, 1u << 20, program,
                         seed, net::FaultPlan::none());
    const auto shm =
        run_with_backend(net::TransportKind::kShmRing, 1u << 20, program,
                         seed, net::FaultPlan::none());
    ASSERT_TRUE(inproc.completed);
    expect_identical(inproc, shm);
  }
}

TEST(TransportAB, ShmRingMatchesInProcessUnderFaults) {
  // Crash a processor mid-run: recovery traffic (error broadcasts, twins,
  // result relays, bounced sends) must serialize deterministically too.
  const lang::Program program = lang::programs::nqueens(5);
  const net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(3000));
  for (const std::uint64_t seed : {1u, 5u}) {
    const auto inproc = run_with_backend(net::TransportKind::kInProcess,
                                         1u << 20, program, seed, plan);
    const auto shm = run_with_backend(net::TransportKind::kShmRing, 1u << 20,
                                      program, seed, plan);
    ASSERT_TRUE(inproc.completed);
    EXPECT_EQ(inproc.faults_injected, 1u);
    expect_identical(inproc, shm);
  }
}

TEST(TransportAB, ShmRingMatchesInProcessUnderLinkFaults) {
  // Link-level chaos is shaped send-side, before the transport sees the
  // envelope — so drops, duplicates, reorder hold-backs, and jittered
  // delays must replay bit-identically whether the bytes then cross a
  // pooled mailbox or the serialized SPSC ring.
  net::LinkQuality q;
  q.drop_p = 0.1;
  q.dup_p = 0.1;
  q.reorder_p = 0.15;
  q.jitter = 25;
  net::GraySpec g;
  g.node = 6;
  g.start = sim::SimTime(1000);
  net::FaultPlan plan = net::FaultPlan::link(q);
  plan.merge(net::FaultPlan::gray(g));
  const lang::Program program = lang::programs::fib(12, 40);
  for (const std::uint64_t seed : {1u, 9u}) {
    plan.with_seed(seed);
    const auto inproc = run_with_backend(net::TransportKind::kInProcess,
                                         1u << 20, program, seed, plan);
    const auto shm = run_with_backend(net::TransportKind::kShmRing, 1u << 20,
                                      program, seed, plan);
    ASSERT_TRUE(inproc.completed) << inproc.summary();
    EXPECT_GT(inproc.net.link_dropped + inproc.net.gray_dropped, 0u);
    EXPECT_GT(inproc.net.link_duplicated, 0u);
    expect_identical(inproc, shm);
  }
}

TEST(TransportAB, TinyRingSpillsYetStaysIdentical) {
  // A deliberately undersized ring (min capacity, 256 bytes) forces the
  // spill path constantly; FIFO order across ring + spill deque must keep
  // the run bit-identical to the mailbox backend anyway.
  const lang::Program program = lang::programs::mergesort(64, 3);
  net::WireStats wire;
  const auto inproc =
      run_with_backend(net::TransportKind::kInProcess, 1u << 20, program, 2,
                       net::FaultPlan::none());
  const auto shm = run_with_backend(net::TransportKind::kShmRing, 1, program,
                                    2, net::FaultPlan::none(), &wire);
  ASSERT_TRUE(inproc.completed);
  expect_identical(inproc, shm);
  EXPECT_GT(wire.ring_spills, 0u) << "256-byte ring never overflowed; the "
                                     "spill path went unexercised";
}

TEST(TransportAB, WireStatsAccumulate) {
  net::WireStats wire;
  const auto shm =
      run_with_backend(net::TransportKind::kShmRing, 1u << 20,
                       lang::programs::fib(10, 40), 1, net::FaultPlan::none(),
                       &wire);
  ASSERT_TRUE(shm.completed);
  EXPECT_GT(wire.frames, 0u);
  EXPECT_GT(wire.payload_bytes, 0u);
  // Framing overhead on the ring is exactly its record header (length +
  // sequence tag) per frame; the TCP backend instead pays the u32 prefix
  // (codec::kFrameHeaderBytes), which the smoke script exercises.
  EXPECT_EQ(wire.frame_bytes,
            wire.payload_bytes + wire.frames * net::ShmRing::record_bytes(0));
  // The in-process backend never touches the codec.
  net::WireStats mailbox;
  const auto inproc =
      run_with_backend(net::TransportKind::kInProcess, 1u << 20,
                       lang::programs::fib(10, 40), 1, net::FaultPlan::none(),
                       &mailbox);
  ASSERT_TRUE(inproc.completed);
  EXPECT_EQ(mailbox.frames, 0u);
}

TEST(TransportKindNames, ParseAndPrint) {
  EXPECT_EQ(net::parse_transport("inproc"), net::TransportKind::kInProcess);
  EXPECT_EQ(net::parse_transport("shm"), net::TransportKind::kShmRing);
  EXPECT_EQ(net::parse_transport("tcp"), net::TransportKind::kTcp);
  for (const net::TransportKind kind :
       {net::TransportKind::kInProcess, net::TransportKind::kShmRing,
        net::TransportKind::kTcp}) {
    EXPECT_EQ(net::parse_transport(net::to_string(kind)), kind);
  }
  EXPECT_THROW((void)net::parse_transport("carrier-pigeon"),
               std::invalid_argument);
}

TEST(ShmRingUnit, WrapsAcrossTheByteBoundary) {
  // Byte-granular ring: records straddle the wrap point whenever
  // (position % capacity) + record size crosses capacity. Cycle enough
  // odd-sized records through a minimum-size ring to hit many distinct
  // wrap offsets and verify payload fidelity every time.
  net::ShmRing ring(1);  // clamps up to the 256-byte minimum
  ASSERT_EQ(ring.capacity(), 256u);
  std::uint64_t seq = 0;
  net::ShmRing::Record rec;
  for (int round = 0; round < 200; ++round) {
    const std::uint32_t len = 1 + (round * 7) % 40;
    std::vector<std::uint8_t> body(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      body[i] = static_cast<std::uint8_t>(round + i);
    }
    ASSERT_TRUE(ring.push(seq, body.data(), len));
    ASSERT_TRUE(ring.pop(&rec));
    EXPECT_EQ(rec.seq, seq);
    EXPECT_EQ(rec.bytes, body);
    ++seq;
  }
  EXPECT_TRUE(ring.empty());
}

TEST(ShmRingUnit, PushFailsWhenFullThenRecovers) {
  net::ShmRing ring(1);
  const std::vector<std::uint8_t> body(100, 0xAB);
  std::uint64_t seq = 0;
  // 100-byte bodies occupy 112 ring bytes each: two fit, the third spills.
  ASSERT_TRUE(ring.push(seq++, body.data(), 100));
  ASSERT_TRUE(ring.push(seq++, body.data(), 100));
  EXPECT_FALSE(ring.push(seq, body.data(), 100));
  net::ShmRing::Record rec;
  ASSERT_TRUE(ring.pop(&rec));
  EXPECT_EQ(rec.seq, 0u);
  EXPECT_TRUE(ring.push(seq++, body.data(), 100));  // space reclaimed
  ASSERT_TRUE(ring.pop(&rec));
  ASSERT_TRUE(ring.pop(&rec));
  EXPECT_EQ(rec.seq, 2u);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace splice
