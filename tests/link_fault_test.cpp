// Link-level chaos engine: seeded determinism of every perturbation
// (drop/dup/reorder/delay), the partition-and-heal lifecycle, and the gray
// failure's defining property — the node is never detected dead even while
// its payload traffic starves.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/simulation.h"
#include "net/link_faults.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RunResult;
using core::SystemConfig;
using net::GraySpec;
using net::LinkFaultModel;
using net::LinkQuality;
using net::MsgKind;

// ---------------------------------------------------------------------------
// LinkFaultModel unit: the verdict stream is a pure function of
// (seed, directed link, sequence number)
// ---------------------------------------------------------------------------

LinkQuality noisy_link() {
  LinkQuality q;
  q.drop_p = 0.25;
  q.dup_p = 0.2;
  q.reorder_p = 0.2;
  q.delay = 10;
  q.jitter = 30;
  return q;
}

using Fingerprint = std::vector<
    std::tuple<bool, bool, bool, bool, bool, std::int64_t, std::int64_t>>;

Fingerprint verdict_stream(std::uint64_t seed, int draws) {
  LinkFaultModel model(seed, 4);
  model.add_link(noisy_link());
  GraySpec g;
  g.node = 2;
  g.payload_drop_p = 0.4;
  model.add_gray(g);
  Fingerprint out;
  for (int i = 0; i < draws; ++i) {
    // Alternate links and kinds so per-link counters and the gray path all
    // participate in the stream.
    const net::ProcId from = static_cast<net::ProcId>(i % 3);
    const net::ProcId to = static_cast<net::ProcId>((i % 3) + 1);
    const MsgKind kind = (i % 2) == 0 ? MsgKind::kTaskPacket
                                      : MsgKind::kForwardResult;
    const auto v = model.shape(kind, from, to, sim::SimTime(i * 7),
                               sim::SimTime(100));
    out.push_back({v.cut, v.drop, v.gray_drop, v.duplicate, v.reordered,
                   v.extra.ticks(), v.dup_extra.ticks()});
  }
  return out;
}

TEST(LinkFaultModel, VerdictStreamReplaysBitIdenticallyPerSeed) {
  const Fingerprint a = verdict_stream(42, 400);
  const Fingerprint b = verdict_stream(42, 400);
  const Fingerprint c = verdict_stream(43, 400);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 400 draws: astronomically unlikely to collide
}

TEST(LinkFaultModel, GrayNeverDropsControlTraffic) {
  LinkFaultModel model(7, 4);
  GraySpec g;
  g.node = 1;
  g.payload_drop_p = 1.0;  // every payload message dies...
  g.slow_factor = 4;
  model.add_gray(g);
  for (int i = 0; i < 50; ++i) {
    const auto control = model.shape(MsgKind::kHeartbeat, 0, 1,
                                     sim::SimTime(i), sim::SimTime(100));
    EXPECT_FALSE(control.gray_drop);  // ...but control always gets through
    EXPECT_FALSE(control.drop);
    EXPECT_GT(control.extra.ticks(), 0);  // slowed, though
    const auto payload = model.shape(MsgKind::kTaskPacket, 0, 1,
                                     sim::SimTime(i), sim::SimTime(100));
    EXPECT_TRUE(payload.gray_drop);
  }
  // Traffic not touching the gray node is unshaped.
  const auto clean = model.shape(MsgKind::kTaskPacket, 2, 3, sim::SimTime(0),
                                 sim::SimTime(100));
  EXPECT_FALSE(clean.gray_drop);
  EXPECT_EQ(clean.extra.ticks(), 0);
}

TEST(LinkFaultModel, PartitionWindowGovernsReachability) {
  LinkFaultModel model(1, 4);
  model.add_partition({0, 1}, sim::SimTime(100), sim::SimTime(200));
  // Before the cut: everyone reaches everyone.
  EXPECT_TRUE(model.reachable(0, 2, sim::SimTime(50)));
  // During: cross-cut pairs are severed, intra-side pairs untouched.
  EXPECT_FALSE(model.reachable(0, 2, sim::SimTime(150)));
  EXPECT_FALSE(model.reachable(3, 1, sim::SimTime(150)));
  EXPECT_TRUE(model.reachable(0, 1, sim::SimTime(150)));
  EXPECT_TRUE(model.reachable(2, 3, sim::SimTime(150)));
  // After the heal: reconnected.
  EXPECT_TRUE(model.reachable(0, 2, sim::SimTime(200)));
  // And shape() reports the cut verdict inside the window only.
  EXPECT_TRUE(model
                  .shape(MsgKind::kTaskPacket, 0, 2, sim::SimTime(150),
                         sim::SimTime(100))
                  .cut);
  EXPECT_FALSE(model
                   .shape(MsgKind::kTaskPacket, 0, 2, sim::SimTime(250),
                          sim::SimTime(100))
                   .cut);
}

TEST(LinkFaultModel, DirectedSpecShapesOneDirectionOnly) {
  LinkFaultModel model(1, 4);
  LinkQuality q;
  q.src = 0;
  q.dst = 1;
  q.symmetric = false;
  q.drop_p = 1.0;
  model.add_link(q);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(model
                    .shape(MsgKind::kTaskPacket, 0, 1, sim::SimTime(i),
                           sim::SimTime(100))
                    .drop);
    EXPECT_FALSE(model
                     .shape(MsgKind::kTaskPacket, 1, 0, sim::SimTime(i),
                            sim::SimTime(100))
                     .drop);
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: a seeded chaotic run replays bit-identically
// ---------------------------------------------------------------------------

/// Every observable of the run must match, from the answer through protocol
/// counters to the per-kind wire totals and the link-fault tallies.
void expect_same_run(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.detection_ticks, b.detection_ticks);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.stranded_tasks, b.stranded_tasks);
  EXPECT_EQ(a.counters.tasks_created, b.counters.tasks_created);
  EXPECT_EQ(a.counters.tasks_completed, b.counters.tasks_completed);
  EXPECT_EQ(a.counters.tasks_respawned, b.counters.tasks_respawned);
  EXPECT_EQ(a.counters.cancels_sent, b.counters.cancels_sent);
  EXPECT_EQ(a.counters.wire_dups_discarded, b.counters.wire_dups_discarded);
  EXPECT_EQ(a.counters.busy_ticks, b.counters.busy_ticks);
  for (std::size_t k = 0; k < net::kMsgKindCount; ++k) {
    EXPECT_EQ(a.net.sent[k], b.net.sent[k]) << "sent kind " << k;
    EXPECT_EQ(a.net.delivered[k], b.net.delivered[k]) << "delivered " << k;
  }
  EXPECT_EQ(a.net.partition_cut, b.net.partition_cut);
  EXPECT_EQ(a.net.link_dropped, b.net.link_dropped);
  EXPECT_EQ(a.net.gray_dropped, b.net.gray_dropped);
  EXPECT_EQ(a.net.link_duplicated, b.net.link_duplicated);
  EXPECT_EQ(a.net.link_reordered, b.net.link_reordered);
  EXPECT_EQ(a.net.link_delay_ticks, b.net.link_delay_ticks);
  EXPECT_EQ(a.net.failure_notices, b.net.failure_notices);
}

SystemConfig chaos_config(std::uint64_t seed) {
  SystemConfig cfg = testing::base_config(8, seed);
  cfg.reclaim.cancellation = true;
  cfg.reclaim.gc_interval = 400;
  cfg.reclaim.gc_oracle = true;
  return cfg;
}

TEST(LinkChaosAB, SeededLossyRunReplaysBitIdentically) {
  net::FaultPlan plan = net::FaultPlan::link(noisy_link());
  plan.with_seed(11);
  const lang::Program program = lang::programs::fib(12, 40);
  const SystemConfig cfg = chaos_config(3);
  const RunResult a = core::run_once(cfg, program, plan);
  const RunResult b = core::run_once(cfg, program, plan);
  ASSERT_TRUE(a.completed) << a.summary();
  EXPECT_TRUE(a.answer_correct) << a.summary();
  expect_same_run(a, b);
  // Every perturbation class actually fired — the determinism assertion
  // above would be vacuous over an unperturbed run.
  EXPECT_GT(a.net.link_dropped, 0U);
  EXPECT_GT(a.net.link_duplicated, 0U);
  EXPECT_GT(a.net.link_reordered, 0U);
  EXPECT_GT(a.net.link_delay_ticks, 0U);
  // Lossy links never condemn a live node (§1 applies to *unreachable*
  // nodes): detection must not have fired.
  EXPECT_EQ(a.detection_ticks, -1);
  EXPECT_EQ(a.counters.gc_oracle_orphans, 0U);
}

TEST(LinkChaosAB, DistinctSeedsDrawDistinctPerturbations) {
  const lang::Program program = lang::programs::fib(12, 40);
  const SystemConfig cfg = chaos_config(3);
  net::FaultPlan plan_a = net::FaultPlan::link(noisy_link());
  plan_a.with_seed(101);
  net::FaultPlan plan_b = net::FaultPlan::link(noisy_link());
  plan_b.with_seed(202);
  const RunResult a = core::run_once(cfg, program, plan_a);
  const RunResult b = core::run_once(cfg, program, plan_b);
  ASSERT_TRUE(a.completed && b.completed);
  // Hundreds of independent draws: the streams cannot coincide.
  EXPECT_NE(std::make_tuple(a.net.link_dropped, a.net.link_delay_ticks,
                            a.sim_events),
            std::make_tuple(b.net.link_dropped, b.net.link_delay_ticks,
                            b.sim_events));
}

// ---------------------------------------------------------------------------
// Partitions: cut, detect, recover, heal, reconcile
// ---------------------------------------------------------------------------

TEST(Partition, ScheduledHealConvergesWithNothingLeaked) {
  // Cut the bottom half of the 4x4 mesh off for a while mid-run. Survivors
  // treat the far side as faulty (§1), respawn its work, and cancel the
  // duplicates once the heal reconciles the mutual suspicion.
  for (const std::uint64_t seed : {1u, 5u, 9u}) {
    SystemConfig cfg = chaos_config(seed);
    cfg.processors = 16;
    net::FaultPlan plan = net::FaultPlan::partition(
        net::RegionSpec::grid_rect(2, 0, 2, 4), sim::SimTime(2000),
        sim::SimTime(6000));
    plan.with_seed(seed);
    const RunResult r =
        core::run_once(cfg, lang::programs::fib(13, 40), plan);
    ASSERT_TRUE(r.completed) << r.summary();
    EXPECT_TRUE(r.answer_correct) << r.summary();
    EXPECT_GT(r.net.partition_cut, 0U) << "the cut never bit";
    EXPECT_GE(r.detection_ticks, 0) << "no one noticed the partition";
    EXPECT_EQ(r.counters.gc_oracle_orphans, 0U) << r.summary();
  }
}

TEST(Partition, NeverHealingMinorityCutStillCompletes) {
  // The bottom row (4 of 16) is cut off forever. The majority side holds
  // the root: it must finish without the minority, exactly as if that row
  // had crashed — weak recovery does not wait for a heal that never comes.
  SystemConfig cfg = chaos_config(2);
  cfg.processors = 16;
  net::FaultPlan plan = net::FaultPlan::partition(
      net::RegionSpec::grid_rect(3, 0, 1, 4), sim::SimTime(1500));
  plan.with_seed(2);
  const RunResult r = core::run_once(cfg, lang::programs::fib(13, 40), plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct) << r.summary();
  EXPECT_GT(r.net.partition_cut, 0U);
}

TEST(Partition, ProbabilisticHealIsSeedDeterministic) {
  // A heal drawn from an exponential still replays bit-identically: the
  // delay is a pure function of the plan seed.
  SystemConfig cfg = chaos_config(4);
  cfg.processors = 16;
  auto run = [&cfg](std::uint64_t plan_seed) {
    net::FaultPlan plan;
    net::PartitionSpec cut;
    cut.side = net::RegionSpec::grid_rect(2, 0, 2, 4);
    cut.at = sim::SimTime(2000);
    cut.heal_mean = 4000.0;
    plan.partitions.push_back(cut);
    plan.with_seed(plan_seed);
    return core::run_once(cfg, lang::programs::fib(13, 40), plan);
  };
  const RunResult a = run(7);
  const RunResult b = run(7);
  ASSERT_TRUE(a.completed) << a.summary();
  expect_same_run(a, b);
}

// ---------------------------------------------------------------------------
// Gray failures: alive, slow, starving — and never detected
// ---------------------------------------------------------------------------

TEST(Gray, NoDetectionYetThroughputDegrades) {
  const lang::Program program = lang::programs::fib(13, 40);
  const SystemConfig cfg = chaos_config(6);
  const RunResult clean =
      core::run_once(cfg, program, net::FaultPlan::none());
  GraySpec g;
  g.node = 5;
  g.start = sim::SimTime(1000);
  net::FaultPlan plan = net::FaultPlan::gray(g);
  plan.with_seed(6);
  const RunResult gray = core::run_once(cfg, program, plan);
  ASSERT_TRUE(clean.completed && gray.completed) << gray.summary();
  EXPECT_TRUE(gray.answer_correct) << gray.summary();
  // The defining property: the node was sick the whole run and nobody
  // declared it dead — heartbeats and bounce notices kept flowing.
  EXPECT_EQ(gray.detection_ticks, -1) << gray.summary();
  EXPECT_GT(gray.net.gray_dropped, 0U);
  // But the sickness cost real time: payload retries and 4x slowdown.
  EXPECT_GT(gray.makespan_ticks, clean.makespan_ticks);
  EXPECT_EQ(gray.counters.gc_oracle_orphans, 0U);
}

TEST(Gray, FamilyAcrossNodesAndSeverityNeverTriggersDetection) {
  for (const net::ProcId node : {1u, 3u, 6u}) {
    for (const double drop : {0.3, 0.7}) {
      SystemConfig cfg = chaos_config(10 + node);
      GraySpec g;
      g.node = node;
      g.start = sim::SimTime(500);
      g.payload_drop_p = drop;
      net::FaultPlan plan = net::FaultPlan::gray(g);
      plan.with_seed(10 + node);
      const RunResult r =
          core::run_once(cfg, lang::programs::fib(12, 40), plan);
      ASSERT_TRUE(r.completed)
          << "node=" << node << " drop=" << drop << ": " << r.summary();
      EXPECT_TRUE(r.answer_correct) << r.summary();
      EXPECT_EQ(r.detection_ticks, -1)
          << "gray node " << node << " was falsely detected dead";
    }
  }
}

// ---------------------------------------------------------------------------
// Composition: link chaos on top of real crashes and rejoin
// ---------------------------------------------------------------------------

TEST(LinkChaos, LossyLinksPlusCrashAndRejoinConverge) {
  // Drop/dup/reorder everywhere, crash a node mid-run, repair it cold.
  // The cancel protocol and the wire-duplicate dedup must keep the ledger
  // clean: correct answer, no leaked duplicate lineages.
  for (const std::uint64_t seed : {3u, 8u}) {
    SystemConfig cfg = chaos_config(seed);
    LinkQuality q;
    q.drop_p = 0.05;
    q.dup_p = 0.05;
    q.reorder_p = 0.1;
    q.jitter = 20;
    net::FaultPlan plan = net::FaultPlan::link(q);
    plan.merge(net::FaultPlan::single(5, sim::SimTime(3000)));
    plan.with_rejoin(sim::SimTime(4000)).with_seed(seed);
    const RunResult r =
        core::run_once(cfg, lang::programs::nqueens(5), plan);
    ASSERT_TRUE(r.completed) << r.summary();
    EXPECT_TRUE(r.answer_correct) << r.summary();
    EXPECT_EQ(r.counters.gc_oracle_orphans, 0U) << r.summary();
    EXPECT_GT(r.net.link_duplicated, 0U);
  }
}

}  // namespace
}  // namespace splice
