// Randomized end-to-end properties. Determinacy (§2.1) is the master
// invariant: *whatever* the fault plan, a completed run returns the
// reference answer. Seeds are fixed; every case is reproducible.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/simulation.h"
#include "lang/programs.h"
#include "test_util.h"
#include "util/rng.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

lang::Program workload(std::uint64_t which) {
  switch (which % 4) {
    case 0:
      return lang::programs::fib(10, 80);
    case 1:
      return lang::programs::tree_sum(4, 3, 150, 30);
    case 2:
      return lang::programs::binomial(8, 4, 60);
    default:
      return lang::programs::quicksort(40, which);
  }
}

class RandomFaultSweep
    : public ::testing::TestWithParam<std::tuple<RecoveryKind, int>> {};

TEST_P(RandomFaultSweep, CompletedRunsAreAlwaysCorrect) {
  const auto [policy, salt] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(salt) * 7919 + 13);
  for (int trial = 0; trial < 12; ++trial) {
    SystemConfig cfg = base_config(
        4 + static_cast<std::uint32_t>(rng.next_below(8)), rng.next());
    cfg.topology = net::TopologyKind::kComplete;
    cfg.recovery.kind = policy;
    const lang::Program program = workload(rng.next());
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, program);
    net::FaultPlan plan;
    const auto faults = 1 + rng.next_below(2);
    for (std::uint64_t f = 0; f < faults; ++f) {
      const auto victim =
          static_cast<net::ProcId>(rng.next_below(cfg.processors));
      const auto when = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(makespan) + 1));
      plan.timed.push_back({victim, sim::SimTime(when)});
    }
    const RunResult r = core::run_once(cfg, program, plan);
    // Completion is guaranteed for the recovering policies as long as one
    // processor survives (always true here: at most 2 victims of >= 4).
    EXPECT_TRUE(r.completed)
        << core::to_string(policy) << " trial " << trial << ": "
        << r.summary();
    if (r.completed) {
      EXPECT_TRUE(r.answer_correct)
          << core::to_string(policy) << " trial " << trial
          << " answer=" << r.answer.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RandomFaultSweep,
    ::testing::Values(std::tuple{RecoveryKind::kRollback, 1},
                      std::tuple{RecoveryKind::kRollback, 2},
                      std::tuple{RecoveryKind::kSplice, 1},
                      std::tuple{RecoveryKind::kSplice, 2},
                      std::tuple{RecoveryKind::kSplice, 3},
                      std::tuple{RecoveryKind::kRestart, 1},
                      std::tuple{RecoveryKind::kPeriodicGlobal, 1}),
    [](const ::testing::TestParamInfo<std::tuple<RecoveryKind, int>>& param_info) {
      std::string name =
          std::string(core::to_string(std::get<0>(param_info.param))) + "_s" +
          std::to_string(std::get<1>(param_info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Invariants, MessageConservation) {
  // Delivered + dropped-dead + in-flight-at-end == sent; fault-free runs
  // drain completely, so delivered == sent.
  SystemConfig cfg = base_config(8, 21);
  const RunResult r = core::run_once(cfg, lang::programs::fib(10, 40));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.net.total_delivered() + r.net.dropped_dead_dest +
                r.net.dropped_dead_sender,
            r.net.total_sent() -
                r.net.sent[static_cast<std::size_t>(
                    net::MsgKind::kLoadUpdate)]);
}

TEST(Invariants, TaskAccountingBalances) {
  // created == completed + aborted + stranded for every policy and fault.
  for (auto policy : {RecoveryKind::kRollback, RecoveryKind::kSplice}) {
    SystemConfig cfg = base_config(6, 23);
    cfg.topology = net::TopologyKind::kComplete;
    cfg.recovery.kind = policy;
    const auto program = lang::programs::tree_sum(4, 2, 300, 40);
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, program);
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(2, sim::SimTime(makespan / 2)));
    ASSERT_TRUE(r.completed);
    // Tasks destroyed by the crash itself vanish without being counted
    // aborted; they are bounded by created - completed - aborted -
    // stranded >= 0.
    EXPECT_GE(r.counters.tasks_created,
              r.counters.tasks_completed + r.counters.tasks_aborted +
                  r.stranded_tasks);
  }
}

TEST(Invariants, SalvageNeverExceedsRelays) {
  SystemConfig cfg = base_config(8, 25);
  cfg.recovery.kind = RecoveryKind::kSplice;
  const auto program = lang::programs::tree_sum(6, 2, 500, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (net::ProcId victim = 0; victim < 8; victim += 2) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(victim, sim::SimTime(makespan / 2)));
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.counters.orphan_results_salvaged,
              r.counters.results_relayed + 1 /* super-root relays */);
  }
}

TEST(Invariants, DeterministicUnderFaults) {
  SystemConfig cfg = base_config(8, 29);
  cfg.recovery.kind = RecoveryKind::kSplice;
  const auto program = lang::programs::tree_sum(4, 3, 150, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const auto plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  const RunResult a = core::run_once(cfg, program, plan);
  const RunResult b = core::run_once(cfg, program, plan);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.net.total_sent(), b.net.total_sent());
  EXPECT_EQ(a.counters.tasks_respawned, b.counters.tasks_respawned);
  EXPECT_EQ(a.counters.orphan_results_salvaged,
            b.counters.orphan_results_salvaged);
}

}  // namespace
}  // namespace splice
