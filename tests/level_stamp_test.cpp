#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "runtime/level_stamp.h"
#include "util/rng.h"

namespace splice::runtime {
namespace {

TEST(LevelStamp, RootIsNull) {
  const LevelStamp root = LevelStamp::root();
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.depth(), 0U);
  EXPECT_EQ(root.to_string(), "<root>");
}

TEST(LevelStamp, ChildAppendsDigit) {
  const LevelStamp child = LevelStamp::root().child(3).child(7);
  EXPECT_EQ(child.depth(), 2U);
  EXPECT_EQ(child.digits(), (LevelStamp::Digits{3, 7}));
  EXPECT_EQ(child.last(), 7U);
  EXPECT_EQ(child.to_string(), "<3.7>");
}

TEST(LevelStamp, ParentInvertsChild) {
  const LevelStamp s = LevelStamp::root().child(1).child(2).child(3);
  EXPECT_EQ(s.parent(), LevelStamp::root().child(1).child(2));
  EXPECT_EQ(s.parent().parent().parent(), LevelStamp::root());
}

TEST(LevelStamp, AncestryIsProperPrefix) {
  const LevelStamp root = LevelStamp::root();
  const LevelStamp a = root.child(1);
  const LevelStamp ab = a.child(2);
  const LevelStamp ac = a.child(3);

  EXPECT_TRUE(root.is_ancestor_of(a));
  EXPECT_TRUE(root.is_ancestor_of(ab));
  EXPECT_TRUE(a.is_ancestor_of(ab));
  EXPECT_FALSE(a.is_ancestor_of(a));      // strict
  EXPECT_FALSE(ab.is_ancestor_of(a));     // reversed
  EXPECT_FALSE(ab.is_ancestor_of(ac));    // siblings' children
  EXPECT_TRUE(ab.is_descendant_of(root));
  EXPECT_TRUE(a.subsumes(a));
  EXPECT_TRUE(a.subsumes(ab));
  EXPECT_FALSE(ab.subsumes(a));
}

TEST(LevelStamp, DifferentBranchesUnrelated) {
  const LevelStamp left = LevelStamp::root().child(1).child(5);
  const LevelStamp right = LevelStamp::root().child(2).child(5);
  EXPECT_FALSE(left.is_ancestor_of(right));
  EXPECT_FALSE(right.is_ancestor_of(left));
  EXPECT_EQ(left.common_prefix(right), 0U);
}

TEST(LevelStamp, CommonPrefixLength) {
  const LevelStamp a = LevelStamp::root().child(1).child(2).child(3);
  const LevelStamp b = LevelStamp::root().child(1).child(2).child(9).child(4);
  EXPECT_EQ(a.common_prefix(b), 2U);
  EXPECT_EQ(a.common_prefix(a), 3U);
}

TEST(LevelStamp, UniquenessByConstruction) {
  // Stamps of distinct tree paths are distinct ("its uniqueness is
  // guaranteed by the program structure").
  std::set<LevelStamp> seen;
  std::function<void(const LevelStamp&, int)> walk = [&](const LevelStamp& s,
                                                         int depth) {
    EXPECT_TRUE(seen.insert(s).second) << s.to_string();
    if (depth == 0) return;
    for (StampDigit d = 0; d < 3; ++d) walk(s.child(d), depth - 1);
  };
  walk(LevelStamp::root(), 4);
  EXPECT_EQ(seen.size(), 1 + 3 + 9 + 27 + 81U);
}

TEST(LevelStamp, HashConsistentWithEquality) {
  LevelStamp::Hash hash;
  const LevelStamp a = LevelStamp::root().child(1).child(2);
  const LevelStamp b = LevelStamp::root().child(1).child(2);
  EXPECT_EQ(hash(a), hash(b));
  std::unordered_set<std::size_t> hashes;
  for (StampDigit d = 0; d < 100; ++d) {
    hashes.insert(hash(LevelStamp::root().child(d)));
  }
  EXPECT_GT(hashes.size(), 95U);  // no mass collisions
}

TEST(LevelStamp, OrderingIsTotalAndDeterministic) {
  const LevelStamp a = LevelStamp::root().child(1);
  const LevelStamp b = LevelStamp::root().child(2);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

// Property sweep: for random pairs, exactly one of {ancestor, descendant,
// equal, unrelated} holds, and ancestry implies shorter depth.
TEST(LevelStampProperty, RelationTrichotomy) {
  util::Xoshiro256 rng(99);
  auto random_stamp = [&](std::size_t max_depth) {
    LevelStamp s = LevelStamp::root();
    const auto depth = rng.next_below(max_depth + 1);
    for (std::uint64_t i = 0; i < depth; ++i) {
      s = s.child(static_cast<StampDigit>(rng.next_below(3)));
    }
    return s;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    const LevelStamp a = random_stamp(6);
    const LevelStamp b = random_stamp(6);
    const int relations = static_cast<int>(a == b) +
                          static_cast<int>(a.is_ancestor_of(b)) +
                          static_cast<int>(b.is_ancestor_of(a));
    EXPECT_LE(relations, 1);
    if (a.is_ancestor_of(b)) {
      EXPECT_LT(a.depth(), b.depth());
      EXPECT_EQ(a.common_prefix(b), a.depth());
    }
    // subsumes == ancestor-or-equal
    EXPECT_EQ(a.subsumes(b), a == b || a.is_ancestor_of(b));
  }
}

// The recovery schemes rely on twins regenerating children with identical
// stamps: stamp construction is a pure function of the path digits.
TEST(LevelStampProperty, ReincarnationYieldsIdenticalStamps) {
  const LevelStamp original =
      LevelStamp::root().child(4).child(1).child(9);
  const LevelStamp twin_child =
      LevelStamp::root().child(4).child(1).child(9);
  EXPECT_EQ(original, twin_child);
  LevelStamp::Hash hash;
  EXPECT_EQ(hash(original), hash(twin_child));
}

}  // namespace
}  // namespace splice::runtime
