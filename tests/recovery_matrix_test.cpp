// The full recovery matrix: every recovering policy x every workload shape,
// one mid-run fault. This is the coarse safety net over the whole stack —
// if any (policy, program) pairing mishandles an interleaving, determinacy
// flags it here.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/simulation.h"
#include "lang/programs.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

struct MatrixCase {
  std::string workload;
  RecoveryKind policy;
};

lang::Program workload_by_name(const std::string& name) {
  if (name == "fib") return lang::programs::fib(11, 150);
  if (name == "binomial") return lang::programs::binomial(9, 4, 80);
  if (name == "tree_wide") return lang::programs::tree_sum(3, 5, 300, 40);
  if (name == "tree_deep") return lang::programs::tree_sum(7, 2, 300, 40);
  if (name == "mergesort") return lang::programs::mergesort(96, 11);
  if (name == "quicksort") return lang::programs::quicksort(96, 11);
  if (name == "nqueens") return lang::programs::nqueens(5);
  if (name == "tak") return lang::programs::tak(8, 4, 1);
  if (name == "mapreduce") return lang::programs::map_reduce(300, 16, 4);
  throw std::invalid_argument(name);
}

class RecoveryMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(RecoveryMatrix, MidRunFaultIsSurvived) {
  const MatrixCase& c = GetParam();
  SystemConfig cfg = base_config(8, 17);
  cfg.topology = net::TopologyKind::kTorus2D;
  cfg.recovery.kind = c.policy;
  cfg.recovery.checkpoint_interval = 3000;  // for periodic-global
  const lang::Program program = workload_by_name(c.workload);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  ASSERT_GT(makespan, 0);
  // Two fault times per combination: early and late.
  for (const int pct : {30, 75}) {
    const RunResult r = core::run_once(
        cfg, program,
        net::FaultPlan::single(static_cast<net::ProcId>(pct % 8), sim::SimTime(makespan * pct / 100)));
    EXPECT_TRUE(r.completed)
        << c.workload << "/" << core::to_string(c.policy) << " fault@" << pct
        << "%: " << r.summary();
    if (r.completed) {
      EXPECT_TRUE(r.answer_correct)
          << c.workload << "/" << core::to_string(c.policy) << " fault@"
          << pct << "%";
    }
  }
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const char* workload :
       {"fib", "binomial", "tree_wide", "tree_deep", "mergesort", "quicksort",
        "nqueens", "tak", "mapreduce"}) {
    for (RecoveryKind policy :
         {RecoveryKind::kRollback, RecoveryKind::kSplice,
          RecoveryKind::kRestart, RecoveryKind::kPeriodicGlobal}) {
      cases.push_back({workload, policy});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, RecoveryMatrix, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<MatrixCase>& param_info) {
      std::string name = param_info.param.workload + "_" +
                         std::string(core::to_string(param_info.param.policy));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace splice
