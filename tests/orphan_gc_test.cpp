// Legacy orphan-GC sweep: duplicate live tasks left behind by racing
// recovery actions are reclaimed mid-run instead of computing to run end.
//
// The duplicate generator: a warm rejoin whose pre-link grace is far too
// short. The rejoiner re-hosts its lost tasks and pre-links surviving
// orphan subtrees, but the grace timer expires before their results arrive
// and respawns them as twins — while the originals keep computing on their
// peers. Same (stamp, replica) hosted twice, both live: exactly the §4.1
// "second copy is simply ignored" waste the sweep exists to reclaim.
//
// These suites pin cancellation = false: they exercise the omniscient
// sweep in isolation, as the measured baseline the cancel protocol is
// compared against (E17). The protocol's own coverage — the same chaos
// scenarios with sweeps disabled and the sweep demoted to a validation
// oracle — lives in cancel_protocol_test.cpp.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "store/persistency.h"

namespace splice {
namespace {

core::SystemConfig gc_config(std::uint64_t seed, std::int64_t gc_interval) {
  core::SystemConfig cfg;
  cfg.processors = 8;
  cfg.topology = net::TopologyKind::kMesh2D;
  cfg.scheduler.kind = core::SchedulerKind::kRandom;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 500;
  cfg.store.model = store::Persistency::kLocal;
  cfg.store.warm_grace = 40000;
  cfg.store.prelink_grace = 1;  // expire immediately: guaranteed respawn race
  cfg.reclaim.gc_interval = gc_interval;
  cfg.reclaim.cancellation = false;  // the sweep alone reclaims here
  cfg.seed = seed;
  return cfg;
}

TEST(OrphanGc, ReclaimsDuplicateTasksAndStaysCorrect) {
  const auto program = lang::programs::tree_sum(6, 2, 400, 30);
  bool saw_gc = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    core::SystemConfig cfg = gc_config(seed, /*gc_interval=*/400);
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, program);
    net::FaultPlan plan =
        net::FaultPlan::single(3, sim::SimTime(makespan / 2));
    plan.with_rejoin(sim::SimTime(makespan / 10), net::RejoinMode::kWarm);
    const core::RunResult r = core::run_once(cfg, program, plan);
    EXPECT_TRUE(r.completed) << "seed " << seed;
    EXPECT_TRUE(r.answer_correct) << "seed " << seed;
    saw_gc |= r.counters.orphans_gced > 0;
  }
  EXPECT_TRUE(saw_gc)
      << "no seed produced a duplicate for the sweep to reclaim";
}

TEST(OrphanGc, SweepIsDeterministic) {
  const auto program = lang::programs::tree_sum(6, 2, 400, 30);
  core::SystemConfig cfg = gc_config(7, /*gc_interval=*/400);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan / 10), net::RejoinMode::kWarm);
  const core::RunResult a = core::run_once(cfg, program, plan);
  const core::RunResult b = core::run_once(cfg, program, plan);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.counters.orphans_gced, b.counters.orphans_gced);
  EXPECT_EQ(a.counters.tasks_aborted, b.counters.tasks_aborted);
  EXPECT_EQ(a.counters.scans, b.counters.scans);
}

TEST(OrphanGc, DisabledByDefaultAndHarmlessWhenIdle) {
  const auto program = lang::programs::tree_sum(4, 2, 100, 10);
  // Fault-free run with the sweep armed: nothing to reclaim, same answer.
  core::SystemConfig cfg = gc_config(3, /*gc_interval=*/300);
  const core::RunResult with_gc = core::run_once(cfg, program);
  EXPECT_TRUE(with_gc.completed);
  EXPECT_TRUE(with_gc.answer_correct);
  EXPECT_EQ(with_gc.counters.orphans_gced, 0U);

  core::SystemConfig off = gc_config(3, /*gc_interval=*/0);
  const core::RunResult without = core::run_once(off, program);
  EXPECT_EQ(with_gc.makespan_ticks, without.makespan_ticks);
  EXPECT_EQ(with_gc.counters.scans, without.counters.scans);
}

TEST(OrphanGc, ReducesWastedScansUnderDuplicateLoad) {
  const auto program = lang::programs::tree_sum(6, 2, 400, 30);
  std::uint64_t wasted_with = 0;
  std::uint64_t wasted_without = 0;
  int reclaimed_runs = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    core::SystemConfig cfg_on = gc_config(seed, /*gc_interval=*/400);
    core::SystemConfig cfg_off = gc_config(seed, /*gc_interval=*/0);
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg_off, program);
    net::FaultPlan plan =
        net::FaultPlan::single(3, sim::SimTime(makespan / 2));
    plan.with_rejoin(sim::SimTime(makespan / 10), net::RejoinMode::kWarm);
    const core::RunResult on = core::run_once(cfg_on, program, plan);
    const core::RunResult off = core::run_once(cfg_off, program, plan);
    EXPECT_TRUE(on.answer_correct && off.answer_correct) << "seed " << seed;
    if (on.counters.orphans_gced > 0) ++reclaimed_runs;
    wasted_with += on.counters.scans;
    wasted_without += off.counters.scans;
  }
  ASSERT_GT(reclaimed_runs, 0);
  // Reclaiming duplicates early must not *increase* total work.
  EXPECT_LE(wasted_with, wasted_without + wasted_without / 20);
}

}  // namespace
}  // namespace splice
