// util/slab.h: the arena/slab allocator backing Task objects (Processor's
// SlabPool) and checkpoint-index map nodes (PoolAllocator over SlabArena).
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/slab.h"

namespace splice::util {
namespace {

struct Probe {
  static int live;
  int value;
  explicit Probe(int v) : value(v) { ++live; }
  ~Probe() { --live; }
};
int Probe::live = 0;

TEST(SlabPool, AcquireConstructsReleaseDestroys) {
  SlabPool<Probe> pool;
  EXPECT_EQ(pool.live(), 0u);
  Probe* p = pool.acquire(41);
  EXPECT_EQ(p->value, 41);
  EXPECT_EQ(Probe::live, 1);
  EXPECT_EQ(pool.live(), 1u);
  pool.release(p);
  EXPECT_EQ(Probe::live, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, RecyclesSlotsWithoutGrowingCapacity) {
  SlabPool<Probe, 8> pool;
  Probe* first = pool.acquire(1);
  pool.release(first);
  Probe* second = pool.acquire(2);
  // The freed slot comes straight back off the free list.
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->value, 2);
  pool.release(second);
  EXPECT_EQ(pool.capacity(), 8u);
}

TEST(SlabPool, PointersStayStableAcrossChunkGrowth) {
  SlabPool<Probe, 4, 2> pool;
  std::vector<Probe*> held;
  for (int i = 0; i < 64; ++i) held.push_back(pool.acquire(i));
  EXPECT_GE(pool.capacity(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(held[i]->value, i);
  for (Probe* p : held) pool.release(p);
  EXPECT_EQ(Probe::live, 0);
}

TEST(SlabPool, ChunksGrowGeometricallyFromMinChunk) {
  // A pool that only ever holds one object must not commit a full
  // kChunk-sized chunk: on a 256-processor machine there are hundreds of
  // pools, and most of them stay nearly empty.
  SlabPool<Probe, 256, 8> pool;
  Probe* p = pool.acquire(1);
  EXPECT_EQ(pool.capacity(), 8u);
  pool.release(p);
  std::vector<Probe*> held;
  for (int i = 0; i < 1000; ++i) held.push_back(pool.acquire(i));
  // 8 + 16 + 32 + 64 + 128 + 256 + 256 + 256 = 1016.
  EXPECT_EQ(pool.capacity(), 1016u);
  for (Probe* q : held) pool.release(q);
}

TEST(SlabPool, OwningPtrReturnsSlotOnScopeExit) {
  SlabPool<Probe> pool;
  {
    SlabPool<Probe>::Ptr p = pool.make(7);
    EXPECT_EQ(p->value, 7);
    EXPECT_EQ(pool.live(), 1u);
  }
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(Probe::live, 0);
}

TEST(SlabArena, RecyclesPerSizeClass) {
  SlabArena arena;
  void* a = arena.allocate(24);
  arena.deallocate(a, 24);
  // Same 16-byte class (17..32 bytes) reuses the freed block.
  void* b = arena.allocate(32);
  EXPECT_EQ(a, b);
  arena.deallocate(b, 32);
  // A different class carves fresh storage.
  void* c = arena.allocate(64);
  EXPECT_NE(b, c);
  arena.deallocate(c, 64);
  EXPECT_EQ(arena.chunks_allocated(), 1u);
}

TEST(SlabArena, OversizeBlocksBypassTheArena) {
  SlabArena arena;
  const std::size_t big = SlabArena::kMaxBlock + 1;
  void* p = arena.allocate(big);
  ASSERT_NE(p, nullptr);
  arena.deallocate(p, big);
  EXPECT_EQ(arena.chunks_allocated(), 0u);
}

TEST(PoolAllocator, BacksNodeContainers) {
  SlabArena arena;
  using Alloc = PoolAllocator<std::pair<const std::uint64_t, std::string>>;
  std::unordered_map<std::uint64_t, std::string, std::hash<std::uint64_t>,
                     std::equal_to<>, Alloc>
      map(Alloc{arena});
  for (std::uint64_t i = 0; i < 500; ++i) {
    map.emplace(i, "task-" + std::to_string(i));
  }
  EXPECT_GT(arena.chunks_allocated(), 0u);
  for (std::uint64_t i = 0; i < 500; ++i) {
    ASSERT_EQ(map.at(i), "task-" + std::to_string(i));
  }
  map.clear();
  // Refilling after clear recycles freed nodes instead of carving new chunks.
  const std::size_t chunks = arena.chunks_allocated();
  for (std::uint64_t i = 0; i < 500; ++i) map.emplace(i, "again");
  EXPECT_EQ(arena.chunks_allocated(), chunks);
}

TEST(PoolAllocator, EqualityTracksArenaIdentity) {
  SlabArena a;
  SlabArena b;
  PoolAllocator<int> pa(a);
  PoolAllocator<int> pb(b);
  PoolAllocator<long> pa2(pa);  // converting copy shares the arena
  EXPECT_TRUE(pa == pa2);
  EXPECT_FALSE(pa == pb);
}

}  // namespace
}  // namespace splice::util
