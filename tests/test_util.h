// Shared helpers for the test suite.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "core/simulation.h"
#include "lang/programs.h"
#include "net/fault_injector.h"

namespace splice::testing {

/// Baseline configuration used across the suite: small mesh, random
/// scheduler, splice recovery, heartbeats on, tracing off.
inline core::SystemConfig base_config(std::uint32_t processors = 8,
                                      std::uint64_t seed = 1) {
  core::SystemConfig cfg;
  cfg.processors = processors;
  cfg.topology = net::TopologyKind::kMesh2D;
  cfg.scheduler.kind = core::SchedulerKind::kRandom;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 1500;
  cfg.seed = seed;
  return cfg;
}

/// Reference fibonacci for oracle checks.
inline std::int64_t fib_value(std::int64_t n) {
  if (n < 2) return n;
  std::int64_t a = 0, b = 1;
  for (std::int64_t i = 2; i <= n; ++i) {
    const std::int64_t c = a + b;
    a = b;
    b = c;
  }
  return b;
}

/// Reference binomial coefficient.
inline std::int64_t binom_value(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) return 0;
  std::int64_t result = 1;
  for (std::int64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

/// Known n-queens solution counts.
inline std::int64_t nqueens_value(std::uint32_t n) {
  static const std::int64_t kCounts[] = {1, 1, 0, 0, 2, 10, 4, 40, 92, 352};
  return n < 10 ? kCounts[n] : -1;
}

}  // namespace splice::testing
