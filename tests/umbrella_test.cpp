// The umbrella header must pull in the entire public API and stay
// self-sufficient for downstream users.
#include "splice.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughPublicApiOnly) {
  splice::core::SystemConfig cfg;
  cfg.processors = 4;
  cfg.topology = splice::net::TopologyKind::kComplete;
  cfg.recovery.kind = splice::core::RecoveryKind::kSplice;
  splice::core::Simulation sim(cfg, splice::lang::programs::fib(8, 10));
  const splice::core::RunResult r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.answer.as_int(), 21);
}

}  // namespace
