#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <variant>
#include <vector>

#include "net/fault_injector.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace splice::net {
namespace {

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(Topology, CompleteGraphAllPairsOneHop) {
  Topology t(TopologyKind::kComplete, 6);
  for (ProcId a = 0; a < 6; ++a) {
    for (ProcId b = 0; b < 6; ++b) {
      EXPECT_EQ(t.hops(a, b), a == b ? 0U : 1U);
    }
    EXPECT_EQ(t.neighbors(a).size(), 5U);
  }
  EXPECT_EQ(t.diameter(), 1U);
}

TEST(Topology, RingDistancesWrap) {
  Topology t(TopologyKind::kRing, 8);
  EXPECT_EQ(t.hops(0, 1), 1U);
  EXPECT_EQ(t.hops(0, 4), 4U);
  EXPECT_EQ(t.hops(0, 7), 1U);  // wraps
  EXPECT_EQ(t.hops(1, 6), 3U);
  EXPECT_EQ(t.diameter(), 4U);
  EXPECT_EQ(t.neighbors(3).size(), 2U);
}

TEST(Topology, StarHubAndSpokes) {
  Topology t(TopologyKind::kStar, 5);
  EXPECT_EQ(t.hops(0, 3), 1U);
  EXPECT_EQ(t.hops(2, 4), 2U);
  EXPECT_EQ(t.diameter(), 2U);
  EXPECT_EQ(t.neighbors(0).size(), 4U);
  EXPECT_EQ(t.neighbors(1).size(), 1U);
}

TEST(Topology, MeshManhattanDistance) {
  Topology t(TopologyKind::kMesh2D, 12);  // 3x4
  const auto [rows, cols] = t.grid();
  EXPECT_EQ(rows * cols, 12U);
  // corner to opposite corner
  EXPECT_EQ(t.hops(0, 11), (rows - 1) + (cols - 1));
  // no wrap: 0 and end of row are cols-1 apart
  EXPECT_EQ(t.hops(0, cols - 1), cols - 1);
}

TEST(Topology, TorusWrapsBothAxes) {
  Topology t(TopologyKind::kTorus2D, 16);  // 4x4
  EXPECT_EQ(t.hops(0, 3), 1U);   // row wrap
  EXPECT_EQ(t.hops(0, 12), 1U);  // column wrap
  EXPECT_EQ(t.diameter(), 4U);
}

TEST(Topology, HypercubeHammingDistance) {
  Topology t(TopologyKind::kHypercube, 16);
  EXPECT_EQ(t.hops(0b0000, 0b1111), 4U);
  EXPECT_EQ(t.hops(0b0101, 0b0100), 1U);
  EXPECT_EQ(t.diameter(), 4U);
  EXPECT_EQ(t.neighbors(0).size(), 4U);
}

TEST(Topology, HypercubeRejectsNonPowerOfTwo) {
  EXPECT_THROW(Topology(TopologyKind::kHypercube, 12), std::invalid_argument);
}

TEST(Topology, RejectsZeroNodes) {
  EXPECT_THROW(Topology(TopologyKind::kRing, 0), std::invalid_argument);
}

TEST(Topology, ParseRoundTrip) {
  for (auto kind :
       {TopologyKind::kComplete, TopologyKind::kRing, TopologyKind::kStar,
        TopologyKind::kMesh2D, TopologyKind::kTorus2D,
        TopologyKind::kHypercube}) {
    EXPECT_EQ(parse_topology(to_string(kind)), kind);
  }
  EXPECT_THROW(static_cast<void>(parse_topology("blob")), std::invalid_argument);
}

class TopologySymmetryTest
    : public ::testing::TestWithParam<std::tuple<TopologyKind, ProcId>> {};

TEST_P(TopologySymmetryTest, HopsSymmetricAndNeighborsAtDistanceOne) {
  const auto [kind, n] = GetParam();
  Topology t(kind, n);
  for (ProcId a = 0; a < n; ++a) {
    EXPECT_EQ(t.hops(a, a), 0U);
    for (ProcId b = 0; b < n; ++b) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
      if (a != b) {
        EXPECT_GE(t.hops(a, b), 1U);
      }
      EXPECT_LE(t.hops(a, b), t.diameter());
    }
    for (ProcId q : t.neighbors(a)) {
      EXPECT_EQ(t.hops(a, q), 1U) << to_string(kind) << " " << a << "-" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TopologySymmetryTest,
    ::testing::Values(std::tuple{TopologyKind::kComplete, ProcId{7}},
                      std::tuple{TopologyKind::kRing, ProcId{9}},
                      std::tuple{TopologyKind::kStar, ProcId{6}},
                      std::tuple{TopologyKind::kMesh2D, ProcId{12}},
                      std::tuple{TopologyKind::kTorus2D, ProcId{12}},
                      std::tuple{TopologyKind::kHypercube, ProcId{8}},
                      std::tuple{TopologyKind::kRing, ProcId{2}},
                      std::tuple{TopologyKind::kMesh2D, ProcId{1}}));

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

struct NetFixture {
  sim::Simulator sim;
  Network net;
  std::vector<Envelope> received;

  explicit NetFixture(ProcId n = 4,
                      TopologyKind kind = TopologyKind::kComplete)
      : net(sim, Topology(kind, n), LatencyModel{}) {
    for (ProcId p = 0; p < n; ++p) {
      net.set_receiver(
          p, [this](Envelope env) { received.push_back(std::move(env)); });
    }
  }

  Envelope make(MsgKind kind, ProcId from, ProcId to,
                std::uint32_t size = 1) {
    Envelope env;
    env.kind = kind;
    env.from = from;
    env.to = to;
    env.size_units = size;
    return env;
  }
};

TEST(Network, DeliversWithHopAndSizeLatency) {
  NetFixture f(4, TopologyKind::kRing);
  f.net.send(f.make(MsgKind::kControl, 0, 2, 5));  // 2 hops, 5 units
  EXPECT_TRUE(f.sim.run_until());
  ASSERT_EQ(f.received.size(), 1U);
  const LatencyModel lm;
  EXPECT_EQ(f.sim.now().ticks(), lm.base + 2 * lm.per_hop + 5 * lm.per_unit);
}

TEST(Network, LocalDeliveryIsCheap) {
  NetFixture f;
  f.net.send(f.make(MsgKind::kControl, 1, 1));
  EXPECT_TRUE(f.sim.run_until());
  EXPECT_EQ(f.sim.now().ticks(), LatencyModel{}.local);
  ASSERT_EQ(f.received.size(), 1U);
}

TEST(Network, SendToDeadYieldsDeliveryFailureToSender) {
  NetFixture f;
  f.net.kill(2);
  f.net.send(f.make(MsgKind::kTaskPacket, 0, 2));
  EXPECT_TRUE(f.sim.run_until());
  ASSERT_EQ(f.received.size(), 1U);
  const Envelope& notice = f.received[0];
  EXPECT_EQ(notice.kind, MsgKind::kDeliveryFailure);
  EXPECT_EQ(notice.to, 0U);
  const Envelope& original = *std::get<EnvelopeBox>(notice.payload);
  EXPECT_EQ(original.kind, MsgKind::kTaskPacket);
  EXPECT_EQ(original.to, 2U);
  EXPECT_EQ(f.net.stats().dropped_dead_dest, 1U);
  EXPECT_EQ(f.net.stats().failure_notices, 1U);
}

TEST(Network, KilledMidFlightAlsoBounces) {
  NetFixture f;
  f.net.send(f.make(MsgKind::kControl, 0, 3));
  f.sim.after(sim::SimTime(1), [&] { f.net.kill(3); });  // before arrival
  EXPECT_TRUE(f.sim.run_until());
  ASSERT_EQ(f.received.size(), 1U);
  EXPECT_EQ(f.received[0].kind, MsgKind::kDeliveryFailure);
}

TEST(Network, DeadSenderTransmitsNothing) {
  NetFixture f;
  f.net.kill(1);
  f.net.send(f.make(MsgKind::kControl, 1, 0));
  EXPECT_TRUE(f.sim.run_until());
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_dead_sender, 1U);
}

TEST(Network, InFlightFromFreshlyDeadStillArrives) {
  // Fail-silent semantics: messages transmitted before the crash arrive.
  NetFixture f;
  f.net.send(f.make(MsgKind::kControl, 1, 0));
  f.sim.after(sim::SimTime(1), [&] { f.net.kill(1); });
  EXPECT_TRUE(f.sim.run_until());
  ASSERT_EQ(f.received.size(), 1U);
  EXPECT_EQ(f.received[0].kind, MsgKind::kControl);
}

TEST(Network, NoFailureNoticeWhenSenderDiedToo) {
  NetFixture f;
  f.net.kill(2);
  f.net.send(f.make(MsgKind::kControl, 0, 2));
  f.sim.after(sim::SimTime(1), [&] { f.net.kill(0); });
  EXPECT_TRUE(f.sim.run_until());
  EXPECT_TRUE(f.received.empty());
}

TEST(Network, StatsCountByKind) {
  NetFixture f;
  f.net.send(f.make(MsgKind::kHeartbeat, 0, 1));
  f.net.send(f.make(MsgKind::kHeartbeat, 0, 2));
  f.net.send(f.make(MsgKind::kForwardResult, 1, 0, 3));
  EXPECT_TRUE(f.sim.run_until());
  const NetworkStats& s = f.net.stats();
  EXPECT_EQ(s.sent[static_cast<std::size_t>(MsgKind::kHeartbeat)], 2U);
  EXPECT_EQ(s.delivered[static_cast<std::size_t>(MsgKind::kForwardResult)],
            1U);
  EXPECT_EQ(s.total_sent(), 3U);
  EXPECT_EQ(s.total_units, 5U);
}

TEST(Network, AliveCountTracksKills) {
  NetFixture f;
  EXPECT_EQ(f.net.alive_count(), 4U);
  f.net.kill(0);
  f.net.kill(0);  // idempotent
  EXPECT_EQ(f.net.alive_count(), 3U);
  EXPECT_FALSE(f.net.alive(0));
  EXPECT_TRUE(f.net.alive(1));
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, TimedKillFiresAtRequestedTick) {
  sim::Simulator sim;
  Network net(sim, Topology(TopologyKind::kComplete, 3), LatencyModel{});
  for (ProcId p = 0; p < 3; ++p) net.set_receiver(p, [](Envelope) {});
  std::vector<std::pair<std::int64_t, ProcId>> kills;
  FaultInjector injector(sim, net, FaultPlan::single(1, sim::SimTime(500)),
                         [&](ProcId p) { kills.push_back({sim.now().ticks(), p}); });
  injector.arm();
  EXPECT_TRUE(sim.run_until());
  ASSERT_EQ(kills.size(), 1U);
  EXPECT_EQ(kills[0], (std::pair<std::int64_t, ProcId>{500, 1}));
  EXPECT_FALSE(net.alive(1));
  EXPECT_EQ(injector.kills_executed(), 1U);
}

TEST(FaultInjector, TriggeredKillWaitsForTrigger) {
  sim::Simulator sim;
  Network net(sim, Topology(TopologyKind::kComplete, 3), LatencyModel{});
  for (ProcId p = 0; p < 3; ++p) net.set_receiver(p, [](Envelope) {});
  FaultPlan plan;
  plan.triggered.push_back({2, "checkpoint-reached", sim::SimTime(10)});
  FaultInjector injector(sim, net, plan, nullptr);
  injector.arm();
  sim.after(sim::SimTime(100), [&] { injector.fire_trigger("wrong-name"); });
  sim.after(sim::SimTime(200),
            [&] { injector.fire_trigger("checkpoint-reached"); });
  sim.after(sim::SimTime(200),
            [&] { injector.fire_trigger("checkpoint-reached"); });  // once only
  EXPECT_TRUE(sim.run_until());
  EXPECT_FALSE(net.alive(2));
  EXPECT_EQ(injector.kills_executed(), 1U);
  EXPECT_EQ(sim.now().ticks(), 210);
}

TEST(FaultInjector, MultiFaultPlan) {
  sim::Simulator sim;
  Network net(sim, Topology(TopologyKind::kComplete, 4), LatencyModel{});
  for (ProcId p = 0; p < 4; ++p) net.set_receiver(p, [](Envelope) {});
  FaultPlan plan;
  plan.timed.push_back({0, sim::SimTime(100)});
  plan.timed.push_back({3, sim::SimTime(300)});
  EXPECT_EQ(plan.fault_count(), 2U);
  FaultInjector injector(sim, net, plan, nullptr);
  injector.arm();
  EXPECT_TRUE(sim.run_until());
  EXPECT_EQ(net.alive_count(), 2U);
}

TEST(FaultInjector, KillNowIsIdempotent) {
  sim::Simulator sim;
  Network net(sim, Topology(TopologyKind::kComplete, 2), LatencyModel{});
  int callbacks = 0;
  FaultInjector injector(sim, net, {}, [&](ProcId) { ++callbacks; });
  injector.kill_now(1);
  injector.kill_now(1);
  EXPECT_EQ(callbacks, 1);
}

TEST(FaultInjector, KillNowOnExternallyDeadNodeIsIgnored) {
  sim::Simulator sim;
  Network net(sim, Topology(TopologyKind::kComplete, 2), LatencyModel{});
  int callbacks = 0;
  FaultInjector injector(sim, net, {}, [&](ProcId) { ++callbacks; });
  net.kill(1);  // died outside the injector (e.g. a test harness)
  injector.kill_now(1);
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(injector.kills_executed(), 0U);
  EXPECT_EQ(injector.first_kill_ticks(), -1);
}

TEST(FaultInjector, SharedTriggerNameFiresEveryMatchingFault) {
  sim::Simulator sim;
  Network net(sim, Topology(TopologyKind::kComplete, 4), LatencyModel{});
  for (ProcId p = 0; p < 4; ++p) net.set_receiver(p, [](Envelope) {});
  FaultPlan plan;
  plan.triggered.push_back({1, "wave", sim::SimTime(0)});
  plan.triggered.push_back({2, "wave", sim::SimTime(30)});
  FaultInjector injector(sim, net, plan, nullptr);
  injector.arm();
  sim.after(sim::SimTime(100), [&] { injector.fire_trigger("wave"); });
  EXPECT_TRUE(sim.run_until());
  EXPECT_FALSE(net.alive(1));  // immediate
  EXPECT_FALSE(net.alive(2));  // 30 ticks later
  EXPECT_EQ(injector.kills_executed(), 2U);
  EXPECT_EQ(sim.now().ticks(), 130);
}

TEST(FaultInjector, RefiringATriggerDoesNotDoubleScheduleDelayedKills) {
  sim::Simulator sim;
  Network net(sim, Topology(TopologyKind::kComplete, 3), LatencyModel{});
  for (ProcId p = 0; p < 3; ++p) net.set_receiver(p, [](Envelope) {});
  FaultPlan plan;
  plan.triggered.push_back({2, "go", sim::SimTime(50)});
  std::vector<std::int64_t> kill_times;
  FaultInjector injector(sim, net, plan,
                         [&](ProcId) { kill_times.push_back(sim.now().ticks()); });
  injector.arm();
  sim.after(sim::SimTime(100), [&] { injector.fire_trigger("go"); });
  sim.after(sim::SimTime(120), [&] { injector.fire_trigger("go"); });
  EXPECT_TRUE(sim.run_until());
  // One kill at 150, no second scheduling from the refire at 120.
  EXPECT_EQ(kill_times, (std::vector<std::int64_t>{150}));
  EXPECT_EQ(injector.kills_executed(), 1U);
}

}  // namespace
}  // namespace splice::net
