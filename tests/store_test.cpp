// Durable checkpoint store: mutation logging through the CheckpointTable
// listener, persistency models, replay round-trip, compaction, the chunked
// state streamer, and the rejoin-mode scenario DSL.
#include <gtest/gtest.h>

#include <vector>

#include "checkpoint/checkpoint_table.h"
#include "core/config.h"
#include "store/durable_store.h"
#include "store/state_transfer.h"

namespace splice {
namespace {

using checkpoint::CheckpointRecord;
using checkpoint::CheckpointTable;
using runtime::LevelStamp;
using runtime::TaskPacket;
using store::DurableStore;
using store::Persistency;

TaskPacket packet_for(LevelStamp::Digits digits) {
  TaskPacket packet;
  packet.stamp = LevelStamp(std::move(digits));
  packet.fn = 0;
  packet.ancestors.push_back(runtime::TaskRef{0, 1});
  return packet;
}

CheckpointRecord record_for(LevelStamp::Digits digits,
                            runtime::TaskUid owner) {
  CheckpointRecord record;
  record.owner = owner;
  record.site = digits.back();
  record.packet = packet_for(std::move(digits));
  return record;
}

// ---------------------------------------------------------------------------
// Logging & replay
// ---------------------------------------------------------------------------

TEST(DurableStore, ReplayRoundTripEqualsLiveTable) {
  CheckpointTable live(0, 4);
  DurableStore store(0, Persistency::kLocal, 1.0, 99);
  live.set_listener(&store);

  live.record(1, record_for({1}, 10));
  live.record(1, record_for({2}, 10));
  live.record(2, record_for({3}, 11));
  live.record(3, record_for({4}, 11));
  EXPECT_TRUE(live.release(1, LevelStamp({2})));   // child returned
  (void)live.take(3);                              // P3 died, reissued
  live.record(2, record_for({4}, 11));             // ... onto P2

  store.on_crash(0);  // local: everything survives
  CheckpointTable replayed(0, 4);
  const std::size_t restored = store.replay_into(replayed);

  EXPECT_EQ(restored, live.total_records());
  for (net::ProcId dest = 0; dest < 4; ++dest) {
    ASSERT_EQ(replayed.entry(dest).size(), live.entry(dest).size())
        << "entry P" << dest;
    for (std::size_t i = 0; i < live.entry(dest).size(); ++i) {
      EXPECT_EQ(replayed.entry(dest)[i].packet.stamp,
                live.entry(dest)[i].packet.stamp);
      EXPECT_TRUE(replayed.entry(dest)[i].restored);
      EXPECT_FALSE(live.entry(dest)[i].restored);
    }
  }
}

TEST(DurableStore, PersistencyNoneLogsNothingAndLosesAll) {
  CheckpointTable live(0, 2);
  DurableStore store(0, Persistency::kNone, 1.0, 1);
  live.set_listener(&store);
  live.record(1, record_for({1}, 10));
  EXPECT_FALSE(store.enabled());
  EXPECT_TRUE(store.log().empty());  // volatile stores skip journaling
  store.on_crash(0);
  CheckpointTable replayed(0, 2);
  EXPECT_EQ(store.replay_into(replayed), 0U);
  EXPECT_EQ(replayed.total_records(), 0U);
}

TEST(DurableStore, LossySurvivalIsSeededAndDeterministic) {
  auto build = [](double p, std::uint64_t seed) {
    CheckpointTable live(0, 8);
    DurableStore store(0, Persistency::kLossy, p, seed);
    live.set_listener(&store);
    for (runtime::StampDigit d = 1; d <= 40; ++d) {
      live.record(static_cast<net::ProcId>(d % 8), record_for({d}, d));
    }
    store.on_crash(/*dying=*/3);
    return store.log().size();
  };
  EXPECT_EQ(build(1.0, 7), 40U);  // p=1: lossless
  EXPECT_EQ(build(0.0, 7), 0U);   // p=0: total loss
  const std::size_t survivors = build(0.5, 7);
  EXPECT_GT(survivors, 0U);
  EXPECT_LT(survivors, 40U);
  EXPECT_EQ(build(0.5, 7), survivors);     // same seed: same losses
  EXPECT_NE(build(0.5, 8), survivors);     // different seed: different draw
}

TEST(DurableStore, LossyLostReleaseLeavesHarmlessStaleRecord) {
  // Hand-build a log where the release entry was lost but the record
  // survived: replay must keep the (stale) record — it only costs a
  // redundant reissue later, never a lost obligation.
  DurableStore store(0, Persistency::kLocal, 1.0, 1);
  store.set_incarnation(0);
  store.on_record(1, record_for({1}, 10));
  CheckpointTable replayed(0, 2);
  EXPECT_EQ(store.replay_into(replayed), 1U);
  EXPECT_EQ(replayed.entry(1).size(), 1U);
}

TEST(DurableStore, CompactRewritesLogToLiveRecords) {
  CheckpointTable live(0, 4);
  DurableStore store(0, Persistency::kLocal, 1.0, 1);
  live.set_listener(&store);
  live.record(1, record_for({1}, 10));
  live.record(2, record_for({2}, 10));
  EXPECT_TRUE(live.release(1, LevelStamp({1})));
  EXPECT_EQ(store.log().size(), 3U);  // record, record, release
  store.compact_from(live);
  EXPECT_EQ(store.log().size(), 1U);  // one live record remains
  EXPECT_EQ(store.log()[0].record.packet.stamp, LevelStamp({2}));
}

TEST(DurableStore, TakeLogsTheWholeEntryDrop) {
  CheckpointTable live(0, 4);
  DurableStore store(0, Persistency::kLocal, 1.0, 1);
  live.set_listener(&store);
  live.record(1, record_for({1}, 10));
  live.record(1, record_for({2}, 10));
  (void)live.take(1);
  store.on_crash(0);
  CheckpointTable replayed(0, 4);
  EXPECT_EQ(store.replay_into(replayed), 0U);  // taken entries stay gone
}

// ---------------------------------------------------------------------------
// State streamer (peer-side chunk pump)
// ---------------------------------------------------------------------------

struct StreamerFixture {
  std::vector<store::StateChunkMsg> sent;
  std::vector<std::function<void()>> pending;
  bool rejoiner_alive = true;
  std::vector<runtime::TaskPacket> packets;

  store::StateStreamer::Env env() {
    store::StateStreamer::Env e;
    e.chunk_records = 2;
    e.chunk_interval = sim::SimTime(10);
    e.send = [this](net::ProcId, store::StateChunkMsg chunk) {
      sent.push_back(std::move(chunk));
    };
    e.after = [this](sim::SimTime, std::function<void()> fn) {
      pending.push_back(std::move(fn));
    };
    e.alive = [this](net::ProcId) { return rejoiner_alive; };
    e.packets_against = [this](net::ProcId) { return packets; };
    e.known_dead = [] { return std::vector<net::ProcId>{3}; };
    return e;
  }

  void drain() {
    while (!pending.empty()) {
      auto fn = std::move(pending.front());
      pending.erase(pending.begin());
      fn();
    }
  }
};

TEST(StateStreamer, ChunksAreBoundedAndLivenessRidesFirstChunk) {
  StreamerFixture fx;
  for (int i = 0; i < 5; ++i) {
    fx.packets.push_back(packet_for({static_cast<runtime::StampDigit>(i + 1)}));
  }
  store::StateStreamer streamer(fx.env());
  streamer.start(2, /*incarnation=*/1);
  fx.drain();
  ASSERT_EQ(fx.sent.size(), 3U);  // 2 + 2 + 1 packets
  EXPECT_EQ(fx.sent[0].packets.size(), 2U);
  EXPECT_EQ(fx.sent[1].packets.size(), 2U);
  EXPECT_EQ(fx.sent[2].packets.size(), 1U);
  EXPECT_EQ(fx.sent[0].known_dead, std::vector<net::ProcId>{3});
  EXPECT_TRUE(fx.sent[1].known_dead.empty());  // liveness: first chunk only
  EXPECT_FALSE(fx.sent[0].last);
  EXPECT_TRUE(fx.sent[2].last);
  for (const auto& chunk : fx.sent) EXPECT_EQ(chunk.incarnation, 1U);
  EXPECT_EQ(streamer.packets_sent(), 5U);
}

TEST(StateStreamer, EmptyEntryStillSendsOneFinalChunk) {
  StreamerFixture fx;
  store::StateStreamer streamer(fx.env());
  streamer.start(2, 1);
  fx.drain();
  ASSERT_EQ(fx.sent.size(), 1U);
  EXPECT_TRUE(fx.sent[0].last);
  EXPECT_TRUE(fx.sent[0].packets.empty());
}

TEST(StateStreamer, RestartSupersedesAndDeadRejoinerStopsPump) {
  StreamerFixture fx;
  for (int i = 0; i < 6; ++i) {
    fx.packets.push_back(packet_for({static_cast<runtime::StampDigit>(i + 1)}));
  }
  store::StateStreamer streamer(fx.env());
  streamer.start(2, 1);
  ASSERT_EQ(fx.sent.size(), 1U);  // first chunk immediate
  // Rejoiner re-crashes and revives: new incarnation supersedes.
  streamer.start(2, 2);
  fx.drain();
  // The epoch-guarded old pump chain sent nothing more; the new stream
  // resent everything under incarnation 2.
  std::size_t inc2_packets = 0;
  for (std::size_t i = 1; i < fx.sent.size(); ++i) {
    EXPECT_EQ(fx.sent[i].incarnation, 2U);
    inc2_packets += fx.sent[i].packets.size();
  }
  EXPECT_EQ(inc2_packets, 6U);

  // Now a stream into a corpse: pump stops without sending.
  fx.sent.clear();
  streamer.start(2, 3);
  ASSERT_EQ(fx.sent.size(), 1U);
  fx.rejoiner_alive = false;
  fx.drain();
  EXPECT_EQ(fx.sent.size(), 1U);  // nothing after the death
}

TEST(StateStreamer, DelayedStaleRequestCannotSupersedeNewerStream) {
  // A request from an older incarnation that arrives late (fast repair:
  // repair delay below network latency) must not restart the stream with
  // the old incarnation — its chunks would all drop as stale and the
  // rejoiner's catch-up would never complete.
  StreamerFixture fx;
  for (int i = 0; i < 4; ++i) {
    fx.packets.push_back(packet_for({static_cast<runtime::StampDigit>(i + 1)}));
  }
  store::StateStreamer streamer(fx.env());
  streamer.start(2, /*incarnation=*/5);
  streamer.start(2, /*incarnation=*/4);  // stale, delayed in the network
  fx.drain();
  for (const auto& chunk : fx.sent) EXPECT_EQ(chunk.incarnation, 5U);
  std::size_t total = 0;
  for (const auto& chunk : fx.sent) total += chunk.packets.size();
  EXPECT_EQ(total, 4U);  // the live stream ran to completion, exactly once
}

// ---------------------------------------------------------------------------
// Scenario DSL: rejoin modes
// ---------------------------------------------------------------------------

TEST(StoreDsl, RejoinModeParses) {
  const net::FaultPlan cold = core::parse_fault_plan("rejoin:4000");
  EXPECT_TRUE(cold.rejoin.enabled);
  EXPECT_EQ(cold.rejoin.mode, net::RejoinMode::kCold);

  const net::FaultPlan warm =
      core::parse_fault_plan("kill:2@500;rejoin:4000,warm");
  EXPECT_EQ(warm.rejoin.mode, net::RejoinMode::kWarm);
  EXPECT_EQ(warm.rejoin.delay, sim::SimTime(4000));

  const net::FaultPlan explicit_cold =
      core::parse_fault_plan("rejoin:100,cold");
  EXPECT_EQ(explicit_cold.rejoin.mode, net::RejoinMode::kCold);

  EXPECT_THROW((void)core::parse_fault_plan("rejoin:100,tepid"),
               std::invalid_argument);
  EXPECT_THROW((void)core::parse_fault_plan("rejoin:100,warm,extra"),
               std::invalid_argument);
}

TEST(StoreDsl, ConfigDescribesStoreModel) {
  core::SystemConfig cfg;
  EXPECT_EQ(cfg.describe().find("store="), std::string::npos);
  cfg.store.model = store::Persistency::kLocal;
  EXPECT_NE(cfg.describe().find("store=local"), std::string::npos);
  cfg.store.model = store::Persistency::kLossy;
  cfg.store.survive_p = 0.25;
  EXPECT_NE(cfg.describe().find("store=lossy(p=0.25)"), std::string::npos);
}

}  // namespace
}  // namespace splice
