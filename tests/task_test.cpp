// Unit tests for Task: the demand-driven scan (DEMAND_IT detection, lazy
// conditionals, suspension), call-slot mechanics (voting, prefill,
// duplicate suppression), and state accounting — §4.1's case machinery in
// isolation from the network.
#include <gtest/gtest.h>

#include <tuple>

#include "lang/program.h"
#include "lang/programs.h"
#include "runtime/task.h"

namespace splice::runtime {
namespace {

using lang::FunctionBuilder;
using lang::Program;
using lang::Value;

TaskPacket packet_for(const Program& p, std::vector<Value> args = {}) {
  TaskPacket packet;
  packet.stamp = LevelStamp::root();
  packet.fn = p.entry();
  const std::vector<Value>& chosen = args.empty() ? p.entry_args() : args;
  packet.args = TaskPacket::Args(chosen.begin(), chosen.end());
  packet.ancestors.push_back(TaskRef{net::kNoProc, 1});
  return packet;
}

// f() = 1 + 2: no calls, completes on the first scan.
TEST(TaskScan, PureBodyCompletesImmediately) {
  Program p;
  FunctionBuilder b("f", 0);
  const auto root = b.add(b.constant(1), b.constant(2));
  std::ignore = p.add_function(std::move(b).build(root));
  p.set_entry(0, {});
  Task task(10, packet_for(p), sim::SimTime(0));
  const ScanOutcome out = task.scan(p);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(out.result->as_int(), 3);
  EXPECT_TRUE(out.spawns.empty());
  EXPECT_GT(out.cost, 0U);
}

// g(n) = leaf(n-1) + leaf(n-2): both calls must be demanded in ONE scan
// (maximal parallelism), then the task suspends.
Program two_call_program() {
  Program p;
  {
    FunctionBuilder leaf("leaf", 1);
    const auto root = leaf.add(leaf.arg(0), leaf.constant(100));
    std::ignore = p.add_function(std::move(leaf).build(root));
  }
  {
    FunctionBuilder g("g", 1);
    const auto c1 = g.call(0, {g.sub(g.arg(0), g.constant(1))});
    const auto c2 = g.call(0, {g.sub(g.arg(0), g.constant(2))});
    const auto root = g.add(c1, c2);
    std::ignore = p.add_function(std::move(g).build(root));
  }
  p.set_entry(1, {Value::integer(10)});
  return p;
}

TEST(TaskScan, DemandsAllReadyCallsInOneScan) {
  const Program p = two_call_program();
  Task task(11, packet_for(p), sim::SimTime(0));
  const ScanOutcome out = task.scan(p);
  EXPECT_FALSE(out.result.has_value());
  ASSERT_EQ(out.spawns.size(), 2U);
  EXPECT_EQ(out.spawns[0].args[0].as_int(), 9);
  EXPECT_EQ(out.spawns[1].args[0].as_int(), 8);
}

TEST(TaskScan, RescanDoesNotRedemandSpawnedSlots) {
  const Program p = two_call_program();
  Task task(12, packet_for(p), sim::SimTime(0));
  ScanOutcome first = task.scan(p);
  for (const SpawnRequest& req : first.spawns) {
    TaskPacket child;
    child.stamp = task.stamp().child(req.site);
    child.fn = req.fn;
    child.args = req.args;
    child.call_site = req.site;
    task.note_spawned(req.site, child);
  }
  const ScanOutcome second = task.scan(p);
  EXPECT_TRUE(second.spawns.empty());
  EXPECT_FALSE(second.result.has_value());
  EXPECT_EQ(task.outstanding_children(), 2U);
}

TEST(TaskScan, CompletesWhenAllSlotsResolve) {
  const Program p = two_call_program();
  Task task(13, packet_for(p), sim::SimTime(0));
  ScanOutcome first = task.scan(p);
  for (const SpawnRequest& req : first.spawns) {
    TaskPacket child;
    child.call_site = req.site;
    task.note_spawned(req.site, child);
    EXPECT_TRUE(
        task.deliver_result(req.site, Value::integer(50), /*quorum=*/1));
  }
  const ScanOutcome done = task.scan(p);
  ASSERT_TRUE(done.result.has_value());
  EXPECT_EQ(done.result->as_int(), 100);
  EXPECT_EQ(task.outstanding_children(), 0U);
}

// h(n) = n < 2 ? n : h(n-1): the untaken branch must not spawn.
TEST(TaskScan, LazyConditionalSpawnsOnlyTakenBranch) {
  Program p;
  FunctionBuilder b("h", 1);
  const auto cond = b.lt(b.arg(0), b.constant(2));
  const auto rec = b.call(0, {b.sub(b.arg(0), b.constant(1))});
  const auto root = b.iff(cond, b.arg(0), rec);
  std::ignore = p.add_function(std::move(b).build(root));
  p.set_entry(0, {Value::integer(0)});

  Task base_case(14, packet_for(p, {Value::integer(1)}), sim::SimTime(0));
  const ScanOutcome base = base_case.scan(p);
  ASSERT_TRUE(base.result.has_value());
  EXPECT_EQ(base.result->as_int(), 1);
  EXPECT_TRUE(base.spawns.empty());

  Task rec_case(15, packet_for(p, {Value::integer(5)}), sim::SimTime(0));
  const ScanOutcome rec_out = rec_case.scan(p);
  EXPECT_FALSE(rec_out.result.has_value());
  EXPECT_EQ(rec_out.spawns.size(), 1U);
}

// Nested calls: outer(inner(x)) — inner spawns first; outer only when
// inner's slot resolves.
TEST(TaskScan, NestedCallsSpawnInDependencyOrder) {
  Program p;
  {
    FunctionBuilder f("id", 1);
    const auto root = f.arg(0);
    std::ignore = p.add_function(std::move(f).build(root));
  }
  {
    FunctionBuilder g("outer", 1);
    const auto inner = g.call(0, {g.arg(0)});
    const auto outer = g.call(0, {inner});
    std::ignore = p.add_function(std::move(g).build(outer));
  }
  p.set_entry(1, {Value::integer(7)});
  Task task(16, packet_for(p), sim::SimTime(0));

  ScanOutcome first = task.scan(p);
  ASSERT_EQ(first.spawns.size(), 1U);  // only the inner call is ready
  const auto inner_site = first.spawns[0].site;
  TaskPacket child;
  child.call_site = inner_site;
  task.note_spawned(inner_site, child);
  EXPECT_TRUE(task.deliver_result(inner_site, Value::integer(7), 1));

  ScanOutcome second = task.scan(p);
  ASSERT_EQ(second.spawns.size(), 1U);  // now the outer call is ready
  EXPECT_NE(second.spawns[0].site, inner_site);
  EXPECT_EQ(second.spawns[0].args[0].as_int(), 7);
}

// ---------------------------------------------------------------------------
// Slot mechanics
// ---------------------------------------------------------------------------

TEST(TaskSlots, QuorumVoting) {
  const Program p = two_call_program();
  Task task(17, packet_for(p), sim::SimTime(0));
  TaskPacket child;
  child.call_site = 3;
  task.note_spawned(3, child);
  // Majority of 3: two identical votes required (§5.3).
  EXPECT_FALSE(task.deliver_result(3, Value::integer(9), /*quorum=*/2));
  EXPECT_FALSE(task.slot(3).resolved());
  EXPECT_TRUE(task.deliver_result(3, Value::integer(9), 2));
  EXPECT_TRUE(task.slot(3).resolved());
  // Third (late) replica: ignored.
  EXPECT_FALSE(task.deliver_result(3, Value::integer(9), 2));
}

TEST(TaskSlots, DuplicateResultIgnored) {
  const Program p = two_call_program();
  Task task(18, packet_for(p), sim::SimTime(0));
  TaskPacket child;
  child.call_site = 5;
  task.note_spawned(5, child);
  EXPECT_TRUE(task.deliver_result(5, Value::integer(1), 1));
  EXPECT_FALSE(task.deliver_result(5, Value::integer(1), 1));  // case 6/7
}

TEST(TaskSlots, PrefillMakesTwinSkipSpawn) {
  // Case 4 (§4.1): the orphan result arrives before the twin's first scan;
  // "P' will not spawn C' because the answer is already there."
  const Program p = two_call_program();
  Task twin(19, packet_for(p), sim::SimTime(0));
  // Site ids for g's two calls are the Call nodes' ExprIds; discover them
  // via a probe task.
  Task probe(20, packet_for(p), sim::SimTime(0));
  const ScanOutcome probe_out = probe.scan(p);
  ASSERT_EQ(probe_out.spawns.size(), 2U);
  const auto site_a = probe_out.spawns[0].site;

  twin.prefill(site_a, Value::integer(109));
  const ScanOutcome out = twin.scan(p);
  ASSERT_EQ(out.spawns.size(), 1U);  // only the unfilled slot spawns
  EXPECT_NE(out.spawns[0].site, site_a);
}

TEST(TaskSlots, PrefillDoesNotOverwrite) {
  const Program p = two_call_program();
  Task task(21, packet_for(p), sim::SimTime(0));
  task.prefill(4, Value::integer(1));
  task.prefill(4, Value::integer(2));
  EXPECT_EQ(task.slot(4).result->as_int(), 1);
}

TEST(TaskSlots, AckRecordsChildPointerPerReplica) {
  const Program p = two_call_program();
  Task task(22, packet_for(p), sim::SimTime(0));
  TaskPacket child;
  child.call_site = 6;
  task.note_spawned(6, child);
  EXPECT_TRUE(task.note_ack(6, TaskRef{3, 77}, /*replica=*/0, /*lineage=*/0));
  EXPECT_TRUE(task.note_ack(6, TaskRef{5, 78}, /*replica=*/2, /*lineage=*/0));
  const CallSlot& slot = task.slot(6);
  ASSERT_EQ(slot.child_procs.size(), 3U);
  EXPECT_EQ(slot.child_procs[0], 3U);
  EXPECT_EQ(slot.child_procs[1], net::kNoProc);
  EXPECT_EQ(slot.child_procs[2], 5U);
  EXPECT_EQ(slot.child_uids[2], 78U);
}

TEST(TaskSlots, StaleLineageAckIsDropped) {
  const Program p = two_call_program();
  Task task(24, packet_for(p), sim::SimTime(0));
  TaskPacket child;
  child.call_site = 6;
  task.note_spawned(6, child);
  // The slot was respawned once: generation-0 acks are from the superseded
  // (cancelled) instance and must not overwrite the twin's pointer.
  task.slot(6).respawns = 1;
  EXPECT_TRUE(task.note_ack(6, TaskRef{4, 90}, /*replica=*/0, /*lineage=*/1));
  EXPECT_FALSE(task.note_ack(6, TaskRef{3, 77}, /*replica=*/0, /*lineage=*/0));
  const CallSlot& slot = task.slot(6);
  EXPECT_EQ(slot.child_procs[0], 4U);
  EXPECT_EQ(slot.child_uids[0], 90U);
}

TEST(TaskSlots, StateUnitsGrowWithRetainedState) {
  const Program p = two_call_program();
  Task task(23, packet_for(p), sim::SimTime(0));
  const auto before = task.state_units();
  TaskPacket retained;
  retained.args = {Value::list(std::vector<std::int64_t>(100, 1))};
  retained.call_site = 2;
  task.note_spawned(2, retained);
  EXPECT_GT(task.state_units(), before);
}

TEST(TaskState, NamesAreStable) {
  EXPECT_EQ(to_string(TaskState::kQueued), "queued");
  EXPECT_EQ(to_string(TaskState::kRunning), "running");
  EXPECT_EQ(to_string(TaskState::kWaiting), "waiting");
  EXPECT_EQ(to_string(TaskState::kCompleted), "completed");
  EXPECT_EQ(to_string(TaskState::kAborted), "aborted");
}

TEST(TaskPacketTest, SizeUnitsCountStampArgsAncestors) {
  TaskPacket packet;
  packet.stamp = LevelStamp::root().child(1).child(2);
  packet.args = {Value::integer(1),
                 Value::list(std::vector<std::int64_t>(80, 2))};
  packet.ancestors = {TaskRef{0, 1}, TaskRef{1, 2}};
  // 1 (base) + 1 (stamp) + 1 (int) + 11 (list) + 2 (ancestors)
  EXPECT_EQ(packet.size_units(), 16U);
  EXPECT_NE(packet.describe().find("<1.2>"), std::string::npos);
}

}  // namespace
}  // namespace splice::runtime
