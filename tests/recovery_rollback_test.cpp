// Rollback recovery (§3): reissue topmost checkpoints, abandon orphans.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

SystemConfig rollback_config(std::uint32_t procs = 8, std::uint64_t seed = 1) {
  SystemConfig cfg = base_config(procs, seed);
  cfg.recovery.kind = RecoveryKind::kRollback;
  return cfg;
}

TEST(Rollback, SurvivesSingleFaultMidRun) {
  SystemConfig cfg = rollback_config();
  const auto program = lang::programs::tree_sum(4, 3, 200, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  ASSERT_GT(makespan, 0);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(/*target=*/3, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.faults_injected, 1U);
  EXPECT_GT(r.counters.tasks_respawned, 0U);
  // Rollback creates no splice twins and salvages nothing.
  EXPECT_EQ(r.counters.twins_created, 0U);
  EXPECT_EQ(r.counters.orphan_results_salvaged, 0U);
}

TEST(Rollback, RecoveryCostsTime) {
  SystemConfig cfg = rollback_config();
  const auto program = lang::programs::tree_sum(4, 3, 200, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult faulted = core::run_once(
      cfg, program, net::FaultPlan::single(3, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(faulted.completed);
  EXPECT_GT(faulted.makespan_ticks, makespan);
}

TEST(Rollback, RedoneWorkExceedsFaultFreeWork) {
  SystemConfig cfg = rollback_config(8, 3);
  const auto program = lang::programs::tree_sum(5, 2, 400, 50);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult clean = core::run_once(cfg, program);
  const RunResult late = core::run_once(
      cfg, program, net::FaultPlan::single(2, sim::SimTime(makespan * 7 / 10)));
  ASSERT_TRUE(late.completed);
  EXPECT_TRUE(late.answer_correct);
  EXPECT_GT(late.counters.busy_ticks, clean.counters.busy_ticks);
}

TEST(Rollback, AbortsOrphansOfDeadParent) {
  // Pinned figure-1 layout: killing B orphans D4 (child of B2) and the
  // {A2, D1, D2, C4} piece.
  SystemConfig cfg = rollback_config(4, 1);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.collect_trace = true;
  const auto program = lang::programs::figure1_tree(400);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  core::Simulation simulation(cfg, program);
  simulation.set_fault_plan(net::FaultPlan::single(1, sim::SimTime(makespan / 3)));
  const RunResult r = simulation.run();
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_TRUE(simulation.trace().contains("reissue", "rollback reissue"));
}

TEST(Rollback, DetectionHappensAfterFault) {
  SystemConfig cfg = rollback_config();
  const auto program = lang::programs::tree_sum(4, 3, 200, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(5, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.detection_ticks, r.first_failure_ticks);
}

TEST(Rollback, SurvivesFaultAtEveryTenthOfMakespan) {
  SystemConfig cfg = rollback_config(8, 7);
  const auto program = lang::programs::fib(11, 120);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (int tenth = 1; tenth <= 9; ++tenth) {
    const RunResult r = core::run_once(
        cfg, program,
        net::FaultPlan::single(2, sim::SimTime(makespan * tenth / 10)));
    EXPECT_TRUE(r.completed) << "fault at " << tenth << "/10: " << r.summary();
    EXPECT_TRUE(r.answer_correct) << "fault at " << tenth << "/10";
  }
}

TEST(Rollback, SurvivesFaultOnEveryProcessor) {
  SystemConfig cfg = rollback_config(6, 11);
  cfg.topology = net::TopologyKind::kComplete;
  const auto program = lang::programs::tree_sum(4, 2, 250, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (net::ProcId target = 0; target < 6; ++target) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(target, sim::SimTime(makespan / 2)));
    EXPECT_TRUE(r.completed) << "killing P" << target << ": " << r.summary();
    EXPECT_TRUE(r.answer_correct) << "killing P" << target;
  }
}

TEST(Rollback, FaultBeforeStartIsNearlyHarmless) {
  // Processor dies at t=1, before meaningful placement: the scheduler
  // simply routes around it.
  SystemConfig cfg = rollback_config();
  const RunResult r = core::run_once(cfg, lang::programs::fib(9, 50),
                                     net::FaultPlan::single(6, sim::SimTime(1)));
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
}

TEST(Rollback, FaultAfterCompletionIsHarmless) {
  SystemConfig cfg = rollback_config();
  const auto program = lang::programs::fib(8, 20);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(cfg, program,
                                     net::FaultPlan::single(2, sim::SimTime(makespan * 10)));
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.makespan_ticks, makespan);
  EXPECT_EQ(r.counters.tasks_respawned, 0U);
}

}  // namespace
}  // namespace splice
