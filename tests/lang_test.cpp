#include <gtest/gtest.h>

#include <algorithm>

#include "lang/expr.h"
#include "lang/interpreter.h"
#include "lang/program.h"
#include "lang/programs.h"
#include "lang/value.h"
#include "test_util.h"

namespace splice::lang {
namespace {

using splice::testing::binom_value;
using splice::testing::fib_value;
using splice::testing::nqueens_value;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(Value, IntBasics) {
  const Value v = Value::integer(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_FALSE(v.is_list());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_TRUE(v.truthy());
  EXPECT_FALSE(Value::integer(0).truthy());
  EXPECT_EQ(v.size_units(), 1U);
  EXPECT_EQ(v.to_string(), "42");
  EXPECT_THROW((void)v.as_list(), std::logic_error);
}

TEST(Value, ListBasics) {
  const Value v = Value::list({1, 2, 3});
  EXPECT_TRUE(v.is_list());
  EXPECT_EQ(v.as_list().size(), 3U);
  EXPECT_TRUE(v.truthy());
  EXPECT_FALSE(Value::list({}).truthy());
  EXPECT_THROW((void)v.as_int(), std::logic_error);
  EXPECT_EQ(Value::list(std::vector<std::int64_t>(80, 1)).size_units(), 11U);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value::integer(5), Value::integer(5));
  EXPECT_NE(Value::integer(5), Value::integer(6));
  EXPECT_EQ(Value::list({1, 2}), Value::list({1, 2}));
  EXPECT_NE(Value::list({1, 2}), Value::list({2, 1}));
  EXPECT_NE(Value::integer(1), Value::list({1}));
}

TEST(Value, DefaultIsZero) {
  const Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 0);
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

Value prim(Op op, std::vector<Value> args, std::uint64_t* cost = nullptr) {
  return apply_prim(op, args, cost);
}

TEST(Prims, ScalarArithmetic) {
  EXPECT_EQ(prim(Op::kAdd, {Value::integer(2), Value::integer(3)}).as_int(), 5);
  EXPECT_EQ(prim(Op::kSub, {Value::integer(2), Value::integer(3)}).as_int(), -1);
  EXPECT_EQ(prim(Op::kMul, {Value::integer(4), Value::integer(3)}).as_int(), 12);
  EXPECT_EQ(prim(Op::kDiv, {Value::integer(7), Value::integer(2)}).as_int(), 3);
  EXPECT_EQ(prim(Op::kDiv, {Value::integer(7), Value::integer(0)}).as_int(), 0);
  EXPECT_EQ(prim(Op::kMod, {Value::integer(7), Value::integer(3)}).as_int(), 1);
  EXPECT_EQ(prim(Op::kMod, {Value::integer(7), Value::integer(0)}).as_int(), 0);
  EXPECT_EQ(prim(Op::kNeg, {Value::integer(5)}).as_int(), -5);
  EXPECT_EQ(prim(Op::kMin, {Value::integer(2), Value::integer(9)}).as_int(), 2);
  EXPECT_EQ(prim(Op::kMax, {Value::integer(2), Value::integer(9)}).as_int(), 9);
}

TEST(Prims, ComparisonsAndLogic) {
  EXPECT_EQ(prim(Op::kLt, {Value::integer(1), Value::integer(2)}).as_int(), 1);
  EXPECT_EQ(prim(Op::kGe, {Value::integer(1), Value::integer(2)}).as_int(), 0);
  EXPECT_EQ(prim(Op::kEq, {Value::integer(3), Value::integer(3)}).as_int(), 1);
  EXPECT_EQ(prim(Op::kNe, {Value::integer(3), Value::integer(3)}).as_int(), 0);
  EXPECT_EQ(prim(Op::kAnd, {Value::integer(1), Value::integer(0)}).as_int(), 0);
  EXPECT_EQ(prim(Op::kOr, {Value::integer(1), Value::integer(0)}).as_int(), 1);
  EXPECT_EQ(prim(Op::kNot, {Value::integer(0)}).as_int(), 1);
}

TEST(Prims, Bitwise) {
  EXPECT_EQ(prim(Op::kBAnd, {Value::integer(0b1100), Value::integer(0b1010)})
                .as_int(),
            0b1000);
  EXPECT_EQ(prim(Op::kBOr, {Value::integer(0b1100), Value::integer(0b1010)})
                .as_int(),
            0b1110);
  EXPECT_EQ(prim(Op::kBXor, {Value::integer(0b1100), Value::integer(0b1010)})
                .as_int(),
            0b0110);
  EXPECT_EQ(prim(Op::kBNot, {Value::integer(0)}).as_int(), -1);
  EXPECT_EQ(prim(Op::kShl, {Value::integer(1), Value::integer(4)}).as_int(),
            16);
  EXPECT_EQ(prim(Op::kShr, {Value::integer(16), Value::integer(4)}).as_int(),
            1);
}

TEST(Prims, BurnCostsItsOperand) {
  std::uint64_t cost = 0;
  EXPECT_EQ(prim(Op::kBurn, {Value::integer(250)}, &cost).as_int(), 250);
  EXPECT_EQ(cost, 250U);
  cost = 0;
  (void)prim(Op::kBurn, {Value::integer(0)}, &cost);
  EXPECT_EQ(cost, 1U);  // floor of one tick
}

TEST(Prims, ListOps) {
  const Value xs = Value::list({5, 1, 4});
  EXPECT_EQ(prim(Op::kLen, {xs}).as_int(), 3);
  EXPECT_EQ(prim(Op::kHead, {xs}).as_int(), 5);
  EXPECT_EQ(prim(Op::kTail, {xs}), Value::list({1, 4}));
  EXPECT_EQ(prim(Op::kSum, {xs}).as_int(), 10);
  EXPECT_EQ(prim(Op::kTake, {xs, Value::integer(2)}), Value::list({5, 1}));
  EXPECT_EQ(prim(Op::kTake, {xs, Value::integer(99)}), xs);
  EXPECT_EQ(prim(Op::kDrop, {xs, Value::integer(1)}), Value::list({1, 4}));
  EXPECT_EQ(prim(Op::kDrop, {xs, Value::integer(-5)}), xs);
  EXPECT_EQ(prim(Op::kAppend, {Value::list({1}), Value::list({2, 3})}),
            Value::list({1, 2, 3}));
  EXPECT_EQ(prim(Op::kCons, {Value::integer(0), Value::list({1})}),
            Value::list({0, 1}));
  EXPECT_EQ(prim(Op::kMerge, {Value::list({1, 3}), Value::list({2, 4})}),
            Value::list({1, 2, 3, 4}));
  EXPECT_EQ(prim(Op::kNth, {xs, Value::integer(1)}).as_int(), 1);
  EXPECT_EQ(prim(Op::kIota, {Value::integer(4)}), Value::list({0, 1, 2, 3}));
  EXPECT_EQ(prim(Op::kIota, {Value::integer(-2)}), Value::list({}));
  EXPECT_EQ(prim(Op::kFiltLt, {xs, Value::integer(4)}), Value::list({1}));
  EXPECT_EQ(prim(Op::kFiltGe, {xs, Value::integer(4)}), Value::list({5, 4}));
}

TEST(Prims, DomainErrors) {
  EXPECT_THROW(prim(Op::kHead, {Value::list({})}), std::domain_error);
  EXPECT_THROW(prim(Op::kTail, {Value::list({})}), std::domain_error);
  EXPECT_THROW(prim(Op::kNth, {Value::list({1}), Value::integer(5)}),
               std::domain_error);
  EXPECT_THROW(prim(Op::kAdd, {Value::integer(1)}), std::domain_error);
  EXPECT_THROW(prim(Op::kAdd, {Value::list({1}), Value::integer(1)}),
               std::logic_error);
}

TEST(Prims, ArityTable) {
  EXPECT_EQ(op_arity(Op::kBurn), 1);
  EXPECT_EQ(op_arity(Op::kAdd), 2);
  EXPECT_EQ(op_arity(Op::kIota), 1);
  EXPECT_EQ(op_arity(Op::kMerge), 2);
}

// ---------------------------------------------------------------------------
// Program validation
// ---------------------------------------------------------------------------

TEST(Program, ValidateCatchesBadArgIndex) {
  Program p;
  FunctionBuilder b("f", 1);
  const ExprId root = b.arg(3);  // arity is 1
  const FuncId fn = p.add_function(std::move(b).build(root));
  p.set_entry(fn, {Value::integer(0)});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, ValidateCatchesCallArityMismatch) {
  Program p;
  FunctionBuilder b("f", 1);
  const ExprId root = b.call(0, {b.arg(0), b.arg(0)});  // self takes 1 arg
  const FuncId fn = p.add_function(std::move(b).build(root));
  p.set_entry(fn, {Value::integer(0)});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, ValidateCatchesEntryArityMismatch) {
  Program p = programs::fib(5);
  p.set_entry(p.entry(), {});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, FindByName) {
  Program p = programs::nqueens(4);
  EXPECT_TRUE(p.find("solve").has_value());
  EXPECT_TRUE(p.find("scan").has_value());
  EXPECT_FALSE(p.find("missing").has_value());
}

// ---------------------------------------------------------------------------
// Interpreter vs known answers
// ---------------------------------------------------------------------------

TEST(Interpreter, Fib) {
  for (std::int64_t n : {0, 1, 2, 5, 10, 15}) {
    EXPECT_EQ(reference_answer(programs::fib(n)).as_int(), fib_value(n))
        << "fib(" << n << ")";
  }
}

TEST(Interpreter, FibLeafWorkDoesNotChangeAnswer) {
  EXPECT_EQ(reference_answer(programs::fib(10, 500)).as_int(), fib_value(10));
}

TEST(Interpreter, Binomial) {
  EXPECT_EQ(reference_answer(programs::binomial(6, 3)).as_int(),
            binom_value(6, 3));
  EXPECT_EQ(reference_answer(programs::binomial(10, 2)).as_int(), 45);
  EXPECT_EQ(reference_answer(programs::binomial(5, 0)).as_int(), 1);
  EXPECT_EQ(reference_answer(programs::binomial(5, 5)).as_int(), 1);
}

TEST(Interpreter, TreeSumCountsLeaves) {
  // Answer = number of leaves = fanout^depth.
  EXPECT_EQ(reference_answer(programs::tree_sum(3, 2)).as_int(), 8);
  EXPECT_EQ(reference_answer(programs::tree_sum(2, 4)).as_int(), 16);
  EXPECT_EQ(reference_answer(programs::tree_sum(0, 3)).as_int(), 1);
}

TEST(Interpreter, MergesortSorts) {
  const Program p = programs::mergesort(64, 7);
  const Value sorted = reference_answer(p);
  const auto& xs = sorted.as_list();
  EXPECT_EQ(xs.size(), 64U);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  // Same multiset as the entry argument.
  auto input = p.entry_args()[0].as_list();
  std::sort(input.begin(), input.end());
  EXPECT_EQ(xs, input);
}

TEST(Interpreter, QuicksortSortsAndMatchesMergesort) {
  const Program q = programs::quicksort(64, 7);
  const Program m = programs::mergesort(64, 7);
  EXPECT_EQ(reference_answer(q), reference_answer(m));
}

namespace {
std::int64_t tak_ref(std::int64_t x, std::int64_t y, std::int64_t z) {
  if (y >= x) return z;
  return tak_ref(tak_ref(x - 1, y, z), tak_ref(y - 1, z, x),
                 tak_ref(z - 1, x, y));
}
}  // namespace

TEST(Interpreter, TakMatchesReference) {
  EXPECT_EQ(reference_answer(programs::tak(8, 4, 0)).as_int(),
            tak_ref(8, 4, 0));
  EXPECT_EQ(reference_answer(programs::tak(6, 3, 1)).as_int(),
            tak_ref(6, 3, 1));
  // Base case: y >= x returns z without recursion.
  EXPECT_EQ(reference_answer(programs::tak(1, 5, 9)).as_int(), 9);
  EXPECT_EQ(reference_stats(programs::tak(1, 5, 9)).calls, 1U);
}

TEST(Interpreter, MapReduceSumsIota) {
  // sum(0..n-1) = n(n-1)/2 regardless of chunking.
  for (std::uint32_t chunks : {1U, 3U, 7U, 16U}) {
    EXPECT_EQ(reference_answer(programs::map_reduce(100, chunks)).as_int(),
              100 * 99 / 2)
        << chunks << " chunks";
  }
  // Chunk count controls the call-tree width.
  EXPECT_EQ(reference_stats(programs::map_reduce(100, 8)).calls, 9U);
}

TEST(Interpreter, MapReduceWorkScaleDoesNotChangeAnswer) {
  EXPECT_EQ(reference_answer(programs::map_reduce(64, 4, 10)).as_int(),
            64 * 63 / 2);
  // Higher work scale burns more abstract ticks.
  EXPECT_GT(reference_stats(programs::map_reduce(64, 4, 10)).total_work,
            reference_stats(programs::map_reduce(64, 4, 1)).total_work);
}

TEST(Interpreter, NQueensKnownCounts) {
  for (std::uint32_t n : {1U, 4U, 5U, 6U}) {
    EXPECT_EQ(reference_answer(programs::nqueens(n)).as_int(),
              nqueens_value(n))
        << n << "-queens";
  }
}

TEST(Interpreter, StatsCountCalls) {
  // fib call tree size: calls(n) = 2*fib(n+1)-1.
  EvalStats stats;
  const Program p = programs::fib(10);  // Interpreter holds a reference
  Interpreter interp(p);
  (void)interp.run(stats);
  EXPECT_EQ(stats.calls,
            static_cast<std::uint64_t>(2 * fib_value(11) - 1));
  EXPECT_EQ(stats.max_depth, 10U);  // fib(10) -> fib(9) -> ... -> fib(1)
  EXPECT_GT(stats.total_work, 0U);
}

TEST(Interpreter, DepthLimitGuards) {
  // f(n) = f(n+1): infinite recursion must be caught.
  Program p;
  FunctionBuilder b("loop", 1);
  const ExprId root = b.call(0, {b.add(b.arg(0), b.constant(1))});
  const FuncId fn = p.add_function(std::move(b).build(root));
  p.set_entry(fn, {Value::integer(0)});
  Interpreter interp(p, 1000);
  EXPECT_THROW((void)interp.run(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Scripted trees
// ---------------------------------------------------------------------------

TEST(ScriptedTree, AnswerIsTotalWork) {
  const std::vector<programs::ScriptedNode> nodes = {
      {"root", {"a", "b"}, 10, -1},
      {"a", {}, 20, -1},
      {"b", {"c"}, 30, -1},
      {"c", {}, 40, -1},
  };
  const Program p = programs::scripted_tree(nodes);
  EXPECT_EQ(reference_answer(p).as_int(),
            programs::scripted_tree_answer(nodes));
  EXPECT_EQ(reference_stats(p).calls, 4U);
}

TEST(ScriptedTree, RejectsUnknownChild) {
  EXPECT_THROW(
      programs::scripted_tree({{"root", {"ghost"}, 1, -1}}),
      std::invalid_argument);
}

TEST(ScriptedTree, RejectsDuplicateName) {
  EXPECT_THROW(
      programs::scripted_tree({{"x", {}, 1, -1}, {"x", {}, 1, -1}}),
      std::invalid_argument);
}

TEST(Figure1, TreeShapeMatchesPaper) {
  const Program p = programs::figure1_tree();
  const EvalStats stats = reference_stats(p);
  EXPECT_EQ(stats.calls, 17U);  // 17 tasks: A1..A5, B1..B7, C1..C4, D1..D5
  // Answer: 17 nodes x 60 work.
  EXPECT_EQ(reference_answer(p).as_int(), 17 * 60);
  // Deepest chain: A1-C1-B2-A2-D1-C4-B5 = depth 7.
  EXPECT_EQ(stats.max_depth, 7U);
  // Pins follow the name prefix (A=0, B=1, C=2, D=3).
  for (const auto& node : programs::figure1_nodes()) {
    const auto fn = p.find(node.name);
    ASSERT_TRUE(fn.has_value());
    EXPECT_EQ(p.function(*fn).pinned_processor, node.name[0] - 'A');
  }
}

}  // namespace
}  // namespace splice::lang
