// The paper's Figure 1/2/3 walkthrough, end to end:
//   * the call tree maps onto processors A-D exactly as printed;
//   * checkpoint distribution matches §3's narrative (A holds B1; C holds
//     B2 and B3 topmost with B5 subsumed under B2; D holds B7);
//   * killing B fragments the tree into the three pieces of §3;
//   * splice recovery creates B2' on C and relays D4's orphan result.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "runtime/runtime.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RunResult;
using core::SystemConfig;

constexpr net::ProcId kA = 0, kB = 1, kC = 2, kD = 3;

SystemConfig figure1_config(core::RecoveryKind recovery, std::int64_t hb = 800) {
  SystemConfig cfg;
  cfg.processors = 4;
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.recovery.kind = recovery;
  cfg.heartbeat_interval = hb;
  cfg.collect_trace = true;
  cfg.seed = 1;
  return cfg;
}

// Stamps are path digits (call-site ExprIds), so identify tasks by the
// trace's function names instead of raw stamps.
bool placed_on(const core::Trace& trace, const std::string& fn,
               net::ProcId proc) {
  for (const auto& e : trace.of_kind("place")) {
    if (e.proc == proc && e.detail.rfind(fn + " ", 0) == 0) return true;
  }
  return false;
}

TEST(Figure1, FaultFreePlacementFollowsThePaper) {
  core::Simulation sim(figure1_config(core::RecoveryKind::kSplice),
                       lang::programs::figure1_tree(300));
  const RunResult r = sim.run();
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  const core::Trace& trace = sim.trace();
  for (const auto& node : lang::programs::figure1_nodes()) {
    EXPECT_TRUE(placed_on(trace, node.name,
                          static_cast<net::ProcId>(node.name[0] - 'A')))
        << node.name << " not on processor " << node.name[0];
  }
}

TEST(Figure1, CheckpointDistributionMatchesSection3) {
  // Run fault-free but freeze the world before any child returns, then
  // inspect the live checkpoint tables: use heavy leaves so every spawn
  // has happened while nothing has completed.
  SystemConfig cfg = figure1_config(core::RecoveryKind::kSplice);
  core::Simulation sim(cfg, lang::programs::figure1_tree(50000));
  // Kill nobody; instead inspect the table state mid-run via the trace:
  // every "checkpoint <stamp> entry P<dest>" line records who checkpointed
  // onto whom.
  const RunResult r = sim.run();
  ASSERT_TRUE(r.completed);
  const core::Trace& trace = sim.trace();

  // Count checkpoint records toward processor B by owner processor.
  int from_a = 0, from_c = 0, from_d = 0;
  int subsumed_to_b = 0;
  for (const auto& e : trace.of_kind("checkpoint")) {
    if (e.detail.find("entry P1") == std::string::npos) continue;
    const bool subsumed = e.detail.find("subsumed") != std::string::npos;
    if (subsumed) {
      ++subsumed_to_b;
      continue;
    }
    if (e.proc == kA) ++from_a;
    if (e.proc == kC) ++from_c;
    if (e.proc == kD) ++from_d;
  }
  // "Processor A contains the functional checkpoint for B1" (B1 spawned
  // A->B).
  EXPECT_EQ(from_a, 1);
  // "processor C contains checkpoints for B2, B3" as topmost; B5 (also
  // spawned C->B, by C4) is a descendant of B2 and must be subsumed.
  EXPECT_EQ(from_c, 2);
  EXPECT_EQ(subsumed_to_b, 1);
  // "and processor D contains checkpoints for B7" (spawned D2->B).
  EXPECT_EQ(from_d, 1);
}

// Figure-1 tree with fast spawn chains and long-running B tasks, so that a
// kill at t=2000 catches B1, B2, B3 all resident on processor B (the
// paper's static snapshot of the mapping).
lang::Program slow_b_figure1() {
  auto nodes = lang::programs::figure1_nodes();
  for (auto& node : nodes) {
    node.work = node.name[0] == 'B' && node.name != "B2" ? 30000 : 100;
  }
  return lang::programs::scripted_tree(nodes);
}

TEST(Figure1, KillingBFragmentsAndRollbackRegrows) {
  SystemConfig cfg = figure1_config(core::RecoveryKind::kRollback);
  const auto program = slow_b_figure1();
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(net::FaultPlan::single(kB, sim::SimTime(2000)));
  const RunResult r = sim.run();
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  const core::Trace& trace = sim.trace();
  // The reissue set is exactly the paper's: "the system needs to command
  // processor A to respawn B1, and command processor C to regenerate B2
  // and B3."
  EXPECT_TRUE(trace.contains("reissue", "B1"));
  EXPECT_TRUE(trace.contains("reissue", "B2"));
  EXPECT_TRUE(trace.contains("reissue", "B3"));
  // B5/B7 had not spawned yet; nothing else is reissued at detection time
  // from the dead processor's entries.
  EXPECT_FALSE(trace.contains("reissue", "B5"));
  EXPECT_FALSE(trace.contains("reissue", "B7"));
}

TEST(Figure1, SpliceCreatesStepParentAndSalvagesD4) {
  SystemConfig cfg = figure1_config(core::RecoveryKind::kSplice);
  // Node work tuned so that when B dies, D4's subtree (D4-D5-A5) is still
  // running and later returns an orphan result that must be salvaged.
  const auto program = lang::programs::figure1_tree(2500);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(net::FaultPlan::single(kB, sim::SimTime(makespan / 2)));
  const RunResult r = sim.run();
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  const core::Trace& trace = sim.trace();
  // B2' (a twin of B2) must be created by processor C (B2's checkpoint
  // owner C1 lives there).
  bool twin_b2_on_c = false;
  for (const auto& e : trace.of_kind("twin")) {
    if (e.proc == kC && e.detail.rfind("B2 ", 0) == 0) twin_b2_on_c = true;
  }
  EXPECT_TRUE(twin_b2_on_c) << "no B2 step-parent created on processor C";
  EXPECT_GT(r.counters.results_relayed + r.counters.orphan_results_salvaged,
            0U)
      << "no orphan result travelled the grandparent path";
}

TEST(Figure1, SpliceSalvagesWhereRollbackDiscards) {
  // Same fault, two policies: splice must salvage orphan results (relay
  // traffic > 0), rollback must discard them (salvage == 0, late results
  // dropped). Wall-clock/busy comparisons are aggregate properties and are
  // benchmarked, not asserted per-scenario (a twin racing an orphan can
  // legitimately burn extra duplicate work — cases 6/7).
  const auto program = lang::programs::figure1_tree(2500);
  SystemConfig scfg = figure1_config(core::RecoveryKind::kSplice);
  SystemConfig rcfg = figure1_config(core::RecoveryKind::kRollback);
  scfg.collect_trace = rcfg.collect_trace = false;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(scfg, program);
  const RunResult s = core::run_once(scfg, program,
                                     net::FaultPlan::single(kB, sim::SimTime(makespan / 2)));
  const RunResult b = core::run_once(rcfg, program,
                                     net::FaultPlan::single(kB, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(s.completed && b.completed);
  EXPECT_TRUE(s.answer_correct && b.answer_correct);
  EXPECT_GT(s.counters.results_relayed + s.counters.orphan_results_salvaged,
            0U);
  EXPECT_EQ(b.counters.orphan_results_salvaged, 0U);
  // Rollback never consumes an orphan's work: either the result limps home
  // late and is dropped (pre-cancellation behaviour), or — with the
  // cancellation protocol on — the doomed subtree is reclaimed by kCancel
  // before it ever completes.
  EXPECT_GT(b.counters.late_results_discarded + b.counters.tasks_cancelled,
            0U);
}

}  // namespace
}  // namespace splice
