// Protocol-level tests: the §4.2 loop's edge behaviour observed through
// small end-to-end simulations — freeze/unfreeze, unknown-packet tolerance,
// detection broadcast, zone eligibility, and trace narratives.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "runtime/runtime.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

TEST(Protocol, ErrorDetectionBroadcastReachesEveryProcessor) {
  SystemConfig cfg = base_config(8, 3);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.collect_trace = true;
  const auto program = lang::programs::tree_sum(4, 2, 400, 50);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(net::FaultPlan::single(2, sim::SimTime(makespan / 2)));
  const RunResult r = sim.run();
  ASSERT_TRUE(r.completed);
  // Every surviving processor must have learned of P2's death (detect
  // events from 7 processors: the victim can't detect itself).
  std::set<net::ProcId> learned;
  for (const auto& e : sim.trace().of_kind("detect")) learned.insert(e.proc);
  EXPECT_EQ(learned.size(), 7U);
}

TEST(Protocol, DetectionWorksWithoutHeartbeatsIfTrafficFlows) {
  // The paper's minimum detector: a failed send. With heartbeats off,
  // detection rides on ordinary traffic (returns to the dead node).
  SystemConfig cfg = base_config(4, 7);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.heartbeat_interval = 0;
  const auto program = lang::programs::tree_sum(4, 2, 400, 50);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(1, sim::SimTime(makespan / 2)));
  // Liveness is not guaranteed without heartbeats (a silent waiting parent
  // may never touch the dead node), but for this busy tree traffic exists;
  // the run must either complete correctly or time out — never complete
  // wrongly.
  if (r.completed) {
    EXPECT_TRUE(r.answer_correct);
    EXPECT_GE(r.detection_ticks, r.first_failure_ticks);
  }
}

TEST(Protocol, StrandedOrphanCountsWhenSuperRootDisabled) {
  // Level-1 orphans of a dead root have only the super-root to turn to;
  // with it disabled they are stranded (and counted).
  SystemConfig cfg = base_config(4, 1);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.super_root = false;
  using lang::programs::ScriptedNode;
  const std::vector<ScriptedNode> nodes = {
      {"root", {"a"}, 50, 0},
      {"a", {}, 3000, 1},
  };
  const auto program = lang::programs::scripted_tree(nodes);
  cfg.deadline_ticks = 200000;
  const RunResult r =
      core::run_once(cfg, program, net::FaultPlan::single(0, sim::SimTime(500)));
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.counters.orphans_stranded, 0U);
}

TEST(Protocol, ZoneEligibilityConfinesReplicaLanes) {
  SystemConfig cfg = base_config(6, 3);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.recovery.kind = RecoveryKind::kNone;
  cfg.replication.factor = 3;
  cfg.replication.max_depth = 1;
  cfg.replication.majority = false;
  cfg.replication.zoned = true;
  cfg.collect_trace = true;
  const auto program = lang::programs::tree_sum(3, 2, 100, 20);
  core::Simulation sim(cfg, program);
  const RunResult r = sim.run();
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  // Every placement of a non-root task must satisfy proc % 3 == zone of
  // its lane. Zones are identified by the root replicas' hosts.
  // Weaker, robust check: tasks never migrate across p % 3 classes within
  // one lane — count distinct residue classes used per root replica host.
  // The run completing with first-vote quorum already proves lanes exist;
  // here we check placements span all three zones.
  std::set<net::ProcId> zones_used;
  for (const auto& e : sim.trace().of_kind("place")) {
    zones_used.insert(e.proc % 3);
  }
  EXPECT_EQ(zones_used.size(), 3U);
}

TEST(Protocol, PeriodicFreezeStopsProgressDuringSnapshot) {
  SystemConfig fast = base_config(8, 9);
  fast.recovery.kind = RecoveryKind::kPeriodicGlobal;
  fast.recovery.checkpoint_interval = 1000;
  fast.recovery.freeze_base = 400;  // exaggerated freeze
  fast.recovery.freeze_per_unit = 1.0;
  SystemConfig cheap = fast;
  cheap.recovery.freeze_base = 10;
  cheap.recovery.freeze_per_unit = 0.01;
  const auto program = lang::programs::tree_sum(4, 3, 200, 30);
  const RunResult expensive_r = core::run_once(fast, program);
  const RunResult cheap_r = core::run_once(cheap, program);
  ASSERT_TRUE(expensive_r.completed && cheap_r.completed);
  EXPECT_GT(expensive_r.makespan_ticks, cheap_r.makespan_ticks);
  EXPECT_GT(expensive_r.counters.freeze_ticks,
            cheap_r.counters.freeze_ticks);
}

TEST(Protocol, ReplicationOfEveryTaskAtDepthTwoStillCorrect) {
  // Nested replication (lanes within lanes): instances multiply but
  // determinacy holds.
  SystemConfig cfg = base_config(9, 11);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.replication.factor = 3;
  cfg.replication.max_depth = 2;
  const auto program = lang::programs::tree_sum(3, 2, 100, 20);
  const RunResult r = core::run_once(cfg, program);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
}

TEST(Protocol, TraceDisabledCollectsNothing) {
  SystemConfig cfg = base_config(4, 1);
  cfg.collect_trace = false;
  core::Simulation sim(cfg, lang::programs::fib(6));
  const RunResult r = sim.run();
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(sim.trace().events().empty());
}

TEST(Protocol, ConfigDescribeMentionsEveryAxis) {
  SystemConfig cfg = base_config(8, 42);
  cfg.recovery.kind = RecoveryKind::kSplice;
  cfg.recovery.ancestor_depth = 3;
  cfg.replication.factor = 3;
  const std::string desc = cfg.describe();
  EXPECT_NE(desc.find("procs=8"), std::string::npos);
  EXPECT_NE(desc.find("splice"), std::string::npos);
  EXPECT_NE(desc.find("depth=3"), std::string::npos);
  EXPECT_NE(desc.find("repl=3"), std::string::npos);
  EXPECT_NE(desc.find("seed=42"), std::string::npos);
}

TEST(Protocol, RunResultSummaryIsInformative) {
  const RunResult r = core::run_once(base_config(4, 1),
                                     lang::programs::fib(6));
  const std::string s = r.summary();
  EXPECT_NE(s.find("completed"), std::string::npos);
  EXPECT_NE(s.find("answer=8"), std::string::npos);
  EXPECT_NE(s.find("(correct)"), std::string::npos);
}

}  // namespace
}  // namespace splice
