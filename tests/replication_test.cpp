// Replicated-task redundancy (§5.3): fault masking via task replication and
// majority voting.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "recovery/replicated.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

TEST(ReplicationMath, MajorityQuorum) {
  EXPECT_EQ(recovery::majority_quorum(1), 1U);
  EXPECT_EQ(recovery::majority_quorum(3), 2U);
  EXPECT_EQ(recovery::majority_quorum(5), 3U);
  EXPECT_EQ(recovery::majority_quorum(7), 4U);
}

TEST(ReplicationMath, Tolerance) {
  EXPECT_EQ(recovery::replicas_tolerated(3, /*majority=*/true), 1U);
  EXPECT_EQ(recovery::replicas_tolerated(5, true), 2U);
  EXPECT_EQ(recovery::replicas_tolerated(3, /*majority=*/false), 2U);
  EXPECT_EQ(recovery::replicas_tolerated(0, true), 0U);
}

TEST(ReplicationMath, WorkMultiplier) {
  // No replication: x1. Root-only (max_depth 1): whole tree duplicated
  // `factor` times -> exactly factor.
  EXPECT_DOUBLE_EQ(recovery::replication_work_multiplier(1, 1, 2, 5), 1.0);
  EXPECT_DOUBLE_EQ(recovery::replication_work_multiplier(3, 1, 2, 5), 3.0);
  // Deeper horizons multiply further.
  EXPECT_GT(recovery::replication_work_multiplier(3, 2, 2, 5), 3.0);
}

TEST(Replication, FaultFreeOverheadMatchesFactor) {
  SystemConfig plain = base_config(8, 3);
  SystemConfig repl = plain;
  repl.replication.factor = 3;
  repl.replication.max_depth = 1;  // root replicated: whole tree x3
  const auto program = lang::programs::tree_sum(3, 3, 100, 20);
  const RunResult a = core::run_once(plain, program);
  const RunResult b = core::run_once(repl, program);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_TRUE(b.answer_correct);
  // Task instances triple (root and all descendants of each replica).
  EXPECT_NEAR(static_cast<double>(b.counters.tasks_created),
              3.0 * static_cast<double>(a.counters.tasks_created),
              3.0 + 0.05 * static_cast<double>(a.counters.tasks_created));
}

TEST(Replication, MasksFaultWithoutRecoveryPolicy) {
  // §5.3's point: with replicated tasks even a policy with NO recovery
  // machinery survives a crash — the surviving replicas carry the answer.
  SystemConfig cfg = base_config(6, 5);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.recovery.kind = RecoveryKind::kNone;
  cfg.replication.factor = 3;
  cfg.replication.max_depth = 1;
  cfg.replication.majority = false;  // first result wins
  const auto program = lang::programs::tree_sum(3, 2, 400, 50);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  // Lane confinement (zones {0,3}, {1,4}, {2,5}) guarantees that any
  // single crash damages exactly one replica's lane; the other two lanes
  // finish untouched — every victim must be masked.
  int masked = 0;
  for (net::ProcId victim = 0; victim < 6; ++victim) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(victim, sim::SimTime(makespan / 2)));
    if (r.completed && r.answer_correct) ++masked;
  }
  EXPECT_EQ(masked, 6) << "replication masked only " << masked << "/6 faults";
}

TEST(Replication, UnzonedReplicationMasksLessReliably) {
  // Ablation: without lane confinement the three subtrees interleave over
  // the whole machine, so one crash usually damages every replica and the
  // no-recovery policy cannot complete. This is why Misunas "carefully
  // distributed" the copies (§5.4).
  SystemConfig cfg = base_config(6, 5);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.recovery.kind = RecoveryKind::kNone;
  cfg.replication.factor = 3;
  cfg.replication.max_depth = 1;
  cfg.replication.majority = false;
  cfg.replication.zoned = false;
  const auto program = lang::programs::tree_sum(3, 2, 400, 50);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  cfg.deadline_ticks = makespan * 20;
  int masked = 0;
  for (net::ProcId victim = 0; victim < 6; ++victim) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(victim, sim::SimTime(makespan / 2)));
    if (r.completed && r.answer_correct) ++masked;
  }
  EXPECT_LT(masked, 6) << "unzoned replication unexpectedly masked all";
}

TEST(Replication, MajorityVotingWaitsForQuorum) {
  SystemConfig first = base_config(8, 7);
  first.replication.factor = 3;
  first.replication.max_depth = 1;
  first.replication.majority = false;
  SystemConfig majority = first;
  majority.replication.majority = true;
  const auto program = lang::programs::tree_sum(3, 3, 100, 20);
  const RunResult rf = core::run_once(first, program);
  const RunResult rm = core::run_once(majority, program);
  ASSERT_TRUE(rf.completed && rm.completed);
  EXPECT_TRUE(rf.answer_correct && rm.answer_correct);
  // Majority cannot finish before first-result on the same schedule.
  EXPECT_GE(rm.makespan_ticks, rf.makespan_ticks);
}

TEST(Replication, ComposesWithSpliceRecovery) {
  SystemConfig cfg = base_config(8, 9);
  cfg.recovery.kind = RecoveryKind::kSplice;
  cfg.replication.factor = 3;
  cfg.replication.max_depth = 1;
  const auto program = lang::programs::tree_sum(4, 2, 200, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (net::ProcId victim = 0; victim < 4; ++victim) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(victim, sim::SimTime(makespan / 2)));
    EXPECT_TRUE(r.completed) << r.summary();
    EXPECT_TRUE(r.answer_correct);
  }
}

TEST(Replication, DeeperHorizonReplicatesMore) {
  SystemConfig d1 = base_config(8, 11);
  d1.replication.factor = 2;
  d1.replication.max_depth = 1;
  SystemConfig d2 = d1;
  d2.replication.max_depth = 2;
  const auto program = lang::programs::tree_sum(3, 3, 100, 20);
  const RunResult r1 = core::run_once(d1, program);
  const RunResult r2 = core::run_once(d2, program);
  ASSERT_TRUE(r1.completed && r2.completed);
  EXPECT_GT(r2.counters.tasks_created, r1.counters.tasks_created);
  EXPECT_TRUE(r2.answer_correct);
}

}  // namespace
}  // namespace splice
