// The weak-recovery oracle over a chaos matrix: every combination of
// (partition-and-heal | gray failure | lossy links + Poisson crash churn)
// x (splice | rollback | replicated) x seeds must satisfy every invariant
// the oracle checks — completion, determinacy, no leaked duplicate
// lineages, task conservation, checkpoint conservation, and (for gray
// runs) no false failure detection. Plus negative tests proving the
// oracle actually bites when an invariant is broken.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "recovery/recovery_oracle.h"
#include "store/persistency.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using recovery::OracleReport;
using recovery::RecoveryOracle;

enum class Policy { kSplice, kRollback, kReplicated };

const char* name(Policy p) {
  switch (p) {
    case Policy::kSplice:
      return "splice";
    case Policy::kRollback:
      return "rollback";
    case Policy::kReplicated:
      return "replicated";
  }
  return "?";
}

SystemConfig matrix_config(std::uint64_t seed, Policy policy) {
  SystemConfig cfg = testing::base_config(16, seed);
  cfg.heartbeat_interval = 800;
  cfg.reclaim.cancellation = true;
  cfg.reclaim.gc_interval = 400;
  cfg.reclaim.gc_oracle = true;  // feed the task-leak invariant
  switch (policy) {
    case Policy::kSplice:
      cfg.recovery.kind = RecoveryKind::kSplice;
      break;
    case Policy::kRollback:
      cfg.recovery.kind = RecoveryKind::kRollback;
      break;
    case Policy::kReplicated:
      cfg.recovery.kind = RecoveryKind::kSplice;
      cfg.replication.factor = 2;
      cfg.replication.max_depth = 2;
      cfg.replication.majority = false;  // first result wins
      break;
  }
  return cfg;
}

struct Scenario {
  const char* label;
  net::FaultPlan plan;
  bool expect_no_detection;
};

std::vector<Scenario> scenarios(std::uint64_t seed) {
  std::vector<Scenario> out;

  // Partition-and-heal: the bottom half of the 4x4 mesh is cut off for a
  // window; survivors detect, respawn, then reconcile on the heal.
  out.push_back({"partition",
                 net::FaultPlan::partition(net::RegionSpec::grid_rect(2, 0, 2, 4),
                                           sim::SimTime(2000),
                                           sim::SimTime(5000))
                     .with_seed(seed),
                 /*expect_no_detection=*/false});

  // Gray failure: one node alive but starving payload. Nothing crashes, so
  // detection firing even once is an oracle violation.
  net::GraySpec g;
  g.node = 3;
  g.start = sim::SimTime(500);
  out.push_back({"gray", net::FaultPlan::gray(g).with_seed(seed),
                 /*expect_no_detection=*/true});

  // Churn: background lossy links plus Poisson crash arrivals with cold
  // repair — the full §1 model with a degraded wire underneath it.
  net::LinkQuality q;
  q.drop_p = 0.04;
  q.dup_p = 0.04;
  q.reorder_p = 0.08;
  q.jitter = 15;
  net::RecurringFault arrivals;
  arrivals.candidates = {1, 3, 6, 9, 11, 14};  // spare the root's host
  arrivals.start = sim::SimTime(1000);
  arrivals.stop = sim::SimTime(40000);
  arrivals.mean_interval = 8000;
  arrivals.max_faults = 2;
  net::FaultPlan churn = net::FaultPlan::link(q);
  churn.merge(net::FaultPlan::poisson(arrivals));
  churn.with_rejoin(sim::SimTime(3000)).with_seed(seed);
  out.push_back({"churn", std::move(churn), /*expect_no_detection=*/false});

  return out;
}

TEST(RecoveryOracleMatrix, EveryChaoticRunSatisfiesEveryInvariant) {
  const lang::Program program = lang::programs::fib(12, 40);
  std::size_t runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const Policy policy :
         {Policy::kSplice, Policy::kRollback, Policy::kReplicated}) {
      const SystemConfig cfg = matrix_config(seed, policy);
      for (Scenario& s : scenarios(seed)) {
        const RunResult r = core::run_once(cfg, program, s.plan);
        RecoveryOracle::Expect expect;
        // A crash that actually fired must be detected; "no detection" is
        // only checkable when every node stayed alive.
        expect.no_detection = s.expect_no_detection && r.faults_injected == 0;
        const OracleReport report = RecoveryOracle::check(r, expect);
        EXPECT_TRUE(report.ok())
            << name(policy) << "/" << s.label << " seed=" << seed << ":\n"
            << report.to_string() << r.summary();
        ++runs;
      }
    }
  }
  EXPECT_EQ(runs, 90U);  // 10 seeds x 3 policies x 3 scenarios
}

// ---------------------------------------------------------------------------
// Negative controls: the oracle must bite when an invariant is broken
// ---------------------------------------------------------------------------

TEST(RecoveryOracleNegative, CleanRunPasses) {
  const RunResult r = core::run_once(testing::base_config(8, 1),
                                     lang::programs::fib(10, 40),
                                     net::FaultPlan::none());
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(RecoveryOracle::check(r).ok());
}

bool has_violation(const OracleReport& report, const std::string& invariant) {
  for (const auto& v : report.violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

TEST(RecoveryOracleNegative, DeliberateDuplicateLeakIsFlagged) {
  // Cancellation off, read-only validation sweep on, non-salvaging policy:
  // during the cut both halves reissue each other's subtrees, and after the
  // heal the reissues race the surviving originals with nothing to reclaim
  // the losers. The oracle must call that a task leak.
  const lang::Program program = lang::programs::fib(12, 40);
  bool flagged = false;
  for (std::uint64_t seed = 1; seed <= 6 && !flagged; ++seed) {
    SystemConfig cfg = testing::base_config(16, seed);
    cfg.heartbeat_interval = 800;
    cfg.recovery.kind = RecoveryKind::kRollback;
    cfg.reclaim.cancellation = false;  // nothing reclaims the duplicates
    cfg.reclaim.gc_interval = 400;
    cfg.reclaim.gc_oracle = true;
    const net::FaultPlan plan =
        net::FaultPlan::partition(net::RegionSpec::grid_rect(2, 0, 2, 4),
                                  sim::SimTime(2000), sim::SimTime(5000))
            .with_seed(seed);
    const RunResult r = core::run_once(cfg, program, plan);
    if (r.counters.gc_oracle_orphans == 0) continue;  // race didn't trigger
    const OracleReport report = RecoveryOracle::check(r);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_violation(report, "task-leak")) << report.to_string();
    flagged = true;
  }
  EXPECT_TRUE(flagged) << "no seed produced a leaked duplicate to flag";
}

TEST(RecoveryOracleNegative, TamperedLedgersTripConservation) {
  RunResult r = core::run_once(testing::base_config(8, 2),
                               lang::programs::fib(10, 40),
                               net::FaultPlan::none());
  ASSERT_TRUE(RecoveryOracle::check(r).ok());

  // A checkpoint record released twice (or never) must unbalance the books.
  RunResult ckpt = r;
  ckpt.counters.checkpoint_released -= 1;
  EXPECT_TRUE(has_violation(RecoveryOracle::check(ckpt),
                            "checkpoint-conservation"));

  // A task that vanished without completing/aborting/dying must too.
  RunResult task = r;
  task.counters.tasks_created += 1;
  EXPECT_TRUE(has_violation(RecoveryOracle::check(task),
                            "task-conservation"));

  // An incomplete run fails the completion invariant unless waived.
  RunResult hung = r;
  hung.completed = false;
  EXPECT_TRUE(has_violation(RecoveryOracle::check(hung), "completion"));
  RecoveryOracle::Expect waived;
  waived.completion = false;
  EXPECT_FALSE(has_violation(RecoveryOracle::check(hung, waived),
                             "completion"));

  // A run where detection fired fails no-detection only when opted in.
  RunResult detected = r;
  detected.detection_ticks = 1234;
  EXPECT_TRUE(RecoveryOracle::check(detected).ok());
  RecoveryOracle::Expect gray;
  gray.no_detection = true;
  EXPECT_TRUE(has_violation(RecoveryOracle::check(detected, gray),
                            "no-detection"));
}

TEST(RecoveryOracleNegative, SnapshotRestoringRunsSkipTaskConservation) {
  // Periodic-global restores re-materialise tasks without re-accepting
  // them; the oracle must not false-positive on that intentional imbalance.
  SystemConfig cfg = testing::base_config(8, 3);
  cfg.recovery.kind = RecoveryKind::kPeriodicGlobal;
  const lang::Program program = lang::programs::fib(11, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(5, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed) << r.summary();
  if (r.counters.restores > 0) {
    EXPECT_FALSE(
        has_violation(RecoveryOracle::check(r), "task-conservation"));
  }
}

}  // namespace
}  // namespace splice
