// Flight recorder (PR 8): ring discipline, histogram quantiles, causal
// inference, binary journal roundtrip + cross-transport determinism,
// exporters, and the oracle's causal-chain attachment.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/causal.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "recovery/recovery_oracle.h"
#include "test_util.h"

namespace splice {
namespace {

runtime::LevelStamp make_stamp(std::initializer_list<runtime::StampDigit> ds) {
  runtime::LevelStamp::Digits digits;
  for (const runtime::StampDigit d : ds) digits.push_back(d);
  return runtime::LevelStamp(std::move(digits));
}

TEST(Recorder, RingWrapKeepsNewestWindowAndCountsDrops) {
  obs::Recorder rec;
  rec.configure(/*enabled=*/true, /*capacity=*/8, /*keep_details=*/false);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    rec.record(sim::SimTime(static_cast<std::int64_t>(i)),
               obs::EventKind::kPlace, {.proc = 0, .uid = i});
  }
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);

  const obs::Journal journal = rec.snapshot();
  EXPECT_EQ(journal.header.total_recorded, 20u);
  EXPECT_EQ(journal.header.dropped, 12u);
  ASSERT_EQ(journal.events.size(), 8u);
  // The retained window is the newest one, ids consecutive and oldest
  // first — find() depends on exactly this.
  EXPECT_EQ(journal.events.front().id, 13u);
  EXPECT_EQ(journal.events.back().id, 20u);
  EXPECT_EQ(journal.find(12), nullptr);
  EXPECT_EQ(journal.find(21), nullptr);
  ASSERT_NE(journal.find(13), nullptr);
  EXPECT_EQ(journal.find(13)->uid, 13u);
  ASSERT_NE(journal.find(20), nullptr);
  EXPECT_EQ(journal.find(20)->uid, 20u);
}

TEST(Recorder, DisabledAndDetailOffNeverEvaluateTheThunk) {
  obs::Recorder rec;
  bool evaluated = false;
  auto thunk = [&evaluated] {
    evaluated = true;
    return std::string("prose");
  };
  EXPECT_EQ(rec.record(sim::SimTime(1), obs::EventKind::kPlace, {}, thunk),
            obs::kNoEvent);
  EXPECT_FALSE(evaluated);
  EXPECT_EQ(rec.total_recorded(), 0u);

  rec.configure(true, 8, /*keep_details=*/false);
  EXPECT_NE(rec.record(sim::SimTime(1), obs::EventKind::kPlace, {}, thunk),
            obs::kNoEvent);
  EXPECT_FALSE(evaluated);  // journal on, rendered prose off

  rec.configure(true, 8, /*keep_details=*/true);
  rec.record(sim::SimTime(1), obs::EventKind::kPlace, {}, thunk);
  EXPECT_TRUE(evaluated);
}

TEST(LogHistogram, PercentilesWithinBucketError) {
  obs::LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 1000u * 1001u / 2);
  // Sub-bucket width bounds the relative error at ~2^-4.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.50)), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.99)), 990.0, 990.0 * 0.07);
  EXPECT_LE(h.percentile(0.999), 1000u);
  EXPECT_EQ(h.percentile(1.0), 1000u);

  // Values below 2^kSubBits land in exact unit buckets.
  obs::LogHistogram small;
  small.add(3);
  small.add(5);
  small.add(7);
  EXPECT_EQ(small.percentile(0.0), 3u);
  EXPECT_EQ(small.percentile(0.5), 5u);
  EXPECT_EQ(small.percentile(1.0), 7u);

  obs::LogHistogram other;
  other.add(2000);
  other.merge(h);
  EXPECT_EQ(other.count(), 1001u);
  EXPECT_EQ(other.max(), 2000u);
}

TEST(Recorder, InfersTheCrashDetectTwinChain) {
  obs::Recorder rec;
  rec.configure(true, 64, false);
  const auto crash =
      rec.record(sim::SimTime(10), obs::EventKind::kCrash, {.proc = 3});
  const auto detect = rec.record(sim::SimTime(20), obs::EventKind::kDetect,
                                 {.proc = 1, .peer = 3});
  const auto stamp = make_stamp({4, 2});
  const auto twin = rec.record(sim::SimTime(30), obs::EventKind::kTwin,
                               {.proc = 1, .stamp = &stamp});
  // The twin's packet lands: place of the same stamp chains to the twin.
  const auto place = rec.record(
      sim::SimTime(40), obs::EventKind::kPlace,
      {.proc = 2, .uid = 77, .stamp = &stamp});
  // Reclaim of the duplicate lineage: cancel chains to the respawn, abort
  // to the cancel.
  const auto cancel = rec.record(sim::SimTime(50), obs::EventKind::kCancel,
                                 {.proc = 1, .stamp = &stamp});
  const auto abort_id = rec.record(
      sim::SimTime(60), obs::EventKind::kAbort,
      {.proc = 2, .uid = 77, .stamp = &stamp});

  const obs::Journal journal = rec.snapshot();
  EXPECT_EQ(journal.find(detect)->cause, crash);
  EXPECT_EQ(journal.find(twin)->cause, detect);
  EXPECT_EQ(journal.find(place)->cause, twin);
  EXPECT_EQ(journal.find(cancel)->cause, twin);
  EXPECT_EQ(journal.find(abort_id)->cause, cancel);

  const std::vector<obs::EventId> chain = obs::chain_of(journal, abort_id);
  const std::vector<obs::EventId> expected = {crash, detect, twin, cancel,
                                              abort_id};
  EXPECT_EQ(chain, expected);

  const std::string explained = obs::explain_task(journal, 77);
  EXPECT_NE(explained.find("crash"), std::string::npos);
  EXPECT_NE(explained.find("twin"), std::string::npos);
  EXPECT_NE(explained.find("abort"), std::string::npos);

  EXPECT_EQ(obs::first_reissued(journal), twin);
}

TEST(Journal, SerializeRoundtripPreservesEveryField) {
  obs::Recorder rec;
  rec.configure(true, 64, false);
  rec.set_rank(2);
  rec.set_processors(16);
  const auto stamp = make_stamp({1, 15, 3});
  rec.record(sim::SimTime(100), obs::EventKind::kCrash, {.proc = 5});
  rec.record(sim::SimTime(250), obs::EventKind::kDetect,
             {.proc = 1, .peer = 5, .arg = 2});
  rec.record(sim::SimTime(300), obs::EventKind::kTwin,
             {.proc = 1, .uid = 42, .stamp = &stamp});
  // Host-side event at t=0 after later ticks: the tick delta goes negative
  // (svarint) and proc is kNoProc (the +1 bias).
  rec.record(sim::SimTime::zero(), obs::EventKind::kAnswer, {});

  const obs::Journal journal = rec.snapshot();
  const std::vector<std::uint8_t> bytes = obs::serialize(journal);
  const obs::Journal back = obs::deserialize(bytes.data(), bytes.size());

  EXPECT_EQ(back.header.version, 1u);
  EXPECT_EQ(back.header.rank, 2u);
  EXPECT_EQ(back.header.processors, 16u);
  EXPECT_EQ(back.header.total_recorded, journal.header.total_recorded);
  EXPECT_EQ(back.header.dropped, journal.header.dropped);
  ASSERT_EQ(back.events.size(), journal.events.size());
  for (std::size_t i = 0; i < back.events.size(); ++i) {
    const obs::Event& a = journal.events[i];
    const obs::Event& b = back.events[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.proc, b.proc);
    EXPECT_EQ(a.peer, b.peer);
    EXPECT_EQ(a.uid, b.uid);
    EXPECT_EQ(a.cause, b.cause);
    EXPECT_EQ(a.arg, b.arg);
    EXPECT_EQ(a.stamp, b.stamp);
  }

  EXPECT_THROW(obs::deserialize(bytes.data(), 3), std::runtime_error);
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[0] = 'X';
  EXPECT_THROW(obs::deserialize(corrupt.data(), corrupt.size()),
               std::runtime_error);
}

TEST(Journal, MergeRenumbersAndRemapsCausalEdges) {
  obs::Recorder r0;
  r0.configure(true, 64, false);
  r0.set_rank(0);
  const auto crash = r0.record(sim::SimTime(10), obs::EventKind::kCrash,
                               {.proc = 3});
  r0.record(sim::SimTime(30), obs::EventKind::kDetect, {.proc = 0, .peer = 3});

  obs::Recorder r1;
  r1.configure(true, 64, false);
  r1.set_rank(1);
  r1.record(sim::SimTime(20), obs::EventKind::kDetect, {.proc = 1, .peer = 3});

  const std::vector<obs::Journal> parts = {r0.snapshot(), r1.snapshot()};
  const obs::Journal merged = obs::merge(parts);
  ASSERT_EQ(merged.events.size(), 3u);
  // Time-ordered, ids renumbered consecutively from 1.
  EXPECT_EQ(merged.events[0].ticks, 10);
  EXPECT_EQ(merged.events[1].ticks, 20);
  EXPECT_EQ(merged.events[2].ticks, 30);
  for (std::size_t i = 0; i < merged.events.size(); ++i) {
    EXPECT_EQ(merged.events[i].id, i + 1);
  }
  // Rank 0's detect still chains to rank 0's crash after remapping; rank
  // 1's detect had no rank-local crash to chain to (its recorder inferred
  // nothing), so its cause stays empty.
  EXPECT_EQ(merged.events[0].kind, obs::EventKind::kCrash);
  EXPECT_EQ(merged.events[2].cause, merged.events[0].id);
  EXPECT_EQ(merged.events[1].cause, obs::kNoEvent);
  (void)crash;
}

TEST(Metrics, SamplingWindowsAccumulateGoodput) {
  obs::Metrics metrics;
  metrics.on_task_spawn();
  metrics.on_task_spawn();
  metrics.on_task_complete(100);
  metrics.sample(1000, /*queue_depth=*/7, /*in_flight=*/2,
                 /*checkpoint_residency=*/5);
  metrics.on_task_complete(200);
  metrics.sample(2000, 3, 1, 4);
  ASSERT_EQ(metrics.series().size(), 2u);
  EXPECT_EQ(metrics.series()[0].window_start, 0);
  EXPECT_EQ(metrics.series()[0].spawned, 2u);
  EXPECT_EQ(metrics.series()[0].completed, 1u);
  EXPECT_EQ(metrics.series()[0].queue_depth, 7u);
  EXPECT_EQ(metrics.series()[0].in_flight, 2u);
  EXPECT_EQ(metrics.series()[0].checkpoint_residency, 5u);
  EXPECT_EQ(metrics.series()[1].window_start, 1000);
  EXPECT_EQ(metrics.series()[1].spawned, 0u);
  EXPECT_EQ(metrics.series()[1].completed, 1u);
  EXPECT_EQ(metrics.latency().count(), 2u);  // whole-run histogram keeps both
}

// The integration fixture: a seeded partition-and-heal chaos run with the
// recorder on — the E19 recipe shrunk to suite scale.
core::RunResult run_chaos(core::SystemConfig cfg, obs::Journal* journal_out,
                          std::vector<obs::TimePoint>* series_out = nullptr,
                          std::string* trace_render = nullptr) {
  cfg.reclaim.cancellation = true;
  cfg.reclaim.gc_interval = 0;
  const lang::Program program = lang::programs::tree_sum(7, 2, 400, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::partition(
      net::RegionSpec::neighborhood(
          static_cast<net::ProcId>(cfg.processors - 1), 1),
      sim::SimTime(makespan / 4), sim::SimTime(makespan / 3));
  plan.with_seed(991);
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  const core::RunResult result = sim.run();
  if (journal_out != nullptr) *journal_out = sim.recorder().snapshot();
  if (series_out != nullptr) *series_out = sim.recorder().metrics().series();
  if (trace_render != nullptr) *trace_render = sim.trace().render();
  return result;
}

TEST(FlightRecorder, JournalIsByteIdenticalAcrossTransports) {
  core::SystemConfig cfg = testing::base_config(16, 5);
  cfg.obs.recorder = true;

  obs::Journal inproc;
  const core::RunResult r1 = run_chaos(cfg, &inproc);
  ASSERT_TRUE(r1.completed && r1.answer_correct) << r1.summary();

  cfg.transport.backend = net::TransportKind::kShmRing;
  obs::Journal shm;
  const core::RunResult r2 = run_chaos(cfg, &shm);
  ASSERT_TRUE(r2.completed && r2.answer_correct) << r2.summary();

  // The same discipline transport_test applies to counters, raised to the
  // full event stream: the journal is a pure function of (config, program,
  // plan), not of the wire.
  EXPECT_EQ(obs::serialize(inproc), obs::serialize(shm));
}

TEST(FlightRecorder, ChaosRunJournalsTheRecoveryStory) {
  core::SystemConfig cfg = testing::base_config(16, 5);
  cfg.obs.recorder = true;

  obs::Journal journal;
  std::vector<obs::TimePoint> series;
  const core::RunResult result = run_chaos(cfg, &journal, &series);
  ASSERT_TRUE(result.completed && result.answer_correct) << result.summary();

  // The cut and its heal are journaled; so is at least one recovery action
  // caused (transitively) by the partition.
  std::uint64_t partitions = 0, heals = 0;
  for (const obs::Event& e : journal.events) {
    partitions += e.kind == obs::EventKind::kPartition;
    heals += e.kind == obs::EventKind::kHeal;
  }
  EXPECT_EQ(partitions, 1u);
  EXPECT_EQ(heals, 1u);

  const obs::EventId reissue = obs::first_reissued(journal);
  ASSERT_NE(reissue, obs::kNoEvent);
  const std::vector<obs::EventId> chain = obs::chain_of(journal, reissue);
  ASSERT_GE(chain.size(), 2u);
  const obs::Event* root = journal.find(chain.front());
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->kind == obs::EventKind::kPartition ||
              root->kind == obs::EventKind::kCrash);

  // Sampling series: windows are time-ordered and goodput sums to no more
  // than the completions the counters saw.
  ASSERT_FALSE(series.empty());
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    completed += series[i].completed;
    if (i > 0) {
      EXPECT_GT(series[i].window_start, series[i - 1].window_start);
    }
  }
  EXPECT_LE(completed, result.counters.tasks_completed);

  // Exporters stay well-formed (schema checked in CI by
  // scripts/check_trace_json.py; shape checked here).
  std::ostringstream perfetto;
  obs::write_perfetto(journal, series, perfetto);
  const std::string trace = perfetto.str();
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);

  std::ostringstream csv;
  obs::write_series_csv(series, csv);
  EXPECT_EQ(csv.str().rfind("window_start,", 0), 0u);

  // summary() now carries the PR5/PR7 counters when the run exercised
  // them.
  const std::string summary = result.summary();
  EXPECT_EQ(summary.find("cancels=") != std::string::npos,
            result.counters.cancels_sent > 0 ||
                result.counters.tasks_cancelled > 0);
  EXPECT_EQ(summary.find("cut=") != std::string::npos,
            result.net.partition_cut > 0);
}

TEST(FlightRecorder, TraceViewRendersFromTheJournal) {
  core::SystemConfig cfg = testing::base_config(16, 5);
  cfg.collect_trace = true;  // enables the recorder + detail prose

  obs::Journal journal;
  std::string rendered;
  const core::RunResult result =
      run_chaos(cfg, &journal, nullptr, &rendered);
  ASSERT_TRUE(result.completed && result.answer_correct) << result.summary();
  // The string view is a rendering of the typed journal: same kinds, same
  // order, one line per retained event.
  EXPECT_NE(rendered.find("place"), std::string::npos);
  EXPECT_NE(rendered.find("partition"), std::string::npos);
  EXPECT_NE(rendered.find("done"), std::string::npos);
  EXPECT_FALSE(journal.events.empty());
}

TEST(RecoveryOracle, ViolationsCarryTheCausalChain) {
  obs::Recorder rec;
  rec.configure(true, 64, false);
  rec.record(sim::SimTime(10), obs::EventKind::kCrash, {.proc = 3});
  rec.record(sim::SimTime(20), obs::EventKind::kDetect, {.proc = 1, .peer = 3});
  const obs::Journal journal = rec.snapshot();

  core::RunResult result;  // completed=false -> completion violation
  result.answer_checked = true;
  const auto report = recovery::RecoveryOracle::check(result, journal);
  ASSERT_FALSE(report.ok());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("completion"), std::string::npos);
  EXPECT_NE(text.find("causal chain:"), std::string::npos);
  EXPECT_NE(text.find("crash"), std::string::npos);

  // task-leak prefers the leak's own chain.
  obs::Recorder rec2;
  rec2.configure(true, 64, false);
  rec2.record(sim::SimTime(10), obs::EventKind::kCrash, {.proc = 3});
  rec2.record(sim::SimTime(30), obs::EventKind::kPlace, {.proc = 2, .uid = 9});
  rec2.record(sim::SimTime(90), obs::EventKind::kOracleLeak,
              {.proc = 2, .uid = 9});
  core::RunResult leaked;
  leaked.completed = true;
  leaked.counters.gc_oracle_orphans = 1;
  // Balance the conservation ledgers so only task-leak fires.
  leaked.counters.tasks_created = 1;
  leaked.counters.tasks_completed = 1;
  const auto leak_report =
      recovery::RecoveryOracle::check(leaked, rec2.snapshot());
  ASSERT_FALSE(leak_report.ok());
  const std::string leak_text = leak_report.to_string();
  EXPECT_NE(leak_text.find("task-leak"), std::string::npos);
  EXPECT_NE(leak_text.find("oracle-leak"), std::string::npos);
}

}  // namespace
}  // namespace splice
