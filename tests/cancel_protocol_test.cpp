// The distributed task-cancellation protocol (kCancel).
//
// The paper's recovery scheme never assumes global knowledge: every
// corrective action travels as a message. These suites lock in the discard
// case — duplicate-lineage reclaim by cancel propagation — with the old
// omniscient sweep demoted to a read-only validation oracle:
//
//   * a 90-run chaos matrix (three duplicate-generating scenario families
//     x victims x seeds) with sweeps disabled and the oracle armed: every
//     run must complete correctly with zero oracle leaks, and the matrix
//     as a whole must actually exercise the protocol (cancels sent,
//     duplicates reclaimed);
//   * a property suite for cancels racing kStateChunk state transfer: a
//     released checkpoint must never resurrect as a re-hosted task, and
//     re-crashes mid-transfer must neither strand nor duplicate work;
//   * determinism A/B (replay identity of the full cancel traffic);
//   * regression guards for the cancel/ack races: stale-lineage acks and
//     double releases of the striped checkpoint entry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checkpoint/checkpoint_table.h"
#include "core/simulation.h"
#include "lang/programs.h"
#include "store/persistency.h"

namespace splice {
namespace {

using core::RunResult;
using core::SystemConfig;

/// Cancellation on, sweeps off, oracle armed: the configuration of the
/// acceptance criterion ("with gc_interval sweeps disabled and cancellation
/// enabled, the chaos matrix reclaims every duplicate").
SystemConfig cancel_config(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.processors = 8;
  cfg.topology = net::TopologyKind::kMesh2D;
  cfg.scheduler.kind = core::SchedulerKind::kRandom;
  cfg.recovery.kind = core::RecoveryKind::kSplice;
  cfg.heartbeat_interval = 500;
  cfg.reclaim.cancellation = true;
  cfg.reclaim.gc_interval = 400;  // oracle cadence, not a sweep
  cfg.reclaim.gc_oracle = true;
  cfg.seed = seed;
  return cfg;
}

/// The duplicate generator inherited from the old orphan-GC suite: warm
/// rejoin with an immediately-expiring pre-link grace, so re-hosted parents
/// respawn surviving orphan subtrees as twins while the originals keep
/// computing on their peers.
SystemConfig prelink_race_config(std::uint64_t seed) {
  SystemConfig cfg = cancel_config(seed);
  cfg.store.model = store::Persistency::kLocal;
  cfg.store.warm_grace = 40000;
  cfg.store.prelink_grace = 1;
  return cfg;
}

struct ChaosTotals {
  std::uint64_t runs = 0;
  std::uint64_t cancels_sent = 0;
  std::uint64_t tasks_cancelled = 0;
  std::uint64_t oracle_orphans = 0;
};

void run_chaos(const SystemConfig& cfg, const lang::Program& program,
               const net::FaultPlan& plan, ChaosTotals& totals,
               const std::string& label) {
  const RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed) << label << ": " << r.summary();
  EXPECT_TRUE(r.answer_correct) << label << ": " << r.summary();
  EXPECT_EQ(r.counters.gc_oracle_orphans, 0U)
      << label << ": a duplicate with a live parent outlived the protocol";
  ++totals.runs;
  totals.cancels_sent += r.counters.cancels_sent;
  totals.tasks_cancelled += r.counters.tasks_cancelled;
  totals.oracle_orphans += r.counters.gc_oracle_orphans;
}

// 90 runs: 15 seeds x 6 fault injections across 3 scenario families,
// oracle-on, sweeps disabled.
TEST(CancelProtocol, ChaosMatrixReclaimsEveryDuplicate) {
  const auto program = lang::programs::tree_sum(6, 2, 400, 30);
  ChaosTotals totals;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    // Family A: the pre-link race (warm rejoin, grace expires instantly).
    {
      SystemConfig cfg = prelink_race_config(seed);
      const std::int64_t makespan =
          core::Simulation::fault_free_makespan(cfg, program);
      for (const net::ProcId victim : {1U, 3U, 5U}) {
        net::FaultPlan plan =
            net::FaultPlan::single(victim, sim::SimTime(makespan / 2));
        plan.with_rejoin(sim::SimTime(makespan / 10), net::RejoinMode::kWarm);
        run_chaos(cfg, program, plan, totals,
                  "prelink seed=" + std::to_string(seed) + " victim=" +
                      std::to_string(victim));
      }
    }
    // Family B: regional outage + cascade + cold rejoin under splice (twin
    // recompute vs. surviving orphan races).
    {
      SystemConfig cfg = cancel_config(seed);
      const std::int64_t makespan =
          core::Simulation::fault_free_makespan(cfg, program);
      for (const char* spec :
           {"rect:0,0,2x1@T2;rejoin:T10", "cascade:5@T2,p=0.8,hops=1;rejoin:T10"}) {
        std::string s(spec);
        const auto sub = [&](const std::string& from, std::int64_t value) {
          for (std::size_t at = s.find(from); at != std::string::npos;
               at = s.find(from)) {
            s.replace(at, from.size(), std::to_string(value));
          }
        };
        sub("T10", makespan / 10);
        sub("T2", makespan / 2);
        net::FaultPlan plan = core::parse_fault_plan(s);
        plan.with_seed(seed * 31 + 7);
        run_chaos(cfg, program, plan, totals,
                  std::string("regional seed=") + std::to_string(seed) +
                      " spec=" + s);
      }
    }
    // Family C: rollback with a mid-run crash — doomed orphan subtrees must
    // cascade-cancel instead of computing to run end (the oracle runs with
    // no salvage exclusion under a non-salvaging policy).
    {
      SystemConfig cfg = cancel_config(seed);
      cfg.recovery.kind = core::RecoveryKind::kRollback;
      const std::int64_t makespan =
          core::Simulation::fault_free_makespan(cfg, program);
      const net::ProcId victim = static_cast<net::ProcId>((seed * 13) % 8);
      run_chaos(cfg, program,
                net::FaultPlan::single(victim, sim::SimTime(makespan / 2)),
                totals, "rollback seed=" + std::to_string(seed));
    }
  }
  // 15 seeds x (3 prelink victims + 2 regional specs + 1 rollback) = 90.
  EXPECT_EQ(totals.runs, 90U);
  EXPECT_EQ(totals.oracle_orphans, 0U);
  // The matrix must exercise the protocol, not vacuously pass.
  EXPECT_GT(totals.cancels_sent, 0U) << "no scenario emitted a cancel";
  EXPECT_GT(totals.tasks_cancelled, 0U) << "no duplicate was reclaimed";
}

TEST(CancelProtocol, ReclaimsPrelinkRaceDuplicatesWithoutSweeps) {
  // The flagship duplicate generator, protocol-only: with the sweep
  // demoted to an oracle, reclaim must come from cancels.
  const auto program = lang::programs::tree_sum(6, 2, 400, 30);
  std::uint64_t reclaimed = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SystemConfig cfg = prelink_race_config(seed);
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, program);
    net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
    plan.with_rejoin(sim::SimTime(makespan / 10), net::RejoinMode::kWarm);
    const RunResult r = core::run_once(cfg, program, plan);
    EXPECT_TRUE(r.completed && r.answer_correct) << "seed " << seed;
    EXPECT_EQ(r.counters.orphans_gced, 0U) << "oracle mode must not abort";
    EXPECT_EQ(r.counters.gc_oracle_orphans, 0U) << "seed " << seed;
    reclaimed += r.counters.tasks_cancelled;
  }
  EXPECT_GT(reclaimed, 0U)
      << "no seed produced a duplicate for the protocol to reclaim";
}

TEST(CancelProtocol, DeterministicReplay) {
  const auto program = lang::programs::tree_sum(6, 2, 400, 30);
  SystemConfig cfg = prelink_race_config(7);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan / 10), net::RejoinMode::kWarm);
  const RunResult a = core::run_once(cfg, program, plan);
  const RunResult b = core::run_once(cfg, program, plan);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.counters.cancels_sent, b.counters.cancels_sent);
  EXPECT_EQ(a.counters.tasks_cancelled, b.counters.tasks_cancelled);
  EXPECT_EQ(a.counters.cancels_ignored, b.counters.cancels_ignored);
  EXPECT_EQ(a.counters.scans, b.counters.scans);
  EXPECT_EQ(a.net.sent[static_cast<std::size_t>(net::MsgKind::kCancel)],
            b.net.sent[static_cast<std::size_t>(net::MsgKind::kCancel)]);
}

TEST(CancelProtocol, ProtocolReclaimDoesNotIncreaseTotalWork) {
  // The analog of the old sweep's waste test: reclaiming duplicates by
  // message must not cost more scans than letting them run (and should
  // usually cost fewer).
  const auto program = lang::programs::tree_sum(6, 2, 400, 30);
  std::uint64_t scans_with = 0;
  std::uint64_t scans_without = 0;
  int reclaimed_runs = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SystemConfig cfg_on = prelink_race_config(seed);
    SystemConfig cfg_off = prelink_race_config(seed);
    cfg_off.reclaim.cancellation = false;
    cfg_off.reclaim.gc_interval = 0;  // nothing reclaims
    cfg_off.reclaim.gc_oracle = false;
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg_off, program);
    net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
    plan.with_rejoin(sim::SimTime(makespan / 10), net::RejoinMode::kWarm);
    const RunResult on = core::run_once(cfg_on, program, plan);
    const RunResult off = core::run_once(cfg_off, program, plan);
    EXPECT_TRUE(on.answer_correct && off.answer_correct) << "seed " << seed;
    if (on.counters.tasks_cancelled > 0) ++reclaimed_runs;
    scans_with += on.counters.scans;
    scans_without += off.counters.scans;
  }
  ASSERT_GT(reclaimed_runs, 0);
  EXPECT_LE(scans_with, scans_without + scans_without / 20);
}

// ---------------------------------------------------------------------------
// Cancels racing kStateChunk transfers (property suite)
// ---------------------------------------------------------------------------

TEST(CancelProtocol, CancelsRacingStateTransferNeverStrandOrDuplicate) {
  // Warm rejoin with one-record chunks and a long pacing interval keeps the
  // transfer window open across many protocol events; a second fault mid
  // stream (and a second rejoin) exercises the incarnation guards. Any
  // released checkpoint that resurrected as a re-hosted task would show up
  // as a persistent duplicate (oracle) or a wrong answer; any stranding as
  // an incomplete run.
  const auto program = lang::programs::tree_sum(6, 2, 400, 30);
  int exercised = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SystemConfig cfg = prelink_race_config(seed);
    cfg.store.chunk_records = 1;   // maximal number of chunk round-trips
    cfg.store.chunk_interval = 120;
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, program);
    // Victim A rejoins warm; while its catch-up streams, victim B (one of
    // the streaming survivors) crashes and also rejoins warm.
    net::FaultPlan plan =
        net::FaultPlan::single(3, sim::SimTime(makespan / 3));
    plan.with_rejoin(sim::SimTime(makespan / 12), net::RejoinMode::kWarm);
    net::FaultPlan second = net::FaultPlan::single(
        static_cast<net::ProcId>(1 + (seed % 2) * 4),
        sim::SimTime(makespan / 3 + makespan / 12 + 60));
    second.with_rejoin(sim::SimTime(makespan / 12), net::RejoinMode::kWarm);
    plan.merge(std::move(second));
    const RunResult r = core::run_once(cfg, program, plan);
    EXPECT_TRUE(r.completed) << "seed " << seed << ": " << r.summary();
    EXPECT_TRUE(r.answer_correct) << "seed " << seed;
    EXPECT_EQ(r.counters.gc_oracle_orphans, 0U) << "seed " << seed;
    if (r.counters.state_chunks_sent > 0 && r.counters.cancels_sent > 0) {
      ++exercised;
    }
  }
  EXPECT_GT(exercised, 0)
      << "no seed raced a cancel against a state transfer";
}

// ---------------------------------------------------------------------------
// Cancel/ack race guards (regression, satellite: striped-entry releases)
// ---------------------------------------------------------------------------

TEST(CancelProtocol, ReleaseAnywhereIsIdempotent) {
  // A cancel arriving between a child's result send and the parent's ack
  // must not double-release the striped entry: the second release of the
  // same stamp finds nothing, counts nothing, and the totals stay sane.
  checkpoint::CheckpointTable table(/*self=*/0, /*processors=*/16);
  checkpoint::CheckpointRecord record;
  record.owner = 42;
  record.site = 3;
  record.packet.stamp = runtime::LevelStamp::root().child(3);
  ASSERT_EQ(table.record(/*dest=*/9, record),
            checkpoint::RecordOutcome::kRecorded);
  ASSERT_TRUE(table.contains(9, record.packet.stamp));
  EXPECT_EQ(table.total_records(), 1U);

  EXPECT_TRUE(table.release_anywhere(record.packet.stamp));   // result path
  EXPECT_FALSE(table.release_anywhere(record.packet.stamp));  // cancel path
  EXPECT_FALSE(table.contains(9, record.packet.stamp));
  EXPECT_EQ(table.total_records(), 0U);
  EXPECT_EQ(table.released(), 1U);  // the no-op release is not counted
}

TEST(CancelProtocol, ContainsTracksRecordAndRelease) {
  checkpoint::CheckpointTable table(/*self=*/2, /*processors=*/32);
  const auto stamp = runtime::LevelStamp::root().child(5).child(1);
  EXPECT_FALSE(table.contains(17, stamp));
  checkpoint::CheckpointRecord record;
  record.owner = 7;
  record.site = 1;
  record.packet.stamp = stamp;
  table.record(17, record);
  EXPECT_TRUE(table.contains(17, stamp));
  EXPECT_FALSE(table.contains(18, stamp));  // held against 17, not 18
  table.release(17, stamp);
  EXPECT_FALSE(table.contains(17, stamp));
}

}  // namespace
}  // namespace splice
