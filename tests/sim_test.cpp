#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace splice::sim {
namespace {

TEST(SimTime, Arithmetic) {
  const SimTime a(100), b(40);
  EXPECT_EQ((a + b).ticks(), 140);
  EXPECT_EQ((a - b).ticks(), 60);
  EXPECT_EQ((a * 3).ticks(), 300);
  EXPECT_LT(b, a);
  EXPECT_EQ(SimTime::zero().ticks(), 0);
  EXPECT_NEAR(SimTime(2000000).seconds(), 2.0, 1e-12);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(30), [&] { order.push_back(3); });
  q.schedule(SimTime(10), [&] { order.push_back(1); });
  q.schedule(SimTime(20), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelInvalidOrUnknownIdIsHarmlessNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(12345));  // id never issued
  q.schedule(SimTime(1), [] {});
  EXPECT_FALSE(q.cancel(kInvalidEvent));  // live queue: still a no-op
  EXPECT_EQ(q.pending(), 1U);
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelInvalidIdIsSafe) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, PendingCountsLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(SimTime(1), [] {});
  q.schedule(SimTime(2), [] {});
  EXPECT_EQ(q.pending(), 2U);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1U);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> seen;
  sim.after(SimTime(50), [&] { seen.push_back(sim.now().ticks()); });
  sim.after(SimTime(10), [&] { seen.push_back(sim.now().ticks()); });
  EXPECT_TRUE(sim.run_until());
  EXPECT_EQ(seen, (std::vector<std::int64_t>{10, 50}));
  EXPECT_EQ(sim.events_executed(), 2U);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.after(SimTime(10), step);
  };
  sim.after(SimTime(10), step);
  EXPECT_TRUE(sim.run_until());
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.now().ticks(), 50);
}

TEST(Simulator, DeadlineStopsEarly) {
  Simulator sim;
  bool late_fired = false;
  sim.after(SimTime(10), [] {});
  sim.after(SimTime(1000), [&] { late_fired = true; });
  EXPECT_FALSE(sim.run_until(SimTime(100)));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.now().ticks(), 10);
}

TEST(Simulator, RunStepsBoundsEventCount) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.after(SimTime(i + 1), [] {});
  EXPECT_EQ(sim.run_steps(4), 4U);
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.run_steps(100), 6U);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RequestStopHaltsLoop) {
  Simulator sim;
  int fired = 0;
  sim.after(SimTime(1), [&] {
    ++fired;
    sim.request_stop();
  });
  sim.after(SimTime(2), [&] { ++fired; });
  EXPECT_FALSE(sim.run_until());
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  const EventId id = sim.after(SimTime(100), [] { FAIL(); });
  sim.after(SimTime(5), [] {});
  sim.cancel(id);
  EXPECT_TRUE(sim.run_until());
  EXPECT_EQ(sim.now().ticks(), 5);
}

}  // namespace
}  // namespace splice::sim
