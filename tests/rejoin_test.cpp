// Node rejoin (crash-recovery model): a killed processor is repaired after
// the plan's repair delay, revives blank, announces itself, and re-enters
// scheduling — under every recovery policy, repeatedly, deterministically.
#include <gtest/gtest.h>

#include <vector>

#include "core/config.h"
#include "core/simulation.h"
#include "lang/programs.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace splice {
namespace {

// ---------------------------------------------------------------------------
// Network-level revive semantics
// ---------------------------------------------------------------------------

TEST(NetworkRevive, RevivedNodeReceivesAgain) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology(net::TopologyKind::kComplete, 4),
                       net::LatencyModel{});
  std::vector<net::MsgKind> at2;
  for (net::ProcId p = 0; p < 4; ++p) {
    network.set_receiver(p, [&, p](net::Envelope env) {
      if (p == 2) at2.push_back(env.kind);
    });
  }
  network.kill(2);
  auto make_env = [] {
    net::Envelope env;
    env.kind = net::MsgKind::kControl;
    env.from = 0;
    env.to = 2;
    return env;
  };
  network.send(make_env());  // lost: 2 is down
  EXPECT_TRUE(sim.run_until());
  EXPECT_TRUE(at2.empty());

  network.revive(2);
  EXPECT_TRUE(network.alive(2));
  EXPECT_EQ(network.alive_count(), 4U);
  EXPECT_EQ(network.stats().revives, 1U);
  network.revive(2);  // idempotent
  EXPECT_EQ(network.stats().revives, 1U);

  network.send(make_env());
  EXPECT_TRUE(sim.run_until());
  ASSERT_EQ(at2.size(), 1U);
  EXPECT_EQ(at2[0], net::MsgKind::kControl);
}

// ---------------------------------------------------------------------------
// Injector-level repair scheduling
// ---------------------------------------------------------------------------

TEST(RejoinInjector, ReviveFiresRepairDelayAfterEachKill) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology(net::TopologyKind::kComplete, 4),
                       net::LatencyModel{});
  for (net::ProcId p = 0; p < 4; ++p) network.set_receiver(p, [](auto) {});
  std::vector<std::pair<std::int64_t, net::ProcId>> kills, revives;
  net::FaultPlan plan;
  plan.timed.push_back({1, sim::SimTime(500)});
  plan.timed.push_back({1, sim::SimTime(2000)});  // killed again after repair
  plan.with_rejoin(sim::SimTime(300));
  net::FaultInjector injector(
      sim, network, plan,
      [&](net::ProcId p) { kills.push_back({sim.now().ticks(), p}); },
      [&](net::ProcId p) { revives.push_back({sim.now().ticks(), p}); });
  injector.arm();
  EXPECT_TRUE(sim.run_until());
  ASSERT_EQ(kills.size(), 2U);
  ASSERT_EQ(revives.size(), 2U);
  EXPECT_EQ(kills[0], (std::pair<std::int64_t, net::ProcId>{500, 1}));
  EXPECT_EQ(revives[0], (std::pair<std::int64_t, net::ProcId>{800, 1}));
  EXPECT_EQ(kills[1], (std::pair<std::int64_t, net::ProcId>{2000, 1}));
  EXPECT_EQ(revives[1], (std::pair<std::int64_t, net::ProcId>{2300, 1}));
  EXPECT_EQ(injector.kills_executed(), 2U);
  EXPECT_EQ(injector.revives_executed(), 2U);
  EXPECT_TRUE(network.alive(1));
}

TEST(RejoinInjector, ReviveNowOnAliveNodeIsNoop) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology(net::TopologyKind::kComplete, 2),
                       net::LatencyModel{});
  int revive_calls = 0;
  net::FaultInjector injector(sim, network, {}, nullptr,
                              [&](net::ProcId) { ++revive_calls; });
  injector.revive_now(1);  // alive: nothing to repair
  EXPECT_EQ(revive_calls, 0);
  injector.kill_now(1);
  injector.revive_now(1);
  injector.revive_now(1);
  EXPECT_EQ(revive_calls, 1);
  EXPECT_EQ(injector.revives_executed(), 1U);
}

// ---------------------------------------------------------------------------
// Whole-system crash-recovery runs
// ---------------------------------------------------------------------------

core::SystemConfig base_config(core::RecoveryKind kind) {
  core::SystemConfig cfg;
  cfg.processors = 8;
  cfg.topology = net::TopologyKind::kMesh2D;
  cfg.recovery.kind = kind;
  cfg.heartbeat_interval = 1000;
  cfg.seed = 7;
  return cfg;
}

TEST(Rejoin, SpliceCompletesWithKillAndRejoin) {
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kSplice);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan / 4));
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.faults_injected, 1U);
  EXPECT_EQ(r.nodes_revived, 1U);
  EXPECT_EQ(r.counters.rejoins, 1U);
  // The repaired node is back in the machine at the end.
  EXPECT_EQ(r.processors_alive_at_end, 8U);
}

TEST(Rejoin, RevivedNodeAnnouncesAndPeersForgetItsDeath) {
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kSplice);
  cfg.collect_trace = true;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::single(2, sim::SimTime(makespan / 3));
  plan.with_rejoin(sim::SimTime(1000));
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  const core::RunResult r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_TRUE(sim.trace().contains("rejoin", "repaired, blank"));
  EXPECT_TRUE(sim.trace().contains("revive", "processor repaired"));
  // At least one live peer had detected the death and processed the
  // rejoin notice.
  EXPECT_TRUE(sim.trace().contains("peer-rejoin", "P2 is back"));
}

TEST(Rejoin, SecondDeathOfRejoinedNodeIsDetectedAndRecovered) {
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kSplice);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan;
  plan.timed.push_back({4, sim::SimTime(makespan / 4)});
  plan.timed.push_back({4, sim::SimTime(makespan / 4 + 3000)});
  plan.with_rejoin(sim::SimTime(1000));
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.faults_injected, 2U);  // the same node died twice
  EXPECT_EQ(r.nodes_revived, 2U);
  EXPECT_EQ(r.counters.rejoins, 2U);
}

class RejoinPolicyMatrixTest
    : public ::testing::TestWithParam<core::RecoveryKind> {};

TEST_P(RejoinPolicyMatrixTest, PolicyCompletesWithRejoiningNode) {
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  core::SystemConfig cfg = base_config(GetParam());
  if (GetParam() == core::RecoveryKind::kPeriodicGlobal) {
    cfg.recovery.checkpoint_interval = 8000;
  }
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::single(5, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(2000));
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed) << core::to_string(GetParam());
  EXPECT_TRUE(r.answer_correct) << core::to_string(GetParam());
  EXPECT_EQ(r.nodes_revived, 1U);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, RejoinPolicyMatrixTest,
                         ::testing::Values(core::RecoveryKind::kRollback,
                                           core::RecoveryKind::kSplice,
                                           core::RecoveryKind::kRestart,
                                           core::RecoveryKind::kPeriodicGlobal),
                         [](const auto& param_info) {
                           std::string name(core::to_string(param_info.param));
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(Rejoin, ReplicatedTasksWithRejoiningNode) {
  const auto program = lang::programs::tree_sum(3, 3, 250, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kSplice);
  cfg.processors = 9;
  cfg.replication.factor = 3;
  cfg.replication.max_depth = 2;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::single(4, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(2000));
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.nodes_revived, 1U);
}

TEST(Rejoin, RegionalQuadrantKillWithRepairCompletes) {
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kSplice);
  cfg.processors = 16;  // 4x4 mesh
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::region(
      net::RegionSpec::grid_rect(0, 0, 2, 2), sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan / 4));
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.faults_injected, 4U);  // the whole quadrant went down at once
  EXPECT_EQ(r.nodes_revived, 4U);
  EXPECT_EQ(r.processors_alive_at_end, 16U);
}

TEST(Rejoin, CascadeWithRepairCompletes) {
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kSplice);
  cfg.processors = 16;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::CascadeFault wave;
  wave.seed = 5;
  wave.when = sim::SimTime(makespan / 2);
  wave.probability = 1.0;  // the whole 1-hop neighbourhood dies
  wave.max_hops = 1;
  wave.stagger = sim::SimTime(500);
  net::FaultPlan plan = net::FaultPlan::cascade(wave);
  plan.with_rejoin(sim::SimTime(makespan / 4));
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_GE(r.faults_injected, 5U);  // seed + its four mesh neighbours
  EXPECT_EQ(r.nodes_revived, r.faults_injected);
}

class FastRepairTest : public ::testing::TestWithParam<core::RecoveryKind> {};

TEST_P(FastRepairTest, RepairFasterThanDetectionStillRecovers) {
  // Repair delay far below the network failure timeout (400): every bounce
  // notice lands after the node is already back. The stale notices must
  // not re-mark the live node dead, and the subtree the node hosted must
  // still be regrown — the undetected-death obligations ride the rejoin
  // notice and the revive hook instead of the detection path.
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  core::SystemConfig cfg = base_config(GetParam());
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(100));
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed) << core::to_string(GetParam());
  EXPECT_TRUE(r.answer_correct) << core::to_string(GetParam());
  EXPECT_EQ(r.nodes_revived, 1U);
  EXPECT_EQ(r.processors_alive_at_end, 8U);
}

INSTANTIATE_TEST_SUITE_P(SpliceAndRollback, FastRepairTest,
                         ::testing::Values(core::RecoveryKind::kSplice,
                                           core::RecoveryKind::kRollback),
                         [](const auto& param_info) {
                           return std::string(
                               core::to_string(param_info.param));
                         });

TEST(Rejoin, IdenticalSeededRunsAreBitIdentical) {
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  auto run = [&] {
    core::SystemConfig cfg = base_config(core::RecoveryKind::kSplice);
    cfg.processors = 16;
    net::CascadeFault wave;
    wave.seed = 9;
    wave.when = sim::SimTime(15000);
    wave.probability = 0.7;
    wave.max_hops = 2;
    net::RecurringFault arrivals;
    arrivals.start = sim::SimTime(5000);
    arrivals.stop = sim::SimTime(60000);
    arrivals.mean_interval = 9000;
    arrivals.max_faults = 4;
    net::FaultPlan plan = net::FaultPlan::cascade(wave);
    plan.merge(net::FaultPlan::poisson(arrivals));
    plan.with_rejoin(sim::SimTime(6000)).with_seed(21);
    return core::run_once(cfg, program, plan);
  };
  const core::RunResult a = run();
  const core::RunResult b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.nodes_revived, b.nodes_revived);
  EXPECT_EQ(a.counters.tasks_created, b.counters.tasks_created);
  EXPECT_EQ(a.counters.tasks_respawned, b.counters.tasks_respawned);
  EXPECT_EQ(a.net.total_sent(), b.net.total_sent());
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(Rejoin, RejoinedNodeReentersScheduling) {
  // Kill early with a short repair; by completion the revived node must
  // have accepted fresh work (tasks created after its rejoin).
  const auto program = lang::programs::tree_sum(5, 3, 300, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kSplice);
  cfg.processors = 4;  // small machine: the scheduler cannot avoid it
  net::FaultPlan plan = net::FaultPlan::single(2, sim::SimTime(2000));
  plan.with_rejoin(sim::SimTime(1500));
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  const core::RunResult r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  auto& revived = sim.runtime_for_test().processor(2);
  EXPECT_EQ(revived.counters().rejoins, 1U);
  EXPECT_FALSE(revived.crashed());
  // tasks_created counts intake over the node's whole life; everything
  // before the crash was nuked, so any completion implies post-rejoin work
  // only when the count exceeds what it had absorbed pre-crash. Weaker but
  // robust: the node completed at least one task after rejoining.
  EXPECT_GT(revived.counters().tasks_completed, 0U);
}

}  // namespace
}  // namespace splice
