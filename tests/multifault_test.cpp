// Multiple faults (§5.2): disjoint-branch faults recover in parallel;
// parent+grandparent same-branch faults strand orphans at ancestor depth 2
// and are rescued by the great-grandparent extension at depth 3.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

TEST(MultiFault, RollbackSurvivesTwoFaults) {
  SystemConfig cfg = base_config(8, 3);
  cfg.recovery.kind = RecoveryKind::kRollback;
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan;
  plan.timed.push_back({2, sim::SimTime(makespan / 3)});
  plan.timed.push_back({5, sim::SimTime(makespan * 2 / 3)});
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.faults_injected, 2U);
}

TEST(MultiFault, SpliceSurvivesTwoFaultsOnDisjointBranches) {
  // "Multiple failures on different branches of a structure do not disturb
  //  the recovery algorithm at all."
  SystemConfig cfg = base_config(8, 3);
  cfg.recovery.kind = RecoveryKind::kSplice;
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan;
  plan.timed.push_back({2, sim::SimTime(makespan / 3)});
  plan.timed.push_back({5, sim::SimTime(makespan / 3)});  // simultaneous
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
}

TEST(MultiFault, SpliceSurvivesSequentialFaultsHittingRecoveryTasks) {
  // The second fault may kill recovery twins of the first: respawn again.
  SystemConfig cfg = base_config(8, 5);
  cfg.recovery.kind = RecoveryKind::kSplice;
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan;
  plan.timed.push_back({1, sim::SimTime(makespan / 4)});
  plan.timed.push_back({2, sim::SimTime(makespan / 4 + 2000)});
  plan.timed.push_back({3, sim::SimTime(makespan / 4 + 4000)});
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
}

TEST(MultiFault, HalfTheMachineDies) {
  SystemConfig cfg = base_config(8, 7);
  cfg.recovery.kind = RecoveryKind::kSplice;
  const auto program = lang::programs::tree_sum(4, 2, 250, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan;
  for (net::ProcId p = 4; p < 8; ++p) {
    plan.timed.push_back({p, sim::SimTime(makespan / 2)});
  }
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.processors_alive_at_end, 4U);
}

// ---------------------------------------------------------------------------
// Same-branch double fault: parent and grandparent processors die together.
// ---------------------------------------------------------------------------
//
// Scripted chain  root -> p1 -> p2 -> leafwork...  pinned so that p1 (the
// parent) and p0-hosted grandparent relationships are precise:
//   root on P0, mid on P1, deep on P2, leaves on P3.
// Killing P1 and P2 simultaneously leaves `leaf` tasks whose parent (P2)
// and grandparent (P1) are both dead.

lang::Program chain_program() {
  using lang::programs::ScriptedNode;
  // Long-running leaves under a two-level chain.
  const std::vector<ScriptedNode> nodes = {
      {"root", {"mid"}, 50, 0},
      {"mid", {"deep"}, 50, 1},
      {"deep", {"leafA", "leafB"}, 50, 2},
      {"leafA", {}, 4000, 3},
      {"leafB", {}, 4000, 3},
  };
  return lang::programs::scripted_tree(nodes);
}

TEST(MultiFault, GrandparentOnlyChainStrandsOrphansAtDepthTwo) {
  // With the standard splice (ancestor_depth=2), killing the parent (P2)
  // and grandparent (P1) of the running leaves means a leaf's return has
  // nowhere to go: "the orphan task would be stranded". The run still
  // completes because the surviving ancestor (root on P0) regrows the
  // branch from its checkpoint of `mid`.
  SystemConfig cfg = base_config(4, 1);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.recovery.kind = RecoveryKind::kSplice;
  cfg.recovery.ancestor_depth = 2;
  const auto program = chain_program();
  net::FaultPlan plan;
  plan.timed.push_back({1, sim::SimTime(600)});
  plan.timed.push_back({2, sim::SimTime(600)});
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_GT(r.counters.orphans_stranded, 0U)
      << "leaves' returns should have found no live ancestor";
  EXPECT_EQ(r.counters.orphan_results_salvaged, 0U);
}

TEST(MultiFault, GreatGrandparentExtensionSalvagesSameBranchDoubleFault) {
  // §5.2: "the resilient structure concept can be further extended to
  // include pointers to the great grandparent ... to tolerate multiple
  // failures on one branch of the graph."
  SystemConfig cfg = base_config(4, 1);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.recovery.kind = RecoveryKind::kSplice;
  cfg.recovery.ancestor_depth = 3;  // + great-grandparent
  const auto program = chain_program();
  net::FaultPlan plan;
  plan.timed.push_back({1, sim::SimTime(600)});
  plan.timed.push_back({2, sim::SimTime(600)});
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.counters.orphans_stranded, 0U)
      << "great-grandparent chain should have caught every orphan";
  EXPECT_GT(r.counters.orphan_results_salvaged, 0U);
}

TEST(MultiFault, RollbackAlsoSurvivesSameBranchDoubleFault) {
  SystemConfig cfg = base_config(4, 1);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.recovery.kind = RecoveryKind::kRollback;
  const auto program = chain_program();
  net::FaultPlan plan;
  plan.timed.push_back({1, sim::SimTime(600)});
  plan.timed.push_back({2, sim::SimTime(600)});
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
}

TEST(MultiFault, AllButOneProcessorDies) {
  SystemConfig cfg = base_config(4, 13);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.recovery.kind = RecoveryKind::kSplice;
  const auto program = lang::programs::tree_sum(3, 2, 200, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan;
  plan.timed.push_back({1, sim::SimTime(makespan / 3)});
  plan.timed.push_back({2, sim::SimTime(makespan / 2)});
  plan.timed.push_back({3, sim::SimTime(makespan * 2 / 3)});
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.processors_alive_at_end, 1U);
}

}  // namespace
}  // namespace splice
