// Standalone TU that consumes only the public umbrella header, compiled with
// -Wall -Wextra -Werror (see tests/CMakeLists.txt). This locks the guarantee
// the umbrella suite asserts: "splice.h" alone is enough for a downstream
// embedder, with no hidden include-order or warning landmines.
#include "splice.h"

int main() {
  splice::core::SystemConfig cfg;
  cfg.processors = 4;
  const splice::lang::Program program = splice::lang::programs::fib(10);
  const splice::core::RunResult result = splice::core::run_once(cfg, program, {});
  return result.completed && result.answer_correct ? 0 : 1;
}
