#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace splice::util {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  SplitMix64 c(43);
  const std::uint64_t x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(Xoshiro256, ReplaysExactlyForSameSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(0), 0U);
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8U);
}

TEST(Xoshiro256, NextRangeInclusiveBounds) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Xoshiro256, ShufflePreservesElements) {
  Xoshiro256 rng(19);
  std::vector<int> xs{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = xs;
  rng.shuffle(xs);
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, sorted);
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 a(21);
  Xoshiro256 child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8U);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.001);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Accumulator all, left, right;
  Xoshiro256 rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 10;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(Accumulator, CovZeroWhenEmptyOrZeroMean) {
  Accumulator acc;
  EXPECT_EQ(acc.cov(), 0.0);
  acc.add(-1);
  acc.add(1);
  EXPECT_EQ(acc.cov(), 0.0);
}

TEST(Samples, PercentilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.min(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.add(-100);  // clamps to first bucket
  h.add(0.5);
  h.add(9.5);
  h.add(100);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4U);
  EXPECT_EQ(h.bucket(0), 2U);
  EXPECT_EQ(h.bucket(4), 2U);
  EXPECT_FALSE(h.render().empty());
}

TEST(Table, AsciiAlignmentAndCsvEscaping) {
  Table t({"name", "value"});
  t.set_title("demo");
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "2"});
  t.add_row({"short"});  // padded
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("demo"), std::string::npos);
  EXPECT_NE(ascii.find("| plain"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_EQ(t.row_count(), 3U);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(7)), "7");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-7)), "-7");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndOne) {
  parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0U);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace splice::util
