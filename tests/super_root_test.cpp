// The super-root (§4.3.1): root-failure recovery and the "user must
// restart" regime when it is disabled.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

// Pin the root to processor 0 so "kill the root's host" is deterministic.
lang::Program rooted_program() {
  using lang::programs::ScriptedNode;
  const std::vector<ScriptedNode> nodes = {
      {"root", {"left", "right"}, 100, 0},
      {"left", {"ll"}, 1500, 1},
      {"right", {"rr"}, 1500, 2},
      {"ll", {}, 4000, 1},
      {"rr", {}, 4000, 2},
  };
  return lang::programs::scripted_tree(nodes);
}

SystemConfig pinned_config(std::uint64_t seed = 1) {
  SystemConfig cfg = base_config(4, seed);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  return cfg;
}

TEST(SuperRoot, RootHostFailureIsRecovered) {
  SystemConfig cfg = pinned_config();
  cfg.super_root = true;
  const auto program = rooted_program();
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(cfg, program,
                                     net::FaultPlan::single(0, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
}

TEST(SuperRoot, DisabledMeansRootFailureIsFatal) {
  // "If the failed processor contains the root of a task tree, the
  //  regeneration of the root does not come naturally ... The user must
  //  restart the program."
  SystemConfig cfg = pinned_config();
  cfg.super_root = false;
  const auto program = rooted_program();
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  cfg.deadline_ticks = makespan * 20;
  const RunResult r = core::run_once(cfg, program,
                                     net::FaultPlan::single(0, sim::SimTime(makespan / 2)));
  EXPECT_FALSE(r.completed) << r.summary();
}

TEST(SuperRoot, RootFailureBeforeAnySpawn) {
  // Kill the root's host immediately: the super-root's preevaluation
  // checkpoint is the only copy of the program.
  SystemConfig cfg = pinned_config();
  const auto program = rooted_program();
  const RunResult r =
      core::run_once(cfg, program, net::FaultPlan::single(0, sim::SimTime(30)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
}

TEST(SuperRoot, OrphanedLevelOneTasksRelayThroughSuperRoot) {
  // Root dies while its children still run: their returns divert to the
  // super-root (the grandparent of level-1 tasks) and must be salvaged
  // into the respawned root.
  SystemConfig cfg = pinned_config();
  cfg.collect_trace = true;
  const auto program = rooted_program();
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(net::FaultPlan::single(0, sim::SimTime(makespan / 2)));
  const RunResult r = sim.run();
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  // Either the orphans were salvaged into the new root, or (if they
  // completed before the respawn scan) the new root recomputed them; the
  // salvage path is exercised with this pinned timing.
  EXPECT_GT(r.counters.orphan_results_salvaged +
                r.counters.tasks_respawned,
            0U);
}

TEST(SuperRoot, RestartPolicyRestartsWholeProgram) {
  SystemConfig cfg = pinned_config();
  cfg.recovery.kind = RecoveryKind::kRestart;
  const auto program = rooted_program();
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(cfg, program,
                                     net::FaultPlan::single(1, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  // A restart re-creates at least the root task a second time.
  EXPECT_GT(r.counters.tasks_created,
            lang::reference_stats(program).calls);
}

TEST(SuperRoot, RepeatedRootFailures) {
  SystemConfig cfg = pinned_config(7);
  const auto program = rooted_program();
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan;
  // Root respawns land via the (pinned-with-fallback) scheduler on random
  // alive processors; kill three hosts in sequence.
  plan.timed.push_back({0, sim::SimTime(makespan / 4)});
  plan.timed.push_back({1, sim::SimTime(makespan / 2)});
  plan.timed.push_back({2, sim::SimTime(makespan)});
  const RunResult r = core::run_once(cfg, program, plan);
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
}

}  // namespace
}  // namespace splice
