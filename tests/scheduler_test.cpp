#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "lang/programs.h"
#include "sched/gradient.h"
#include "sched/scheduler.h"

namespace splice::sched {
namespace {

struct FakeSystem {
  net::Topology topology;
  lang::Program program;
  std::vector<bool> alive;
  std::vector<std::uint32_t> load;

  explicit FakeSystem(net::ProcId n,
                      net::TopologyKind kind = net::TopologyKind::kComplete)
      : topology(kind, n),
        program(lang::programs::figure1_tree()),
        alive(n, true),
        load(n, 0) {}

  SchedulerEnv env(std::uint64_t seed = 1) {
    SchedulerEnv e;
    e.topology = &topology;
    e.program = &program;
    e.alive = [this](net::ProcId p) { return alive[p]; };
    e.queue_length = [this](net::ProcId p) { return load[p]; };
    e.seed = seed;
    return e;
  }
};

runtime::TaskPacket packet_for(const lang::Program& program,
                               const std::string& name) {
  runtime::TaskPacket packet;
  packet.fn = *program.find(name);
  packet.stamp = runtime::LevelStamp::root().child(1);
  return packet;
}

TEST(RandomScheduler, OnlyReturnsAliveProcessors) {
  FakeSystem sys(6);
  sys.alive[0] = sys.alive[3] = false;
  RandomScheduler sched;
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  for (int i = 0; i < 500; ++i) {
    const net::ProcId p = sched.choose(1, packet);
    ASSERT_NE(p, net::kNoProc);
    EXPECT_TRUE(sys.alive[p]);
  }
}

TEST(RandomScheduler, EventuallyUsesAllAliveProcessors) {
  FakeSystem sys(5);
  RandomScheduler sched;
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  std::set<net::ProcId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(sched.choose(0, packet));
  EXPECT_EQ(seen.size(), 5U);
}

TEST(RandomScheduler, NoAliveReturnsNoProc) {
  FakeSystem sys(3);
  sys.alive.assign(3, false);
  RandomScheduler sched;
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  EXPECT_EQ(sched.choose(0, packet), net::kNoProc);
}

TEST(RoundRobinScheduler, CyclesThroughAlive) {
  FakeSystem sys(4);
  sys.alive[2] = false;
  RoundRobinScheduler sched;
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  std::vector<net::ProcId> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(sched.choose(0, packet));
  EXPECT_EQ(picks, (std::vector<net::ProcId>{0, 1, 3, 0, 1, 3}));
}

TEST(LocalFirstScheduler, KeepsLocalUntilThreshold) {
  FakeSystem sys(4);
  LocalFirstScheduler sched(/*threshold=*/2);
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  sys.load[1] = 0;
  EXPECT_EQ(sched.choose(1, packet), 1U);
  sys.load[1] = 5;  // overloaded: pushes to least-loaded neighbour
  const net::ProcId p = sched.choose(1, packet);
  EXPECT_NE(p, 1U);
  EXPECT_TRUE(sys.alive[p]);
}

TEST(LocalFirstScheduler, DeadOriginStillFindsHost) {
  FakeSystem sys(4);
  sys.alive[1] = false;
  LocalFirstScheduler sched(2);
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  const net::ProcId p = sched.choose(1, packet);
  ASSERT_NE(p, net::kNoProc);
  EXPECT_TRUE(sys.alive[p]);
}

TEST(PinnedScheduler, HonoursFunctionPins) {
  FakeSystem sys(4);
  PinnedScheduler sched;
  sched.attach(sys.env());
  // figure1 pins: A1 -> 0, B2 -> 1, C4 -> 2, D5 -> 3.
  EXPECT_EQ(sched.choose(2, packet_for(sys.program, "A1")), 0U);
  EXPECT_EQ(sched.choose(2, packet_for(sys.program, "B2")), 1U);
  EXPECT_EQ(sched.choose(0, packet_for(sys.program, "C4")), 2U);
  EXPECT_EQ(sched.choose(0, packet_for(sys.program, "D5")), 3U);
}

TEST(PinnedScheduler, DeadPinFallsBackToAlive) {
  FakeSystem sys(4);
  sys.alive[1] = false;  // processor B dead
  PinnedScheduler sched;
  sched.attach(sys.env());
  for (int i = 0; i < 100; ++i) {
    const net::ProcId p = sched.choose(2, packet_for(sys.program, "B2"));
    ASSERT_NE(p, net::kNoProc);
    EXPECT_TRUE(sys.alive[p]);
  }
}

TEST(ChooseReplicas, DistinctDestinationsWhenPossible) {
  FakeSystem sys(8);
  RandomScheduler sched;
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  const auto dests = sched.choose_replicas(0, packet, 3);
  ASSERT_EQ(dests.size(), 3U);
  EXPECT_EQ(std::set<net::ProcId>(dests.begin(), dests.end()).size(), 3U);
}

TEST(ChooseReplicas, FewerAliveThanReplicasDuplicates) {
  FakeSystem sys(2);
  RandomScheduler sched;
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  const auto dests = sched.choose_replicas(0, packet, 5);
  EXPECT_EQ(dests.size(), 5U);
  for (const net::ProcId p : dests) EXPECT_LT(p, 2U);
}

TEST(GradientScheduler, ProximityZeroAtIdleNodes) {
  FakeSystem sys(8, net::TopologyKind::kRing);
  GradientScheduler sched(/*refresh=*/100, /*idle_threshold=*/0);
  sched.attach(sys.env());
  sys.load = {5, 5, 5, 0, 5, 5, 5, 5};  // node 3 is the only sink
  sched.refresh_now();
  const auto& prox = sched.proximities();
  EXPECT_EQ(prox[3], 0U);
  EXPECT_EQ(prox[2], 1U);
  EXPECT_EQ(prox[4], 1U);
  EXPECT_EQ(prox[0], 3U);
  EXPECT_EQ(prox[7], 4U);  // ring distance to 3
}

TEST(GradientScheduler, TasksFlowDownTheGradient) {
  FakeSystem sys(8, net::TopologyKind::kRing);
  GradientScheduler sched(100, 0);
  sched.attach(sys.env());
  sys.load = {5, 5, 5, 0, 5, 5, 5, 5};
  sched.refresh_now();
  auto packet = packet_for(sys.program, "A1");
  // Overloaded node 1 must push toward node 2 (its neighbour closest to 3).
  EXPECT_EQ(sched.choose(1, packet), 2U);
  // Node 4 pushes to 3 directly.
  EXPECT_EQ(sched.choose(4, packet), 3U);
}

TEST(GradientScheduler, IdleOriginKeepsTask) {
  FakeSystem sys(8, net::TopologyKind::kRing);
  GradientScheduler sched(100, 0);
  sched.attach(sys.env());
  sys.load.assign(8, 0);
  sched.refresh_now();
  auto packet = packet_for(sys.program, "A1");
  EXPECT_EQ(sched.choose(5, packet), 5U);
}

TEST(GradientScheduler, IgnoresDeadRegions) {
  FakeSystem sys(8, net::TopologyKind::kRing);
  GradientScheduler sched(100, 0);
  sched.attach(sys.env());
  sys.load = {5, 5, 5, 0, 5, 5, 5, 5};
  sys.alive[3] = false;  // the sink dies
  sys.load[6] = 0;       // a new sink elsewhere
  sched.refresh_now();
  auto packet = packet_for(sys.program, "A1");
  const net::ProcId p = sched.choose(4, packet);
  EXPECT_NE(p, 3U);
  EXPECT_TRUE(sys.alive[p]);
}

TEST(GradientScheduler, OnTickReportsTrafficOncePerPeriod) {
  FakeSystem sys(4, net::TopologyKind::kRing);
  GradientScheduler sched(/*refresh=*/100, 0);
  sched.attach(sys.env());
  EXPECT_GT(sched.on_tick(sim::SimTime(0)), 0U);     // first refresh
  EXPECT_EQ(sched.on_tick(sim::SimTime(50)), 0U);    // too soon
  EXPECT_GT(sched.on_tick(sim::SimTime(120)), 0U);   // period elapsed
}

TEST(NeighborScheduler, SpawnsOnlyWithinNeighborhood) {
  FakeSystem sys(8, net::TopologyKind::kRing);
  NeighborScheduler sched;
  sched.attach(sys.env());
  auto packet = packet_for(sys.program, "A1");
  for (int i = 0; i < 50; ++i) {
    const net::ProcId p = sched.choose(3, packet);
    // Ring neighbourhood of 3 is {2, 3, 4}.
    EXPECT_TRUE(p == 2 || p == 3 || p == 4) << p;
  }
}

TEST(NeighborScheduler, PicksLeastLoadedNeighbor) {
  FakeSystem sys(8, net::TopologyKind::kRing);
  NeighborScheduler sched;
  sched.attach(sys.env());
  sys.load = {9, 9, 5, 9, 2, 9, 9, 9};
  auto packet = packet_for(sys.program, "A1");
  EXPECT_EQ(sched.choose(3, packet), 4U);  // load 2 beats self 9 and 2's 5
}

TEST(NeighborScheduler, DeadNeighborhoodFallsBackGlobally) {
  FakeSystem sys(8, net::TopologyKind::kRing);
  NeighborScheduler sched;
  sched.attach(sys.env());
  sys.alive[2] = sys.alive[3] = sys.alive[4] = false;
  auto packet = packet_for(sys.program, "A1");
  const net::ProcId p = sched.choose(3, packet);
  ASSERT_NE(p, net::kNoProc);
  EXPECT_TRUE(sys.alive[p]);
}

TEST(MakeScheduler, FactoryProducesRequestedKind) {
  core::SchedulerConfig cfg;
  for (auto kind : {core::SchedulerKind::kRandom, core::SchedulerKind::kRoundRobin,
                    core::SchedulerKind::kLocalFirst, core::SchedulerKind::kPinned,
                    core::SchedulerKind::kGradient, core::SchedulerKind::kNeighbor}) {
    cfg.kind = kind;
    EXPECT_EQ(make_scheduler(cfg)->kind(), kind);
  }
}

}  // namespace
}  // namespace splice::sched
