// Warm rejoin (store/ subsystem), whole-system: a killed processor revives
// with its durable checkpoint log replayed and catches up from survivors
// via chunked state transfer — reissuing strictly less than a blank rejoin,
// deterministically, and safely across re-crashes mid-transfer.
#include <gtest/gtest.h>

#include <string>

#include "core/config.h"
#include "core/simulation.h"
#include "lang/programs.h"
#include "net/fault_plan.h"
#include "sim/simulator.h"

namespace splice {
namespace {

core::SystemConfig base_config(core::RecoveryKind kind,
                               store::Persistency model) {
  core::SystemConfig cfg;
  cfg.processors = 8;
  cfg.topology = net::TopologyKind::kMesh2D;
  cfg.recovery.kind = kind;
  cfg.heartbeat_interval = 1000;
  cfg.seed = 7;
  cfg.store.model = model;
  return cfg;
}

struct Pair {
  core::RunResult cold;
  core::RunResult warm;
};

/// Run the same (program, seed, kill schedule) twice: blank rejoin vs warm
/// rejoin with the given persistency.
Pair cold_vs_warm(core::RecoveryKind kind, store::Persistency model) {
  const auto program = lang::programs::tree_sum(5, 3, 300, 40);
  Pair out;
  for (const bool warm : {false, true}) {
    core::SystemConfig cfg =
        base_config(kind, warm ? model : store::Persistency::kNone);
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, program);
    cfg.store.warm_grace = makespan;  // the repair always beats the grace
    net::FaultPlan plan =
        net::FaultPlan::single(3, sim::SimTime(makespan / 2));
    plan.with_rejoin(sim::SimTime(makespan / 8),
                     warm ? net::RejoinMode::kWarm : net::RejoinMode::kCold);
    (warm ? out.warm : out.cold) = core::run_once(cfg, program, plan);
  }
  return out;
}

TEST(WarmRejoin, SpliceWarmReissuesStrictlyFewerThanBlank) {
  const Pair r = cold_vs_warm(core::RecoveryKind::kSplice,
                              store::Persistency::kLocal);
  ASSERT_TRUE(r.cold.completed && r.cold.answer_correct);
  ASSERT_TRUE(r.warm.completed && r.warm.answer_correct);
  EXPECT_EQ(r.warm.nodes_revived, 1U);
  // The deferred obligations travelled as state chunks instead of respawns.
  EXPECT_GT(r.warm.counters.state_packets_transferred, 0U);
  EXPECT_GT(r.warm.counters.state_chunks_sent, 0U);
  EXPECT_GT(r.warm.counters.reissues_deferred, 0U);
  EXPECT_GT(r.warm.counters.reissues_avoided, 0U);
  EXPECT_LT(r.warm.counters.tasks_respawned, r.cold.counters.tasks_respawned);
  // Durable log: mutations were journaled and replayed on the revive.
  EXPECT_GT(r.warm.counters.store_entries_logged, 0U);
  EXPECT_EQ(r.cold.counters.store_entries_logged, 0U);
}

TEST(WarmRejoin, RollbackWarmAlsoCompletesWithFewerReissues) {
  const Pair r = cold_vs_warm(core::RecoveryKind::kRollback,
                              store::Persistency::kLocal);
  ASSERT_TRUE(r.cold.completed && r.cold.answer_correct);
  ASSERT_TRUE(r.warm.completed && r.warm.answer_correct);
  EXPECT_LE(r.warm.counters.tasks_respawned, r.cold.counters.tasks_respawned);
  EXPECT_GT(r.warm.counters.state_packets_transferred, 0U);
}

TEST(WarmRejoin, CatchUpCompletesAndIsTraced) {
  const auto program = lang::programs::tree_sum(5, 3, 300, 40);
  core::SystemConfig cfg =
      base_config(core::RecoveryKind::kSplice, store::Persistency::kLocal);
  cfg.collect_trace = true;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  cfg.store.warm_grace = makespan;
  net::FaultPlan plan = net::FaultPlan::single(2, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan / 8), net::RejoinMode::kWarm);
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  const core::RunResult r = sim.run();
  ASSERT_TRUE(r.completed && r.answer_correct);
  EXPECT_TRUE(sim.trace().contains("rejoin", "repaired, warm"));
  EXPECT_TRUE(sim.trace().contains("revive", "processor repaired (warm)"));
  EXPECT_TRUE(sim.trace().contains("defer", "warm rejoin"));
  EXPECT_TRUE(sim.trace().contains("catch-up", "state transfer complete"));
  EXPECT_GT(r.counters.catch_up_ticks, 0);
  EXPECT_GT(r.counters.state_units_transferred, 0U);
}

TEST(WarmRejoin, SeededRunsAreBitIdentical) {
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  auto run = [&] {
    core::SystemConfig cfg =
        base_config(core::RecoveryKind::kSplice, store::Persistency::kLocal);
    cfg.processors = 16;
    net::CascadeFault wave;
    wave.seed = 9;
    wave.when = sim::SimTime(15000);
    wave.probability = 0.7;
    wave.max_hops = 2;
    net::RecurringFault arrivals;
    arrivals.start = sim::SimTime(5000);
    arrivals.stop = sim::SimTime(60000);
    arrivals.mean_interval = 9000;
    arrivals.max_faults = 4;
    net::FaultPlan plan = net::FaultPlan::cascade(wave);
    plan.merge(net::FaultPlan::poisson(arrivals));
    plan.with_rejoin(sim::SimTime(6000), net::RejoinMode::kWarm).with_seed(21);
    return core::run_once(cfg, program, plan);
  };
  const core::RunResult a = run();
  const core::RunResult b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.nodes_revived, b.nodes_revived);
  EXPECT_EQ(a.counters.tasks_created, b.counters.tasks_created);
  EXPECT_EQ(a.counters.tasks_respawned, b.counters.tasks_respawned);
  EXPECT_EQ(a.counters.state_packets_transferred,
            b.counters.state_packets_transferred);
  EXPECT_EQ(a.counters.state_chunks_sent, b.counters.state_chunks_sent);
  EXPECT_EQ(a.counters.store_entries_logged, b.counters.store_entries_logged);
  EXPECT_EQ(a.net.total_sent(), b.net.total_sent());
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(WarmRejoin, ReCrashDuringTransferIsIncarnationSafe) {
  // The second kill lands right after the revive, while chunks are still
  // streaming (large chunk interval stretches the transfer); the third life
  // must re-request cleanly and the run must still finish correctly.
  const auto program = lang::programs::tree_sum(5, 3, 300, 40);
  core::SystemConfig cfg =
      base_config(core::RecoveryKind::kSplice, store::Persistency::kLocal);
  cfg.store.chunk_records = 1;     // many chunks ...
  cfg.store.chunk_interval = 100;  // ... in quick succession ...
  cfg.latency.base = 1500;         // ... each in flight longer than a repair,
                                   // so chunks provably straddle incarnations
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  cfg.store.warm_grace = makespan;
  // Second kill lands 2000 ticks into the revived life, while the first
  // life's transfer is still streaming; chunks sent before the re-crash
  // (flight 1500 > repair 1000) arrive at the third life and must drop.
  net::FaultPlan plan;
  plan.timed.push_back({4, sim::SimTime(makespan / 3)});
  plan.timed.push_back({4, sim::SimTime(makespan / 3 + 3000)});
  plan.with_rejoin(sim::SimTime(1000), net::RejoinMode::kWarm);
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.faults_injected, 2U);
  EXPECT_EQ(r.nodes_revived, 2U);
  // Chunks addressed to the first revived incarnation died with it.
  EXPECT_GT(r.counters.stale_chunks_dropped, 0U);
}

class WarmPersistencyTest
    : public ::testing::TestWithParam<store::Persistency> {};

TEST_P(WarmPersistencyTest, CompletesCorrectlyUnderEveryModel) {
  // Warm transfer works even when nothing (kNone) or only part (kLossy) of
  // the local log survives — replay restores less, survivors still re-host
  // the node's tasks, and the grace fallback covers the rest.
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  core::SystemConfig cfg =
      base_config(core::RecoveryKind::kSplice, GetParam());
  cfg.store.survive_p = 0.5;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  cfg.store.warm_grace = makespan / 2;
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan / 8), net::RejoinMode::kWarm);
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.nodes_revived, 1U);
}

INSTANTIATE_TEST_SUITE_P(AllModels, WarmPersistencyTest,
                         ::testing::Values(store::Persistency::kNone,
                                           store::Persistency::kLocal,
                                           store::Persistency::kLossy),
                         [](const auto& param_info) {
                           return std::string(
                               store::to_string(param_info.param));
                         });

TEST(WarmRejoin, FastRepairBeatsDetectionAndStillCompletes) {
  // Repair far below the failure timeout (400): peers mostly learn of the
  // death from the rejoin notice / state request, obligations defer, and
  // the transferred state re-hosts the lost tasks.
  const auto program = lang::programs::tree_sum(4, 3, 300, 40);
  core::SystemConfig cfg =
      base_config(core::RecoveryKind::kSplice, store::Persistency::kLocal);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  cfg.store.warm_grace = makespan / 2;
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(100), net::RejoinMode::kWarm);
  const core::RunResult r = core::run_once(cfg, program, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.nodes_revived, 1U);
  EXPECT_EQ(r.processors_alive_at_end, 8U);
}

TEST(WarmRejoin, GraceExpiryFallsBackToColdReissue) {
  // Repair delay far beyond the grace: the deferral must expire and the
  // survivors' cold reissue must regrow the branch without the rejoiner.
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  core::SystemConfig cfg =
      base_config(core::RecoveryKind::kSplice, store::Persistency::kLocal);
  cfg.collect_trace = true;
  cfg.store.warm_grace = 1500;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan * 4), net::RejoinMode::kWarm);
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  const core::RunResult r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_TRUE(sim.trace().contains("grace-expired", "cold reissue"));
  EXPECT_GT(r.counters.tasks_respawned, 0U);
}

TEST(WarmRejoin, PeriodicGlobalWarmUnparksForTheRejoiner) {
  // The baseline comparison partner for E15/E18: under crash-recovery the
  // periodic-global scheme now parks the dead node's snapshot slice for
  // its repaired self instead of scattering it round-robin — so warm-vs-
  // cold comparisons measure the same recovery model on both stacks.
  const auto program = lang::programs::tree_sum(5, 3, 300, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kPeriodicGlobal,
                                       store::Persistency::kLocal);
  cfg.collect_trace = true;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  // A snapshot must exist before the kill, and the repair must beat the
  // park grace, or there is nothing to hand back to the rejoiner.
  cfg.recovery.checkpoint_interval = makespan / 8;
  cfg.store.warm_grace = makespan;
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan / 8), net::RejoinMode::kWarm);
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  const core::RunResult r = sim.run();
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.nodes_revived, 1U);
  EXPECT_GE(r.counters.restores, 1U);
  EXPECT_TRUE(sim.trace().contains("unpark", "parked tasks resumed"));
  EXPECT_GT(r.counters.reissues_avoided, 0U);
}

TEST(WarmRejoin, PeriodicGlobalParkExpiryRedistributesCold) {
  // Repair far beyond the grace: the parked slice must not wedge the run —
  // the timer expires and the survivors adopt the tasks round-robin, same
  // fallback shape as the splice stack's grace-expired cold reissue.
  const auto program = lang::programs::tree_sum(4, 3, 250, 40);
  core::SystemConfig cfg = base_config(core::RecoveryKind::kPeriodicGlobal,
                                       store::Persistency::kLocal);
  cfg.collect_trace = true;
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  cfg.recovery.checkpoint_interval = makespan / 8;
  cfg.store.warm_grace = 1500;
  net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(makespan / 2));
  plan.with_rejoin(sim::SimTime(makespan * 4), net::RejoinMode::kWarm);
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  const core::RunResult r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_TRUE(sim.trace().contains("park-expired", "redistributed cold"));
}

}  // namespace
}  // namespace splice
