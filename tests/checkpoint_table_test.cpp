#include <gtest/gtest.h>

#include <vector>

#include "checkpoint/checkpoint_table.h"
#include "util/rng.h"

namespace splice::checkpoint {
namespace {

using runtime::LevelStamp;
using runtime::TaskPacket;

CheckpointRecord make_record(const LevelStamp& stamp,
                             runtime::TaskUid owner = 10,
                             lang::ExprId site = 1) {
  CheckpointRecord record;
  record.owner = owner;
  record.site = site;
  record.packet.stamp = stamp;
  record.packet.fn = 0;
  return record;
}

TEST(CheckpointTable, RecordsTopmostPerDestination) {
  CheckpointTable table(/*self=*/2, /*processors=*/4);
  const LevelStamp b2 = LevelStamp::root().child(1).child(0);
  EXPECT_EQ(table.record(1, make_record(b2)), RecordOutcome::kRecorded);
  EXPECT_EQ(table.entry(1).size(), 1U);
  EXPECT_EQ(table.total_records(), 1U);
}

TEST(CheckpointTable, DescendantIsSubsumed) {
  // §3.2's exact scenario: C spawned B2 to B; a descendant B5 spawned to B
  // later "C does nothing".
  CheckpointTable table(2, 4);
  const LevelStamp b2 = LevelStamp::root().child(1).child(0);
  const LevelStamp b5 = b2.child(3).child(0).child(2);  // descendant
  EXPECT_EQ(table.record(1, make_record(b2)), RecordOutcome::kRecorded);
  EXPECT_EQ(table.record(1, make_record(b5)), RecordOutcome::kSubsumed);
  EXPECT_EQ(table.entry(1).size(), 1U);
  EXPECT_EQ(table.subsumed(), 1U);
}

TEST(CheckpointTable, SubsumptionIsPerDestination) {
  CheckpointTable table(2, 4);
  const LevelStamp b2 = LevelStamp::root().child(1).child(0);
  const LevelStamp b5 = b2.child(3);
  EXPECT_EQ(table.record(1, make_record(b2)), RecordOutcome::kRecorded);
  // Same stamps toward a different destination are independent.
  EXPECT_EQ(table.record(3, make_record(b5)), RecordOutcome::kRecorded);
  EXPECT_EQ(table.entry(3).size(), 1U);
}

TEST(CheckpointTable, AncestorArrivingLateEvictsDescendants) {
  CheckpointTable table(0, 4);
  const LevelStamp parent = LevelStamp::root().child(2);
  const LevelStamp kid_a = parent.child(0);
  const LevelStamp kid_b = parent.child(1);
  EXPECT_EQ(table.record(1, make_record(kid_a)), RecordOutcome::kRecorded);
  EXPECT_EQ(table.record(1, make_record(kid_b)), RecordOutcome::kRecorded);
  EXPECT_EQ(table.record(1, make_record(parent)), RecordOutcome::kRecorded);
  ASSERT_EQ(table.entry(1).size(), 1U);
  EXPECT_EQ(table.entry(1)[0].packet.stamp, parent);
}

TEST(CheckpointTable, SiblingsCoexist) {
  CheckpointTable table(0, 4);
  const LevelStamp a = LevelStamp::root().child(1);
  const LevelStamp b = LevelStamp::root().child(2);
  EXPECT_EQ(table.record(1, make_record(a)), RecordOutcome::kRecorded);
  EXPECT_EQ(table.record(1, make_record(b)), RecordOutcome::kRecorded);
  EXPECT_EQ(table.entry(1).size(), 2U);
}

TEST(CheckpointTable, TakeEmptiesEntryAndReturnsAll) {
  CheckpointTable table(0, 4);
  table.record(1, make_record(LevelStamp::root().child(1)));
  table.record(1, make_record(LevelStamp::root().child(2)));
  table.record(2, make_record(LevelStamp::root().child(3)));
  auto taken = table.take(1);
  EXPECT_EQ(taken.size(), 2U);
  EXPECT_TRUE(table.entry(1).empty());
  EXPECT_EQ(table.entry(2).size(), 1U);
}

TEST(CheckpointTable, ReleaseRemovesExactStamp) {
  CheckpointTable table(0, 4);
  const LevelStamp a = LevelStamp::root().child(1);
  const LevelStamp b = LevelStamp::root().child(2);
  table.record(1, make_record(a));
  table.record(1, make_record(b));
  EXPECT_TRUE(table.release(1, a));
  EXPECT_FALSE(table.release(1, a));  // already gone
  EXPECT_EQ(table.entry(1).size(), 1U);
  EXPECT_EQ(table.released(), 1U);
}

TEST(CheckpointTable, ReleaseAnywhereScansAllEntries) {
  CheckpointTable table(0, 4);
  const LevelStamp a = LevelStamp::root().child(7);
  table.record(3, make_record(a));
  EXPECT_TRUE(table.release_anywhere(a));
  EXPECT_FALSE(table.release_anywhere(a));
}

TEST(CheckpointTable, PeaksAreMonotone) {
  CheckpointTable table(0, 4);
  table.record(1, make_record(LevelStamp::root().child(1)));
  table.record(1, make_record(LevelStamp::root().child(2)));
  const auto peak = table.peak_records();
  EXPECT_EQ(peak, 2U);
  table.release(1, LevelStamp::root().child(1));
  EXPECT_EQ(table.peak_records(), peak);  // peak does not decrease
  EXPECT_EQ(table.total_records(), 1U);
  EXPECT_GT(table.peak_units(), 0U);
}

// Property: after any sequence of records, every entry is an antichain —
// no stored stamp subsumes another stored stamp.
TEST(CheckpointTableProperty, EntriesAreAntichains) {
  util::Xoshiro256 rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    CheckpointTable table(0, 3);
    for (int i = 0; i < 200; ++i) {
      LevelStamp s = LevelStamp::root();
      const auto depth = 1 + rng.next_below(5);
      for (std::uint64_t d = 0; d < depth; ++d) {
        s = s.child(static_cast<runtime::StampDigit>(rng.next_below(3)));
      }
      table.record(static_cast<net::ProcId>(rng.next_below(3)),
                   make_record(s));
    }
    for (net::ProcId dest = 0; dest < 3; ++dest) {
      const auto& entry = table.entry(dest);
      for (std::size_t i = 0; i < entry.size(); ++i) {
        for (std::size_t j = 0; j < entry.size(); ++j) {
          if (i == j) continue;
          EXPECT_FALSE(
              entry[i].packet.stamp.subsumes(entry[j].packet.stamp))
              << "entry " << dest << ": " << entry[i].packet.stamp.to_string()
              << " subsumes " << entry[j].packet.stamp.to_string();
        }
      }
    }
  }
}

// Property: any stamp ever recorded-or-subsumed is recoverable: either it
// is in the entry, or an ancestor of it is.
TEST(CheckpointTableProperty, EverySpawnIsCoveredByAnEntry) {
  util::Xoshiro256 rng(777);
  CheckpointTable table(0, 2);
  std::vector<LevelStamp> spawned;
  for (int i = 0; i < 300; ++i) {
    LevelStamp s = LevelStamp::root();
    const auto depth = 1 + rng.next_below(6);
    for (std::uint64_t d = 0; d < depth; ++d) {
      s = s.child(static_cast<runtime::StampDigit>(rng.next_below(2)));
    }
    table.record(1, make_record(s));
    spawned.push_back(s);
    for (const LevelStamp& stamp : spawned) {
      bool covered = false;
      for (const auto& record : table.entry(1)) {
        if (record.packet.stamp.subsumes(stamp)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << stamp.to_string();
    }
  }
}

}  // namespace
}  // namespace splice::checkpoint
