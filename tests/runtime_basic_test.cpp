// Fault-free distributed evaluation: every (program x topology x scheduler)
// combination must reproduce the reference interpreter's answer — the
// determinacy property (§2.1) the whole paper builds on.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/simulation.h"
#include "lang/interpreter.h"
#include "lang/programs.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SchedulerKind;
using core::SystemConfig;
using splice::testing::base_config;
using splice::testing::fib_value;

TEST(RuntimeBasic, SingleProcessorSingleTask) {
  SystemConfig cfg = testing::base_config(1);
  cfg.topology = net::TopologyKind::kComplete;
  const RunResult r = core::run_once(cfg, lang::programs::fib(1));
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.counters.tasks_created, 1U);
  EXPECT_EQ(r.counters.tasks_completed, 1U);
}

TEST(RuntimeBasic, FibOnEightProcessors) {
  const RunResult r = core::run_once(base_config(), lang::programs::fib(12));
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.answer_correct);
  EXPECT_EQ(r.answer.as_int(), fib_value(12));
  // Task count equals the reference call-tree size.
  const auto stats = lang::reference_stats(lang::programs::fib(12));
  EXPECT_EQ(r.counters.tasks_created, stats.calls);
  EXPECT_EQ(r.counters.tasks_completed, stats.calls);
  EXPECT_EQ(r.counters.tasks_aborted, 0U);
  EXPECT_EQ(r.counters.tasks_respawned, 0U);
  EXPECT_EQ(r.stranded_tasks, 0U);
}

TEST(RuntimeBasic, MakespanBenefitsFromParallelism) {
  SystemConfig one = base_config(1);
  one.topology = net::TopologyKind::kComplete;
  SystemConfig many = base_config(16);
  many.topology = net::TopologyKind::kComplete;
  const auto program = lang::programs::tree_sum(5, 2, /*leaf_work=*/400);
  const RunResult serial = core::run_once(one, program);
  const RunResult parallel = core::run_once(many, program);
  ASSERT_TRUE(serial.completed);
  ASSERT_TRUE(parallel.completed);
  EXPECT_TRUE(serial.answer_correct);
  EXPECT_TRUE(parallel.answer_correct);
  EXPECT_LT(parallel.makespan_ticks, serial.makespan_ticks);
}

TEST(RuntimeBasic, ChecksReleasedMatchRecords) {
  const RunResult r = core::run_once(base_config(), lang::programs::fib(10));
  ASSERT_TRUE(r.completed);
  // Fault-free: every checkpoint that was recorded is eventually released
  // (its child returned), and recorded + subsumed covers every spawn.
  EXPECT_EQ(r.counters.checkpoint_records, r.counters.checkpoint_released);
  EXPECT_GT(r.counters.checkpoint_records, 0U);
  const auto stats = lang::reference_stats(lang::programs::fib(10));
  EXPECT_EQ(r.counters.checkpoint_records + r.counters.checkpoint_subsumed,
            stats.calls - 1);  // every non-root spawn hit the table
}

TEST(RuntimeBasic, DeterministicForSameSeed) {
  const RunResult a = core::run_once(base_config(8, 5), lang::programs::fib(11));
  const RunResult b = core::run_once(base_config(8, 5), lang::programs::fib(11));
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.net.total_sent(), b.net.total_sent());
  EXPECT_EQ(a.counters.scans, b.counters.scans);
}

TEST(RuntimeBasic, DifferentSeedsDifferentSchedules) {
  const RunResult a = core::run_once(base_config(8, 1), lang::programs::fib(11));
  const RunResult b = core::run_once(base_config(8, 2), lang::programs::fib(11));
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_TRUE(a.answer_correct && b.answer_correct);
  // Makespans will almost surely differ (different placements).
  EXPECT_NE(a.makespan_ticks, b.makespan_ticks);
}

TEST(RuntimeBasic, NoHeartbeatsWhenDisabled) {
  SystemConfig cfg = base_config();
  cfg.heartbeat_interval = 0;
  const RunResult r = core::run_once(cfg, lang::programs::fib(8));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.net.sent[static_cast<std::size_t>(net::MsgKind::kHeartbeat)],
            0U);
}

TEST(RuntimeBasic, HeartbeatsFlowWhenEnabled) {
  SystemConfig cfg = base_config();
  cfg.heartbeat_interval = 500;
  const RunResult r =
      core::run_once(cfg, lang::programs::tree_sum(4, 2, 2000));
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.net.sent[static_cast<std::size_t>(net::MsgKind::kHeartbeat)],
            0U);
}

TEST(RuntimeBasic, TraceRecordsLifecycle) {
  SystemConfig cfg = base_config(4);
  cfg.collect_trace = true;
  core::Simulation simulation(cfg, lang::programs::fib(5));
  const RunResult r = simulation.run();
  ASSERT_TRUE(r.completed);
  const core::Trace& trace = simulation.trace();
  EXPECT_FALSE(trace.of_kind("place").empty());
  EXPECT_FALSE(trace.of_kind("spawn").empty());
  EXPECT_FALSE(trace.of_kind("complete").empty());
  EXPECT_FALSE(trace.of_kind("checkpoint").empty());
  EXPECT_TRUE(trace.contains("done", std::to_string(fib_value(5))));
}

TEST(RuntimeBasic, BusyTicksAccountedAndPositive) {
  const RunResult r =
      core::run_once(base_config(), lang::programs::tree_sum(3, 3, 100));
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.counters.busy_ticks, 0);
  EXPECT_GT(r.counters.scans, r.counters.tasks_created);  // spawn + resume
}

// ---------------------------------------------------------------------------
// The determinacy matrix: programs x topologies x schedulers.
// ---------------------------------------------------------------------------

struct MatrixCase {
  std::string program_name;
  net::TopologyKind topology;
  SchedulerKind scheduler;
  std::uint32_t processors;
};

class DeterminacyMatrix : public ::testing::TestWithParam<MatrixCase> {};

lang::Program program_by_name(const std::string& name) {
  if (name == "fib") return lang::programs::fib(10, 25);
  if (name == "binomial") return lang::programs::binomial(8, 4, 25);
  if (name == "tree") return lang::programs::tree_sum(3, 3, 60, 15);
  if (name == "mergesort") return lang::programs::mergesort(48);
  if (name == "quicksort") return lang::programs::quicksort(48);
  if (name == "nqueens") return lang::programs::nqueens(5);
  if (name == "figure1") return lang::programs::figure1_tree();
  if (name == "tak") return lang::programs::tak(7, 4, 1);
  if (name == "mapreduce") return lang::programs::map_reduce(200, 12, 3);
  throw std::invalid_argument(name);
}

TEST_P(DeterminacyMatrix, DistributedAnswerEqualsReference) {
  const MatrixCase& c = GetParam();
  SystemConfig cfg = base_config(c.processors);
  cfg.topology = c.topology;
  cfg.scheduler.kind = c.scheduler;
  const lang::Program program = program_by_name(c.program_name);
  const RunResult r = core::run_once(cfg, program);
  ASSERT_TRUE(r.completed) << c.program_name;
  EXPECT_TRUE(r.answer_correct)
      << c.program_name << " on " << net::to_string(c.topology) << "/"
      << core::to_string(c.scheduler) << ": got " << r.answer.to_string();
}

std::string matrix_name(
    const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = c.program_name + "_" +
                     std::string(net::to_string(c.topology)) + "_" +
                     std::string(core::to_string(c.scheduler)) + "_p" +
                     std::to_string(c.processors);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, DeterminacyMatrix,
    ::testing::Values(
        MatrixCase{"fib", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 8},
        MatrixCase{"binomial", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 8},
        MatrixCase{"tree", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 8},
        MatrixCase{"mergesort", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 8},
        MatrixCase{"quicksort", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 8},
        MatrixCase{"nqueens", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 8},
        MatrixCase{"tak", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 8},
        MatrixCase{"mapreduce", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 8},
        MatrixCase{"figure1", net::TopologyKind::kComplete, SchedulerKind::kPinned, 4}),
    matrix_name);

INSTANTIATE_TEST_SUITE_P(
    Topologies, DeterminacyMatrix,
    ::testing::Values(
        MatrixCase{"fib", net::TopologyKind::kComplete, SchedulerKind::kRandom, 8},
        MatrixCase{"fib", net::TopologyKind::kRing, SchedulerKind::kRandom, 8},
        MatrixCase{"fib", net::TopologyKind::kStar, SchedulerKind::kRandom, 8},
        MatrixCase{"fib", net::TopologyKind::kTorus2D, SchedulerKind::kRandom, 8},
        MatrixCase{"fib", net::TopologyKind::kHypercube, SchedulerKind::kRandom, 8},
        MatrixCase{"fib", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 1},
        MatrixCase{"fib", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 2},
        MatrixCase{"fib", net::TopologyKind::kMesh2D, SchedulerKind::kRandom, 32}),
    matrix_name);

INSTANTIATE_TEST_SUITE_P(
    Schedulers, DeterminacyMatrix,
    ::testing::Values(
        MatrixCase{"tree", net::TopologyKind::kTorus2D, SchedulerKind::kRoundRobin, 9},
        MatrixCase{"tree", net::TopologyKind::kTorus2D, SchedulerKind::kLocalFirst, 9},
        MatrixCase{"tree", net::TopologyKind::kTorus2D, SchedulerKind::kGradient, 9},
        MatrixCase{"tree", net::TopologyKind::kTorus2D, SchedulerKind::kPinned, 9},
        MatrixCase{"tree", net::TopologyKind::kTorus2D, SchedulerKind::kNeighbor, 9},
        MatrixCase{"fib", net::TopologyKind::kRing, SchedulerKind::kGradient, 6},
        MatrixCase{"fib", net::TopologyKind::kHypercube, SchedulerKind::kNeighbor, 16}),
    matrix_name);

}  // namespace
}  // namespace splice
