// Sharded-engine determinism suite (PR9 tentpole oracle).
//
// The load-bearing property mirrors transport_test.cpp's A/B discipline one
// level up: a seeded run on the parallel engine with K shards — processors
// partitioned across K worker threads, each with a private event queue,
// synchronized on the conservative time-window barrier — must be
// *bit-identical* to the same engine run with one shard. Results, protocol
// counters, per-kind message totals, and the serialized flight-recorder
// journal all participate. Any divergence means an op key leaked thread
// interleaving into protocol state.
//
// The oracle is engine(1), not the classic path: the engine quantizes
// coordinator actions (fault kills, super-root traffic) to window barriers,
// which reorders same-tick interleavings relative to the classic single
// ladder queue — deterministically, but differently. engine(1) exercises
// the full machinery (routing, op heaps, journal merge, one worker thread)
// while sharing the engine's event order.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "obs/journal.h"
#include "test_util.h"

namespace splice {
namespace {

struct EngineRun {
  core::RunResult result;
  std::vector<std::uint8_t> journal;
};

EngineRun run_sharded(std::uint32_t shards, const lang::Program& program,
                      std::uint64_t seed, const net::FaultPlan& plan,
                      core::SchedulerKind scheduler = core::SchedulerKind::kRandom,
                      bool recorder = true) {
  core::SystemConfig cfg = testing::base_config(8, seed);
  cfg.scheduler.kind = scheduler;
  cfg.parallel.shards = shards;
  if (recorder) {
    cfg.obs.recorder = true;
    // Ample capacity: ring drops are window-layout dependent (each shard
    // ring fills at its own rate), so the A/B contract only covers runs
    // whose merged journal retained every event.
    cfg.obs.journal_capacity = 1u << 18;
  }
  core::Simulation sim(cfg, program);
  sim.set_fault_plan(plan);
  EngineRun run;
  run.result = sim.run();
  if (recorder) {
    run.journal = obs::serialize(sim.recorder().snapshot());
  }
  return run;
}

/// Bit-identical across shard counts: every observable must match.
void expect_identical(const EngineRun& a, const EngineRun& b) {
  EXPECT_EQ(a.result.completed, b.result.completed);
  EXPECT_EQ(a.result.answer, b.result.answer);
  EXPECT_EQ(a.result.answer_correct, b.result.answer_correct);
  EXPECT_EQ(a.result.makespan_ticks, b.result.makespan_ticks);
  EXPECT_EQ(a.result.detection_ticks, b.result.detection_ticks);
  EXPECT_EQ(a.result.faults_injected, b.result.faults_injected);
  EXPECT_EQ(a.result.sim_events, b.result.sim_events);
  EXPECT_EQ(a.result.stranded_tasks, b.result.stranded_tasks);

  EXPECT_EQ(a.result.counters.tasks_created, b.result.counters.tasks_created);
  EXPECT_EQ(a.result.counters.tasks_completed,
            b.result.counters.tasks_completed);
  EXPECT_EQ(a.result.counters.tasks_respawned,
            b.result.counters.tasks_respawned);
  EXPECT_EQ(a.result.counters.twins_created, b.result.counters.twins_created);
  EXPECT_EQ(a.result.counters.orphan_results_salvaged,
            b.result.counters.orphan_results_salvaged);
  EXPECT_EQ(a.result.counters.cancels_sent, b.result.counters.cancels_sent);
  EXPECT_EQ(a.result.counters.tasks_cancelled,
            b.result.counters.tasks_cancelled);
  EXPECT_EQ(a.result.counters.checkpoint_records,
            b.result.counters.checkpoint_records);
  EXPECT_EQ(a.result.counters.busy_ticks, b.result.counters.busy_ticks);

  for (std::size_t k = 0; k < net::kMsgKindCount; ++k) {
    EXPECT_EQ(a.result.net.sent[k], b.result.net.sent[k]) << "sent kind " << k;
    EXPECT_EQ(a.result.net.delivered[k], b.result.net.delivered[k])
        << "delivered kind " << k;
  }
  EXPECT_EQ(a.result.net.dropped_dead_dest, b.result.net.dropped_dead_dest);
  EXPECT_EQ(a.result.net.dropped_dead_sender,
            b.result.net.dropped_dead_sender);
  EXPECT_EQ(a.result.net.failure_notices, b.result.net.failure_notices);
  EXPECT_EQ(a.result.net.total_units, b.result.net.total_units);
  EXPECT_EQ(a.result.net.total_hop_units, b.result.net.total_hop_units);
  EXPECT_EQ(a.result.net.partition_cut, b.result.net.partition_cut);
  EXPECT_EQ(a.result.net.link_dropped, b.result.net.link_dropped);
  EXPECT_EQ(a.result.net.gray_dropped, b.result.net.gray_dropped);
  EXPECT_EQ(a.result.net.link_duplicated, b.result.net.link_duplicated);
  EXPECT_EQ(a.result.net.link_reordered, b.result.net.link_reordered);
  EXPECT_EQ(a.result.net.link_delay_ticks, b.result.net.link_delay_ticks);

  // The strongest check: the merged flight-recorder journals byte-match.
  EXPECT_EQ(a.journal, b.journal);
}

void expect_shard_invariant(const lang::Program& program, std::uint64_t seed,
                            const net::FaultPlan& plan,
                            core::SchedulerKind scheduler =
                                core::SchedulerKind::kRandom) {
  const EngineRun oracle = run_sharded(1, program, seed, plan, scheduler);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards) +
                 " seed=" + std::to_string(seed));
    const EngineRun run = run_sharded(shards, program, seed, plan, scheduler);
    expect_identical(oracle, run);
  }
}

TEST(PdesShard, FaultFreeBitIdentical) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    expect_shard_invariant(lang::programs::fib(12, 40), seed,
                           net::FaultPlan::none());
  }
}

TEST(PdesShard, FaultFreeCompletesCorrectly) {
  const EngineRun run =
      run_sharded(4, lang::programs::fib(12, 40), 1, net::FaultPlan::none());
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.result.answer_correct);
}

TEST(PdesShard, SingleCrashBitIdentical) {
  const net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(3000));
  for (const std::uint64_t seed : {1u, 5u}) {
    expect_shard_invariant(lang::programs::nqueens(5), seed, plan);
  }
}

TEST(PdesShard, KillOnWindowGridBitIdentical) {
  // A kill scheduled exactly at a window boundary (t = k * latency.base)
  // exercises the inclusive coordinator barrier bound: the crash must land
  // before the window that starts at the same tick, for every shard count.
  const net::FaultPlan plan = net::FaultPlan::single(2, sim::SimTime(3000));
  expect_shard_invariant(lang::programs::fib(13, 40), 11, plan);
}

TEST(PdesShard, CascadeWithRejoinBitIdentical) {
  net::FaultPlan plan = core::parse_fault_plan("kill:3@4000;rejoin:6000");
  expect_shard_invariant(lang::programs::nqueens(5), 3, plan);
}

TEST(PdesShard, PartitionWithHealBitIdentical) {
  // Chaos matrix, partition leg: a cut isolates a mesh corner, both halves
  // declare each other dead, then the heal reconciles the mutual suspicion
  // through coordinator-posted learn_alive ops.
  net::FaultPlan plan =
      core::parse_fault_plan("partition:rect(0,0,1x2)@2500,heal=4000");
  for (const std::uint64_t seed : {1u, 9u}) {
    expect_shard_invariant(lang::programs::nqueens(5), seed, plan);
  }
}

TEST(PdesShard, GrayFailureBitIdentical) {
  // Chaos matrix, gray leg: node 2 stays "alive" (control traffic flows)
  // while its payload traffic starves — per-link verdict draws are keyed by
  // (seed, link, seq) with the sender's shard as single writer.
  net::FaultPlan plan =
      core::parse_fault_plan("gray:2@1500,drop=0.4,slow=2,until=9000");
  expect_shard_invariant(lang::programs::fib(12, 40), 5, plan);
}

TEST(PdesShard, LossyDuplicatingLinksBitIdentical) {
  // Chaos matrix, link-quality leg: drops force payload retransmission and
  // bounce notices (the two-lane seq streams), duplicates exercise clone
  // routing, reordering exercises hold-back delays.
  net::FaultPlan plan = core::parse_fault_plan(
      "link:*-*@1000,drop=0.05,dup=0.03,reorder=0.05,delay=7,jitter=9");
  expect_shard_invariant(lang::programs::fib(12, 40), 13, plan);
}

TEST(PdesShard, CrashDuringPartitionBitIdentical) {
  // Compound chaos: a crash inside an unhealed cut plus lossy links — the
  // full recovery stack (detection, twins, salvage, cancels) under every
  // perturbation class at once.
  net::FaultPlan plan = core::parse_fault_plan(
      "kill:5@3000;partition:rect(0,0,1x2)@2000,heal=5000;link:*-*@0,drop=0.02");
  for (const std::uint64_t seed : {1u, 17u}) {
    expect_shard_invariant(lang::programs::nqueens(5), seed, plan);
  }
}

TEST(PdesShard, SchedulersBitIdentical) {
  // Per-origin RNG / cursor streams: every scheduler that draws randomness
  // or carries a cursor must key it by the spawning processor in engine
  // mode, or shard layout would leak into placement.
  const net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(3000));
  for (const core::SchedulerKind kind :
       {core::SchedulerKind::kRandom, core::SchedulerKind::kRoundRobin,
        core::SchedulerKind::kLocalFirst, core::SchedulerKind::kGradient,
        core::SchedulerKind::kNeighbor}) {
    SCOPED_TRACE(std::string(core::to_string(kind)));
    expect_shard_invariant(lang::programs::fib(12, 40), 1, plan, kind);
  }
}

TEST(PdesShard, RecorderOffMatchesRecorderOnCounters) {
  // The flight recorder must stay read-only on the engine path too: the
  // same seeded run with and without journaling produces identical results.
  const net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(3000));
  const lang::Program program = lang::programs::nqueens(5);
  const EngineRun on = run_sharded(4, program, 1, plan,
                                   core::SchedulerKind::kRandom, true);
  const EngineRun off = run_sharded(4, program, 1, plan,
                                    core::SchedulerKind::kRandom, false);
  EXPECT_EQ(on.result.completed, off.result.completed);
  EXPECT_EQ(on.result.answer, off.result.answer);
  EXPECT_EQ(on.result.makespan_ticks, off.result.makespan_ticks);
  EXPECT_EQ(on.result.counters.tasks_created,
            off.result.counters.tasks_created);
  EXPECT_EQ(on.result.counters.tasks_completed,
            off.result.counters.tasks_completed);
  EXPECT_EQ(on.result.net.total_sent(), off.result.net.total_sent());
}

TEST(PdesShard, RollbackPolicyBitIdentical) {
  core::SystemConfig cfg = testing::base_config(8, 1);
  cfg.recovery.kind = core::RecoveryKind::kRollback;
  cfg.parallel.shards = 1;
  const net::FaultPlan plan = net::FaultPlan::single(3, sim::SimTime(3000));
  const lang::Program program = lang::programs::nqueens(5);
  core::Simulation a(cfg, program);
  a.set_fault_plan(plan);
  const core::RunResult ra = a.run();
  cfg.parallel.shards = 4;
  core::Simulation b(cfg, program);
  b.set_fault_plan(plan);
  const core::RunResult rb = b.run();
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.answer, rb.answer);
  EXPECT_EQ(ra.makespan_ticks, rb.makespan_ticks);
  EXPECT_EQ(ra.counters.tasks_respawned, rb.counters.tasks_respawned);
  EXPECT_EQ(ra.net.total_sent(), rb.net.total_sent());
}

TEST(PdesShard, MoreShardsThanProcessorsClamps) {
  // shards > processors clamps to one processor per shard; results still
  // match the oracle (the shard map is a pure function of the proc id).
  const EngineRun oracle = run_sharded(1, lang::programs::fib(11, 40), 1,
                                       net::FaultPlan::none());
  const EngineRun wide = run_sharded(32, lang::programs::fib(11, 40), 1,
                                     net::FaultPlan::none());
  expect_identical(oracle, wide);
}

TEST(PdesShard, EngineRejectsUnsupportedConfigs) {
  const lang::Program program = lang::programs::fib(8, 20);
  {
    core::SystemConfig cfg = testing::base_config(8, 1);
    cfg.parallel.shards = 2;
    cfg.transport.backend = net::TransportKind::kShmRing;
    EXPECT_THROW(core::Simulation(cfg, program).run(), std::invalid_argument);
  }
  {
    core::SystemConfig cfg = testing::base_config(8, 1);
    cfg.parallel.shards = 2;
    cfg.recovery.kind = core::RecoveryKind::kPeriodicGlobal;
    EXPECT_THROW(core::Simulation(cfg, program).run(), std::invalid_argument);
  }
  {
    core::SystemConfig cfg = testing::base_config(8, 1);
    cfg.parallel.shards = 2;
    cfg.recovery.kind = core::RecoveryKind::kRestart;
    EXPECT_THROW(core::Simulation(cfg, program).run(), std::invalid_argument);
  }
  {
    core::SystemConfig cfg = testing::base_config(8, 1);
    cfg.parallel.shards = 2;
    cfg.reclaim.gc_interval = 5000;  // legacy reclaiming sweep
    cfg.reclaim.gc_oracle = false;
    EXPECT_THROW(core::Simulation(cfg, program).run(), std::invalid_argument);
  }
  {
    core::SystemConfig cfg = testing::base_config(8, 1);
    cfg.parallel.shards = 2;
    core::Simulation sim(cfg, program);
    sim.set_fault_plan(core::parse_fault_plan("trigger:3@residue"));
    EXPECT_THROW(sim.run(), std::invalid_argument);
  }
  {
    // The read-only gc oracle is allowed and stays shard-invariant.
    core::SystemConfig cfg = testing::base_config(8, 1);
    cfg.parallel.shards = 2;
    cfg.reclaim.gc_interval = 5000;
    cfg.reclaim.gc_oracle = true;
    core::Simulation sim(cfg, program);
    const core::RunResult result = sim.run();
    EXPECT_TRUE(result.completed);
  }
}

}  // namespace
}  // namespace splice
