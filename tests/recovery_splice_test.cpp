// Splice recovery (§4): step-parents, grandparent relays, orphan salvage,
// and the eight completion orderings of §4.1.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "lang/programs.h"
#include "test_util.h"

namespace splice {
namespace {

using core::RecoveryKind;
using core::RunResult;
using core::SystemConfig;
using splice::testing::base_config;

SystemConfig splice_config(std::uint32_t procs = 8, std::uint64_t seed = 1) {
  SystemConfig cfg = base_config(procs, seed);
  cfg.recovery.kind = RecoveryKind::kSplice;
  return cfg;
}

TEST(Splice, SurvivesSingleFaultMidRun) {
  SystemConfig cfg = splice_config();
  const auto program = lang::programs::tree_sum(4, 3, 200, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(3, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_GT(r.counters.tasks_respawned, 0U);
  EXPECT_GT(r.counters.twins_created, 0U);
}

TEST(Splice, SalvagesOrphanResultsInOrphanHeavyScenario) {
  // Deep chains below the victim produce orphans whose results complete
  // after the fault; splice must relay at least some of them to twins.
  SystemConfig cfg = splice_config(8, 5);
  const auto program = lang::programs::tree_sum(6, 2, 700, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  RunResult salvaged;
  bool found = false;
  // The victim and fault time interact with placement; scan a few victims
  // until salvage is observed (determinism makes this a fixed outcome per
  // seed, not flakiness).
  for (net::ProcId victim = 0; victim < 8 && !found; ++victim) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(victim, sim::SimTime(makespan / 2)));
    ASSERT_TRUE(r.completed) << r.summary();
    ASSERT_TRUE(r.answer_correct);
    if (r.counters.orphan_results_salvaged > 0) {
      salvaged = r;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no victim produced salvage — relay path dead?";
  EXPECT_GT(salvaged.counters.results_relayed, 0U);
}

TEST(Splice, SalvageReducesRedoneWorkVersusRollback) {
  // The whole point of §4: salvage ≥ rollback never redoes less work.
  // Compare the *paper's* schemes: with the cancellation protocol on,
  // rollback additionally reclaims doomed orphan subtrees mid-flight
  // (work splice deliberately lets run for salvage), which breaks the
  // busy-ticks theorem this test encodes.
  SystemConfig splice_cfg = splice_config(8, 5);
  splice_cfg.reclaim.cancellation = false;
  SystemConfig rollback_cfg = splice_cfg;
  rollback_cfg.recovery.kind = RecoveryKind::kRollback;
  const auto program = lang::programs::tree_sum(6, 2, 700, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(splice_cfg, program);

  std::int64_t splice_busy_total = 0;
  std::int64_t rollback_busy_total = 0;
  for (net::ProcId victim = 0; victim < 8; ++victim) {
    const auto plan = net::FaultPlan::single(victim, sim::SimTime(makespan / 2));
    const RunResult s = core::run_once(splice_cfg, program, plan);
    const RunResult b = core::run_once(rollback_cfg, program, plan);
    ASSERT_TRUE(s.completed && b.completed);
    splice_busy_total += s.counters.busy_ticks;
    rollback_busy_total += b.counters.busy_ticks;
  }
  EXPECT_LE(splice_busy_total, rollback_busy_total);
}

TEST(Splice, TwinsInheritViaGrandparentRelay) {
  SystemConfig cfg = splice_config(4, 1);
  cfg.topology = net::TopologyKind::kComplete;
  cfg.scheduler.kind = core::SchedulerKind::kPinned;
  cfg.collect_trace = true;
  // Figure-1 scenario with heavy node work so B dies while D4's subtree is
  // still computing: D4's result must be relayed via C1 into B2'.
  const auto program = lang::programs::figure1_tree(2500);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  core::Simulation simulation(cfg, program);
  simulation.set_fault_plan(net::FaultPlan::single(1, sim::SimTime(makespan / 2)));
  const RunResult r = simulation.run();
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
  EXPECT_TRUE(simulation.trace().contains("twin", "step-parent"));
}

TEST(Splice, NoAbortsUnderSplice) {
  SystemConfig cfg = splice_config();
  const auto program = lang::programs::tree_sum(4, 3, 200, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(3, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed);
  // Splice never aborts orphans (their results are salvage material); the
  // only aborts allowed are duplicate-lineage reclaims by the cancellation
  // protocol, which each count in tasks_cancelled too.
  EXPECT_EQ(r.counters.tasks_aborted, r.counters.tasks_cancelled);
}

TEST(Splice, DuplicateResultsAreIgnoredNotDoubleCounted) {
  // Case 6/7: twin and original both complete; determinacy makes the copies
  // identical and the second is dropped. The final answer must stay right.
  SystemConfig cfg = splice_config(8, 5);
  const auto program = lang::programs::tree_sum(6, 2, 700, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  std::uint64_t dup_total = 0;
  for (net::ProcId victim = 0; victim < 8; ++victim) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(victim, sim::SimTime(makespan / 2)));
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.answer_correct) << "victim " << victim;
    dup_total += r.counters.duplicate_results_ignored +
                 r.counters.late_results_discarded;
  }
  // At least one victim must have produced a duplicate/late arrival, or
  // cases 6-8 are untested by this workload.
  EXPECT_GT(dup_total, 0U);
}

TEST(Splice, EagerRespawnVariantAlsoCorrect) {
  SystemConfig cfg = splice_config(8, 9);
  cfg.recovery.eager_respawn = true;
  const auto program = lang::programs::tree_sum(5, 2, 300, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (net::ProcId victim = 0; victim < 4; ++victim) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(victim, sim::SimTime(makespan / 2)));
    EXPECT_TRUE(r.completed) << r.summary();
    EXPECT_TRUE(r.answer_correct);
  }
}

TEST(Splice, SurvivesFaultAtEveryTenthOfMakespan) {
  SystemConfig cfg = splice_config(8, 7);
  const auto program = lang::programs::fib(11, 120);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (int tenth = 1; tenth <= 9; ++tenth) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(2, sim::SimTime(makespan * tenth / 10)));
    EXPECT_TRUE(r.completed) << "fault at " << tenth << "/10: " << r.summary();
    EXPECT_TRUE(r.answer_correct) << "fault at " << tenth << "/10";
  }
}

TEST(Splice, SurvivesFaultOnEveryProcessor) {
  SystemConfig cfg = splice_config(6, 11);
  cfg.topology = net::TopologyKind::kComplete;
  const auto program = lang::programs::tree_sum(4, 2, 250, 30);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  for (net::ProcId target = 0; target < 6; ++target) {
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(target, sim::SimTime(makespan / 2)));
    EXPECT_TRUE(r.completed) << "killing P" << target << ": " << r.summary();
    EXPECT_TRUE(r.answer_correct) << "killing P" << target;
  }
}

TEST(Splice, WorksAcrossTopologies) {
  const auto program = lang::programs::tree_sum(4, 2, 250, 30);
  for (auto topo : {net::TopologyKind::kRing, net::TopologyKind::kTorus2D,
                    net::TopologyKind::kHypercube}) {
    SystemConfig cfg = splice_config(8, 13);
    cfg.topology = topo;
    const std::int64_t makespan =
        core::Simulation::fault_free_makespan(cfg, program);
    const RunResult r = core::run_once(
        cfg, program, net::FaultPlan::single(3, sim::SimTime(makespan / 2)));
    EXPECT_TRUE(r.completed) << net::to_string(topo) << ": " << r.summary();
    EXPECT_TRUE(r.answer_correct) << net::to_string(topo);
  }
}

TEST(Splice, GradientSchedulerWithFaults) {
  SystemConfig cfg = splice_config(9, 17);
  cfg.topology = net::TopologyKind::kTorus2D;
  cfg.scheduler.kind = core::SchedulerKind::kGradient;
  const auto program = lang::programs::tree_sum(4, 3, 200, 40);
  const std::int64_t makespan =
      core::Simulation::fault_free_makespan(cfg, program);
  const RunResult r = core::run_once(
      cfg, program, net::FaultPlan::single(4, sim::SimTime(makespan / 2)));
  ASSERT_TRUE(r.completed) << r.summary();
  EXPECT_TRUE(r.answer_correct);
}

}  // namespace
}  // namespace splice
