// The composable fault-plan engine: topology-resolved regions, correlated
// cascades, Poisson recurring faults, the scenario DSL, and the determinism
// of the whole expansion.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/config.h"
#include "net/fault_injector.h"
#include "net/fault_plan.h"
#include "net/link_faults.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace splice::net {
namespace {

// ---------------------------------------------------------------------------
// Topology region queries
// ---------------------------------------------------------------------------

TEST(Region, MeshRectInterior) {
  Topology t(TopologyKind::kMesh2D, 16);  // 4x4
  EXPECT_EQ(t.grid_rect(1, 1, 2, 2), (std::vector<ProcId>{5, 6, 9, 10}));
}

TEST(Region, MeshRectClipsAtEdges) {
  Topology t(TopologyKind::kMesh2D, 16);  // 4x4
  // A 5x5 rectangle from (2,2) only has the bottom-right 2x2 inside.
  EXPECT_EQ(t.grid_rect(2, 2, 5, 5), (std::vector<ProcId>{10, 11, 14, 15}));
}

TEST(Region, TorusRectWrapsAround) {
  Topology t(TopologyKind::kTorus2D, 16);  // 4x4
  // From the far corner, a 2x2 rectangle wraps onto rows {3,0} x cols {3,0}.
  EXPECT_EQ(t.grid_rect(3, 3, 2, 2), (std::vector<ProcId>{0, 3, 12, 15}));
}

TEST(Region, RectRejectsWrongTopologyAndBadCorner) {
  EXPECT_THROW(static_cast<void>(
                   Topology(TopologyKind::kRing, 8).grid_rect(0, 0, 1, 1)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   Topology(TopologyKind::kMesh2D, 16).grid_rect(4, 0, 1, 1)),
               std::invalid_argument);
}

TEST(Region, RingArcWrapsAndClamps) {
  Topology t(TopologyKind::kRing, 8);
  EXPECT_EQ(t.ring_arc(6, 4), (std::vector<ProcId>{0, 1, 6, 7}));
  EXPECT_EQ(t.ring_arc(3, 100).size(), 8U);  // clamps to the whole ring
  EXPECT_THROW(static_cast<void>(t.ring_arc(9, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   Topology(TopologyKind::kMesh2D, 8).ring_arc(0, 2)),
               std::invalid_argument);
}

TEST(Region, HypercubeSubcube) {
  Topology t(TopologyKind::kHypercube, 16);
  // Fix the low bit to 1: the odd half.
  EXPECT_EQ(t.subcube(0b0001, 0b0001),
            (std::vector<ProcId>{1, 3, 5, 7, 9, 11, 13, 15}));
  // Fix the two high bits to 01: nodes 4..7.
  EXPECT_EQ(t.subcube(0b1100, 0b0100), (std::vector<ProcId>{4, 5, 6, 7}));
  // value must lie within the mask; mask within the address bits.
  EXPECT_THROW(static_cast<void>(t.subcube(0b0001, 0b0010)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(t.subcube(16, 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   Topology(TopologyKind::kRing, 8).subcube(1, 1)),
               std::invalid_argument);
}

TEST(Region, NeighborhoodByHops) {
  Topology mesh(TopologyKind::kMesh2D, 16);  // 4x4
  EXPECT_EQ(mesh.neighborhood(5, 0), (std::vector<ProcId>{5}));
  EXPECT_EQ(mesh.neighborhood(5, 1), (std::vector<ProcId>{1, 4, 5, 6, 9}));
  Topology star(TopologyKind::kStar, 6);
  EXPECT_EQ(star.neighborhood(2, 1), (std::vector<ProcId>{0, 2}));
  EXPECT_EQ(star.neighborhood(0, 1).size(), 6U);  // hub + every spoke
  EXPECT_THROW(static_cast<void>(mesh.neighborhood(16, 1)),
               std::invalid_argument);
}

TEST(Region, SpecResolveDispatches) {
  Topology mesh(TopologyKind::kMesh2D, 16);
  EXPECT_EQ(RegionSpec::grid_rect(0, 0, 2, 2).resolve(mesh),
            (std::vector<ProcId>{0, 1, 4, 5}));
  EXPECT_EQ(RegionSpec::neighborhood(0, 1).resolve(mesh),
            (std::vector<ProcId>{0, 1, 4}));
  Topology ring(TopologyKind::kRing, 6);
  EXPECT_EQ(RegionSpec::ring_arc(5, 2).resolve(ring),
            (std::vector<ProcId>{0, 5}));
  Topology cube(TopologyKind::kHypercube, 8);
  EXPECT_EQ(RegionSpec::subcube(0b100, 0b100).resolve(cube),
            (std::vector<ProcId>{4, 5, 6, 7}));
}

// ---------------------------------------------------------------------------
// FaultPlan composition
// ---------------------------------------------------------------------------

TEST(FaultPlan, FactoriesAndCounts) {
  EXPECT_TRUE(FaultPlan::none().empty());
  const FaultPlan single = FaultPlan::single(3, sim::SimTime(500));
  ASSERT_EQ(single.timed.size(), 1U);
  EXPECT_EQ(single.timed[0].target, 3U);
  EXPECT_EQ(single.timed[0].when, sim::SimTime(500));

  FaultPlan plan = FaultPlan::region(RegionSpec::neighborhood(2, 1),
                                     sim::SimTime(100));
  plan.merge(FaultPlan::at_trigger(1, "spawn:f", sim::SimTime(20)));
  plan.merge(FaultPlan::cascade({/*seed=*/0, sim::SimTime(50)}));
  RecurringFault arrivals;
  arrivals.mean_interval = 1000;
  plan.merge(FaultPlan::poisson(arrivals));
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.fault_count(), 4U);
  EXPECT_FALSE(plan.rejoin.enabled);
  plan.with_rejoin(sim::SimTime(4000)).with_seed(7);
  EXPECT_TRUE(plan.rejoin.enabled);
  EXPECT_EQ(plan.rejoin.delay, sim::SimTime(4000));
  EXPECT_EQ(plan.seed, 7U);
}

TEST(FaultPlan, MergePropagatesRejoin) {
  FaultPlan base = FaultPlan::single(0, sim::SimTime(10));
  FaultPlan other = FaultPlan::single(1, sim::SimTime(20));
  other.with_rejoin(sim::SimTime(99));
  base.merge(other);
  EXPECT_EQ(base.timed.size(), 2U);
  EXPECT_TRUE(base.rejoin.enabled);
  EXPECT_EQ(base.rejoin.delay, sim::SimTime(99));
}

TEST(FaultPlan, WarmRejoinMode) {
  FaultPlan plan = FaultPlan::single(2, sim::SimTime(300));
  plan.with_rejoin(sim::SimTime(500), RejoinMode::kWarm);
  EXPECT_TRUE(plan.rejoin.enabled);
  EXPECT_EQ(plan.rejoin.mode, RejoinMode::kWarm);
  EXPECT_NE(plan.describe().find("rejoin+500(warm)"), std::string::npos)
      << plan.describe();
  // merge propagates the mode with the rest of the rejoin spec.
  FaultPlan base = FaultPlan::single(0, sim::SimTime(10));
  base.merge(plan);
  EXPECT_EQ(base.rejoin.mode, RejoinMode::kWarm);
}

TEST(FaultPlan, DescribeNamesEveryClause) {
  FaultPlan plan = FaultPlan::single(3, sim::SimTime(500));
  plan.merge(FaultPlan::region(RegionSpec::grid_rect(0, 0, 2, 2),
                               sim::SimTime(100)));
  plan.merge(FaultPlan::cascade({1, sim::SimTime(50)}));
  plan.with_rejoin(sim::SimTime(4000));
  const std::string text = plan.describe();
  EXPECT_NE(text.find("kill P3@500"), std::string::npos) << text;
  EXPECT_NE(text.find("rect(0,0 2x2)"), std::string::npos) << text;
  EXPECT_NE(text.find("cascade P1@50"), std::string::npos) << text;
  EXPECT_NE(text.find("rejoin+4000"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Injector expansion
// ---------------------------------------------------------------------------

struct InjectorFixture {
  sim::Simulator sim;
  Network net;
  std::vector<std::pair<std::int64_t, ProcId>> kills;
  FaultInjector injector;

  InjectorFixture(TopologyKind kind, ProcId n, FaultPlan plan)
      : net(sim, Topology(kind, n), LatencyModel{}),
        injector(sim, net, std::move(plan),
                 [this](ProcId p) { kills.push_back({sim.now().ticks(), p}); }) {
    for (ProcId p = 0; p < n; ++p) net.set_receiver(p, [](Envelope) {});
  }
};

TEST(FaultInjector, RegionalFaultKillsTheResolvedSetAtOnce) {
  InjectorFixture f(TopologyKind::kMesh2D, 16,
                    FaultPlan::region(RegionSpec::grid_rect(1, 1, 2, 2),
                                      sim::SimTime(400)));
  f.injector.arm();
  EXPECT_TRUE(f.sim.run_until());
  EXPECT_EQ(f.injector.kills_executed(), 4U);
  for (ProcId p : {5U, 6U, 9U, 10U}) EXPECT_FALSE(f.net.alive(p));
  EXPECT_EQ(f.net.alive_count(), 12U);
  for (const auto& [when, p] : f.kills) EXPECT_EQ(when, 400);
  EXPECT_EQ(f.injector.first_kill_ticks(), 400);
}

TEST(FaultInjector, CascadeWithCertainSpreadKillsWholeNeighborhood) {
  CascadeFault wave;
  wave.seed = 5;  // interior node of the 4x4 mesh
  wave.when = sim::SimTime(100);
  wave.probability = 1.0;
  wave.decay = 1.0;
  wave.max_hops = 1;
  wave.stagger = sim::SimTime(50);
  InjectorFixture f(TopologyKind::kMesh2D, 16, FaultPlan::cascade(wave));
  f.injector.arm();
  EXPECT_TRUE(f.sim.run_until());
  // Seed at t=100, its four mesh neighbours at t=150.
  EXPECT_EQ(f.injector.kills_executed(), 5U);
  for (ProcId p : {1U, 4U, 5U, 6U, 9U}) EXPECT_FALSE(f.net.alive(p));
  for (const auto& [when, p] : f.kills) {
    EXPECT_EQ(when, p == 5U ? 100 : 150);
  }
}

TEST(FaultInjector, CascadeWithZeroProbabilityKillsOnlySeed) {
  CascadeFault wave;
  wave.seed = 0;
  wave.when = sim::SimTime(100);
  wave.probability = 0.0;
  wave.max_hops = 3;
  InjectorFixture f(TopologyKind::kComplete, 8, FaultPlan::cascade(wave));
  f.injector.arm();
  EXPECT_TRUE(f.sim.run_until());
  EXPECT_EQ(f.injector.kills_executed(), 1U);
  EXPECT_FALSE(f.net.alive(0));
  EXPECT_EQ(f.net.alive_count(), 7U);
}

TEST(FaultInjector, CascadeExpansionIsDeterministicPerSeed) {
  CascadeFault wave;
  wave.seed = 0;  // star hub: every spoke is one hop away
  wave.when = sim::SimTime(100);
  wave.probability = 0.5;
  wave.max_hops = 1;
  auto schedule_for = [&](std::uint64_t seed) {
    InjectorFixture f(TopologyKind::kStar, 32,
                      FaultPlan::cascade(wave).with_seed(seed));
    f.injector.arm();
    std::vector<std::pair<std::int64_t, ProcId>> out;
    for (const TimedFault& fault : f.injector.armed_schedule()) {
      out.push_back({fault.when.ticks(), fault.target});
    }
    return out;
  };
  const auto a = schedule_for(11);
  const auto b = schedule_for(11);
  const auto c = schedule_for(12);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 31 coin flips: astronomically unlikely to collide
  // A fair coin over 31 spokes kills roughly half; accept a generous band.
  EXPECT_GT(a.size(), 5U);
  EXPECT_LT(a.size(), 28U);
}

TEST(FaultInjector, PoissonArrivalsRespectWindowCapAndCandidates) {
  RecurringFault arrivals;
  arrivals.candidates = {1, 3, 5};
  arrivals.start = sim::SimTime(1000);
  arrivals.stop = sim::SimTime(50000);
  arrivals.mean_interval = 2000;
  arrivals.max_faults = 10;
  InjectorFixture f(TopologyKind::kComplete, 8,
                    FaultPlan::poisson(arrivals).with_seed(3));
  f.injector.arm();
  const auto& schedule = f.injector.armed_schedule();
  EXPECT_FALSE(schedule.empty());
  EXPECT_LE(schedule.size(), 10U);
  std::int64_t last = 1000;
  for (const TimedFault& fault : schedule) {
    EXPECT_GT(fault.when.ticks(), last);  // strictly advancing arrivals
    last = fault.when.ticks();
    EXPECT_LT(fault.when.ticks(), 50000);
    EXPECT_TRUE(fault.target == 1 || fault.target == 3 || fault.target == 5);
  }
  EXPECT_TRUE(f.sim.run_until());
  // Three candidates can die at most once each (no rejoin configured).
  EXPECT_EQ(f.injector.kills_executed(), 3U);
}

TEST(FaultInjector, PoissonScheduleIsDeterministicPerSeed) {
  RecurringFault arrivals;
  arrivals.mean_interval = 700;
  arrivals.stop = sim::SimTime(20000);
  auto schedule_for = [&](std::uint64_t seed) {
    InjectorFixture f(TopologyKind::kRing, 16,
                      FaultPlan::poisson(arrivals).with_seed(seed));
    f.injector.arm();
    std::vector<std::pair<std::int64_t, ProcId>> out;
    for (const TimedFault& fault : f.injector.armed_schedule()) {
      out.push_back({fault.when.ticks(), fault.target});
    }
    return out;
  };
  EXPECT_EQ(schedule_for(5), schedule_for(5));
  EXPECT_NE(schedule_for(5), schedule_for(6));
}

TEST(FaultInjector, ArmRejectsTargetsOutsideTheMachine) {
  auto arm_with = [](FaultPlan plan) {
    InjectorFixture f(TopologyKind::kComplete, 4, std::move(plan));
    f.injector.arm();
  };
  EXPECT_THROW(arm_with(FaultPlan::single(99, sim::SimTime(100))),
               std::invalid_argument);
  EXPECT_THROW(arm_with(FaultPlan::at_trigger(7, "go")),
               std::invalid_argument);
  EXPECT_THROW(arm_with(FaultPlan::cascade({/*seed=*/4, sim::SimTime(10)})),
               std::invalid_argument);
  RecurringFault arrivals;
  arrivals.candidates = {0, 9};
  arrivals.mean_interval = 100;
  EXPECT_THROW(arm_with(FaultPlan::poisson(arrivals)),
               std::invalid_argument);
  // In-range plans arm fine on the same machine.
  InjectorFixture ok(TopologyKind::kComplete, 4,
                     FaultPlan::single(3, sim::SimTime(100)));
  ok.injector.arm();
}

// ---------------------------------------------------------------------------
// Scenario DSL
// ---------------------------------------------------------------------------

TEST(ParseFaultPlan, FullScenarioRoundTrip) {
  const net::FaultPlan plan = core::parse_fault_plan(
      "kill:3@500; trigger:1@spawn:f+20; rect:0,0,2x2@100; arc:2+3@200; "
      "cube:3/1@300; hood:4,r2@400; "
      "cascade:0@50,p=0.8,decay=0.25,hops=3,stagger=100; "
      "poisson:mean=500,start=10,stop=9000,max=5,over=1|2; "
      "rejoin:4000; seed:42");
  ASSERT_EQ(plan.timed.size(), 1U);
  EXPECT_EQ(plan.timed[0].target, 3U);
  EXPECT_EQ(plan.timed[0].when, sim::SimTime(500));

  ASSERT_EQ(plan.triggered.size(), 1U);
  EXPECT_EQ(plan.triggered[0].target, 1U);
  EXPECT_EQ(plan.triggered[0].trigger, "spawn:f");
  EXPECT_EQ(plan.triggered[0].delay, sim::SimTime(20));

  ASSERT_EQ(plan.regional.size(), 4U);
  EXPECT_EQ(plan.regional[0].region.kind, RegionSpec::Kind::kGridRect);
  EXPECT_EQ(plan.regional[0].when, sim::SimTime(100));
  EXPECT_EQ(plan.regional[1].region.kind, RegionSpec::Kind::kRingArc);
  EXPECT_EQ(plan.regional[1].region.a, 2U);
  EXPECT_EQ(plan.regional[1].region.c, 3U);
  EXPECT_EQ(plan.regional[2].region.kind, RegionSpec::Kind::kSubcube);
  EXPECT_EQ(plan.regional[2].region.a, 3U);
  EXPECT_EQ(plan.regional[2].region.b, 1U);
  EXPECT_EQ(plan.regional[3].region.kind, RegionSpec::Kind::kNeighborhood);
  EXPECT_EQ(plan.regional[3].region.a, 4U);
  EXPECT_EQ(plan.regional[3].region.c, 2U);

  ASSERT_EQ(plan.cascades.size(), 1U);
  EXPECT_EQ(plan.cascades[0].seed, 0U);
  EXPECT_EQ(plan.cascades[0].when, sim::SimTime(50));
  EXPECT_DOUBLE_EQ(plan.cascades[0].probability, 0.8);
  EXPECT_DOUBLE_EQ(plan.cascades[0].decay, 0.25);
  EXPECT_EQ(plan.cascades[0].max_hops, 3U);
  EXPECT_EQ(plan.cascades[0].stagger, sim::SimTime(100));

  ASSERT_EQ(plan.recurring.size(), 1U);
  EXPECT_DOUBLE_EQ(plan.recurring[0].mean_interval, 500.0);
  EXPECT_EQ(plan.recurring[0].start, sim::SimTime(10));
  EXPECT_EQ(plan.recurring[0].stop, sim::SimTime(9000));
  EXPECT_EQ(plan.recurring[0].max_faults, 5U);
  EXPECT_EQ(plan.recurring[0].candidates, (std::vector<ProcId>{1, 2}));

  EXPECT_TRUE(plan.rejoin.enabled);
  EXPECT_EQ(plan.rejoin.delay, sim::SimTime(4000));
  EXPECT_EQ(plan.seed, 42U);
}

TEST(ParseFaultPlan, LinkLevelClausesRoundTrip) {
  const net::FaultPlan plan = core::parse_fault_plan(
      "partition:rect(2,0,2x4)@2000,heal=5000; "
      "partition:arc(1+3)@100,healmean=2500; "
      "link:0-3@100,drop=0.1,dup=0.05,reorder=0.2,delay=30,jitter=10,"
      "until=9000; "
      "link:2>*@0,drop=0.5; "
      "gray:5@1000,drop=0.7,slow=6,until=8000; seed:9");
  ASSERT_EQ(plan.partitions.size(), 2U);
  EXPECT_EQ(plan.partitions[0].side.kind, RegionSpec::Kind::kGridRect);
  EXPECT_EQ(plan.partitions[0].at, sim::SimTime(2000));
  EXPECT_EQ(plan.partitions[0].heal_after, sim::SimTime(5000));
  EXPECT_DOUBLE_EQ(plan.partitions[0].heal_mean, 0.0);
  EXPECT_EQ(plan.partitions[1].side.kind, RegionSpec::Kind::kRingArc);
  EXPECT_EQ(plan.partitions[1].heal_after, sim::SimTime(0));
  EXPECT_DOUBLE_EQ(plan.partitions[1].heal_mean, 2500.0);

  ASSERT_EQ(plan.links.size(), 2U);
  EXPECT_EQ(plan.links[0].src, 0U);
  EXPECT_EQ(plan.links[0].dst, 3U);
  EXPECT_TRUE(plan.links[0].symmetric);
  EXPECT_DOUBLE_EQ(plan.links[0].drop_p, 0.1);
  EXPECT_DOUBLE_EQ(plan.links[0].dup_p, 0.05);
  EXPECT_DOUBLE_EQ(plan.links[0].reorder_p, 0.2);
  EXPECT_EQ(plan.links[0].delay, 30);
  EXPECT_EQ(plan.links[0].jitter, 10);
  EXPECT_EQ(plan.links[0].start, sim::SimTime(100));
  EXPECT_EQ(plan.links[0].stop, sim::SimTime(9000));
  EXPECT_EQ(plan.links[1].src, 2U);
  EXPECT_EQ(plan.links[1].dst, kNoProc);  // '*' wildcard destination
  EXPECT_FALSE(plan.links[1].symmetric);  // '>' directed
  EXPECT_EQ(plan.links[1].stop, sim::SimTime::max());

  ASSERT_EQ(plan.grays.size(), 1U);
  EXPECT_EQ(plan.grays[0].node, 5U);
  EXPECT_EQ(plan.grays[0].start, sim::SimTime(1000));
  EXPECT_DOUBLE_EQ(plan.grays[0].payload_drop_p, 0.7);
  EXPECT_EQ(plan.grays[0].slow_factor, 6);
  EXPECT_EQ(plan.grays[0].stop, sim::SimTime(8000));

  EXPECT_TRUE(plan.has_link_faults());
  EXPECT_EQ(plan.seed, 9U);

  // describe() names every clause (and the seed, since link faults draw).
  const std::string text = plan.describe();
  EXPECT_NE(text.find("partition rect(2,0 2x4)@2000 heal+5000"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("heal~2500"), std::string::npos) << text;
  EXPECT_NE(text.find("link P0-P3"), std::string::npos) << text;
  EXPECT_NE(text.find("link P2>*"), std::string::npos) << text;
  EXPECT_NE(text.find("gray P5@1000"), std::string::npos) << text;
  EXPECT_NE(text.find("seed=9"), std::string::npos) << text;
}

TEST(ParseFaultPlan, RejectsMalformedLinkLevelClauses) {
  EXPECT_THROW(static_cast<void>(
                   core::parse_fault_plan("partition:rect(2,0,2x4)")),
               std::invalid_argument);  // no '@time'
  EXPECT_THROW(static_cast<void>(
                   core::parse_fault_plan("partition:blob(1)@5")),
               std::invalid_argument);  // unknown region shape
  EXPECT_THROW(static_cast<void>(
                   core::parse_fault_plan("partition:rect(2,0,2x4)@5,x=1")),
               std::invalid_argument);  // unknown key
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("link:0+3@5")),
               std::invalid_argument);  // bad endpoint separator
  EXPECT_THROW(static_cast<void>(
                   core::parse_fault_plan("link:0-3@5,bogus=1")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("gray:x@5")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   core::parse_fault_plan("gray:5@5,speed=2")),
               std::invalid_argument);
}

TEST(FaultInjector, ArmsPartitionWindowsDeterministically) {
  auto windows_for = [](std::uint64_t seed) {
    net::FaultPlan plan;
    PartitionSpec scheduled;
    scheduled.side = RegionSpec::grid_rect(1, 1, 2, 2);
    scheduled.at = sim::SimTime(400);
    scheduled.heal_after = sim::SimTime(900);
    plan.partitions.push_back(scheduled);
    PartitionSpec drawn;
    drawn.side = RegionSpec::grid_rect(0, 0, 1, 4);
    drawn.at = sim::SimTime(100);
    drawn.heal_mean = 2000.0;
    plan.partitions.push_back(drawn);
    plan.with_seed(seed);
    InjectorFixture f(TopologyKind::kMesh2D, 16, std::move(plan));
    f.injector.arm();
    std::vector<std::tuple<std::vector<ProcId>, std::int64_t, std::int64_t>>
        out;
    for (const auto& p : f.injector.armed_partitions()) {
      out.push_back({p.side, p.start.ticks(), p.heal.ticks()});
    }
    return out;
  };
  const auto a = windows_for(5);
  const auto b = windows_for(5);
  const auto c = windows_for(6);
  EXPECT_EQ(a, b);  // the exponential heal draw replays per seed
  ASSERT_EQ(a.size(), 2U);
  // The scheduled window is exact regardless of seed.
  EXPECT_EQ(std::get<0>(a[0]), (std::vector<ProcId>{5, 6, 9, 10}));
  EXPECT_EQ(std::get<1>(a[0]), 400);
  EXPECT_EQ(std::get<2>(a[0]), 1300);
  // The drawn heal lands after the cut and differs across seeds.
  EXPECT_GT(std::get<2>(a[1]), 100);
  EXPECT_NE(std::get<2>(a[1]), std::get<2>(c[1]));
}

TEST(FaultInjector, NeverHealingPartitionArmsAnOpenWindow) {
  net::FaultPlan plan = net::FaultPlan::partition(
      RegionSpec::grid_rect(0, 0, 2, 2), sim::SimTime(250));
  InjectorFixture f(TopologyKind::kMesh2D, 16, std::move(plan));
  f.injector.arm();
  ASSERT_EQ(f.injector.armed_partitions().size(), 1U);
  EXPECT_EQ(f.injector.armed_partitions()[0].heal, sim::SimTime::max());
  // The armed model severs cross-cut pairs from the window's open onward
  // — forever, since no heal is scheduled.
  const net::LinkFaultModel* model = f.net.link_faults();
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->reachable(0, 15, sim::SimTime(100)));
  EXPECT_FALSE(model->reachable(0, 15, sim::SimTime(300)));
  EXPECT_FALSE(model->reachable(0, 15, sim::SimTime(1000000)));
  EXPECT_TRUE(model->reachable(0, 1, sim::SimTime(300)));  // same side
  EXPECT_TRUE(f.net.alive(0));  // partitioned, not dead
}

TEST(ParseFaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(core::parse_fault_plan("").empty());
  EXPECT_TRUE(core::parse_fault_plan("  ;  ; ").empty());
}

TEST(ParseFaultPlan, RejectsMalformedClauses) {
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("explode:3@100")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("kill:3")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("kill:x@100")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("no-colon")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("trigger:1@+5")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("rect:1,2@100")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   core::parse_fault_plan("cascade:1@5,bogus=3")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("poisson:max=3")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::parse_fault_plan("poisson:mean=-5")),
               std::invalid_argument);
}

TEST(ParseFaultPlan, ParsedRegionalPlanExecutes) {
  InjectorFixture f(TopologyKind::kMesh2D, 16,
                    core::parse_fault_plan("rect:0,0,1x4@250"));
  f.injector.arm();
  EXPECT_TRUE(f.sim.run_until());
  EXPECT_EQ(f.injector.kills_executed(), 4U);  // the whole top row
  for (ProcId p : {0U, 1U, 2U, 3U}) EXPECT_FALSE(f.net.alive(p));
}

}  // namespace
}  // namespace splice::net
