// Ladder-queue equivalence and stress tests.
//
// The EventQueue rewrite (two-tier ladder + slot recycling) must be
// *observationally identical* to the binary-heap queue it replaced: pop
// order is exactly lexicographic (time, schedule-sequence). These tests
// drive the ladder against an embedded reference implementation — the old
// heap, reproduced verbatim modulo the callback table — on randomized
// schedule/cancel workloads, and assert replay-identical traces. A
// property-test storm then hammers cancel/reschedule patterns (the
// heartbeat/detector lifecycle) and checks the liveness counters, slot
// recycling, and tombstone compaction.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace splice::sim {
namespace {

// ---------------------------------------------------------------------------
// Reference queue: the pre-ladder implementation (std::priority_queue over
// (when, id) + lazily-cancelled callback side table), kept as the golden
// model for the determinism A/B.
// ---------------------------------------------------------------------------
class ReferenceQueue {
 public:
  using Id = std::uint64_t;

  Id schedule(SimTime when, std::function<void()> fn) {
    const Id id = next_id_++;
    if (callbacks_.size() <= id) callbacks_.resize(id + 1);
    callbacks_[id] = std::move(fn);
    heap_.push(Entry{when, id});
    ++live_;
    return id;
  }

  bool cancel(Id id) {
    if (id == 0 || id >= callbacks_.size() || !callbacks_[id]) return false;
    callbacks_[id] = nullptr;
    --live_;
    return true;
  }

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  SimTime run_next() {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      auto& slot = callbacks_[top.id];
      if (!slot) continue;
      auto fn = std::move(slot);
      slot = nullptr;
      --live_;
      fn();
      return top.when;
    }
    ADD_FAILURE() << "reference run_next on empty queue";
    return SimTime::zero();
  }

 private:
  struct Entry {
    SimTime when;
    Id id = 0;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<std::function<void()>> callbacks_;
  std::uint64_t next_id_ = 1;
  std::size_t live_ = 0;
};

// One trace event: which tagged callback fired, at what time.
struct Fired {
  std::int64_t when;
  std::uint32_t tag;
  bool operator==(const Fired&) const = default;
};

// ---------------------------------------------------------------------------
// Determinism A/B: identical randomized workloads driven through both
// queues must produce identical fire traces.
// ---------------------------------------------------------------------------

void drive_ab(std::uint64_t seed, bool with_cancels, bool far_future) {
  util::Xoshiro256 rng_a(seed);
  util::Xoshiro256 rng_b(seed);

  std::vector<Fired> trace_a;
  std::vector<Fired> trace_b;

  // The workload interleaves schedules, cancels, and pops; callbacks
  // schedule follow-ups, which is where tie-breaking subtleties live.
  auto drive = [&](auto& queue, auto& rng, std::vector<Fired>& trace) {
    std::int64_t now = 0;
    std::uint32_t tag = 0;
    std::vector<std::uint64_t> ids;
    std::function<void(std::uint32_t, std::int64_t)> fire =
        [&](std::uint32_t t, std::int64_t when) {
          trace.push_back(Fired{when, t});
          // Every third callback schedules a follow-up, sometimes at the
          // *same* tick (FIFO-within-timestamp must hold).
          if (t % 3 == 0) {
            const std::uint32_t follow = 100000 + t;
            const std::int64_t delay =
                (t % 9 == 0) ? 0
                             : static_cast<std::int64_t>(rng.next_below(97));
            queue.schedule(SimTime(when + delay),
                           [&, follow, when, delay] {
                             trace.push_back(Fired{when + delay, follow});
                           });
          }
        };
    for (int round = 0; round < 400; ++round) {
      const auto dice = rng.next_below(10);
      if (dice < 5) {
        const std::uint32_t t = tag++;
        const std::int64_t horizon = far_future ? 100000 : 700;
        const std::int64_t when =
            now + static_cast<std::int64_t>(
                      rng.next_below(static_cast<std::uint64_t>(horizon)));
        ids.push_back(
            queue.schedule(SimTime(when), [&, t, when] { fire(t, when); }));
      } else if (dice < 7 && with_cancels && !ids.empty()) {
        queue.cancel(ids[rng.next_below(ids.size())]);
      } else if (!queue.empty()) {
        now = queue.run_next().ticks();
      }
    }
    while (!queue.empty()) now = queue.run_next().ticks();
  };

  EventQueue ladder;
  ReferenceQueue reference;
  struct LadderShim {  // run_next() without the clock out-param
    EventQueue& q;
    std::uint64_t schedule(SimTime when, EventFn fn) {
      return q.schedule(when, std::move(fn));
    }
    bool cancel(std::uint64_t id) { return q.cancel(id); }
    [[nodiscard]] bool empty() const { return q.empty(); }
    SimTime run_next() { return q.run_next(); }
  } shim{ladder};

  drive(shim, rng_a, trace_a);
  drive(reference, rng_b, trace_b);

  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    ASSERT_EQ(trace_a[i], trace_b[i]) << "traces diverge at event " << i;
  }
}

TEST(LadderDeterminismAB, NearFutureWindowOnly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    drive_ab(seed, /*with_cancels=*/false, /*far_future=*/false);
  }
}

TEST(LadderDeterminismAB, WithCancels) {
  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    drive_ab(seed, /*with_cancels=*/true, /*far_future=*/false);
  }
}

TEST(LadderDeterminismAB, OverflowTierAndRotation) {
  // Horizons far beyond kWindowSize force overflow migration + rotation.
  for (std::uint64_t seed = 21; seed <= 28; ++seed) {
    drive_ab(seed, /*with_cancels=*/true, /*far_future=*/true);
  }
}

// ---------------------------------------------------------------------------
// Ladder-specific structure tests
// ---------------------------------------------------------------------------

TEST(LadderQueue, FarFutureEventsMigrateInOrder) {
  EventQueue q;
  std::vector<int> order;
  // All far beyond the window: overflow tier, then rotation on first pop.
  q.schedule(SimTime(3 * EventQueue::kWindowSize), [&] { order.push_back(2); });
  q.schedule(SimTime(2 * EventQueue::kWindowSize), [&] { order.push_back(1); });
  q.schedule(SimTime(9 * EventQueue::kWindowSize), [&] { order.push_back(3); });
  q.schedule(SimTime(9 * EventQueue::kWindowSize), [&] { order.push_back(4); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(LadderQueue, SameTickFollowUpRunsBeforeLaterEvents) {
  EventQueue q;
  std::vector<int> order;
  SimTime clock;
  q.schedule(SimTime(10), [&] {
    order.push_back(1);
    q.schedule(SimTime(10), [&] { order.push_back(2); });  // same tick
  });
  q.schedule(SimTime(11), [&] { order.push_back(3); });
  while (!q.empty()) q.run_next(&clock);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(LadderQueue, ScheduleBelowAnchoredWindowStillOrdersCorrectly) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(5000), [&] { order.push_back(2); });
  q.schedule(SimTime(100), [&] { order.push_back(1); });  // below the anchor
  q.schedule(SimTime(9000), [&] { order.push_back(3); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(LadderQueue, WideSpanBelowWindowDemotesAndStaysOrdered) {
  EventQueue q;
  std::vector<int> order;
  // Span wider than the window forces the demote-and-remigrate path.
  q.schedule(SimTime(10 * EventQueue::kWindowSize), [&] { order.push_back(3); });
  q.schedule(SimTime(EventQueue::kWindowSize / 2), [&] { order.push_back(2); });
  q.schedule(SimTime(1), [&] { order.push_back(1); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(LadderQueue, CancelFreesSlotImmediately) {
  EventQueue q;
  const std::size_t before = q.slot_capacity();
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(SimTime(1000 + i), [] {}));
  }
  for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  // Slots were recycled; scheduling again must not grow the table.
  const std::size_t grown = q.slot_capacity();
  for (int i = 0; i < 100; ++i) q.schedule(SimTime(2000 + i), [] {});
  EXPECT_EQ(q.slot_capacity(), grown);
  EXPECT_GE(grown, before);
}

TEST(LadderQueue, SlotTableBoundedByLiveEventsNotTotalScheduled) {
  EventQueue q;
  // Sequentially schedule + run 10k events while never holding more than
  // two: the callback table must stay tiny (the old queue grew it to 10k).
  std::int64_t t = 0;
  q.schedule(SimTime(1), [] {});
  for (int i = 0; i < 10000; ++i) {
    q.schedule(SimTime(t + 2), [] {});
    t = q.run_next().ticks();
  }
  EXPECT_EQ(q.total_scheduled(), 10001U);
  EXPECT_LE(q.slot_capacity(), 4U);
}

TEST(LadderQueue, TombstoneCompactionTriggers) {
  EventQueue q;
  std::vector<EventId> ids;
  // A big batch of cancels with a few survivors: > half the queued entries
  // become tombstones and the compactor must fire.
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(SimTime(10 + i % 50), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) q.cancel(ids[i]);
  }
  EXPECT_GT(q.compactions(), 0U);
  EXPECT_EQ(q.pending(), 100U);
  std::size_t fired = 0;
  while (!q.empty()) {
    q.run_next();
    ++fired;
  }
  EXPECT_EQ(fired, 100U);
  // Tombstones past the last live event purge lazily: the next schedule
  // after a full drain sweeps them.
  q.schedule(SimTime(1), [] {});
  EXPECT_EQ(q.dead_entries(), 0U);
  q.run_next();
}

// ---------------------------------------------------------------------------
// Property storm: randomized cancel/reschedule against a model
// ---------------------------------------------------------------------------

TEST(LadderPropertyStorm, CancelRescheduleAgainstModel) {
  for (std::uint64_t seed = 101; seed <= 112; ++seed) {
    util::Xoshiro256 rng(seed);
    EventQueue q;
    // Model: the multiset of live (when, seq) pairs, via the reference.
    ReferenceQueue model;
    std::vector<std::pair<EventId, ReferenceQueue::Id>> live;
    std::vector<Fired> fired_q;
    std::vector<Fired> fired_m;
    std::int64_t now = 0;
    std::uint32_t tag = 0;
    for (int round = 0; round < 3000; ++round) {
      const auto dice = rng.next_below(100);
      if (dice < 45) {
        const std::int64_t when =
            now + static_cast<std::int64_t>(rng.next_below(20000));
        const std::uint32_t t = tag++;
        const EventId a =
            q.schedule(SimTime(when), [&fired_q, t, when] {
              fired_q.push_back(Fired{when, t});
            });
        const auto b = model.schedule(SimTime(when), [&fired_m, t, when] {
          fired_m.push_back(Fired{when, t});
        });
        live.emplace_back(a, b);
      } else if (dice < 75 && !live.empty()) {
        const std::size_t pick = rng.next_below(live.size());
        const auto [a, b] = live[pick];
        EXPECT_EQ(q.cancel(a), model.cancel(b));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (!q.empty()) {
        ASSERT_FALSE(model.empty());
        const std::int64_t announced = q.next_time().ticks();
        EXPECT_EQ(announced, q.run_next().ticks());
        now = model.run_next().ticks();
      }
      ASSERT_EQ(q.pending(), model.pending());
    }
    while (!q.empty()) {
      q.run_next();
      model.run_next();
    }
    EXPECT_TRUE(model.empty());
    ASSERT_EQ(fired_q.size(), fired_m.size());
    for (std::size_t i = 0; i < fired_q.size(); ++i) {
      ASSERT_EQ(fired_q[i], fired_m[i]) << "storm diverges at " << i;
    }
    // Double-cancel of long-dead ids stays a no-op.
    for (const auto& [a, b] : live) {
      q.cancel(a);
      model.cancel(b);
    }
  }
}

// Cancelled ids whose slot was recycled by a *new* event must not cancel
// the new tenant (generation guard).
TEST(LadderPropertyStorm, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId old_id = q.schedule(SimTime(5), [] {});
  EXPECT_TRUE(q.cancel(old_id));
  bool fired = false;
  const EventId new_id = q.schedule(SimTime(6), [&] { fired = true; });
  EXPECT_FALSE(q.cancel(old_id));  // stale handle, recycled slot
  EXPECT_EQ(q.pending(), 1U);
  q.run_next();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(q.cancel(new_id));  // already fired
}

}  // namespace
}  // namespace splice::sim
