// SPL005 fixture: a SPLICE_SHARD_CONFINED member touched from a function
// that is not marked SPLICE_SHARD_ENTRY. Lint-only, never compiled — the
// annotation macros appear as bare tokens exactly as the linter sees them
// through util/annotations.h.
struct Shard {
  SPLICE_SHARD_CONFINED int heap_size = 0;
};

SPLICE_SHARD_ENTRY
void fixture_vetted(Shard& shard) {
  shard.heap_size = 0;  // fine: inside an entry function
}

void fixture_unvetted(Shard& shard) {
  shard.heap_size += 1;  // expect-lint: SPL005
}
