// SPL001 fixture: every nondeterminism source the rule bans, one per line.
// Lint-only — this file is never compiled (tests/lint_fixture is excluded
// from the build and from tree-mode lint; check_fixtures.py runs it through
// `splice_lint.py --fixture` and asserts the expect-lint markers).
#include <random>

unsigned fixture_entropy() {
  std::random_device rd;  // expect-lint: SPL001
  std::mt19937 gen;       // expect-lint: SPL001
  return rd() + gen();
}

long fixture_wall_clock() {
  return time(nullptr);  // expect-lint: SPL001
}
