// SPL004 fixture: an Envelope read after std::move consumed it.
// Lint-only, never compiled (the linter tracks the type by name).
#include <utility>

struct Envelope {
  int to = 0;
};

void sink(Envelope&& e);

int fixture_forward(Envelope envelope) {
  sink(std::move(envelope));
  return envelope.to;  // expect-lint: SPL004
}
