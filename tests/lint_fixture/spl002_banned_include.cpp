// SPL002 fixture: the banned header (glibc's splice(2) declaration breaks
// `namespace splice`) and a C rand-family call. Lint-only, never compiled.
#include <fcntl.h>  // expect-lint: SPL002

int fixture_draw(unsigned* state) {
  return rand_r(state);  // expect-lint: SPL002
}
