// SPL003 fixture: a switch over the closed MsgKind enum (parsed from
// src/net/message.h) that misses kCancel. Lint-only, never compiled.
namespace splice::net {
enum class MsgKind;
}
using splice::net::MsgKind;

int fixture_payload_slot(MsgKind kind) {
  switch (kind) {  // expect-lint: SPL003
    case MsgKind::kTaskPacket:
    case MsgKind::kSpawnAck:
    case MsgKind::kForwardResult:
    case MsgKind::kFetchData:
    case MsgKind::kDataReply:
    case MsgKind::kErrorDetection:
    case MsgKind::kDeliveryFailure:
    case MsgKind::kHeartbeat:
    case MsgKind::kLoadUpdate:
    case MsgKind::kCheckpointXfer:
    case MsgKind::kRejoinNotice:
    case MsgKind::kStateRequest:
    case MsgKind::kStateChunk:
    case MsgKind::kControl:
      return 0;
      // MsgKind::kCancel deliberately absent.
  }
  return -1;
}
