#!/usr/bin/env python3
"""Fixture harness for tools/splice_lint.py.

Each tests/lint_fixture/spl*.cpp carries `// expect-lint: SPLxxx` markers.
For every fixture this script runs the linter in --fixture mode and asserts
that the set of (rule, line) findings equals the set of markers exactly —
a missing finding means the rule regressed, an extra finding means the rule
over-triggers. A fixture with zero markers is itself an error.

Exit 0 when every fixture matches; 1 otherwise.
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINT = REPO / "tools" / "splice_lint.py"
MARKER = re.compile(r"//\s*expect-lint:\s*(SPL\d{3})")


def expected_of(path: pathlib.Path) -> set[tuple[str, int]]:
    out = set()
    for ln, line in enumerate(path.read_text().splitlines(), start=1):
        for m in MARKER.finditer(line):
            out.add((m.group(1), ln))
    return out


def findings_of(path: pathlib.Path) -> set[tuple[str, int]]:
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(REPO), "--fixture",
         "--json", str(path)],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode not in (0, 1):
        print(proc.stderr, file=sys.stderr)
        raise RuntimeError(
            f"splice_lint exited {proc.returncode} on {path.name}")
    payload = json.loads(proc.stdout)
    return {(f["rule"], f["line"]) for f in payload["findings"]}


def main() -> int:
    fixtures = sorted(HERE.glob("spl*.cpp"))
    if not fixtures:
        print("error: no fixtures found", file=sys.stderr)
        return 1
    failures = 0
    for fx in fixtures:
        expected = expected_of(fx)
        if not expected:
            print(f"FAIL {fx.name}: no expect-lint markers")
            failures += 1
            continue
        actual = findings_of(fx)
        if actual == expected:
            print(f"ok   {fx.name}: {len(expected)} finding(s) as expected")
            continue
        failures += 1
        print(f"FAIL {fx.name}:")
        for rule, line in sorted(expected - actual):
            print(f"  missing: {rule} at line {line} (rule regressed?)")
        for rule, line in sorted(actual - expected):
            print(f"  extra:   {rule} at line {line} (over-trigger?)")
    print(f"{len(fixtures) - failures}/{len(fixtures)} fixtures pass")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
