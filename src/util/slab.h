// Arena/slab allocation: per-owner object pools in the Nu-runtime idiom
// (per-core slabs + free-list recycling; SNIPPETS.md #3).
//
// Two faces over one mechanism:
//
//  * SlabPool<T> — a typed pool. acquire() placement-constructs into a slot
//    carved from chunked slabs, release() destroys and pushes the slot onto
//    an intrusive free list. One malloc per kChunk objects instead of one
//    per object; slots never move, so pointers stay stable for the object's
//    lifetime.
//
//  * SlabArena + PoolAllocator<T> — a size-classed untyped arena with a
//    std::allocator adapter, for node-based containers (unordered_map's
//    per-element nodes are the last malloc on the task hot path). Blocks
//    round up to 16-byte classes; one free list per class; bulk (n > 1)
//    allocations fall through to operator new (vector rehash buffers are
//    amortised and not worth pooling).
//
// Neither is thread-safe: a pool belongs to exactly one owner (a Processor,
// a PDES shard) and every acquire/release happens on that owner's thread —
// which is the whole trick: no locks, no atomic traffic, no false sharing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace splice::util {

/// Typed object pool. Slots are recycled through an intrusive free list;
/// storage is carved from chunks that grow geometrically from `kMinChunk`
/// slots to a `kChunk` cap — a pool that only ever holds a handful of
/// objects (one of 256 processors on a big machine) stays a handful of
/// slots, while a hot pool converges to one malloc per kChunk objects.
template <typename T, std::size_t kChunk = 256, std::size_t kMinChunk = 8>
class SlabPool {
  static_assert(kChunk > 0 && kMinChunk > 0 && kMinChunk <= kChunk);

 public:
  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() = default;  // all objects must have been released (slots hold
                          // raw storage, so leaked objects are not destroyed)

  template <typename... Args>
  [[nodiscard]] T* acquire(Args&&... args) {
    Slot* slot = free_;
    if (slot != nullptr) {
      free_ = slot->next;
    } else {
      slot = carve();
    }
    ++live_;
    return ::new (static_cast<void*>(slot->storage)) T(
        std::forward<Args>(args)...);
  }

  void release(T* object) noexcept {
    object->~T();
    auto* slot = reinterpret_cast<Slot*>(
        reinterpret_cast<unsigned char*>(object) - offsetof(Slot, storage));
    slot->next = free_;
    free_ = slot;
    --live_;
  }

  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Deleter for std::unique_ptr<T, SlabPool<T>::Deleter>: owning handles
  /// that return their slot to the pool instead of the heap.
  struct Deleter {
    SlabPool* pool = nullptr;
    void operator()(T* object) const noexcept {
      if (object != nullptr) pool->release(object);
    }
  };
  using Ptr = std::unique_ptr<T, Deleter>;

  template <typename... Args>
  [[nodiscard]] Ptr make(Args&&... args) {
    return Ptr(acquire(std::forward<Args>(args)...), Deleter{this});
  }

 private:
  struct Slot {
    union {
      Slot* next;  // valid while on the free list
      alignas(T) unsigned char storage[sizeof(T)];
    };
  };

  Slot* carve() {
    const std::size_t n = next_chunk_;
    next_chunk_ = std::min(next_chunk_ * 2, kChunk);
    // Default-initialized storage (plain new[], not make_unique): slots are
    // raw unions, and zeroing a fresh chunk would touch every page of it up
    // front — measurably slow with many pools on a big machine.
    chunks_.emplace_back(new Slot[n]);
    capacity_ += n;
    Slot* chunk = chunks_.back().get();
    // Thread all but the first new slot onto the free list.
    for (std::size_t i = n - 1; i > 0; --i) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
    return &chunk[0];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  Slot* free_ = nullptr;
  std::size_t live_ = 0;
  std::size_t capacity_ = 0;
  std::size_t next_chunk_ = kMinChunk;
};

/// Size-classed untyped slab arena backing PoolAllocator. Classes are
/// 16-byte multiples up to kMaxBlock; larger requests go to operator new.
class SlabArena {
 public:
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kMaxBlock = 256;
  static constexpr std::size_t kClasses = kMaxBlock / kAlign;
  static constexpr std::size_t kChunkBytes = 16 * 1024;
  static constexpr std::size_t kMinChunkBytes = 1024;

  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  [[nodiscard]] void* allocate(std::size_t bytes) {
    const std::size_t cls = class_of(bytes);
    if (cls >= kClasses) {
      return ::operator new(bytes, std::align_val_t(kAlign));
    }
    FreeNode*& head = free_[cls];
    if (head != nullptr) {
      FreeNode* node = head;
      head = node->next;
      return node;
    }
    const std::size_t block = (cls + 1) * kAlign;
    if (bump_remaining_ < block) {
      // Chunks grow geometrically to the kChunkBytes cap, default-
      // initialized (no up-front page-touching memset) — same rationale as
      // SlabPool::carve().
      const std::size_t chunk_bytes = next_chunk_bytes_;
      next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kChunkBytes);
      chunks_.emplace_back(new unsigned char[chunk_bytes]);
      bump_ = chunks_.back().get();
      bump_remaining_ = chunk_bytes;
    }
    void* out = bump_;
    bump_ += block;
    bump_remaining_ -= block;
    return out;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = class_of(bytes);
    if (cls >= kClasses) {
      ::operator delete(p, std::align_val_t(kAlign));
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
  }

  [[nodiscard]] std::size_t chunks_allocated() const noexcept {
    return chunks_.size();
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  [[nodiscard]] static constexpr std::size_t class_of(
      std::size_t bytes) noexcept {
    return bytes == 0 ? 0 : (bytes - 1) / kAlign;
  }

  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  unsigned char* bump_ = nullptr;
  std::size_t bump_remaining_ = 0;
  std::size_t next_chunk_bytes_ = kMinChunkBytes;
  FreeNode* free_[kClasses] = {};
};

/// std::allocator adapter over a SlabArena. Single-element allocations (the
/// node-based-container case) come from the arena; bulk allocations (hash
/// bucket arrays, vector buffers) pass through to operator new.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  explicit PoolAllocator(SlabArena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept
      : arena_(other.arena_) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 1 && alignof(T) <= SlabArena::kAlign) {
      return static_cast<T*>(arena_->allocate(sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1 && alignof(T) <= SlabArena::kAlign) {
      arena_->deallocate(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  [[nodiscard]] bool operator==(const PoolAllocator<U>& other) const noexcept {
    return arena_ == other.arena_;
  }

  SlabArena* arena_;  // public so the converting constructor can read it
};

}  // namespace splice::util
