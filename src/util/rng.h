// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator (scheduler tie-breaks, workload
// shapes, fault times) flows through SplitMix64/Xoshiro256** seeded from the
// run configuration, so a (config, seed) pair replays bit-identically. The
// standard <random> engines are avoided because their distributions are not
// specified cross-platform; ours are.
#pragma once

#include <cstdint>
#include <vector>

namespace splice::util {

/// SplitMix64: tiny, fast, passes BigCrush when used as a seeder.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna). General-purpose engine.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound == 0 returns 0. Uses Lemire's
  /// nearly-divisionless rejection method, bias-free.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_range(std::int64_t lo,
                                        std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Bernoulli(p).
  [[nodiscard]] bool next_bool(double p) noexcept;

  /// Exponential with the given mean (inverse-CDF method).
  [[nodiscard]] double next_exponential(double mean) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child stream (for per-processor RNGs).
  [[nodiscard]] Xoshiro256 split() noexcept;

 private:
  std::uint64_t state_[4];
};

/// Stable 64-bit mix of several values; used to derive per-entity seeds
/// (e.g. seed ^ processor id) without correlation.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a,
                                         std::uint64_t b) noexcept;

}  // namespace splice::util
