#include "util/logging.h"

#include <cctype>
#include <cstdio>

namespace splice::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::fprintf(stderr, "[%s] %.*s\n", to_string(level).data(),
                 static_cast<int>(message.size()), message.data());
  };
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view message) {
      std::fprintf(stderr, "[%s] %.*s\n", to_string(level).data(),
                   static_cast<int>(message.size()), message.data());
    };
  }
}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  sink_(level, message);
}

}  // namespace splice::util
