// ASCII table / CSV rendering for experiment harness output.
//
// Every bench binary prints the rows of the figure/table it regenerates via
// this printer so output is uniform and greppable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace splice::util {

/// Column-aligned ASCII table with an optional title and CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  [[nodiscard]] static std::string num(std::uint64_t value);
  [[nodiscard]] static std::string num(std::int64_t value);

  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::string to_ascii() const;
  [[nodiscard]] std::string to_csv() const;
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace splice::util
