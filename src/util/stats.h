// Streaming statistics and small summaries for experiment output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace splice::util {

/// Streaming accumulator (Welford) with min/max. O(1) memory.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation (stddev / mean); 0 when mean == 0.
  [[nodiscard]] double cov() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Keeps all samples; supports exact percentiles. Used for per-replicate
/// experiment metrics where sample counts are small (<= a few thousand).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// Exact percentile via linear interpolation, q in [0,100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Render as an ASCII bar chart for experiment output.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace splice::util
