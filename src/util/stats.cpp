#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace splice::util {

void Accumulator::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::cov() const noexcept {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

double Samples::min() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double q) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::add(double x) noexcept {
  const auto buckets = static_cast<double>(counts_.size());
  double pos = (x - lo_) / (hi_ - lo_) * buckets;
  pos = std::clamp(pos, 0.0, buckets - 1.0);
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double lo = lo_ + step * static_cast<double>(i);
    const auto bars = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << lo << ", " << lo + step << ") "
        << std::string(bars, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace splice::util
