#include "util/rng.h"

#include <cmath>

namespace splice::util {
namespace {
[[nodiscard]] std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 seeder(seed);
  for (auto& word : state_) word = seeder.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire 2019: multiply-shift with rejection on the low word.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::next_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Xoshiro256::next_double() noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Xoshiro256::next_exponential(double mean) noexcept {
  // Guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Xoshiro256 Xoshiro256::split() noexcept {
  return Xoshiro256(next() ^ 0x6a09e667f3bcc909ULL);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 mixer(a ^ (b + 0x9e3779b97f4a7c15ULL));
  return mixer.next();
}

}  // namespace splice::util
