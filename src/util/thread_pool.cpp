#include "util/thread_pool.h"

#include <atomic>

namespace splice::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  ThreadPool pool(threads);
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(n, pool.thread_count());
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace splice::util
