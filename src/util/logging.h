// Leveled logging with pluggable sinks.
//
// The simulator is single-threaded, but the experiment harness runs many
// replicates concurrently, so the logger is thread-safe. Log lines carry the
// simulated time when emitted through a Simulator-bound context.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace splice::util {

enum class LogLevel : std::uint8_t {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Human-readable name for a level ("TRACE", "DEBUG", ...).
[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Parse "trace" / "info" / ... (case-insensitive). Unknown -> kInfo.
[[nodiscard]] LogLevel parse_log_level(std::string_view text) noexcept;

/// Process-wide logger. Defaults to kWarn on stderr so tests stay quiet;
/// examples and benches raise the level explicitly when tracing a scenario.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_;
  }

  /// Replace the sink (default writes to stderr). Passing nullptr restores
  /// the default sink.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view message);

 private:
  Logger();
  std::mutex mutex_;
  Sink sink_;
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace splice::util

#define SPLICE_LOG(level)                                      \
  if (!::splice::util::Logger::instance().enabled(level)) {    \
  } else                                                       \
    ::splice::util::detail::LogLine(level)

#define SPLICE_TRACE() SPLICE_LOG(::splice::util::LogLevel::kTrace)
#define SPLICE_DEBUG() SPLICE_LOG(::splice::util::LogLevel::kDebug)
#define SPLICE_INFO() SPLICE_LOG(::splice::util::LogLevel::kInfo)
#define SPLICE_WARN() SPLICE_LOG(::splice::util::LogLevel::kWarn)
#define SPLICE_ERROR() SPLICE_LOG(::splice::util::LogLevel::kError)
