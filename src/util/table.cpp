#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace splice::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::num(std::uint64_t value) { return std::to_string(value); }
std::string Table::num(std::int64_t value) { return std::to_string(value); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ",";
      // Quote cells containing separators.
      if (cells[c].find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : cells[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cells[c];
      }
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << to_ascii(); }

}  // namespace splice::util
