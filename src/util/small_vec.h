// Inline-capacity vector for the protocol hot path.
//
// The simulator copies many tiny sequences — level-stamp digit strings,
// ancestor chains, argument lists, prim operands — whose lengths almost
// never exceed a handful. std::vector heap-allocates every non-empty copy;
// SmallVec keeps up to N elements in the object itself and only touches the
// heap beyond that. Trivially copyable element types relocate via memcpy;
// other types (lang::Value and friends) move element-wise. Moves are
// noexcept whenever T's are, which is what the move-only envelope and
// event-queue machinery requires.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace splice::util {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0);
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "SmallVec relocation must not throw");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept = default;
  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) emplace_unchecked(v);
  }
  template <typename It>
  SmallVec(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  SmallVec(const SmallVec& other) {
    reserve(other.size_);
    for (const T& v : other) emplace_unchecked(v);
  }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& v : other) emplace_unchecked(v);
    }
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { steal(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear();
      release_heap();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() {
    clear();
    release_heap();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] T* data() noexcept {
    return heap_ != nullptr ? heap_ : inline_data();
  }
  [[nodiscard]] const T* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_data();
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] T& back() noexcept { return data()[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data()[size_ - 1]; }

  [[nodiscard]] iterator begin() noexcept { return data(); }
  [[nodiscard]] iterator end() noexcept { return data() + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data(); }
  [[nodiscard]] const_iterator end() const noexcept { return data() + size_; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      // `value` may alias an element of this container; detach it before
      // growth relocates the storage (same hazard std::vector guards).
      T detached(value);
      grow(size_ + 1);
      ::new (static_cast<void*>(data() + size_)) T(std::move(detached));
    } else {
      ::new (static_cast<void*>(data() + size_)) T(value);
    }
    ++size_;
  }
  void push_back(T&& value) {
    if (size_ == capacity_) {
      T detached(std::move(value));
      grow(size_ + 1);
      ::new (static_cast<void*>(data() + size_)) T(std::move(detached));
    } else {
      ::new (static_cast<void*>(data() + size_)) T(std::move(value));
    }
    ++size_;
  }

  void pop_back() noexcept {
    assert(size_ > 0);
    data()[--size_].~T();
  }

  void clear() noexcept {
    std::destroy_n(data(), size_);
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void assign(std::size_t n, const T& value) {
    clear();
    reserve(n);
    for (std::size_t i = 0; i < n; ++i) emplace_unchecked(value);
  }

  void resize(std::size_t n, const T& fill = T{}) {
    if (n < size_) {
      std::destroy_n(data() + n, size_ - n);
      size_ = static_cast<std::uint32_t>(n);
      return;
    }
    reserve(n);
    while (size_ < n) emplace_unchecked(fill);
  }

  /// Give back the heap cell if the contents fit inline again (mirrors the
  /// retained-packet trimming in the runtime).
  void shrink_to_fit() noexcept {
    if (heap_ == nullptr || size_ > N) return;
    T* heap = heap_;
    relocate_n(heap, size_, inline_data());
    heap_ = nullptr;
    capacity_ = N;
    ::operator delete(heap);
  }

  [[nodiscard]] bool operator==(const SmallVec& other) const {
    return size_ == other.size_ && std::equal(begin(), end(), other.begin());
  }
  [[nodiscard]] bool operator<(const SmallVec& other) const {
    return std::lexicographical_compare(begin(), end(), other.begin(),
                                        other.end());
  }

 private:
  [[nodiscard]] T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  [[nodiscard]] const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void emplace_unchecked(const T& v) {
    ::new (static_cast<void*>(data() + size_)) T(v);
    ++size_;
  }

  // Move `n` elements from src to (uninitialized) dst, destroying src.
  static void relocate_n(T* src, std::size_t n, T* dst) noexcept {
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(static_cast<void*>(dst), static_cast<const void*>(src),
                  sizeof(T) * n);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        ::new (static_cast<void*>(dst + i)) T(std::move(src[i]));
        src[i].~T();
      }
    }
  }

  void steal(SmallVec& other) noexcept {
    size_ = other.size_;
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
    } else {
      relocate_n(other.inline_data(), size_, inline_data());
    }
    other.size_ = 0;
    other.capacity_ = N;
  }

  void grow(std::size_t n) {
    const std::size_t cap = std::max(n, std::size_t{capacity_} * 2);
    T* fresh = static_cast<T*>(::operator new(sizeof(T) * cap));
    relocate_n(data(), size_, fresh);
    release_heap();
    heap_ = fresh;
    capacity_ = static_cast<std::uint32_t>(cap);
  }

  void release_heap() noexcept {
    if (heap_ != nullptr) {
      ::operator delete(heap_);
      heap_ = nullptr;
    }
    capacity_ = N;
  }

  alignas(T) std::byte inline_storage_[sizeof(T) * N];
  T* heap_ = nullptr;
  // 32-bit bookkeeping: these sequences are tiny by design, and the smaller
  // header keeps packet/envelope relocation cheap.
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = N;
};

}  // namespace splice::util
