// Work-queue thread pool for the experiment harness.
//
// Simulations are deterministic and single-threaded; experiments sweep
// (parameters x seeds) and are embarrassingly parallel, so the harness fans
// replicates out across hardware threads with parallel_for.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace splice::util {

class ThreadPool {
 public:
  /// threads == 0 uses hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; runs on some worker.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, n) across a transient pool. Exceptions inside
/// body terminate (simulator code reports failures via results, not throws).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace splice::util
