// Source-level annotation macros consumed by the project linter
// (tools/splice_lint.py). They expand to nothing: their entire meaning is
// the token the linter sees in the source text, so annotating costs zero
// codegen and works identically under gcc and clang.
//
// The invariants they mark are the ones the compiler cannot see:
//
//  * SPLICE_SHARD_CONFINED — placed on a data member that belongs to one
//    PDES shard's private window state (its simulator, op heap, inbox
//    buffers, journal ring). The window protocol's only synchronization is
//    the pair of barriers around each window; a confined member is safe to
//    touch exactly when the barrier discipline says so, and the linter's
//    SPL005 rule rejects any member access outside a function marked
//    SPLICE_SHARD_ENTRY (docs/STATIC_ANALYSIS.md#spl005).
//
//  * SPLICE_SHARD_ENTRY — placed on a function definition that is a
//    legitimate entry point into confined state: the worker loop itself,
//    the coordinator phase running while workers are parked, the posting
//    protocol (route/post_shard) whose parity buffers make the write safe,
//    and post-run accessors that execute after the team has joined.
//
// Adding a new access site without the annotation fails `ctest -L lint`,
// which is the point: the reviewer is forced to argue the barrier ordering
// for the new site, not discover a data race in TSan two PRs later.
#pragma once

#define SPLICE_SHARD_CONFINED /* splice_lint: member is shard-private */
#define SPLICE_SHARD_ENTRY /* splice_lint: vetted confined-state entry */
