#include "core/trace.h"

#include <sstream>

namespace splice::core {

void Trace::add(sim::SimTime t, net::ProcId proc, std::string kind,
                std::string detail) {
  if (!enabled_) return;
  events_.push_back(
      TraceEvent{t.ticks(), proc, std::move(kind), std::move(detail)});
}

std::vector<TraceEvent> Trace::of_kind(const std::string& kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

bool Trace::contains(const std::string& kind,
                     const std::string& detail_substr) const {
  for (const TraceEvent& e : events_) {
    if (e.kind == kind && e.detail.find(detail_substr) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string Trace::render() const {
  std::ostringstream out;
  for (const TraceEvent& e : events_) {
    out << "t=" << e.ticks << " ";
    if (e.proc == net::kNoProc) {
      out << "[host] ";
    } else {
      out << "[P" << e.proc << "]   ";
    }
    out << e.kind << ": " << e.detail << "\n";
  }
  return out.str();
}

}  // namespace splice::core
