// Run-level metrics: what every experiment table is built from.
#pragma once

#include <cstdint>
#include <string>

#include "lang/value.h"
#include "net/network.h"

namespace splice::core {

/// Protocol-level counters aggregated across processors.
struct Counters {
  // Task lifecycle.
  std::uint64_t tasks_created = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_aborted = 0;
  /// Live resident tasks destroyed by the crash of their host. Together
  /// with completed/aborted/stranded these account for every accepted task
  /// (the RecoveryOracle's conservation equation).
  std::uint64_t tasks_lost_to_crash = 0;
  std::uint64_t scans = 0;

  // Recovery activity.
  std::uint64_t tasks_respawned = 0;       // reissued checkpoints (all kinds)
  std::uint64_t twins_created = 0;         // splice step-parents
  std::uint64_t orphan_results_salvaged = 0;  // slots filled by relayed returns
  std::uint64_t results_relayed = 0;       // grandparent transport actions
  std::uint64_t duplicate_results_ignored = 0;  // cases 6/7
  std::uint64_t late_results_discarded = 0;     // case 8 / unknown target
  std::uint64_t orphans_stranded = 0;      // undeliverable with no ancestor left
  std::uint64_t orphans_gced = 0;          // duplicates reclaimed by legacy sweep

  // Cancellation protocol (kCancel, duplicate-lineage reclaim by message).
  std::uint64_t cancels_sent = 0;          // kCancel messages issued
  std::uint64_t tasks_cancelled = 0;       // live duplicates aborted by cancel
  std::uint64_t cancels_ignored = 0;       // no live addressee (already done)
  std::uint64_t cancel_retries = 0;        // kCancel re-sent after a bounce
  std::uint64_t bounce_retransmits = 0;    // other protocol kinds re-sent
  std::uint64_t wire_dups_discarded = 0;   // duplicate task packets deduped
  std::uint64_t gc_oracle_orphans = 0;     // duplicates the oracle saw leak
  /// Sum over reclaimed duplicates of (reclaim time - task creation time);
  /// divide by tasks_cancelled + orphans_gced for the E17 mean reclaim
  /// latency. Both reclaim paths use the same proxy, so sweep and cancel
  /// runs compare like for like.
  std::int64_t reclaim_latency_ticks = 0;

  // Functional checkpointing.
  std::uint64_t checkpoint_records = 0;
  std::uint64_t checkpoint_subsumed = 0;   // level-stamp dedup hits (§3.2)
  std::uint64_t checkpoint_released = 0;
  std::uint64_t checkpoint_taken = 0;      // removed by take() on a crash
  std::uint64_t checkpoint_evicted = 0;    // antichain eviction in record()
  std::uint64_t checkpoint_cleared = 0;    // dropped by clear() (node nuked)
  std::uint64_t checkpoint_resident = 0;   // still held when the run ended
  std::uint64_t checkpoint_peak_entries = 0;
  std::uint64_t checkpoint_peak_units = 0;

  // Periodic-global baseline.
  std::uint64_t snapshots_taken = 0;
  std::uint64_t snapshot_units = 0;
  std::uint64_t restores = 0;
  std::int64_t freeze_ticks = 0;

  // Failure handling.
  std::uint64_t error_broadcasts = 0;
  std::uint64_t rejoins = 0;  // times this node revived (crash-recovery)

  // Durable store + warm-rejoin state transfer (store/ subsystem).
  std::uint64_t store_entries_logged = 0;   // checkpoint mutations journaled
  std::uint64_t store_entries_lost = 0;     // erased by the persistency model
  std::uint64_t store_records_replayed = 0; // live records after log replay
  std::uint64_t state_chunks_sent = 0;      // kStateChunk messages streamed
  std::uint64_t state_packets_transferred = 0;  // packets re-accepted on rejoin
  std::uint64_t state_units_transferred = 0;    // transfer volume (size units)
  std::uint64_t stale_chunks_dropped = 0;   // incarnation-guarded discards
  std::uint64_t reissues_avoided = 0;       // respawns replaced by transfer
  std::uint64_t reissues_deferred = 0;      // warm-mode deferrals granted
  std::int64_t catch_up_ticks = 0;          // revive -> transfer complete (sum)

  // Work accounting (busy processor time in ticks).
  std::int64_t busy_ticks = 0;

  void merge(const Counters& other) noexcept;
};

/// Result of one simulated run.
struct RunResult {
  bool completed = false;
  lang::Value answer;
  bool answer_checked = false;  // reference answer was computed
  bool answer_correct = false;

  std::int64_t makespan_ticks = 0;
  std::int64_t first_failure_ticks = -1;   // -1: no fault injected/fired
  std::int64_t detection_ticks = -1;       // first error-detection handling
  std::uint64_t faults_injected = 0;
  std::uint64_t nodes_revived = 0;         // rejoins executed (crash-recovery)

  Counters counters;
  net::NetworkStats net;
  std::uint64_t sim_events = 0;
  std::uint32_t processors = 0;
  std::uint32_t processors_alive_at_end = 0;
  /// Tasks still resident and unfinished when the run ended (orphans the
  /// system never reclaimed — §3.4's observation made measurable).
  std::uint64_t stranded_tasks = 0;

  [[nodiscard]] std::string summary() const;
};

}  // namespace splice::core
