// Public API facade: build a system, run a program under a fault plan,
// collect the results.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::SystemConfig cfg;
//   cfg.processors = 16;
//   cfg.recovery.kind = core::RecoveryKind::kSplice;
//   core::Simulation sim(cfg, lang::programs::fib(16, 50));
//   sim.set_fault_plan(
//       net::FaultPlan::single(/*target=*/3, sim::SimTime(20000)));
//   core::RunResult result = sim.run();
//
// Richer plans compose regional, cascading, recurring, and rejoin faults
// (net/fault_plan.h), or parse from the scenario DSL (core::parse_fault_plan).
// Every run is deterministic for a (config, program, fault plan) triple.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/config.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "lang/interpreter.h"
#include "lang/program.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "obs/journal.h"
#include "runtime/pdes_engine.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace splice::core {

class Simulation {
 public:
  Simulation(SystemConfig config, lang::Program program);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  void set_fault_plan(net::FaultPlan plan) { fault_plan_ = std::move(plan); }

  /// Run to completion (or deadline). May be called once per Simulation.
  RunResult run();

  /// Fault-free reference makespan for this (config, program) pair with the
  /// same seed — computed by running a fault-free twin simulation. Used by
  /// experiments that place faults at a fraction of the makespan.
  [[nodiscard]] static std::int64_t fault_free_makespan(
      const SystemConfig& config, const lang::Program& program);

  // ---- post-run inspection --------------------------------------------------
  [[nodiscard]] const Trace& trace() const;
  /// The flight recorder (journal + metrics). Valid after run().
  [[nodiscard]] const obs::Recorder& recorder() const;
  [[nodiscard]] runtime::Runtime& runtime_for_test() { return *runtime_; }
  [[nodiscard]] const lang::Program& program() const noexcept {
    return program_;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }

 private:
  SystemConfig config_;
  lang::Program program_;
  net::FaultPlan fault_plan_;

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<runtime::Runtime> runtime_;
  std::unique_ptr<net::FaultInjector> injector_;
  /// Sharded (PDES) driver; non-null iff config.parallel.engine().
  std::unique_ptr<runtime::PdesEngine> engine_;
  bool ran_ = false;
};

/// One-line helper for tests/benches: build, run, return.
[[nodiscard]] RunResult run_once(const SystemConfig& config,
                                 const lang::Program& program,
                                 const net::FaultPlan& plan = {});

}  // namespace splice::core
