// System configuration: every knob of the simulated applicative machine.
//
// This header is dependency-light (net + plain enums) so that runtime,
// scheduler, and recovery modules can all consume it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/fault_plan.h"
#include "net/network.h"
#include "net/topology.h"
#include "store/persistency.h"

namespace splice::core {

enum class SchedulerKind : std::uint8_t {
  kRandom,      // uniform over alive processors
  kRoundRobin,  // cyclic over alive processors
  kLocalFirst,  // keep local until the queue exceeds a threshold
  kPinned,      // honour FunctionDef::pinned_processor (Fig. 1 scripting)
  kGradient,    // gradient model of Lin & Keller [10]
  kNeighbor,    // Grit-style: spawn only to self or immediate neighbours [6]
};

enum class RecoveryKind : std::uint8_t {
  kNone,            // no fault tolerance (control)
  kRestart,         // restart whole program from the super-root on failure
  kRollback,        // §3: reissue topmost functional checkpoints
  kSplice,          // §4: rollback + orphan-result salvage via grandparents
  kPeriodicGlobal,  // baseline: coordinated global snapshots (Tamir–Sequin)
};

[[nodiscard]] std::string_view to_string(SchedulerKind kind) noexcept;
[[nodiscard]] std::string_view to_string(RecoveryKind kind) noexcept;

/// Parse a compact fault-scenario DSL into a FaultPlan, for scenario configs
/// and chaos-tool command lines. Clauses are `;`-separated:
///
///   kill:P@T                        timed crash of processor P at tick T
///   trigger:P@name[+delay]         crash P when the runtime fires `name`
///   rect:R0,C0,RxC@T               mesh/torus rectangle (top-left R0,C0)
///   arc:S+L@T                      ring arc of L nodes starting at S
///   cube:MASK/VALUE@T              hypercube subcube (fixed address bits)
///   hood:P,rK@T                    K-hop neighbourhood of P
///   cascade:P@T[,p=0.9][,decay=0.5][,hops=2][,stagger=200]
///   poisson:mean=M[,start=T][,stop=T][,max=N][,over=p1|p2|...]
///   rejoin:DELAY[,warm|cold]       crash-recovery: revive DELAY after kill;
///                                  warm = survivor state transfer, plus
///                                  durable-log replay when the host
///                                  SystemConfig's StoreConfig persists
///                                  (model != none); cold (default) = blank
///   partition:REGION@T[,heal=H|healmean=M]
///                                  cut REGION (rect(R0,C0,RxC), arc(S+L),
///                                  cube(MASK/VALUE), hood(P,rK)) off from
///                                  the rest at T; heal after H ticks, or an
///                                  exponential delay of mean M drawn from
///                                  the plan seed; neither = never heals
///   link:A-B@T[,drop=p][,dup=p][,reorder=p][,delay=D][,jitter=J][,until=T]
///                                  per-link quality between A and B from T
///                                  ('A>B' = directed, '*' = any endpoint)
///   gray:P@T[,drop=p][,slow=F][,until=T]
///                                  gray failure: P stays alive and its
///                                  control traffic (heartbeats, notices)
///                                  flows, but payload traffic drops with
///                                  probability p and everything slows F×
///   seed:S                         RNG stream for cascade/poisson/link draws
///
/// Example: "rect:0,0,2x2@5000;cascade:7@9000,p=0.8,hops=2;rejoin:4000,warm".
/// Regions resolve against the concrete Topology when the injector arms.
/// Throws std::invalid_argument on malformed input, naming the bad clause.
[[nodiscard]] net::FaultPlan parse_fault_plan(std::string_view spec);

struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kRandom;
  /// kLocalFirst: spawn locally while the local queue is below this.
  std::uint32_t local_threshold = 2;
  /// kGradient: proximity-field refresh period (ticks); models the
  /// propagation delay of load information.
  std::int64_t gradient_refresh = 500;
  /// kGradient: queue length at or below which a processor advertises
  /// itself as a task sink (an "idle" node creating suction).
  std::uint32_t gradient_idle_threshold = 0;
};

struct RecoveryConfig {
  RecoveryKind kind = RecoveryKind::kSplice;
  /// Length of the ancestor chain carried in packets: 2 = parent +
  /// grandparent (the paper's splice), 3 adds the great-grandparent
  /// extension of §5.2. Rollback needs only 1 but carries 2 harmlessly.
  std::uint32_t ancestor_depth = 2;
  /// Splice variant: false = reissue only topmost checkpoints (§4.2,
  /// paper-faithful); true = every live parent respawns every trapped child
  /// (aggressive salvage ablation).
  bool eager_respawn = false;
  /// kPeriodicGlobal: snapshot period in ticks.
  std::int64_t checkpoint_interval = 30000;
  /// kPeriodicGlobal: freeze duration = freeze_base + freeze_per_unit *
  /// total state units (the "virtually stop all computational operations"
  /// cost of §2).
  std::int64_t freeze_base = 100;
  double freeze_per_unit = 0.25;
  /// kPeriodicGlobal: delay between detection and restore completion.
  std::int64_t restore_delay = 500;
};

/// Durable checkpoint store + warm-rejoin state transfer (store/ subsystem).
struct StoreConfig {
  /// What survives a crash on the node's local medium (persistency.h).
  /// kNone keeps the paper's blank-rejoin semantics and disables logging.
  store::Persistency model = store::Persistency::kNone;
  /// kLossy: per-entry survival probability.
  double survive_p = 0.5;
  /// State transfer: task packets per kStateChunk (bounds message size so
  /// catch-up interleaves with normal traffic instead of stopping it).
  std::uint32_t chunk_records = 4;
  /// State transfer: ticks between consecutive chunks from one peer.
  std::int64_t chunk_interval = 50;
  /// Warm rejoin: how long a survivor defers its reissue obligations
  /// against a dead node before falling back to cold reissue (covers the
  /// repair delay plus the transfer; a node that rejoins sooner absorbs
  /// its old work via state transfer instead).
  std::int64_t warm_grace = 20000;
  /// Warm rejoin: how long a re-hosted task awaits a pre-linked orphan
  /// child's result after catch-up before respawning it. A stale replayed
  /// record (its release lost by torn media) awaits a result that already
  /// returned to the previous incarnation, so this bounds that false wait.
  std::int64_t prelink_grace = 8000;

  [[nodiscard]] bool durable() const noexcept {
    return model != store::Persistency::kNone;
  }
};

struct ReplicationConfig {
  /// §5.3: number of copies of each replicated task packet (1 = off).
  std::uint32_t factor = 1;
  /// Replicate tasks whose stamp depth is < max_depth ("the user may
  /// specify certain critical sections"). Depth 1 replicates the root only.
  std::uint32_t max_depth = 1;
  /// true: wait for a majority of identical results (paper's consensus);
  /// false: first result wins (fail-silent optimisation ablation).
  bool majority = true;
  /// Confine each replica's subtree to a disjoint processor partition
  /// (lane p % factor == replica), emulating Misunas's "carefully
  /// distributed" copies (§5.4). Without confinement a single crash can
  /// damage every replica's subtree at once.
  bool zoned = true;

  [[nodiscard]] bool enabled() const noexcept { return factor > 1; }
  [[nodiscard]] std::uint32_t quorum() const noexcept {
    return majority ? factor / 2 + 1 : 1;
  }
};

/// Duplicate-task reclamation: the cancel protocol and its legacy
/// sweep/oracle companion. Grouped because the three knobs describe one
/// subsystem — how duplicate live tasks left behind by recovery get
/// reclaimed, and how that reclamation is validated.
struct ReclaimConfig {
  /// First-class task-cancellation protocol. Recovery can leave *duplicate*
  /// live tasks — a reissue raced the original (undetected rejoin, pre-link
  /// grace expiry, warm re-host vs. survivor reissue) and both copies now
  /// compute the same (stamp, replica). The §4.1 rules make the extra
  /// results harmless ("the second copy is simply ignored"), but the
  /// duplicates burn processor time until run end. With cancellation on,
  /// every recovery action that supersedes a live instance also emits a
  /// kCancel message naming it; receivers abort the addressed task, release
  /// its retained checkpoints, and forward cancels down every outstanding
  /// call slot — the duplicate subtree converges by message propagation.
  /// Replicated depths are exempt: their copies are the redundancy.
  bool cancellation = true;

  /// Legacy orphan-GC sweep period (ticks); 0 disables. The sweep reads
  /// global simulator state — the omniscient ancestor of the cancel
  /// protocol — and reclaims every duplicate copy except the one the live
  /// parent's acknowledged slot points at. Kept as (a) the measured
  /// baseline for E17 and (b) the cadence of the validation oracle below.
  std::int64_t gc_interval = 0;

  /// Demote the sweep to a read-only validation oracle: at each
  /// gc_interval tick it *identifies* the duplicates the old sweep would
  /// have reclaimed but aborts nothing; a duplicate still present at the
  /// next tick (cancel latency is bounded by one network traversal, far
  /// below any sensible cadence) counts as a protocol leak in
  /// Counters::gc_oracle_orphans. The enforced invariant is the protocol's
  /// reach: no duplicate whose own parent *instance* is live may persist.
  /// True orphans (the exact parent task is gone) are excluded under a
  /// salvaging policy — they are §4.1 salvage material, unreachable by any
  /// message until their results flow.
  bool gc_oracle = false;
};

/// Which substrate moves envelopes (net/transport.h). kInProcess is the
/// zero-copy deterministic oracle; kShmRing round-trips every message
/// through the wire codec (same seeded results, real bytes); kTcp runs one
/// OS process per rank and is driven by tools/splice_noded, not by
/// Simulation::run.
struct TransportConfig {
  net::TransportKind backend = net::TransportKind::kInProcess;
  /// kShmRing: per-destination ring capacity in bytes (overflow spills to a
  /// heap queue, counted in WireStats::ring_spills).
  std::uint32_t shm_ring_bytes = 1u << 20;
};

/// Flight recorder + time-series metrics (obs/ subsystem). Off by default:
/// with `recorder` false every hook is a single predictable branch and the
/// throughput benches are unaffected.
struct ObsConfig {
  /// Journal protocol events into the ring-buffered flight recorder.
  bool recorder = false;
  /// Ring capacity in events; the ring overwrites oldest and counts drops.
  std::uint32_t journal_capacity = 1u << 16;
  /// Metrics sampling window in ticks (event-queue depth, in-flight
  /// envelopes, checkpoint residency, per-window goodput + latency
  /// quantiles). 0 disables the sampling tick.
  std::int64_t sample_interval = 1000;
};

/// Parallel (PDES) simulation driver. `shards == 0` (default) keeps the
/// classic single-threaded path bit-for-bit untouched; `shards >= 1` routes
/// the run through runtime::PdesEngine — processors partitioned across
/// shard-owned event queues synchronized on a conservative time-window
/// barrier with lookahead = latency.base. `shards == 1` exercises the full
/// engine machinery on one worker and is the A/B determinism oracle for
/// `shards > 1`. Engine mode rejects features whose semantics need the
/// global event order (kTcp/kShmRing transports, kRestart/kPeriodicGlobal
/// recovery, triggered faults, the legacy reclaiming GC sweep).
struct ParallelConfig {
  std::uint32_t shards = 0;

  [[nodiscard]] bool engine() const noexcept { return shards >= 1; }
};

struct SystemConfig {
  std::uint32_t processors = 8;
  net::TopologyKind topology = net::TopologyKind::kMesh2D;
  net::LatencyModel latency;

  SchedulerConfig scheduler;
  RecoveryConfig recovery;
  ReplicationConfig replication;
  StoreConfig store;
  ReclaimConfig reclaim;
  TransportConfig transport;
  ObsConfig obs;
  ParallelConfig parallel;

  /// Liveness probing period (ticks); 0 disables. Needed so failures of
  /// quiescent processors are detected (§1's "identified as faulty by other
  /// processors").
  std::int64_t heartbeat_interval = 2000;

  /// §4.3.1 super-root: checkpoints the root program so the system survives
  /// failure of the root's host.
  bool super_root = true;

  std::uint64_t seed = 1;

  /// Hard stop for the simulation; 0 derives a generous bound from the
  /// program's reference work.
  std::int64_t deadline_ticks = 0;

  /// Cost scale: simulated ticks per abstract primitive-op unit.
  std::int64_t op_cost = 1;
  /// DEMAND_IT overhead: packet formation + checkpoint + queueing (§4.2).
  std::int64_t spawn_cost = 5;

  /// Record a human-readable event trace (fig-walkthrough benches).
  bool collect_trace = false;

  [[nodiscard]] std::string describe() const;
};

}  // namespace splice::core
