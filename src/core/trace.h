// Optional human-readable event trace.
//
// The figure-walkthrough benches (Fig. 1/2/3 scenarios) replay the paper's
// narrative from this trace; tests assert on event sequences.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "sim/time.h"

namespace splice::core {

struct TraceEvent {
  std::int64_t ticks = 0;
  net::ProcId proc = net::kNoProc;
  std::string kind;    // e.g. "spawn", "checkpoint", "twin", "relay"
  std::string detail;
};

class Trace {
 public:
  explicit Trace(bool enabled = false) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }

  void add(sim::SimTime t, net::ProcId proc, std::string kind,
           std::string detail);

  /// Lazy overload for hot paths: the detail string (typically several
  /// concatenations plus a stamp render) is only built when the trace is
  /// actually recording. Benches run with tracing off; they must not pay
  /// for prose they discard.
  template <typename DetailFn>
    requires std::is_invocable_r_v<std::string, DetailFn>
  void add(sim::SimTime t, net::ProcId proc, std::string_view kind,
           DetailFn&& detail_fn) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{t.ticks(), proc, std::string(kind),
                                 std::forward<DetailFn>(detail_fn)()});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  /// Events of a given kind, in order.
  [[nodiscard]] std::vector<TraceEvent> of_kind(const std::string& kind) const;

  /// True if an event matching (kind, detail-substring) exists.
  [[nodiscard]] bool contains(const std::string& kind,
                              const std::string& detail_substr) const;

  [[nodiscard]] std::string render() const;

 private:
  bool enabled_;
  std::vector<TraceEvent> events_;
};

}  // namespace splice::core
