#include "core/simulation.h"

#include <stdexcept>

#include "util/logging.h"

namespace splice::core {

Simulation::Simulation(SystemConfig config, lang::Program program)
    : config_(std::move(config)), program_(std::move(program)) {
  program_.validate();
}

Simulation::~Simulation() = default;

RunResult Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run may be called once");
  ran_ = true;

  sim_ = std::make_unique<sim::Simulator>();
  if (config_.parallel.engine()) {
    // Sharded (PDES) driver: the Network shapes envelopes exactly as on the
    // classic path but hands them to the engine's router instead of a
    // transport. Triggered faults are rejected here because their firing
    // order depends on the classic global event order.
    if (!fault_plan_.triggered.empty()) {
      throw std::invalid_argument(
          "parallel engine: triggered faults need the classic event order");
    }
    network_ = std::make_unique<net::Network>(
        *sim_, net::Topology(config_.topology, config_.processors),
        config_.latency, net::Network::RouterMode{config_.parallel.shards});
  } else {
    std::unique_ptr<net::Transport> transport;  // null = in-process default
    switch (config_.transport.backend) {
      case net::TransportKind::kInProcess:
        break;
      case net::TransportKind::kShmRing:
        transport = net::make_shm_ring_transport(
            *sim_, config_.processors, config_.transport.shm_ring_bytes);
        break;
      case net::TransportKind::kTcp:
        // TCP spans OS processes; a single-process Simulation cannot host it.
        throw std::invalid_argument(
            "Simulation::run cannot drive the tcp transport; use the "
            "splice_noded multi-process driver");
    }
    network_ = std::make_unique<net::Network>(
        *sim_, net::Topology(config_.topology, config_.processors),
        config_.latency, std::move(transport));
  }
  runtime_ = std::make_unique<runtime::Runtime>(*sim_, *network_, config_,
                                                program_);
  if (config_.parallel.engine()) {
    engine_ = std::make_unique<runtime::PdesEngine>(*runtime_, *network_,
                                                    config_);
    network_->set_router(*engine_);
    runtime_->set_engine(engine_.get());
  }
  runtime_->set_warm_rejoin(fault_plan_.rejoin.enabled &&
                            fault_plan_.rejoin.mode == net::RejoinMode::kWarm);
  injector_ = std::make_unique<net::FaultInjector>(
      *sim_, *network_, fault_plan_,
      [this](net::ProcId dead) { runtime_->on_kill(dead); },
      [this](net::ProcId back) { runtime_->on_revive(back); });
  injector_->set_on_heal([this](const std::vector<net::ProcId>& side) {
    runtime_->on_partition_heal(side);
  });
  if (!fault_plan_.triggered.empty()) {
    runtime_->set_trigger_sink(
        [this](const std::string& name) { injector_->fire_trigger(name); });
  }

  // Reference answer: the determinacy oracle (§2.1). Memoized per program —
  // replicate sweeps and clean-makespan twin runs share one interpreter walk.
  const lang::ReferenceCache& ref = lang::cached_reference(program_);
  const lang::EvalStats& ref_stats = ref.stats;
  const lang::Value& expected = ref.answer;

  std::int64_t deadline = config_.deadline_ticks;
  if (deadline <= 0) {
    // Generous auto-bound: sequential work, fully serialised on one node,
    // times a recovery headroom factor.
    const std::int64_t serial =
        static_cast<std::int64_t>(ref_stats.total_work) * config_.op_cost +
        static_cast<std::int64_t>(ref_stats.calls) *
            (config_.spawn_cost + 4 * config_.latency.base + 40);
    deadline = 1000000 + serial * 50;
  }

  injector_->arm();
  if (runtime_->recorder().enabled()) {
    // Journal link-level chaos milestones at the moment they bite. The
    // injector resolved partition windows (including seeded heal draws) at
    // arm() time, so these schedules are deterministic per (plan, seed) and
    // identical across transport backends.
    obs::Recorder& rec = runtime_->recorder();
    for (const auto& cut : injector_->armed_partitions()) {
      const std::vector<net::ProcId> side = cut.side;
      sim_->at(cut.start, [this, &rec, side] {
        rec.record(sim_->now(), obs::EventKind::kPartition,
                   {.proc = side.empty() ? net::kNoProc : side.front(),
                    .arg = static_cast<std::uint64_t>(side.size())},
                   [&] {
                     std::string detail =
                         "side of " + std::to_string(side.size()) + ":";
                     for (net::ProcId p : side) {
                       detail += ' ';
                       detail += std::to_string(p);
                     }
                     return detail;
                   });
      });
      if (cut.heal != sim::SimTime::max()) {
        sim_->at(cut.heal, [this, &rec, side] {
          rec.record(sim_->now(), obs::EventKind::kHeal,
                     {.proc = side.empty() ? net::kNoProc : side.front(),
                      .arg = static_cast<std::uint64_t>(side.size())},
                     [&] {
                       return "partition of " + std::to_string(side.size()) +
                              " healed";
                     });
        });
      }
    }
    for (const auto& gray : injector_->plan().grays) {
      sim_->at(gray.start, [this, &rec, gray] {
        rec.record(sim_->now(), obs::EventKind::kGray, {.proc = gray.node},
                   [&] {
                     return "payload drop " +
                            std::to_string(gray.payload_drop_p) + ", slow " +
                            std::to_string(gray.slow_factor) + "x";
                   });
      });
    }
  }
  runtime_->start();
  sim::SimTime end_time;
  if (engine_ != nullptr) {
    engine_->run(sim::SimTime(deadline));
    engine_->merge_journals();
    end_time = engine_->horizon();
  } else {
    sim_->run_until(sim::SimTime(deadline));
    end_time = sim_->now();
  }

  RunResult result =
      runtime_->collect(end_time, injector_->kills_executed());
  // The injector records the first kill that actually executed — with
  // regional/cascade/recurring plans the earliest *scheduled* entry may
  // target an already-dead node and never fire.
  result.first_failure_ticks = injector_->first_kill_ticks();
  result.nodes_revived = injector_->revives_executed();
  result.answer_checked = true;
  result.answer_correct = result.completed && result.answer == expected;
  if (result.completed && !result.answer_correct) {
    SPLICE_ERROR() << "determinacy violation: got "
                   << result.answer.to_string() << " expected "
                   << expected.to_string() << " [" << config_.describe()
                   << "]";
  }
  return result;
}

std::int64_t Simulation::fault_free_makespan(const SystemConfig& config,
                                             const lang::Program& program) {
  SystemConfig clean = config;
  clean.collect_trace = false;
  Simulation twin(clean, program);
  const RunResult result = twin.run();
  return result.makespan_ticks;
}

const Trace& Simulation::trace() const {
  if (!runtime_) throw std::logic_error("trace: run() first");
  return const_cast<runtime::Runtime&>(*runtime_).trace();
}

const obs::Recorder& Simulation::recorder() const {
  if (!runtime_) throw std::logic_error("recorder: run() first");
  return runtime_->recorder();
}

RunResult run_once(const SystemConfig& config, const lang::Program& program,
                   const net::FaultPlan& plan) {
  Simulation simulation(config, program);
  simulation.set_fault_plan(plan);
  return simulation.run();
}

}  // namespace splice::core
