#include "core/config.h"

#include <sstream>

namespace splice::core {

std::string_view to_string(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kLocalFirst:
      return "local-first";
    case SchedulerKind::kPinned:
      return "pinned";
    case SchedulerKind::kGradient:
      return "gradient";
    case SchedulerKind::kNeighbor:
      return "neighbor";
  }
  return "?";
}

std::string_view to_string(RecoveryKind kind) noexcept {
  switch (kind) {
    case RecoveryKind::kNone:
      return "none";
    case RecoveryKind::kRestart:
      return "restart";
    case RecoveryKind::kRollback:
      return "rollback";
    case RecoveryKind::kSplice:
      return "splice";
    case RecoveryKind::kPeriodicGlobal:
      return "periodic-global";
  }
  return "?";
}

std::string SystemConfig::describe() const {
  std::ostringstream out;
  out << "procs=" << processors << " topo=" << net::to_string(topology)
      << " sched=" << to_string(scheduler.kind)
      << " recovery=" << to_string(recovery.kind);
  if (recovery.kind == RecoveryKind::kSplice) {
    out << "(depth=" << recovery.ancestor_depth
        << (recovery.eager_respawn ? ",eager" : ",topmost") << ")";
  }
  if (replication.enabled()) {
    out << " repl=" << replication.factor << "x@d<" << replication.max_depth
        << (replication.majority ? "(majority)" : "(first)");
  }
  out << " seed=" << seed;
  return out.str();
}

}  // namespace splice::core
