#include "core/config.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace splice::core {

// ---------------------------------------------------------------------------
// Fault-scenario DSL
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_clause(std::string_view clause, std::string_view why) {
  throw std::invalid_argument("fault plan clause '" + std::string(clause) +
                              "': " + std::string(why));
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) {
      if (!trim(s).empty()) out.push_back(trim(s));
      return out;
    }
    if (!trim(s.substr(0, pos)).empty()) out.push_back(trim(s.substr(0, pos)));
    s.remove_prefix(pos + 1);
  }
}

template <typename Int>
Int parse_int(std::string_view token, std::string_view clause) {
  Int value{};
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    bad_clause(clause, "expected an integer, got '" + std::string(token) +
                           "'");
  }
  return value;
}

double parse_double(std::string_view token, std::string_view clause) {
  // std::from_chars for doubles is missing on some libc++; stod suffices.
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(token), &used);
    if (used != token.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    bad_clause(clause, "expected a number, got '" + std::string(token) + "'");
  }
}

/// Split "body@T" and return T as SimTime.
std::pair<std::string_view, sim::SimTime> split_at_time(
    std::string_view args, std::string_view clause) {
  const std::size_t at = args.rfind('@');
  if (at == std::string_view::npos) bad_clause(clause, "missing '@time'");
  return {trim(args.substr(0, at)),
          sim::SimTime(parse_int<std::int64_t>(trim(args.substr(at + 1)),
                                               clause))};
}

/// Parse a parenthesised region sub-body: rect(R0,C0,RxC), arc(S+L),
/// cube(MASK/VALUE), hood(P,rK) — the same shapes the top-level regional
/// kill verbs take, usable where a clause needs a region as an operand
/// (partition sides).
net::RegionSpec parse_region(std::string_view body, std::string_view clause) {
  const std::size_t open = body.find('(');
  if (open == std::string_view::npos || body.empty() || body.back() != ')') {
    bad_clause(clause, "expected 'rect(...)', 'arc(...)', 'cube(...)' or "
                       "'hood(...)'");
  }
  const std::string_view kind = trim(body.substr(0, open));
  const std::string_view inner =
      trim(body.substr(open + 1, body.size() - open - 2));
  if (kind == "rect") {
    const auto parts = split(inner, ',');
    if (parts.size() != 3) bad_clause(clause, "expected 'rect(R0,C0,RxC)'");
    const std::size_t x = parts[2].find('x');
    if (x == std::string_view::npos) bad_clause(clause, "missing 'RxC'");
    return net::RegionSpec::grid_rect(
        parse_int<std::uint32_t>(parts[0], clause),
        parse_int<std::uint32_t>(parts[1], clause),
        parse_int<std::uint32_t>(trim(parts[2].substr(0, x)), clause),
        parse_int<std::uint32_t>(trim(parts[2].substr(x + 1)), clause));
  }
  if (kind == "arc") {
    const std::size_t plus = inner.find('+');
    if (plus == std::string_view::npos) bad_clause(clause, "missing 'S+L'");
    return net::RegionSpec::ring_arc(
        parse_int<net::ProcId>(trim(inner.substr(0, plus)), clause),
        parse_int<std::uint32_t>(trim(inner.substr(plus + 1)), clause));
  }
  if (kind == "cube") {
    const std::size_t slash = inner.find('/');
    if (slash == std::string_view::npos) {
      bad_clause(clause, "missing 'MASK/VALUE'");
    }
    return net::RegionSpec::subcube(
        parse_int<net::ProcId>(trim(inner.substr(0, slash)), clause),
        parse_int<net::ProcId>(trim(inner.substr(slash + 1)), clause));
  }
  if (kind == "hood") {
    const auto parts = split(inner, ',');
    if (parts.size() != 2 || parts[1].size() < 2 || parts[1][0] != 'r') {
      bad_clause(clause, "expected 'hood(P,rK)'");
    }
    return net::RegionSpec::neighborhood(
        parse_int<net::ProcId>(parts[0], clause),
        parse_int<std::uint32_t>(trim(parts[1].substr(1)), clause));
  }
  bad_clause(clause, "unknown region shape '" + std::string(kind) + "'");
}

}  // namespace

net::FaultPlan parse_fault_plan(std::string_view spec) {
  net::FaultPlan plan;
  for (std::string_view clause : split(spec, ';')) {
    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos) {
      bad_clause(clause, "expected 'verb:args'");
    }
    const std::string_view verb = trim(clause.substr(0, colon));
    const std::string_view args = trim(clause.substr(colon + 1));

    if (verb == "kill") {
      const auto [who, when] = split_at_time(args, clause);
      plan.timed.push_back({parse_int<net::ProcId>(who, clause), when});
    } else if (verb == "trigger") {
      // trigger:P@name[+delay]
      const std::size_t at = args.find('@');
      if (at == std::string_view::npos) bad_clause(clause, "missing '@name'");
      const net::ProcId target =
          parse_int<net::ProcId>(trim(args.substr(0, at)), clause);
      std::string_view name = trim(args.substr(at + 1));
      sim::SimTime delay;
      if (const std::size_t plus = name.rfind('+');
          plus != std::string_view::npos) {
        delay = sim::SimTime(
            parse_int<std::int64_t>(trim(name.substr(plus + 1)), clause));
        name = trim(name.substr(0, plus));
      }
      if (name.empty()) bad_clause(clause, "empty trigger name");
      plan.triggered.push_back({target, std::string(name), delay});
    } else if (verb == "rect") {
      // rect:R0,C0,RxC@T
      const auto [body, when] = split_at_time(args, clause);
      const auto parts = split(body, ',');
      if (parts.size() != 3) bad_clause(clause, "expected 'R0,C0,RxC@T'");
      const std::size_t x = parts[2].find('x');
      if (x == std::string_view::npos) bad_clause(clause, "missing 'RxC'");
      plan.regional.push_back(
          {net::RegionSpec::grid_rect(
               parse_int<std::uint32_t>(parts[0], clause),
               parse_int<std::uint32_t>(parts[1], clause),
               parse_int<std::uint32_t>(trim(parts[2].substr(0, x)), clause),
               parse_int<std::uint32_t>(trim(parts[2].substr(x + 1)),
                                        clause)),
           when});
    } else if (verb == "arc") {
      // arc:S+L@T
      const auto [body, when] = split_at_time(args, clause);
      const std::size_t plus = body.find('+');
      if (plus == std::string_view::npos) bad_clause(clause, "missing 'S+L'");
      plan.regional.push_back(
          {net::RegionSpec::ring_arc(
               parse_int<net::ProcId>(trim(body.substr(0, plus)), clause),
               parse_int<std::uint32_t>(trim(body.substr(plus + 1)), clause)),
           when});
    } else if (verb == "cube") {
      // cube:MASK/VALUE@T
      const auto [body, when] = split_at_time(args, clause);
      const std::size_t slash = body.find('/');
      if (slash == std::string_view::npos) {
        bad_clause(clause, "missing 'MASK/VALUE'");
      }
      plan.regional.push_back(
          {net::RegionSpec::subcube(
               parse_int<net::ProcId>(trim(body.substr(0, slash)), clause),
               parse_int<net::ProcId>(trim(body.substr(slash + 1)), clause)),
           when});
    } else if (verb == "hood") {
      // hood:P,rK@T
      const auto [body, when] = split_at_time(args, clause);
      const auto parts = split(body, ',');
      if (parts.size() != 2 || parts[1].size() < 2 || parts[1][0] != 'r') {
        bad_clause(clause, "expected 'P,rK@T'");
      }
      plan.regional.push_back(
          {net::RegionSpec::neighborhood(
               parse_int<net::ProcId>(parts[0], clause),
               parse_int<std::uint32_t>(trim(parts[1].substr(1)), clause)),
           when});
    } else if (verb == "cascade") {
      // cascade:P@T[,p=..][,decay=..][,hops=..][,stagger=..]
      const auto parts = split(args, ',');
      if (parts.empty()) bad_clause(clause, "expected 'P@T,...'");
      net::CascadeFault wave;
      const auto [who, when] = split_at_time(parts[0], clause);
      wave.seed = parse_int<net::ProcId>(who, clause);
      wave.when = when;
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        if (eq == std::string_view::npos) bad_clause(clause, "expected k=v");
        const std::string_view key = trim(parts[i].substr(0, eq));
        const std::string_view value = trim(parts[i].substr(eq + 1));
        if (key == "p") {
          wave.probability = parse_double(value, clause);
        } else if (key == "decay") {
          wave.decay = parse_double(value, clause);
        } else if (key == "hops") {
          wave.max_hops = parse_int<std::uint32_t>(value, clause);
        } else if (key == "stagger") {
          wave.stagger =
              sim::SimTime(parse_int<std::int64_t>(value, clause));
        } else {
          bad_clause(clause, "unknown cascade key '" + std::string(key) +
                                 "'");
        }
      }
      plan.cascades.push_back(wave);
    } else if (verb == "poisson") {
      // poisson:mean=M[,start=T][,stop=T][,max=N][,over=p1|p2|...]
      net::RecurringFault arrivals;
      bool have_mean = false;
      for (std::string_view part : split(args, ',')) {
        const std::size_t eq = part.find('=');
        if (eq == std::string_view::npos) bad_clause(clause, "expected k=v");
        const std::string_view key = trim(part.substr(0, eq));
        const std::string_view value = trim(part.substr(eq + 1));
        if (key == "mean") {
          arrivals.mean_interval = parse_double(value, clause);
          have_mean = true;
        } else if (key == "start") {
          arrivals.start =
              sim::SimTime(parse_int<std::int64_t>(value, clause));
        } else if (key == "stop") {
          arrivals.stop =
              sim::SimTime(parse_int<std::int64_t>(value, clause));
        } else if (key == "max") {
          arrivals.max_faults = parse_int<std::uint32_t>(value, clause);
        } else if (key == "over") {
          for (std::string_view p : split(value, '|')) {
            arrivals.candidates.push_back(parse_int<net::ProcId>(p, clause));
          }
        } else {
          bad_clause(clause, "unknown poisson key '" + std::string(key) +
                                 "'");
        }
      }
      if (!have_mean || arrivals.mean_interval <= 0) {
        bad_clause(clause, "poisson needs mean=<positive ticks>");
      }
      plan.recurring.push_back(std::move(arrivals));
    } else if (verb == "rejoin") {
      // rejoin:DELAY[,warm|cold]
      const auto parts = split(args, ',');
      if (parts.empty()) bad_clause(clause, "expected 'DELAY[,warm|cold]'");
      net::RejoinMode mode = net::RejoinMode::kCold;
      if (parts.size() == 2) {
        if (parts[1] == "warm") {
          mode = net::RejoinMode::kWarm;
        } else if (parts[1] == "cold") {
          mode = net::RejoinMode::kCold;
        } else {
          bad_clause(clause, "unknown rejoin mode '" + std::string(parts[1]) +
                                 "' (want warm|cold)");
        }
      } else if (parts.size() > 2) {
        bad_clause(clause, "expected 'DELAY[,warm|cold]'");
      }
      plan.with_rejoin(
          sim::SimTime(parse_int<std::int64_t>(parts[0], clause)), mode);
    } else if (verb == "partition") {
      // partition:REGION@T[,heal=H|healmean=M] — cut REGION off from the
      // rest of the machine at T; heal after H ticks (deterministic) or an
      // exponential delay of mean M drawn from the plan seed.
      const std::size_t close = args.find(')');
      if (close == std::string_view::npos) {
        bad_clause(clause, "expected 'region(...)@T[,heal=H|healmean=M]'");
      }
      net::PartitionSpec cut;
      cut.side = parse_region(trim(args.substr(0, close + 1)), clause);
      std::string_view rest = trim(args.substr(close + 1));
      if (rest.empty() || rest.front() != '@') {
        bad_clause(clause, "missing '@time'");
      }
      rest.remove_prefix(1);
      const auto parts = split(rest, ',');
      if (parts.empty()) bad_clause(clause, "missing '@time'");
      cut.at = sim::SimTime(parse_int<std::int64_t>(parts[0], clause));
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        if (eq == std::string_view::npos) bad_clause(clause, "expected k=v");
        const std::string_view key = trim(parts[i].substr(0, eq));
        const std::string_view value = trim(parts[i].substr(eq + 1));
        if (key == "heal") {
          cut.heal_after =
              sim::SimTime(parse_int<std::int64_t>(value, clause));
        } else if (key == "healmean") {
          cut.heal_mean = parse_double(value, clause);
        } else {
          bad_clause(clause,
                     "unknown partition key '" + std::string(key) + "'");
        }
      }
      plan.partitions.push_back(std::move(cut));
    } else if (verb == "link") {
      // link:A-B@T[,drop=p][,dup=p][,reorder=p][,delay=D][,jitter=J]
      //          [,until=T] — per-link quality; 'A>B' directed, '*' any.
      const auto parts = split(args, ',');
      if (parts.empty()) bad_clause(clause, "expected 'A-B@T,...'");
      const auto [ends, start] = split_at_time(parts[0], clause);
      net::LinkQuality q;
      q.start = start;
      std::size_t sep = ends.find('>');
      if (sep != std::string_view::npos) {
        q.symmetric = false;
      } else {
        sep = ends.find('-');
      }
      if (sep == std::string_view::npos) {
        bad_clause(clause, "expected 'A-B' or 'A>B' endpoints");
      }
      const auto parse_end = [&clause](std::string_view token) {
        return token == "*" ? net::kNoProc
                            : parse_int<net::ProcId>(token, clause);
      };
      q.src = parse_end(trim(ends.substr(0, sep)));
      q.dst = parse_end(trim(ends.substr(sep + 1)));
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        if (eq == std::string_view::npos) bad_clause(clause, "expected k=v");
        const std::string_view key = trim(parts[i].substr(0, eq));
        const std::string_view value = trim(parts[i].substr(eq + 1));
        if (key == "drop") {
          q.drop_p = parse_double(value, clause);
        } else if (key == "dup") {
          q.dup_p = parse_double(value, clause);
        } else if (key == "reorder") {
          q.reorder_p = parse_double(value, clause);
        } else if (key == "delay") {
          q.delay = parse_int<std::int64_t>(value, clause);
        } else if (key == "jitter") {
          q.jitter = parse_int<std::int64_t>(value, clause);
        } else if (key == "until") {
          q.stop = sim::SimTime(parse_int<std::int64_t>(value, clause));
        } else {
          bad_clause(clause, "unknown link key '" + std::string(key) + "'");
        }
      }
      plan.links.push_back(q);
    } else if (verb == "gray") {
      // gray:P@T[,drop=p][,slow=F][,until=T] — node P alive but sick:
      // payload traffic starves while heartbeats trickle through.
      const auto parts = split(args, ',');
      if (parts.empty()) bad_clause(clause, "expected 'P@T,...'");
      const auto [who, start] = split_at_time(parts[0], clause);
      net::GraySpec g;
      g.node = parse_int<net::ProcId>(who, clause);
      g.start = start;
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        if (eq == std::string_view::npos) bad_clause(clause, "expected k=v");
        const std::string_view key = trim(parts[i].substr(0, eq));
        const std::string_view value = trim(parts[i].substr(eq + 1));
        if (key == "drop") {
          g.payload_drop_p = parse_double(value, clause);
        } else if (key == "slow") {
          g.slow_factor = parse_int<std::int64_t>(value, clause);
        } else if (key == "until") {
          g.stop = sim::SimTime(parse_int<std::int64_t>(value, clause));
        } else {
          bad_clause(clause, "unknown gray key '" + std::string(key) + "'");
        }
      }
      plan.grays.push_back(g);
    } else if (verb == "seed") {
      plan.with_seed(parse_int<std::uint64_t>(args, clause));
    } else {
      bad_clause(clause, "unknown verb '" + std::string(verb) + "'");
    }
  }
  return plan;
}

std::string_view to_string(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kLocalFirst:
      return "local-first";
    case SchedulerKind::kPinned:
      return "pinned";
    case SchedulerKind::kGradient:
      return "gradient";
    case SchedulerKind::kNeighbor:
      return "neighbor";
  }
  return "?";
}

std::string_view to_string(RecoveryKind kind) noexcept {
  switch (kind) {
    case RecoveryKind::kNone:
      return "none";
    case RecoveryKind::kRestart:
      return "restart";
    case RecoveryKind::kRollback:
      return "rollback";
    case RecoveryKind::kSplice:
      return "splice";
    case RecoveryKind::kPeriodicGlobal:
      return "periodic-global";
  }
  return "?";
}

std::string SystemConfig::describe() const {
  std::ostringstream out;
  out << "procs=" << processors << " topo=" << net::to_string(topology)
      << " sched=" << to_string(scheduler.kind)
      << " recovery=" << to_string(recovery.kind);
  if (recovery.kind == RecoveryKind::kSplice) {
    out << "(depth=" << recovery.ancestor_depth
        << (recovery.eager_respawn ? ",eager" : ",topmost") << ")";
  }
  if (replication.enabled()) {
    out << " repl=" << replication.factor << "x@d<" << replication.max_depth
        << (replication.majority ? "(majority)" : "(first)");
  }
  if (store.durable()) {
    out << " store=" << store::to_string(store.model);
    if (store.model == store::Persistency::kLossy) {
      out << "(p=" << store.survive_p << ")";
    }
  }
  if (!reclaim.cancellation) out << " cancel=off";
  if (reclaim.gc_interval > 0) {
    out << (reclaim.gc_oracle ? " gc-oracle=" : " gc=") << reclaim.gc_interval;
  }
  if (transport.backend != net::TransportKind::kInProcess) {
    out << " transport=" << net::to_string(transport.backend);
  }
  if (parallel.engine()) out << " shards=" << parallel.shards;
  out << " seed=" << seed;
  return out.str();
}

}  // namespace splice::core
