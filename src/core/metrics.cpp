#include "core/metrics.h"

#include <sstream>

namespace splice::core {

void Counters::merge(const Counters& other) noexcept {
  tasks_created += other.tasks_created;
  tasks_completed += other.tasks_completed;
  tasks_aborted += other.tasks_aborted;
  tasks_lost_to_crash += other.tasks_lost_to_crash;
  scans += other.scans;
  tasks_respawned += other.tasks_respawned;
  twins_created += other.twins_created;
  orphan_results_salvaged += other.orphan_results_salvaged;
  results_relayed += other.results_relayed;
  duplicate_results_ignored += other.duplicate_results_ignored;
  late_results_discarded += other.late_results_discarded;
  orphans_stranded += other.orphans_stranded;
  orphans_gced += other.orphans_gced;
  cancels_sent += other.cancels_sent;
  tasks_cancelled += other.tasks_cancelled;
  cancels_ignored += other.cancels_ignored;
  cancel_retries += other.cancel_retries;
  bounce_retransmits += other.bounce_retransmits;
  wire_dups_discarded += other.wire_dups_discarded;
  gc_oracle_orphans += other.gc_oracle_orphans;
  reclaim_latency_ticks += other.reclaim_latency_ticks;
  checkpoint_records += other.checkpoint_records;
  checkpoint_subsumed += other.checkpoint_subsumed;
  checkpoint_released += other.checkpoint_released;
  checkpoint_taken += other.checkpoint_taken;
  checkpoint_evicted += other.checkpoint_evicted;
  checkpoint_cleared += other.checkpoint_cleared;
  checkpoint_resident += other.checkpoint_resident;
  checkpoint_peak_entries += other.checkpoint_peak_entries;
  checkpoint_peak_units += other.checkpoint_peak_units;
  snapshots_taken += other.snapshots_taken;
  snapshot_units += other.snapshot_units;
  restores += other.restores;
  freeze_ticks += other.freeze_ticks;
  error_broadcasts += other.error_broadcasts;
  rejoins += other.rejoins;
  store_entries_logged += other.store_entries_logged;
  store_entries_lost += other.store_entries_lost;
  store_records_replayed += other.store_records_replayed;
  state_chunks_sent += other.state_chunks_sent;
  state_packets_transferred += other.state_packets_transferred;
  state_units_transferred += other.state_units_transferred;
  stale_chunks_dropped += other.stale_chunks_dropped;
  reissues_avoided += other.reissues_avoided;
  reissues_deferred += other.reissues_deferred;
  catch_up_ticks += other.catch_up_ticks;
  busy_ticks += other.busy_ticks;
}

std::string RunResult::summary() const {
  std::ostringstream out;
  out << (completed ? "completed" : "INCOMPLETE") << " makespan="
      << makespan_ticks << " answer=" << answer.to_string();
  if (answer_checked) out << (answer_correct ? " (correct)" : " (WRONG)");
  out << " tasks=" << counters.tasks_created << " respawned="
      << counters.tasks_respawned << " salvaged="
      << counters.orphan_results_salvaged << " msgs=" << net.total_sent();
  // Later-protocol activity, shown only when the run exercised it so the
  // fault-free one-liner stays short.
  if (counters.cancels_sent > 0 || counters.tasks_cancelled > 0) {
    out << " cancels=" << counters.cancels_sent << "/"
        << counters.tasks_cancelled;
    if (counters.cancel_retries > 0) out << " (+retries="
                                         << counters.cancel_retries << ")";
  }
  if (counters.state_packets_transferred > 0 || counters.state_chunks_sent > 0) {
    out << " transferred=" << counters.state_packets_transferred << " in "
        << counters.state_chunks_sent << " chunks";
  }
  if (counters.reissues_avoided > 0) {
    out << " reissues_avoided=" << counters.reissues_avoided;
  }
  if (net.link_dropped > 0 || net.link_duplicated > 0 ||
      net.link_reordered > 0 || net.gray_dropped > 0) {
    out << " link_faults=" << net.link_dropped << "d/" << net.link_duplicated
        << "D/" << net.link_reordered << "r/" << net.gray_dropped << "g";
  }
  if (net.partition_cut > 0) out << " cut=" << net.partition_cut;
  return out.str();
}

}  // namespace splice::core
