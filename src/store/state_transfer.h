// Survivor-assisted state transfer for warm rejoin.
//
// Protocol (all online — chunks interleave with normal traffic):
//
//   rejoiner X                          surviving peer P
//   ----------                          ----------------
//   revive(): replay durable log,
//   broadcast kRejoinNotice,
//   kStateRequest{X, incarnation} --->  StateStreamer::start(X, inc)
//                                       snapshots table entry(X): the
//                                       checkpoints P holds *against* X,
//                                       i.e. the tasks X should re-host
//   <--- kStateChunk{inc, seq=0,
//        packets[<=chunk_records],
//        known_dead}                    first chunk carries P's liveness
//   <--- kStateChunk{inc, seq=1, ...}   view; later chunks pace out every
//   ...                                 chunk_interval ticks
//   <--- kStateChunk{inc, last=true}
//
// Re-crash safety: every chunk echoes the rejoiner incarnation from the
// request; a rejoiner that crashed and revived again drops stale chunks
// and re-requests, and a streamer whose target died stops pumping (the
// checkpoints stay in the peer's table, so nothing is lost). A new request
// from the same rejoiner supersedes the old stream (epoch guard).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/topology.h"
#include "runtime/task_packet.h"
#include "sim/time.h"

namespace splice::store {

/// kStateRequest payload: `who` revived warm and asks every live peer for
/// the state held against it.
struct StateRequestMsg {
  net::ProcId who = net::kNoProc;
  std::uint64_t incarnation = 0;
};

/// kStateChunk payload: a bounded slice of the checkpoints the sender holds
/// against the rejoiner, plus (first chunk) the sender's liveness view.
struct StateChunkMsg {
  std::uint64_t incarnation = 0;  // rejoiner incarnation echoed from request
  std::uint32_t seq = 0;
  bool last = false;
  std::vector<runtime::TaskPacket> packets;
  std::vector<net::ProcId> known_dead;  // sender's dead set (seq 0 only)

  [[nodiscard]] std::uint32_t size_units() const noexcept {
    std::uint32_t units = 1 + static_cast<std::uint32_t>(known_dead.size());
    for (const runtime::TaskPacket& packet : packets) {
      units += packet.size_units();
    }
    return units;
  }
};

/// Peer-side chunk pump. Owned by each processor; callbacks keep the store
/// layer below runtime/ in the include graph.
class StateStreamer {
 public:
  struct Env {
    /// Send one chunk to the rejoiner (the owner wraps it in an Envelope).
    std::function<void(net::ProcId to, StateChunkMsg chunk)> send;
    /// Schedule a callback after a simulated delay.
    std::function<void(sim::SimTime delay, std::function<void()> fn)> after;
    /// Network-level liveness of the rejoiner (stop pumping into a corpse).
    std::function<bool(net::ProcId)> alive;
    /// Snapshot of the task packets checkpointed against the rejoiner.
    std::function<std::vector<runtime::TaskPacket>(net::ProcId)>
        packets_against;
    /// The owner's current dead set (liveness catch-up payload).
    std::function<std::vector<net::ProcId>()> known_dead;
    /// Is this packet's checkpoint still held against the rejoiner? The
    /// pending snapshot is taken when the stream starts, but releases (a
    /// result arrived, or a cancel reclaimed the lineage) can land between
    /// chunks; a released checkpoint must not resurrect as a re-hosted
    /// task. Optional: when unset, every snapshotted packet ships.
    std::function<bool(net::ProcId rejoiner, const runtime::LevelStamp&)>
        still_checkpointed;
    std::uint32_t chunk_records = 4;
    sim::SimTime chunk_interval{50};
  };

  explicit StateStreamer(Env env) : env_(std::move(env)) {}

  /// Begin (or restart, after a re-crash) streaming to `rejoiner`. Sends
  /// the first chunk immediately; the rest pace out via env.after.
  /// Incarnations are monotonic per rejoiner: a delayed request from an
  /// older life is ignored so it cannot supersede the live stream (its
  /// chunks would all be dropped as stale and catch-up would never finish).
  void start(net::ProcId rejoiner, std::uint64_t incarnation);

  /// Abandon every active stream (the owner itself crashed).
  void cancel_all();

  [[nodiscard]] std::uint64_t chunks_sent() const noexcept {
    return chunks_sent_;
  }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return packets_sent_;
  }
  [[nodiscard]] std::uint64_t units_sent() const noexcept {
    return units_sent_;
  }

 private:
  struct Stream {
    std::uint64_t incarnation = 0;
    std::uint64_t epoch = 0;  // bumped per start(); stale pumps abandon
    std::uint32_t seq = 0;
    std::vector<runtime::TaskPacket> pending;
  };

  void pump(net::ProcId rejoiner, std::uint64_t epoch);

  Env env_;
  std::unordered_map<net::ProcId, Stream> streams_;
  /// Highest incarnation ever requested per rejoiner (outlives the stream).
  std::unordered_map<net::ProcId, std::uint64_t> last_incarnation_;
  std::uint64_t epoch_counter_ = 0;
  std::uint64_t chunks_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t units_sent_ = 0;
};

}  // namespace splice::store
