#include "store/state_transfer.h"

#include <algorithm>
#include <utility>

namespace splice::store {

void StateStreamer::start(net::ProcId rejoiner, std::uint64_t incarnation) {
  auto [latest, inserted] = last_incarnation_.try_emplace(rejoiner, incarnation);
  if (!inserted) {
    if (incarnation < latest->second) return;  // delayed request, older life
    latest->second = incarnation;
  }
  Stream& stream = streams_[rejoiner];
  stream.incarnation = incarnation;
  stream.epoch = ++epoch_counter_;  // supersede any in-flight pump chain
  stream.seq = 0;
  stream.pending = env_.packets_against(rejoiner);
  pump(rejoiner, stream.epoch);
}

void StateStreamer::cancel_all() {
  ++epoch_counter_;  // invalidate every scheduled pump
  streams_.clear();
}

void StateStreamer::pump(net::ProcId rejoiner, std::uint64_t epoch) {
  auto it = streams_.find(rejoiner);
  if (it == streams_.end() || it->second.epoch != epoch) return;  // stale
  Stream& stream = it->second;
  if (!env_.alive(rejoiner)) {
    // The rejoiner re-crashed mid-transfer. Keep nothing scheduled; its
    // next revive sends a fresh request (new incarnation) and restarts
    // from the table, which still holds every record.
    streams_.erase(it);
    return;
  }

  if (env_.still_checkpointed) {
    // Drop packets whose record was released since the snapshot (the child
    // returned, or its lineage was cancelled): re-hosting them would
    // resurrect work the protocol already retired.
    std::erase_if(stream.pending, [&](const runtime::TaskPacket& packet) {
      return !env_.still_checkpointed(rejoiner, packet.stamp);
    });
  }

  StateChunkMsg chunk;
  chunk.incarnation = stream.incarnation;
  chunk.seq = stream.seq++;
  if (chunk.seq == 0) chunk.known_dead = env_.known_dead();
  const std::size_t take =
      std::min<std::size_t>(env_.chunk_records, stream.pending.size());
  chunk.packets.assign(stream.pending.begin(),
                       stream.pending.begin() +
                           static_cast<std::ptrdiff_t>(take));
  stream.pending.erase(stream.pending.begin(),
                       stream.pending.begin() +
                           static_cast<std::ptrdiff_t>(take));
  chunk.last = stream.pending.empty();
  const bool done = chunk.last;

  ++chunks_sent_;
  packets_sent_ += take;
  units_sent_ += chunk.size_units();
  env_.send(rejoiner, std::move(chunk));

  if (done) {
    streams_.erase(rejoiner);
    return;
  }
  env_.after(env_.chunk_interval,
             [this, rejoiner, epoch] { pump(rejoiner, epoch); });
}

}  // namespace splice::store
