#include "store/durable_store.h"

#include "util/rng.h"

namespace splice::store {

namespace {
// Stream tag for lossy-survival draws: independent of the cascade/Poisson
// streams in net/fault_injector.cpp and of scheduler tie-break streams.
constexpr std::uint64_t kLossyStream = 0x10551E5700000000ULL;
}  // namespace

DurableStore::DurableStore(net::ProcId self, Persistency model,
                           double survive_p, std::uint64_t seed)
    : self_(self), model_(model), survive_p_(survive_p), seed_(seed) {}

void DurableStore::append(LogEntry entry) {
  if (!enabled()) return;  // volatile store: logging would never be read
  entry.incarnation = incarnation_;
  log_.push_back(std::move(entry));
  ++entries_logged_;
}

void DurableStore::on_record(net::ProcId dest,
                             const checkpoint::CheckpointRecord& record) {
  LogEntry entry;
  entry.op = Op::kRecord;
  entry.dest = dest;
  entry.record = record;
  append(std::move(entry));
}

void DurableStore::on_release(net::ProcId dest,
                              const runtime::LevelStamp& stamp) {
  LogEntry entry;
  entry.op = Op::kRelease;
  entry.dest = dest;
  entry.stamp = stamp;
  append(std::move(entry));
}

void DurableStore::on_take(net::ProcId dead) {
  LogEntry entry;
  entry.op = Op::kTake;
  entry.dest = dead;
  append(std::move(entry));
}

void DurableStore::on_crash(std::uint64_t dying) {
  switch (model_) {
    case Persistency::kNone:
      entries_lost_ += log_.size();
      log_.clear();
      return;
    case Persistency::kLocal:
      return;  // the medium survives intact
    case Persistency::kLossy: {
      util::Xoshiro256 rng(util::hash_combine(
          util::hash_combine(seed_, kLossyStream + self_), dying));
      const std::size_t before = log_.size();
      std::erase_if(log_, [&](const LogEntry&) {
        return !rng.next_bool(survive_p_);
      });
      entries_lost_ += before - log_.size();
      return;
    }
  }
}

std::size_t DurableStore::replay_into(checkpoint::CheckpointTable& table) {
  ++replays_;
  for (const LogEntry& entry : log_) {
    switch (entry.op) {
      case Op::kRecord: {
        // A checkpoint against this node itself guards a child that died
        // in the same crash: there is nothing to await or reissue from it,
        // so it does not survive the replay.
        if (entry.dest == self_) break;
        checkpoint::CheckpointRecord record = entry.record;
        record.restored = true;
        table.record(entry.dest, std::move(record));
        break;
      }
      case Op::kRelease:
        // The entry key may have drifted (a lossy log can lose the record's
        // own append); fall back to a stamp-wide release, which is a no-op
        // when the record is already gone.
        if (!table.release(entry.dest, entry.stamp)) {
          table.release_anywhere(entry.stamp);
        }
        break;
      case Op::kTake:
        (void)table.take(entry.dest);
        break;
    }
  }
  const std::size_t live = table.total_records();
  records_replayed_ += live;
  return live;
}

void DurableStore::compact_from(const checkpoint::CheckpointTable& table) {
  log_.clear();
  if (!enabled()) return;
  for (net::ProcId dest = 0; dest < table.processors(); ++dest) {
    for (const checkpoint::CheckpointRecord& record : table.entry(dest)) {
      LogEntry entry;
      entry.op = Op::kRecord;
      entry.incarnation = incarnation_;
      entry.dest = dest;
      entry.record = record;
      log_.push_back(std::move(entry));
    }
  }
}

void DurableStore::clear() noexcept { log_.clear(); }

}  // namespace splice::store
