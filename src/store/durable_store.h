// Per-node durable checkpoint store (warm-rejoin substrate).
//
// An append-only, incarnation-stamped log of CheckpointTable mutations
// (record / release / take), mirroring the live table through the table's
// Listener hook. On a crash the configured persistency model decides what
// survives (persistency.h); on a warm rejoin the surviving prefix replays
// into a fresh CheckpointTable, restoring the node's reissue obligations
// toward its peers — the paper's §3.2 table, extended across the crash.
//
// Replay is order-preserving: a record followed by its release nets out, a
// take drops the whole entry, and a lossy-lost release merely leaves a
// stale (harmless, re-releasable) record. Replayed records are marked
// `restored` because their owner tasks died with the node.
#pragma once

#include <cstdint>
#include <vector>

#include "checkpoint/checkpoint_table.h"
#include "net/topology.h"
#include "runtime/level_stamp.h"
#include "store/persistency.h"

namespace splice::store {

class DurableStore final : public checkpoint::CheckpointTable::Listener {
 public:
  enum class Op : std::uint8_t { kRecord, kRelease, kTake };

  struct LogEntry {
    Op op = Op::kRecord;
    std::uint64_t incarnation = 0;
    net::ProcId dest = net::kNoProc;      // record/release: entry; take: dead
    checkpoint::CheckpointRecord record;  // kRecord payload
    runtime::LevelStamp stamp;            // kRelease payload
  };

  /// `seed` feeds the lossy-survival RNG stream; combined with `self` and
  /// the dying incarnation so every node and every life loses independently
  /// but deterministically.
  DurableStore(net::ProcId self, Persistency model, double survive_p,
               std::uint64_t seed);

  [[nodiscard]] Persistency model() const noexcept { return model_; }
  [[nodiscard]] bool enabled() const noexcept {
    return model_ != Persistency::kNone;
  }

  /// The incarnation stamped onto subsequent log appends (the node's
  /// current life; bumped by the processor on every crash).
  void set_incarnation(std::uint64_t incarnation) noexcept {
    incarnation_ = incarnation;
  }

  // ---- CheckpointTable::Listener ------------------------------------------
  void on_record(net::ProcId dest,
                 const checkpoint::CheckpointRecord& record) override;
  void on_release(net::ProcId dest,
                  const runtime::LevelStamp& stamp) override;
  void on_take(net::ProcId dead) override;

  // ---- crash / rejoin lifecycle -------------------------------------------
  /// Apply the persistency model to the log at crash time. `dying` is the
  /// incarnation that just ended (seeds the lossy draw).
  void on_crash(std::uint64_t dying);

  /// Replay the surviving log, in order, into `table` (which must have no
  /// listener attached — replay must not re-log itself). Every surviving
  /// record is inserted with `restored = true`, except records held
  /// against this node itself — their children died in the same crash, so
  /// they do not survive the replay. Returns the number of records live in
  /// the table afterwards.
  std::size_t replay_into(checkpoint::CheckpointTable& table);

  /// Compact the log to exactly the live contents of `table` (post-replay):
  /// the new log is one kRecord entry per live record, stamped with the
  /// current incarnation.
  void compact_from(const checkpoint::CheckpointTable& table);

  /// Drop everything (cold rejoin: the new life starts blank).
  void clear() noexcept;

  [[nodiscard]] const std::vector<LogEntry>& log() const noexcept {
    return log_;
  }

  // ---- accounting ----------------------------------------------------------
  [[nodiscard]] std::uint64_t entries_logged() const noexcept {
    return entries_logged_;
  }
  [[nodiscard]] std::uint64_t entries_lost() const noexcept {
    return entries_lost_;
  }
  [[nodiscard]] std::uint64_t records_replayed() const noexcept {
    return records_replayed_;
  }
  [[nodiscard]] std::uint64_t replays() const noexcept { return replays_; }

 private:
  void append(LogEntry entry);

  net::ProcId self_;
  Persistency model_;
  double survive_p_;
  std::uint64_t seed_;
  std::uint64_t incarnation_ = 0;
  std::vector<LogEntry> log_;

  std::uint64_t entries_logged_ = 0;
  std::uint64_t entries_lost_ = 0;
  std::uint64_t records_replayed_ = 0;
  std::uint64_t replays_ = 0;
};

}  // namespace splice::store
