// Persistency models for the per-node durable checkpoint store.
//
// The paper's crash model is purely volatile: a repaired board rejoins
// blank. Real machines sit on a spectrum — battery-backed RAM and local
// disks survive a processor crash intact, flash with torn writes survives
// partially. The store subsystem models that spectrum so warm-rejoin
// experiments can sweep it:
//
//   kNone   nothing survives a crash (the paper's blank rejoin; default)
//   kLocal  the whole mutation log survives (local durable medium)
//   kLossy  each log entry independently survives with probability p
//           (torn/partial media), drawn from a seeded RNG stream so a
//           given (seed, node, incarnation) loses the same entries on
//           every run.
//
// This header is dependency-free so core::SystemConfig can embed the enum
// without pulling the store machinery into every config consumer.
#pragma once

#include <cstdint>
#include <string_view>

namespace splice::store {

enum class Persistency : std::uint8_t {
  kNone,   // volatile: crash erases the log (blank rejoin)
  kLocal,  // durable: the log survives crashes intact
  kLossy,  // partial: each entry survives with probability survive_p
};

[[nodiscard]] constexpr std::string_view to_string(Persistency model) noexcept {
  switch (model) {
    case Persistency::kNone:
      return "none";
    case Persistency::kLocal:
      return "local";
    case Persistency::kLossy:
      return "lossy";
  }
  return "?";
}

}  // namespace splice::store
