// Link-level chaos: the armed form of a FaultPlan's partition / link-quality
// / gray-failure entries, consulted by Network::send for every message.
//
// Determinism contract: every perturbation verdict is a pure function of
// (plan seed, directed link, per-link sequence number). The sequence number
// counts the messages shaped on that directed link, so two runs of the same
// seeded configuration draw identical verdicts message for message — and
// because shaping happens in Network::send (before the transport sees the
// envelope), the in-process, shared-memory, and TCP backends all perturb
// identically. TCP gets its faults simulated send-side by construction.
//
// Verdict semantics:
//  * cut        — an active partition separates src and dst: the message is
//                 undeliverable and bounces (the §1 timeout surfaces it to
//                 the sender, which treats the peer as faulty);
//  * drop       — lost in transit on a lossy link. The §1 coding/timeout
//                 machinery still notices (the sender gets a bounce), but
//                 the destination is alive, so the protocol retransmits at
//                 the payload level without declaring anyone dead;
//  * gray_drop  — same loss, caused by a gray node starving payload
//                 traffic. Control-class messages (heartbeats, error /
//                 rejoin / delivery notices) are exempt, so a gray node is
//                 never detected dead — the defining property of a gray
//                 failure;
//  * duplicate  — the message is delivered twice (clone trails the
//                 original by its own jittered delay);
//  * extra      — added latency: fixed link delay + uniform jitter +
//                 reorder hold-back (a reordered message waits 1–3 nominal
//                 latencies, so later traffic overtakes it) + gray slowdown.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fault_plan.h"
#include "net/message.h"
#include "net/topology.h"
#include "sim/time.h"

namespace splice::net {

/// Control-class kinds keep flowing (slowed, never gray-dropped) through a
/// gray node: they are what makes it *look* alive while its work starves.
[[nodiscard]] constexpr bool is_control_kind(MsgKind kind) noexcept {
  // Exhaustive by SPL003: a 16th MsgKind must decide here whether a gray
  // node lets it through (control plane) or starves it (payload plane) —
  // a default: would make that call silently.
  switch (kind) {
    case MsgKind::kHeartbeat:
    case MsgKind::kErrorDetection:
    case MsgKind::kRejoinNotice:
    case MsgKind::kDeliveryFailure:
    case MsgKind::kControl:
      return true;
    case MsgKind::kTaskPacket:
    case MsgKind::kSpawnAck:
    case MsgKind::kForwardResult:
    case MsgKind::kFetchData:
    case MsgKind::kDataReply:
    case MsgKind::kLoadUpdate:
    case MsgKind::kCheckpointXfer:
    case MsgKind::kStateRequest:
    case MsgKind::kStateChunk:
    case MsgKind::kCancel:
      return false;
  }
  return false;
}

class LinkFaultModel {
 public:
  /// A partition armed against a concrete machine: membership mask plus the
  /// [start, end) window the cut is active.
  struct ArmedPartition {
    std::vector<bool> side;
    sim::SimTime start;
    sim::SimTime end;
  };

  struct Verdict {
    bool cut = false;
    bool drop = false;
    bool gray_drop = false;
    bool duplicate = false;
    bool reordered = false;
    sim::SimTime extra{0};      // added to the nominal delivery delay
    sim::SimTime dup_extra{0};  // the clone's additional offset
  };

  LinkFaultModel(std::uint64_t seed, ProcId processors);

  /// `side` as resolved against the topology (ascending, duplicate-free).
  void add_partition(const std::vector<ProcId>& side, sim::SimTime start,
                     sim::SimTime end);
  void add_link(const LinkQuality& quality);
  void add_gray(const GraySpec& spec);

  /// Decide the fate of one message on the directed link (from, to) at
  /// `now`, given its unperturbed delivery delay. Advances the link's
  /// sequence counter; all draws come from a generator seeded by
  /// (seed, link, seq) in a fixed order, so the verdict stream replays
  /// bit-identically per seed.
  Verdict shape(MsgKind kind, ProcId from, ProcId to, sim::SimTime now,
                sim::SimTime nominal);

  /// False while an active partition separates a and b.
  [[nodiscard]] bool reachable(ProcId a, ProcId b, sim::SimTime now) const;

  /// Any spec with dup_p > 0 (receivers then dedup co-resident wire twins).
  [[nodiscard]] bool may_duplicate() const noexcept { return may_duplicate_; }

  [[nodiscard]] const std::vector<ArmedPartition>& partitions() const noexcept {
    return partitions_;
  }

 private:
  std::uint64_t seed_;
  ProcId procs_;
  std::vector<ArmedPartition> partitions_;
  std::vector<LinkQuality> links_;
  std::vector<GraySpec> grays_;
  std::vector<std::uint64_t> seq_;  // per directed link (from * procs + to)
  bool may_duplicate_ = false;
};

}  // namespace splice::net
