// The interconnection network: protocol semantics over a pluggable substrate.
//
// Semantics match §1 of the paper:
//  * best-effort delivery: a message to a live processor arrives after a
//    hop- and size-dependent latency;
//  * a message to a dead (or killed-in-flight) processor is lost, and the
//    *sender* receives a kDeliveryFailure notification after a timeout —
//    "if the destination cannot be reached, the unreachable node is
//    considered faulty";
//  * a processor that dies transmits nothing thereafter, but messages it
//    sent before dying are still delivered (they left the node while it was
//    healthy).
//
// The mechanism that actually moves envelopes is a Transport
// (net/transport.h): the pooled in-process mailbox, shared-memory rings, or
// TCP sockets. The Network owns the latency model, liveness map, per-kind
// stats, and the bounce protocol; the transport owns bytes and timing of
// the hand-back. Every backend funnels into the same deliver() sink, so
// protocol behaviour is identical across substrates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/link_faults.h"
#include "net/message.h"
#include "net/topology.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace splice::net {

struct LatencyModel {
  /// Fixed wire/software overhead per message.
  std::int64_t base = 20;
  /// Added per hop of topological distance.
  std::int64_t per_hop = 10;
  /// Added per payload size unit.
  std::int64_t per_unit = 1;
  /// Delay for a processor sending to itself (loopback through the local
  /// queue, no network traversal).
  std::int64_t local = 2;
  /// How long the sender waits before concluding the destination is dead.
  std::int64_t failure_timeout = 400;

  [[nodiscard]] sim::SimTime latency(std::uint32_t hops,
                                     std::uint32_t size_units) const noexcept {
    if (hops == 0) return sim::SimTime(local);
    return sim::SimTime(base + per_hop * static_cast<std::int64_t>(hops) +
                        per_unit * static_cast<std::int64_t>(size_units));
  }
};

/// Per-kind message counters, kept by the network for the experiment tables.
struct NetworkStats {
  std::uint64_t sent[kMsgKindCount] = {};
  std::uint64_t delivered[kMsgKindCount] = {};
  std::uint64_t dropped_dead_dest = 0;
  std::uint64_t dropped_dead_sender = 0;
  std::uint64_t failure_notices = 0;
  std::uint64_t revives = 0;
  std::uint64_t total_units = 0;
  std::uint64_t total_hop_units = 0;  // size * hops, a bandwidth proxy

  // Link-fault layer (all zero without an armed LinkFaultModel).
  std::uint64_t partition_cut = 0;    // messages lost crossing an active cut
  std::uint64_t link_dropped = 0;     // lossy-link losses (dest alive)
  std::uint64_t gray_dropped = 0;     // payload starved by a gray node
  std::uint64_t link_duplicated = 0;  // messages delivered twice
  std::uint64_t link_reordered = 0;   // messages held back to be overtaken
  std::uint64_t link_delay_ticks = 0;  // sum of injected extra latency

  [[nodiscard]] std::uint64_t total_sent() const noexcept {
    std::uint64_t n = 0;
    for (auto v : sent) n += v;
    return n;
  }
  [[nodiscard]] std::uint64_t total_delivered() const noexcept {
    std::uint64_t n = 0;
    for (auto v : delivered) n += v;
    return n;
  }
};

class Network {
 public:
  /// Rvalue-typed so delivery moves the envelope straight into the protocol
  /// loop (no intermediate copy of the ~300-byte payload variant).
  using Receiver = std::function<void(Envelope&&)>;

  /// A null transport selects the in-process backend (the common case for
  /// simulation and tests).
  Network(sim::Simulator& simulator, Topology topology, LatencyModel latency,
          std::unique_ptr<Transport> transport = nullptr);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] ProcId size() const noexcept { return topology_.size(); }

  /// Install the message handler for processor p (the runtime's protocol
  /// loop). Must be set before any send touches p.
  void set_receiver(ProcId p, Receiver receiver);

  /// Send a message. If the destination is dead now or at delivery time the
  /// message is lost and the sender gets a kDeliveryFailure envelope (whose
  /// payload is the original envelope) after `failure_timeout`.
  void send(Envelope envelope);

  /// Mark p dead. In-flight messages *from* p still arrive; everything
  /// addressed to p from now on bounces.
  void kill(ProcId p);

  /// Mark a repaired p alive again (crash-recovery model). Messages sent to
  /// p while it was dead stay lost; new sends deliver normally. Bounce
  /// notices already in flight still arrive — detection is per-observer, so
  /// a sender may briefly believe a rejoined node is dead.
  void revive(ProcId p);

  [[nodiscard]] bool alive(ProcId p) const { return alive_.at(p); }
  [[nodiscard]] std::uint32_t alive_count() const noexcept;

  /// Install the armed link-fault layer (FaultInjector::arm). Every
  /// subsequent send is shaped by it; a null model restores clean links.
  void set_link_faults(std::unique_ptr<LinkFaultModel> model) noexcept {
    link_faults_ = std::move(model);
  }
  [[nodiscard]] const LinkFaultModel* link_faults() const noexcept {
    return link_faults_.get();
  }
  /// False while an active partition separates a and b (true on clean
  /// networks). Protocol layers use this the way they use alive(): as the
  /// modelled outcome of the §1 timeout probe, not as hidden knowledge.
  [[nodiscard]] bool reachable(ProcId a, ProcId b) const {
    return link_faults_ == nullptr ||
           link_faults_->reachable(a, b, sim_.now());
  }

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  /// Envelopes submitted to the transport and not yet handed to deliver()
  /// — the in-flight gauge the flight recorder's metrics sampler reads.
  /// (On the distributed TCP backend this counts only locally-submitted
  /// envelopes; remote legs are invisible to this rank.)
  [[nodiscard]] std::uint64_t in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] const LatencyModel& latency_model() const noexcept {
    return latency_;
  }

  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const Transport& transport() const noexcept {
    return *transport_;
  }
  /// True when ranks span multiple OS processes (TCP backend).
  [[nodiscard]] bool distributed() const noexcept {
    return transport_->distributed();
  }
  /// Serialization counters from the transport (all zero for in-process).
  [[nodiscard]] const WireStats& wire() const noexcept {
    return transport_->wire();
  }
  /// Drain externally-arrived frames (socket backends); see Transport::poll.
  std::size_t poll() { return transport_->poll(); }

 private:
  /// The single delivery sink every transport funnels into.
  void deliver(Envelope&& envelope);
  void bounce(Envelope envelope);
  /// Field-by-field copy for duplicate delivery (the payload variant is not
  /// copy-assignable as a whole because EnvelopeBox is move-only; shaped
  /// traffic never carries one).
  [[nodiscard]] static Envelope clone_envelope(const Envelope& envelope);

  sim::Simulator& sim_;
  Topology topology_;
  LatencyModel latency_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<LinkFaultModel> link_faults_;
  std::vector<Receiver> receivers_;
  std::vector<bool> alive_;
  NetworkStats stats_;
  std::uint64_t in_flight_ = 0;
};

}  // namespace splice::net
