// The interconnection network: protocol semantics over a pluggable substrate.
//
// Semantics match §1 of the paper:
//  * best-effort delivery: a message to a live processor arrives after a
//    hop- and size-dependent latency;
//  * a message to a dead (or killed-in-flight) processor is lost, and the
//    *sender* receives a kDeliveryFailure notification after a timeout —
//    "if the destination cannot be reached, the unreachable node is
//    considered faulty";
//  * a processor that dies transmits nothing thereafter, but messages it
//    sent before dying are still delivered (they left the node while it was
//    healthy).
//
// The mechanism that actually moves envelopes is a Transport
// (net/transport.h): the pooled in-process mailbox, shared-memory rings, or
// TCP sockets. The Network owns the latency model, liveness map, per-kind
// stats, and the bounce protocol; the transport owns bytes and timing of
// the hand-back. Every backend funnels into the same deliver() sink, so
// protocol behaviour is identical across substrates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/link_faults.h"
#include "net/message.h"
#include "net/topology.h"
#include "net/transport.h"
#include "sim/context.h"
#include "sim/simulator.h"

namespace splice::net {

/// Delivery sink for the sharded (PDES) engine. In router mode the Network
/// computes latency and link-fault shaping exactly as on the classic path,
/// then hands the envelope to the router with its absolute delivery time
/// instead of submitting it to a Transport; the engine files it into the
/// destination shard's op heap (same shard) or staging inbox (cross shard).
/// The engine later feeds executed deliveries back through
/// Network::deliver_routed so dead-dest/bounce/stats semantics stay in one
/// place.
class EnvelopeRouter {
 public:
  virtual ~EnvelopeRouter() = default;
  /// `when` is absolute simulated time. For cross-processor traffic the
  /// latency model guarantees when >= poster's now + base latency — the
  /// conservative-lookahead contract the window barrier relies on.
  virtual void route(Envelope&& envelope, sim::SimTime when) = 0;
};

struct LatencyModel {
  /// Fixed wire/software overhead per message.
  std::int64_t base = 20;
  /// Added per hop of topological distance.
  std::int64_t per_hop = 10;
  /// Added per payload size unit.
  std::int64_t per_unit = 1;
  /// Delay for a processor sending to itself (loopback through the local
  /// queue, no network traversal).
  std::int64_t local = 2;
  /// How long the sender waits before concluding the destination is dead.
  std::int64_t failure_timeout = 400;

  [[nodiscard]] sim::SimTime latency(std::uint32_t hops,
                                     std::uint32_t size_units) const noexcept {
    if (hops == 0) return sim::SimTime(local);
    return sim::SimTime(base + per_hop * static_cast<std::int64_t>(hops) +
                        per_unit * static_cast<std::int64_t>(size_units));
  }
};

/// Per-kind message counters, kept by the network for the experiment tables.
struct NetworkStats {
  std::uint64_t sent[kMsgKindCount] = {};
  std::uint64_t delivered[kMsgKindCount] = {};
  std::uint64_t dropped_dead_dest = 0;
  std::uint64_t dropped_dead_sender = 0;
  std::uint64_t failure_notices = 0;
  std::uint64_t revives = 0;
  std::uint64_t total_units = 0;
  std::uint64_t total_hop_units = 0;  // size * hops, a bandwidth proxy

  // Link-fault layer (all zero without an armed LinkFaultModel).
  std::uint64_t partition_cut = 0;    // messages lost crossing an active cut
  std::uint64_t link_dropped = 0;     // lossy-link losses (dest alive)
  std::uint64_t gray_dropped = 0;     // payload starved by a gray node
  std::uint64_t link_duplicated = 0;  // messages delivered twice
  std::uint64_t link_reordered = 0;   // messages held back to be overtaken
  std::uint64_t link_delay_ticks = 0;  // sum of injected extra latency

  [[nodiscard]] std::uint64_t total_sent() const noexcept {
    std::uint64_t n = 0;
    for (auto v : sent) n += v;
    return n;
  }
  [[nodiscard]] std::uint64_t total_delivered() const noexcept {
    std::uint64_t n = 0;
    for (auto v : delivered) n += v;
    return n;
  }

  /// Accumulate another lane's counters (router mode keeps one NetworkStats
  /// per shard thread; stats() folds them).
  void merge(const NetworkStats& other) noexcept {
    for (std::size_t k = 0; k < kMsgKindCount; ++k) {
      sent[k] += other.sent[k];
      delivered[k] += other.delivered[k];
    }
    dropped_dead_dest += other.dropped_dead_dest;
    dropped_dead_sender += other.dropped_dead_sender;
    failure_notices += other.failure_notices;
    revives += other.revives;
    total_units += other.total_units;
    total_hop_units += other.total_hop_units;
    partition_cut += other.partition_cut;
    link_dropped += other.link_dropped;
    gray_dropped += other.gray_dropped;
    link_duplicated += other.link_duplicated;
    link_reordered += other.link_reordered;
    link_delay_ticks += other.link_delay_ticks;
  }
};

class Network {
 public:
  /// Rvalue-typed so delivery moves the envelope straight into the protocol
  /// loop (no intermediate copy of the ~300-byte payload variant).
  using Receiver = std::function<void(Envelope&&)>;

  /// A null transport selects the in-process backend (the common case for
  /// simulation and tests).
  Network(sim::Simulator& simulator, Topology topology, LatencyModel latency,
          std::unique_ptr<Transport> transport = nullptr);

  /// Router (PDES engine) mode: no transport; every shaped envelope goes to
  /// the EnvelopeRouter installed via set_router before the first send.
  /// Counters split into `shards + 1` thread lanes (one per worker, one for
  /// the coordinator/classic thread, selected by sim::ctx_shard()) so the
  /// send/deliver hot paths never share a cache line across threads; the
  /// clock reads the calling thread's context simulator.
  struct RouterMode {
    std::uint32_t shards = 1;
  };
  Network(sim::Simulator& coordinator_sim, Topology topology,
          LatencyModel latency, RouterMode mode);
  void set_router(EnvelopeRouter& router) noexcept { router_ = &router; }

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] ProcId size() const noexcept { return topology_.size(); }

  /// Install the message handler for processor p (the runtime's protocol
  /// loop). Must be set before any send touches p.
  void set_receiver(ProcId p, Receiver receiver);

  /// Send a message. If the destination is dead now or at delivery time the
  /// message is lost and the sender gets a kDeliveryFailure envelope (whose
  /// payload is the original envelope) after `failure_timeout`.
  void send(Envelope envelope);

  /// Mark p dead. In-flight messages *from* p still arrive; everything
  /// addressed to p from now on bounces.
  void kill(ProcId p);

  /// Mark a repaired p alive again (crash-recovery model). Messages sent to
  /// p while it was dead stay lost; new sends deliver normally. Bounce
  /// notices already in flight still arrive — detection is per-observer, so
  /// a sender may briefly believe a rejoined node is dead.
  void revive(ProcId p);

  [[nodiscard]] bool alive(ProcId p) const { return alive_.at(p); }
  [[nodiscard]] std::uint32_t alive_count() const noexcept;

  /// Install the armed link-fault layer (FaultInjector::arm). Every
  /// subsequent send is shaped by it; a null model restores clean links.
  void set_link_faults(std::unique_ptr<LinkFaultModel> model) noexcept {
    link_faults_ = std::move(model);
  }
  [[nodiscard]] const LinkFaultModel* link_faults() const noexcept {
    return link_faults_.get();
  }
  /// False while an active partition separates a and b (true on clean
  /// networks). Protocol layers use this the way they use alive(): as the
  /// modelled outcome of the §1 timeout probe, not as hidden knowledge.
  [[nodiscard]] bool reachable(ProcId a, ProcId b) const {
    return link_faults_ == nullptr || link_faults_->reachable(a, b, net_now());
  }

  /// Aggregate counters folded across thread lanes. Call only while no
  /// worker thread is sending (post-run, or at a window barrier).
  [[nodiscard]] const NetworkStats& stats() const noexcept {
    aggregate_ = NetworkStats{};
    for (const Lane& lane : lanes_) aggregate_.merge(lane.stats);
    return aggregate_;
  }
  /// Envelopes submitted to the transport and not yet handed to deliver()
  /// — the in-flight gauge the flight recorder's metrics sampler reads.
  /// (On the distributed TCP backend this counts only locally-submitted
  /// envelopes; remote legs are invisible to this rank.) In router mode each
  /// thread lane tracks its own signed delta (poster increments its lane,
  /// the executing shard decrements its own), so only the sum is meaningful.
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    std::int64_t total = 0;
    for (const Lane& lane : lanes_) total += lane.in_flight;
    return total > 0 ? static_cast<std::uint64_t>(total) : 0;
  }
  [[nodiscard]] const LatencyModel& latency_model() const noexcept {
    return latency_;
  }

  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const Transport& transport() const noexcept {
    return *transport_;
  }
  /// True when this rank hosts processor p (always true without a transport
  /// — router mode and single-process simulation host everything).
  [[nodiscard]] bool is_local(ProcId p) const {
    return transport_ == nullptr || transport_->local(p);
  }
  /// True when ranks span multiple OS processes (TCP backend).
  [[nodiscard]] bool distributed() const noexcept {
    return transport_ != nullptr && transport_->distributed();
  }
  /// Serialization counters from the transport (all zero for in-process and
  /// router mode).
  [[nodiscard]] const WireStats& wire() const noexcept {
    if (transport_ == nullptr) {
      static const WireStats kNone{};
      return kNone;
    }
    return transport_->wire();
  }
  /// Drain externally-arrived frames (socket backends); see Transport::poll.
  std::size_t poll() { return transport_ != nullptr ? transport_->poll() : 0; }

  /// Router-mode re-entry: the engine executes a delivery op by handing the
  /// envelope back through the same sink every transport funnels into.
  void deliver_routed(Envelope&& envelope) { deliver(std::move(envelope)); }

 private:
  /// The single delivery sink every transport funnels into.
  void deliver(Envelope&& envelope);
  void bounce(Envelope envelope);
  /// Hand a shaped envelope to the substrate: transport (relative delay) or
  /// router (absolute delivery time).
  void dispatch(Envelope&& envelope, sim::SimTime delay);
  /// Field-by-field copy for duplicate delivery (the payload variant is not
  /// copy-assignable as a whole because EnvelopeBox is move-only; shaped
  /// traffic never carries one).
  [[nodiscard]] static Envelope clone_envelope(const Envelope& envelope);

  /// The calling thread's simulated clock: the context override inside a
  /// shard window, else the owning (classic/coordinator) simulator.
  [[nodiscard]] sim::SimTime net_now() const noexcept {
    return sim::ctx(sim_).now();
  }

  /// Per-thread counter lane, cache-line padded. Classic mode has exactly
  /// one; router mode has shards + 1 (last = coordinator thread).
  struct alignas(64) Lane {
    NetworkStats stats;
    std::int64_t in_flight = 0;
  };
  [[nodiscard]] Lane& lane() noexcept {
    const std::uint32_t s = sim::ctx_shard();
    const std::size_t last = lanes_.size() - 1;
    return lanes_[s < last ? s : last];
  }

  sim::Simulator& sim_;
  Topology topology_;
  LatencyModel latency_;
  std::unique_ptr<Transport> transport_;
  EnvelopeRouter* router_ = nullptr;
  std::unique_ptr<LinkFaultModel> link_faults_;
  std::vector<Receiver> receivers_;
  std::vector<bool> alive_;
  std::vector<Lane> lanes_;
  mutable NetworkStats aggregate_;
};

}  // namespace splice::net
