// Pluggable message-delivery substrate.
//
// The Network used to *be* the delivery mechanism: an in-process mailbox
// wired to the simulator's event queue. That conflated two layers the
// recovery literature keeps separate — protocol semantics (best-effort
// send, bounce-on-dead, latency model, per-kind stats) and the substrate
// that moves bytes. Transport is the substrate interface; the Network
// keeps the semantics and drives whichever backend it is given:
//
//   backend      bytes on a wire?  processes   delivery order
//   kInProcess   no (zero-copy)    1           event queue (oracle)
//   kShmRing     yes (ring+codec)  1..N        event queue, seq-matched —
//                                              bit-identical to kInProcess
//   kTcp         yes (sockets)     N           real network; sim time paced
//                                              to wall clock by the driver
//
// A submitted envelope is OWNED by the transport until it invokes the
// deliver callback (at delivery time, with the envelope — possibly
// reconstituted from bytes — moved into the protocol loop) or the
// unreachable callback (the backend discovered the destination is gone;
// the Network turns that into the §1 bounce).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "net/message.h"
#include "sim/simulator.h"

namespace splice::net {

enum class TransportKind : std::uint8_t {
  kInProcess,  // pooled mailbox, no serialization (the deterministic oracle)
  kShmRing,    // per-destination shared-memory ring buffers + wire codec
  kTcp,        // real sockets, one OS process per rank (or group of ranks)
};

[[nodiscard]] std::string_view to_string(TransportKind kind) noexcept;
/// Parse "inproc" / "shm" / "tcp" (also accepts the to_string names).
/// Throws std::invalid_argument on anything else.
[[nodiscard]] TransportKind parse_transport(std::string_view name);

/// Serialization-side counters, kept by backends that put envelopes on a
/// byte surface (all zero for kInProcess). frames/payload_bytes drive the
/// bytes-per-event tables; encode_ns/decode_ns the ns-per-message ones.
struct WireStats {
  std::uint64_t frames = 0;         // envelopes serialized
  std::uint64_t payload_bytes = 0;  // encoded envelope bytes (unframed)
  std::uint64_t frame_bytes = 0;    // on-wire bytes incl. length prefixes
  std::uint64_t encode_ns = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t ring_spills = 0;    // frames that overflowed a full ring
};

class Transport {
 public:
  using DeliverFn = std::function<void(Envelope&&)>;
  using UnreachableFn = std::function<void(Envelope&&)>;

  virtual ~Transport() = default;

  [[nodiscard]] virtual TransportKind kind() const noexcept = 0;

  /// Does this OS process host rank `p`? Single-process backends host
  /// every rank; TCP hosts exactly its own.
  [[nodiscard]] virtual bool local(ProcId p) const noexcept {
    (void)p;
    return true;
  }

  /// True when ranks are spread over multiple OS processes (the runtime
  /// pins the root program and the host channel to rank 0 in that case).
  [[nodiscard]] virtual bool distributed() const noexcept { return false; }

  /// Take ownership of `env` and deliver it to env.to after `delay` sim
  /// ticks (real backends substitute their own wire latency for remote
  /// destinations). The deliver callback must be installed first.
  virtual void submit(Envelope&& env, sim::SimTime delay) = 0;

  /// Drain externally-arrived frames (sockets). No-op for in-sim backends.
  /// Returns the number of envelopes delivered.
  virtual std::size_t poll() { return 0; }

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_unreachable(UnreachableFn fn) { unreachable_ = std::move(fn); }

  [[nodiscard]] const WireStats& wire() const noexcept { return wire_; }

 protected:
  DeliverFn deliver_;
  UnreachableFn unreachable_;
  WireStats wire_;
};

/// Today's pooled mailbox: zero-copy, allocation-free steady state, and the
/// deterministic A/B oracle the byte backends are validated against.
[[nodiscard]] std::unique_ptr<Transport> make_in_process_transport(
    sim::Simulator& sim);

/// Shared-memory ring-buffer backend: every envelope round-trips through
/// the wire codec into a per-destination SPSC byte ring. Delivery times and
/// order are identical to kInProcess (frames carry a sequence number; the
/// delivery event claims exactly its own frame), so seeded runs produce
/// identical RunResults — the determinism A/B contract.
[[nodiscard]] std::unique_ptr<Transport> make_shm_ring_transport(
    sim::Simulator& sim, std::uint32_t procs, std::uint32_t ring_bytes);

}  // namespace splice::net
