#include "net/fault_injector.h"

#include "util/logging.h"

namespace splice::net {

FaultInjector::FaultInjector(sim::Simulator& simulator, Network& network,
                             FaultPlan plan,
                             std::function<void(ProcId)> on_kill)
    : sim_(simulator),
      network_(network),
      plan_(std::move(plan)),
      on_kill_(std::move(on_kill)),
      triggered_done_(plan_.triggered.size(), false) {}

void FaultInjector::arm() {
  for (const TimedFault& fault : plan_.timed) {
    sim_.at(fault.when, [this, target = fault.target] { kill_now(target); });
  }
}

void FaultInjector::fire_trigger(const std::string& name) {
  for (std::size_t i = 0; i < plan_.triggered.size(); ++i) {
    if (triggered_done_[i] || plan_.triggered[i].trigger != name) continue;
    triggered_done_[i] = true;
    const TriggeredFault& fault = plan_.triggered[i];
    if (fault.delay_ticks <= 0) {
      kill_now(fault.target);
    } else {
      sim_.after(sim::SimTime(fault.delay_ticks),
                 [this, target = fault.target] { kill_now(target); });
    }
  }
}

void FaultInjector::kill_now(ProcId target) {
  if (!network_.alive(target)) return;
  SPLICE_INFO() << "fault: killing processor " << target << " at t="
                << sim_.now().ticks();
  network_.kill(target);
  ++kills_;
  if (on_kill_) on_kill_(target);
}

}  // namespace splice::net
