#include "net/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/logging.h"
#include "util/rng.h"

namespace splice::net {

namespace {
// Stream tags keep cascade, Poisson, and partition-heal draws independent
// of each other and of plan-seed reuse elsewhere in the simulator.
constexpr std::uint64_t kCascadeStream = 0xCA5CADE000000000ULL;
constexpr std::uint64_t kPoissonStream = 0x9015500000000000ULL;
constexpr std::uint64_t kHealStream = 0x4EA1000000000000ULL;

// Plans arrive machine-independent (often from the scenario DSL); the
// machine size is only known here. Reject out-of-range targets before they
// reach Topology::hops / Network::kill.
void check_target(ProcId target, ProcId machine, const char* what) {
  if (target >= machine) {
    throw std::invalid_argument(
        std::string("fault plan: ") + what + " P" + std::to_string(target) +
        " outside machine of " + std::to_string(machine) + " processors");
  }
}
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& simulator, Network& network,
                             FaultPlan plan,
                             std::function<void(ProcId)> on_kill,
                             std::function<void(ProcId)> on_revive)
    : sim_(simulator),
      network_(network),
      plan_(std::move(plan)),
      on_kill_(std::move(on_kill)),
      on_revive_(std::move(on_revive)),
      triggered_done_(plan_.triggered.size(), false) {}

void FaultInjector::expand_plan() {
  const Topology& topology = network_.topology();
  for (const TimedFault& fault : plan_.timed) {
    check_target(fault.target, topology.size(), "timed target");
  }
  for (const TriggeredFault& fault : plan_.triggered) {
    check_target(fault.target, topology.size(), "triggered target");
  }
  for (const CascadeFault& wave : plan_.cascades) {
    check_target(wave.seed, topology.size(), "cascade seed");
  }
  for (const RecurringFault& arrivals : plan_.recurring) {
    for (ProcId candidate : arrivals.candidates) {
      check_target(candidate, topology.size(), "poisson candidate");
    }
  }
  schedule_ = plan_.timed;

  for (const RegionalFault& fault : plan_.regional) {
    for (ProcId p : fault.region.resolve(topology)) {
      schedule_.push_back({p, fault.when});
    }
  }

  for (std::size_t i = 0; i < plan_.cascades.size(); ++i) {
    const CascadeFault& wave = plan_.cascades[i];
    util::Xoshiro256 rng(util::hash_combine(plan_.seed, kCascadeStream + i));
    schedule_.push_back({wave.seed, wave.when});
    double p_kill = wave.probability;
    for (std::uint32_t h = 1; h <= wave.max_hops; ++h) {
      const sim::SimTime when = wave.when + wave.stagger * h;
      // Ascending node order makes the draw sequence — and therefore the
      // whole wave — a pure function of (plan seed, topology).
      for (ProcId p = 0; p < topology.size(); ++p) {
        if (p == wave.seed || topology.hops(wave.seed, p) != h) continue;
        if (rng.next_bool(p_kill)) schedule_.push_back({p, when});
      }
      p_kill *= wave.decay;
    }
  }

  for (std::size_t i = 0; i < plan_.recurring.size(); ++i) {
    const RecurringFault& arrivals = plan_.recurring[i];
    util::Xoshiro256 rng(util::hash_combine(plan_.seed, kPoissonStream + i));
    std::int64_t t = arrivals.start.ticks();
    for (std::uint32_t n = 0; n < arrivals.max_faults; ++n) {
      const double gap = rng.next_exponential(arrivals.mean_interval);
      t += std::max<std::int64_t>(1, std::llround(gap));
      if (sim::SimTime(t) >= arrivals.stop) break;
      const ProcId victim =
          arrivals.candidates.empty()
              ? static_cast<ProcId>(rng.next_below(topology.size()))
              : arrivals.candidates[rng.next_below(
                    arrivals.candidates.size())];
      schedule_.push_back({victim, sim::SimTime(t)});
    }
  }
}

void FaultInjector::arm_link_faults() {
  if (!plan_.has_link_faults()) return;
  const Topology& topology = network_.topology();
  for (const LinkQuality& q : plan_.links) {
    if (q.src != kNoProc) check_target(q.src, topology.size(), "link src");
    if (q.dst != kNoProc) check_target(q.dst, topology.size(), "link dst");
  }
  for (const GraySpec& g : plan_.grays) {
    check_target(g.node, topology.size(), "gray node");
  }

  auto model = std::make_unique<LinkFaultModel>(plan_.seed, topology.size());
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    const PartitionSpec& spec = plan_.partitions[i];
    ArmedPartition armed;
    armed.side = spec.side.resolve(topology);
    armed.start = spec.at;
    if (spec.heal_mean > 0.0) {
      // Probabilistic heal: the delay is drawn here, once, from the plan
      // seed — the armed window is as deterministic as a scheduled one.
      util::Xoshiro256 rng(util::hash_combine(plan_.seed, kHealStream + i));
      armed.heal = spec.at + sim::SimTime(std::max<std::int64_t>(
                                 1, std::llround(rng.next_exponential(
                                        spec.heal_mean))));
    } else if (spec.heal_after.ticks() > 0) {
      armed.heal = spec.at + spec.heal_after;
    } else {
      armed.heal = sim::SimTime::max();
    }
    model->add_partition(armed.side, armed.start, armed.heal);
    if (armed.heal != sim::SimTime::max()) {
      sim_.at(armed.heal, [this, side = armed.side] {
        SPLICE_INFO() << "fault: partition around " << side.size()
                      << " nodes healed at t=" << sim_.now().ticks();
        if (on_heal_) on_heal_(side);
      });
    }
    partitions_.push_back(std::move(armed));
  }
  for (const LinkQuality& q : plan_.links) model->add_link(q);
  for (const GraySpec& g : plan_.grays) model->add_gray(g);
  network_.set_link_faults(std::move(model));
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  expand_plan();
  arm_link_faults();
  for (const TimedFault& fault : schedule_) {
    sim_.at(fault.when, [this, target = fault.target] { kill_now(target); });
  }
}

void FaultInjector::fire_trigger(const std::string& name) {
  for (std::size_t i = 0; i < plan_.triggered.size(); ++i) {
    if (triggered_done_[i] || plan_.triggered[i].trigger != name) continue;
    triggered_done_[i] = true;
    const TriggeredFault& fault = plan_.triggered[i];
    if (fault.delay.ticks() <= 0) {
      kill_now(fault.target);
    } else {
      sim_.after(fault.delay,
                 [this, target = fault.target] { kill_now(target); });
    }
  }
}

void FaultInjector::kill_now(ProcId target) {
  if (!network_.alive(target)) return;
  SPLICE_INFO() << "fault: killing processor " << target << " at t="
                << sim_.now().ticks();
  network_.kill(target);
  ++kills_;
  if (first_kill_ticks_ < 0) first_kill_ticks_ = sim_.now().ticks();
  if (on_kill_) on_kill_(target);
  if (plan_.rejoin.enabled) {
    sim_.after(plan_.rejoin.delay,
               [this, target] { revive_now(target); });
  }
}

void FaultInjector::revive_now(ProcId target) {
  if (network_.alive(target)) return;
  SPLICE_INFO() << "fault: processor " << target << " repaired at t="
                << sim_.now().ticks();
  network_.revive(target);
  ++revives_;
  if (on_revive_) on_revive_(target);
}

}  // namespace splice::net
