#include "net/message.h"

namespace splice::net {

// Out of line because EnvelopeBox's unique_ptr needs Envelope complete.
EnvelopeBox::EnvelopeBox() noexcept = default;
EnvelopeBox::EnvelopeBox(Envelope&& env)
    : boxed_(std::make_unique<Envelope>(std::move(env))) {}
EnvelopeBox::EnvelopeBox(EnvelopeBox&&) noexcept = default;
EnvelopeBox& EnvelopeBox::operator=(EnvelopeBox&&) noexcept = default;
EnvelopeBox::~EnvelopeBox() = default;

std::string_view to_string(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kTaskPacket:
      return "task-packet";
    case MsgKind::kSpawnAck:
      return "spawn-ack";
    case MsgKind::kForwardResult:
      return "forward-result";
    case MsgKind::kFetchData:
      return "fetch-data";
    case MsgKind::kDataReply:
      return "data-reply";
    case MsgKind::kErrorDetection:
      return "error-detection";
    case MsgKind::kDeliveryFailure:
      return "delivery-failure";
    case MsgKind::kHeartbeat:
      return "heartbeat";
    case MsgKind::kLoadUpdate:
      return "load-update";
    case MsgKind::kCheckpointXfer:
      return "checkpoint-xfer";
    case MsgKind::kRejoinNotice:
      return "rejoin-notice";
    case MsgKind::kStateRequest:
      return "state-request";
    case MsgKind::kStateChunk:
      return "state-chunk";
    case MsgKind::kCancel:
      return "cancel";
    case MsgKind::kControl:
      return "control";
  }
  return "?";
}

}  // namespace splice::net
