// Interconnection topologies.
//
// The paper's substrate (Rediflow) is a network of partitioned-memory
// processors; recovery traffic cost depends on hop distance. We model the
// usual 1980s candidates: complete graph, ring, star, 2-D mesh, 2-D torus,
// and hypercube. Topology only answers distance/neighbour queries; routing
// is implicit (shortest path hop count scales latency).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace splice::net {

/// Processor identifier; dense [0, N).
using ProcId = std::uint32_t;
inline constexpr ProcId kNoProc = UINT32_MAX;

enum class TopologyKind : std::uint8_t {
  kComplete,
  kRing,
  kStar,      // proc 0 is the hub
  kMesh2D,    // row-major R x C grid, non-wrapping
  kTorus2D,   // row-major R x C grid, wrapping
  kHypercube, // N must be a power of two
};

[[nodiscard]] std::string_view to_string(TopologyKind kind) noexcept;
[[nodiscard]] TopologyKind parse_topology(std::string_view name);

/// Immutable topology descriptor. For meshes/tori the grid is chosen as the
/// most square factorisation of N.
class Topology {
 public:
  Topology(TopologyKind kind, ProcId count);

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] ProcId size() const noexcept { return count_; }

  /// Minimal hop distance between two processors (0 when a == b).
  [[nodiscard]] std::uint32_t hops(ProcId a, ProcId b) const;

  /// Direct neighbours of p (used by the gradient-model load balancer and
  /// by Grit-style neighbour schemes).
  [[nodiscard]] const std::vector<ProcId>& neighbors(ProcId p) const;

  /// Network diameter (max hops over all pairs).
  [[nodiscard]] std::uint32_t diameter() const noexcept { return diameter_; }

  // ---- regional node sets (fault-plan regions, §1 fault model) ------------
  // All return ascending, duplicate-free processor lists and throw
  // std::invalid_argument when the query does not apply to this topology.

  /// Mesh/torus: the rectangle of `rect_rows` x `rect_cols` nodes whose
  /// top-left corner is (row0, col0). A mesh clips the rectangle at the grid
  /// edges; a torus wraps it around.
  [[nodiscard]] std::vector<ProcId> grid_rect(std::uint32_t row0,
                                              std::uint32_t col0,
                                              std::uint32_t rect_rows,
                                              std::uint32_t rect_cols) const;

  /// Ring: `length` consecutive nodes starting at `start`, wrapping.
  [[nodiscard]] std::vector<ProcId> ring_arc(ProcId start,
                                             std::uint32_t length) const;

  /// Hypercube: every node whose address agrees with `fixed_value` on the
  /// bits of `fixed_mask` (a 2^(dims - popcount(mask)) subcube).
  [[nodiscard]] std::vector<ProcId> subcube(ProcId fixed_mask,
                                            ProcId fixed_value) const;

  /// Any topology: every node within `radius` hops of `center`, the centre
  /// included (radius 0 = just the centre).
  [[nodiscard]] std::vector<ProcId> neighborhood(ProcId center,
                                                 std::uint32_t radius) const;

  [[nodiscard]] std::string describe() const;

  /// Mesh/torus grid shape (rows, cols); (N,1) for non-grid kinds.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> grid() const noexcept {
    return {rows_, cols_};
  }

 private:
  void build_neighbors();

  TopologyKind kind_;
  ProcId count_;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::uint32_t diameter_ = 0;
  std::vector<std::vector<ProcId>> neighbors_;
};

}  // namespace splice::net
