#include "net/transport.h"

#include <cassert>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/codec.h"
#include "net/shm_ring.h"

namespace splice::net {

std::string_view to_string(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kInProcess:
      return "inproc";
    case TransportKind::kShmRing:
      return "shm";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "?";
}

TransportKind parse_transport(std::string_view name) {
  if (name == "inproc" || name == "in-process" || name == "inprocess") {
    return TransportKind::kInProcess;
  }
  if (name == "shm" || name == "shm-ring" || name == "shmring") {
    return TransportKind::kShmRing;
  }
  if (name == "tcp") return TransportKind::kTcp;
  throw std::invalid_argument("unknown transport: " + std::string(name) +
                              " (expected inproc | shm | tcp)");
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- in-process ------------------------------------------------------------

/// The pooled mailbox that used to live inside Network. In-flight
/// envelopes park in a recycled pool while their delivery event waits in
/// the queue; the event captures only {this, slot} — 16 bytes, inside
/// EventFn's inline buffer — so a send is allocation-free end to end. A
/// deque, deliberately: growth never relocates existing slots, so the
/// reference the delivery dispatches through stays valid even when a
/// receiver's nested send grows the pool; a slot returns to the free list
/// only after delivery returns, so nested sends cannot reuse it
/// mid-dispatch either.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(sim::Simulator& sim) : sim_(sim) {}

  [[nodiscard]] TransportKind kind() const noexcept override {
    return TransportKind::kInProcess;
  }

  void submit(Envelope&& env, sim::SimTime delay) override {
    const std::uint32_t slot = pool_acquire(std::move(env));
    sim_.after(delay, [this, slot] {
      deliver_(std::move(inflight_[slot]));
      inflight_free_.push_back(slot);
    });
  }

 private:
  std::uint32_t pool_acquire(Envelope&& envelope) {
    if (inflight_free_.empty()) {
      inflight_.push_back(std::move(envelope));
      return static_cast<std::uint32_t>(inflight_.size() - 1);
    }
    const std::uint32_t slot = inflight_free_.back();
    inflight_free_.pop_back();
    inflight_[slot] = std::move(envelope);
    return slot;
  }

  sim::Simulator& sim_;
  std::deque<Envelope> inflight_;
  std::vector<std::uint32_t> inflight_free_;
};

// ---- shared-memory rings ---------------------------------------------------

/// One SPSC byte ring per destination rank; every envelope is encoded with
/// the wire codec, pushed as a sequence-tagged frame, and reconstituted at
/// delivery time. Delivery *scheduling* still rides the simulator event
/// queue with the same latency as kInProcess, and the delivery event names
/// the frame's sequence number: the consumer pops (and decodes) frames
/// until it finds its own, parking early arrivals in a reorder map. Rings
/// therefore deliver in exactly the event-queue order — seeded runs are
/// bit-identical to the in-process oracle, which is the A/B contract the
/// transport tests enforce.
///
/// A frame that does not fit (ring full) spills to a per-destination heap
/// queue, counted in WireStats::ring_spills — overflow degrades to heap
/// buffering instead of dropping or deadlocking. FIFO is preserved: once a
/// destination spills, new frames keep spilling until both ring and spill
/// queue drain.
class ShmRingTransport final : public Transport {
 public:
  ShmRingTransport(sim::Simulator& sim, std::uint32_t procs,
                   std::uint32_t ring_bytes)
      : sim_(sim), ring_bytes_(ring_bytes) {
    lanes_.reserve(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
      lanes_.push_back(std::make_unique<Lane>());
    }
  }

  [[nodiscard]] TransportKind kind() const noexcept override {
    return TransportKind::kShmRing;
  }

  void submit(Envelope&& env, sim::SimTime delay) override {
    assert(env.to < lanes_.size());
    Lane& lane = *lanes_[env.to];
    const std::uint64_t seq = lane.next_seq++;

    scratch_.clear();
    const std::uint64_t t0 = now_ns();
    codec::encode_envelope(env, scratch_);
    wire_.encode_ns += now_ns() - t0;
    ++wire_.frames;
    wire_.payload_bytes += scratch_.size();
    wire_.frame_bytes +=
        ShmRing::record_bytes(static_cast<std::uint32_t>(scratch_.size()));

    if (lane.ring == nullptr) lane.ring = std::make_unique<ShmRing>(ring_bytes_);
    // FIFO across the spill boundary: while the spill queue is non-empty
    // the ring receives nothing, so every ring frame predates every
    // spilled one and the consumer can always drain ring-first.
    if (!lane.spill.empty() ||
        !lane.ring->push(seq, scratch_.data(),
                         static_cast<std::uint32_t>(scratch_.size()))) {
      ++wire_.ring_spills;
      lane.spill.push_back(
          ShmRing::Record{seq, {scratch_.begin(), scratch_.end()}});
    }
    const ProcId dest = env.to;
    sim_.after(delay, [this, dest, seq] { deliver_seq(dest, seq); });
  }

 private:
  struct Lane {
    std::unique_ptr<ShmRing> ring;
    std::deque<ShmRing::Record> spill;
    /// Frames popped ahead of their delivery event, parked by sequence.
    std::unordered_map<std::uint64_t, Envelope> reorder;
    std::uint64_t next_seq = 0;
  };

  void deliver_seq(ProcId dest, std::uint64_t seq) {
    Lane& lane = *lanes_[dest];
    const auto parked = lane.reorder.find(seq);
    if (parked != lane.reorder.end()) {
      Envelope env = std::move(parked->second);
      lane.reorder.erase(parked);
      deliver_(std::move(env));
      return;
    }
    ShmRing::Record record;
    while (pop_next(lane, &record)) {
      const std::uint64_t t0 = now_ns();
      Envelope env =
          codec::decode_envelope(record.bytes.data(), record.bytes.size());
      wire_.decode_ns += now_ns() - t0;
      if (record.seq == seq) {
        deliver_(std::move(env));
        return;
      }
      lane.reorder.emplace(record.seq, std::move(env));
    }
    // Every submitted frame has exactly one delivery event, so the frame
    // must exist; reaching here means the ring was corrupted.
    throw std::logic_error("shm transport: frame missing for seq " +
                           std::to_string(seq));
  }

  bool pop_next(Lane& lane, ShmRing::Record* out) {
    if (lane.ring != nullptr && lane.ring->pop(out)) return true;
    if (lane.spill.empty()) return false;
    *out = std::move(lane.spill.front());
    lane.spill.pop_front();
    return true;
  }

  sim::Simulator& sim_;
  std::uint32_t ring_bytes_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace

std::unique_ptr<Transport> make_in_process_transport(sim::Simulator& sim) {
  return std::make_unique<InProcessTransport>(sim);
}

std::unique_ptr<Transport> make_shm_ring_transport(sim::Simulator& sim,
                                                   std::uint32_t procs,
                                                   std::uint32_t ring_bytes) {
  return std::make_unique<ShmRingTransport>(sim, procs, ring_bytes);
}

}  // namespace splice::net
