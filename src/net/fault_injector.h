// Fault injection (§1 fault model).
//
// Executes a FaultPlan against the network: timed and triggered crashes fire
// directly; regional, cascade, and recurring entries are expanded into a
// concrete kill schedule when arm() resolves them against the topology (and
// the plan's RNG seed — the expansion is deterministic). Under a rejoin
// plan every kill also schedules a revive of the same node after the repair
// delay, and the runtime reinitialises it blank (crash-recovery model).
//
// Crash faults are fail-silent whole-processor crashes, matching the paper.
// Link-level entries (partitions, per-link quality, gray failures) are
// armed into a LinkFaultModel installed on the network; partition heals —
// scheduled or drawn from the plan seed — fire the on_heal callback so the
// runtime can reconcile the mutual suspicion the cut created.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace splice::net {

class FaultInjector {
 public:
  /// on_kill runs immediately after the network marks the node dead, so the
  /// runtime can destroy the node's volatile state; on_revive runs after the
  /// network marks a repaired node alive again, so the runtime can restart
  /// it blank.
  FaultInjector(sim::Simulator& simulator, Network& network, FaultPlan plan,
                std::function<void(ProcId)> on_kill,
                std::function<void(ProcId)> on_revive = nullptr);

  /// Expand the plan (resolve regions against the topology, draw cascade
  /// and Poisson schedules from the plan seed) and schedule every timed
  /// kill. Call once before Simulator::run_until.
  void arm();

  /// The runtime calls this when a named trigger point is reached; any
  /// triggered faults matching the name are scheduled.
  void fire_trigger(const std::string& name);

  /// Kill a processor right now (used by tests and by replicated-redundancy
  /// scenarios). Schedules the rejoin when the plan repairs nodes.
  void kill_now(ProcId target);

  /// Repair a processor right now: the network marks it alive and on_revive
  /// reinitialises it. No-op when the node is already alive.
  void revive_now(ProcId target);

  /// Called when a partition heals, with the (ascending) members of the
  /// side that was cut off. Set before arm().
  void set_on_heal(std::function<void(const std::vector<ProcId>&)> on_heal) {
    on_heal_ = std::move(on_heal);
  }

  [[nodiscard]] std::uint32_t kills_executed() const noexcept {
    return kills_;
  }
  [[nodiscard]] std::uint32_t revives_executed() const noexcept {
    return revives_;
  }
  /// Time of the first kill that actually executed; -1 before any kill.
  [[nodiscard]] std::int64_t first_kill_ticks() const noexcept {
    return first_kill_ticks_;
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// The deterministic kill schedule arm() expanded (timed + regional +
  /// cascade + recurring, in scheduling order). Triggered faults are not
  /// included — they have no time until their trigger fires.
  [[nodiscard]] const std::vector<TimedFault>& armed_schedule() const noexcept {
    return schedule_;
  }
  /// The partition windows arm() resolved: (side members, start, heal
  /// time). Heal is SimTime::max() for a cut that never heals.
  struct ArmedPartition {
    std::vector<ProcId> side;
    sim::SimTime start;
    sim::SimTime heal;
  };
  [[nodiscard]] const std::vector<ArmedPartition>& armed_partitions()
      const noexcept {
    return partitions_;
  }

 private:
  void expand_plan();
  void arm_link_faults();

  sim::Simulator& sim_;
  Network& network_;
  FaultPlan plan_;
  std::function<void(ProcId)> on_kill_;
  std::function<void(ProcId)> on_revive_;
  std::function<void(const std::vector<ProcId>&)> on_heal_;
  std::vector<bool> triggered_done_;
  std::vector<TimedFault> schedule_;
  std::vector<ArmedPartition> partitions_;
  bool armed_ = false;
  std::uint32_t kills_ = 0;
  std::uint32_t revives_ = 0;
  std::int64_t first_kill_ticks_ = -1;
};

}  // namespace splice::net
