// Fault injection (§1 fault model).
//
// Supports the fault plans the paper's analysis needs:
//  * timed crashes: kill processor P at absolute time T;
//  * fractional crashes: kill P when a fraction f of the fault-free makespan
//    has elapsed (the rollback-cost experiment sweeps this);
//  * triggered crashes: kill P when the runtime reports a named trigger
//    (used by the Fig. 6 residue experiment to kill a node exactly when a
//    task reaches state a..g);
//  * multi-fault plans: any combination of the above, on one or many nodes.
//
// All faults are fail-silent whole-processor crashes, matching the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace splice::net {

struct TimedFault {
  ProcId target = kNoProc;
  sim::SimTime when;
};

struct TriggeredFault {
  ProcId target = kNoProc;
  std::string trigger;          // fired by the runtime via fire_trigger()
  std::int64_t delay_ticks = 0; // extra delay after the trigger fires
};

struct FaultPlan {
  std::vector<TimedFault> timed;
  std::vector<TriggeredFault> triggered;

  [[nodiscard]] bool empty() const noexcept {
    return timed.empty() && triggered.empty();
  }
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return timed.size() + triggered.size();
  }

  static FaultPlan none() { return {}; }
  static FaultPlan single(ProcId target, std::int64_t when_ticks) {
    FaultPlan plan;
    plan.timed.push_back({target, sim::SimTime(when_ticks)});
    return plan;
  }
};

class FaultInjector {
 public:
  /// on_kill runs immediately after the network marks the node dead, so the
  /// runtime can destroy the node's volatile state.
  FaultInjector(sim::Simulator& simulator, Network& network, FaultPlan plan,
                std::function<void(ProcId)> on_kill);

  /// Schedule all timed faults. Call once before Simulator::run_until.
  void arm();

  /// The runtime calls this when a named trigger point is reached; any
  /// triggered faults matching the name are scheduled.
  void fire_trigger(const std::string& name);

  /// Kill a processor right now (used by tests and by replicated-redundancy
  /// scenarios).
  void kill_now(ProcId target);

  [[nodiscard]] std::uint32_t kills_executed() const noexcept {
    return kills_;
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  sim::Simulator& sim_;
  Network& network_;
  FaultPlan plan_;
  std::function<void(ProcId)> on_kill_;
  std::vector<bool> triggered_done_;
  std::uint32_t kills_ = 0;
};

}  // namespace splice::net
