// Composable fault plans (§1 fault model, generalised).
//
// The paper's analysis injects fail-silent whole-processor crashes one at a
// time. Real machines lose power to a mesh quadrant, watch a failure cascade
// roll outward from a hot node, and repair boards that later rejoin blank.
// A FaultPlan composes all of these:
//
//  * timed crashes      kill P at absolute time T;
//  * triggered crashes  kill P when the runtime reports a named trigger
//                       (used by the Fig. 6 residue experiment);
//  * regional crashes   kill a topology-shaped set — a mesh/torus rectangle,
//                       a ring arc, a hypercube subcube, or the k-hop
//                       neighbourhood of a node — resolved against the
//                       Topology when the injector arms;
//  * cascades           a seed crash plus RNG-driven staggered follow-on
//                       crashes of nodes near the seed, with per-hop
//                       probability decay;
//  * recurring faults   Poisson-style inter-fault arrivals over a node set,
//                       so experiments sweep fault *rates*, not counts;
//  * rejoin             every crashed node is repaired after a fixed repair
//                       delay and revives blank (cold) or warm — replaying
//                       its durable checkpoint log and catching up from
//                       survivors (crash-recovery model, store/ subsystem).
//
// Every stochastic choice flows through util::rng seeded from `seed`, so a
// (plan, topology) pair expands to a bit-identical kill schedule on every
// run. All faults remain fail-silent whole-processor crashes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/topology.h"
#include "sim/time.h"

namespace splice::net {

struct TimedFault {
  ProcId target = kNoProc;
  sim::SimTime when;
};

struct TriggeredFault {
  ProcId target = kNoProc;
  std::string trigger;  // fired by the runtime via fire_trigger()
  sim::SimTime delay;   // extra delay after the trigger fires
};

/// A topology-shaped processor set, resolved against the concrete Topology
/// when the injector arms (the plan itself stays machine-independent).
struct RegionSpec {
  enum class Kind : std::uint8_t {
    kGridRect,      // mesh/torus rectangle
    kRingArc,       // consecutive arc of a ring
    kSubcube,       // hypercube subcube (fixed address bits)
    kNeighborhood,  // all nodes within k hops of a centre (any topology)
  };

  Kind kind = Kind::kNeighborhood;
  // Meaning by kind: kGridRect (a=row0, b=col0, c=rows, d=cols),
  // kRingArc (a=start, c=length), kSubcube (a=fixed mask, b=fixed value),
  // kNeighborhood (a=centre, c=radius in hops).
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t d = 0;

  [[nodiscard]] static RegionSpec grid_rect(std::uint32_t row0,
                                            std::uint32_t col0,
                                            std::uint32_t rows,
                                            std::uint32_t cols) {
    return {Kind::kGridRect, row0, col0, rows, cols};
  }
  [[nodiscard]] static RegionSpec ring_arc(ProcId start, std::uint32_t length) {
    return {Kind::kRingArc, start, 0, length, 0};
  }
  [[nodiscard]] static RegionSpec subcube(ProcId fixed_mask,
                                          ProcId fixed_value) {
    return {Kind::kSubcube, fixed_mask, fixed_value, 0, 0};
  }
  [[nodiscard]] static RegionSpec neighborhood(ProcId center,
                                               std::uint32_t radius) {
    return {Kind::kNeighborhood, center, 0, radius, 0};
  }

  /// The processor set this region denotes on `topology`, ascending and
  /// duplicate-free. Throws std::invalid_argument when the region kind does
  /// not apply to the topology (e.g. a ring arc on a mesh).
  [[nodiscard]] std::vector<ProcId> resolve(const Topology& topology) const;

  [[nodiscard]] std::string describe() const;
};

struct RegionalFault {
  RegionSpec region;
  sim::SimTime when;
};

/// A correlated failure wave: the seed dies at `when`; every node at hop
/// distance h (1 <= h <= max_hops) from the seed then dies with probability
/// `probability * decay^(h-1)`, at `when + h * stagger`.
struct CascadeFault {
  ProcId seed = kNoProc;
  sim::SimTime when;
  double probability = 0.9;
  double decay = 0.5;
  std::uint32_t max_hops = 2;
  sim::SimTime stagger = sim::SimTime(200);
};

/// Stochastic background failures: Poisson arrivals with the given mean
/// inter-fault time over `candidates` (empty = the whole machine), between
/// `start` and `stop`, capped at `max_faults` draws.
struct RecurringFault {
  std::vector<ProcId> candidates;
  sim::SimTime start;
  sim::SimTime stop = sim::SimTime::max();
  double mean_interval = 10000.0;
  std::uint32_t max_faults = 64;
};

/// How a repaired node re-enters the machine.
enum class RejoinMode : std::uint8_t {
  kCold,  // blank rejoin: all state lost (the paper's model)
  kWarm,  // replay the durable checkpoint log, then survivor-assisted
          // state transfer (store/ subsystem)
};

[[nodiscard]] constexpr std::string_view to_string(RejoinMode mode) noexcept {
  return mode == RejoinMode::kWarm ? "warm" : "cold";
}

/// Crash-recovery model: every kill schedules a revive of the same node
/// after `delay` ticks of repair; the node rejoins blank (cold) or via
/// state transfer (warm).
struct RejoinSpec {
  bool enabled = false;
  sim::SimTime delay = sim::SimTime(5000);
  RejoinMode mode = RejoinMode::kCold;
};

struct FaultPlan {
  std::vector<TimedFault> timed;
  std::vector<TriggeredFault> triggered;
  std::vector<RegionalFault> regional;
  std::vector<CascadeFault> cascades;
  std::vector<RecurringFault> recurring;
  RejoinSpec rejoin;
  /// Seed for the RNG streams driving cascades and recurring faults.
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const noexcept {
    return timed.empty() && triggered.empty() && regional.empty() &&
           cascades.empty() && recurring.empty();
  }
  /// Number of plan entries (a regional/cascade/recurring entry counts once
  /// however many kills it expands to).
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return timed.size() + triggered.size() + regional.size() +
           cascades.size() + recurring.size();
  }

  // ---- factories ----------------------------------------------------------
  [[nodiscard]] static FaultPlan none() { return {}; }
  [[nodiscard]] static FaultPlan single(ProcId target, sim::SimTime when) {
    FaultPlan plan;
    plan.timed.push_back({target, when});
    return plan;
  }
  [[nodiscard]] static FaultPlan at_trigger(ProcId target, std::string trigger,
                                            sim::SimTime delay = {}) {
    FaultPlan plan;
    plan.triggered.push_back({target, std::move(trigger), delay});
    return plan;
  }
  [[nodiscard]] static FaultPlan region(RegionSpec spec, sim::SimTime when) {
    FaultPlan plan;
    plan.regional.push_back({spec, when});
    return plan;
  }
  [[nodiscard]] static FaultPlan cascade(CascadeFault wave) {
    FaultPlan plan;
    plan.cascades.push_back(std::move(wave));
    return plan;
  }
  [[nodiscard]] static FaultPlan poisson(RecurringFault arrivals) {
    FaultPlan plan;
    plan.recurring.push_back(std::move(arrivals));
    return plan;
  }

  // ---- chainable modifiers ------------------------------------------------
  FaultPlan& with_rejoin(sim::SimTime delay,
                         RejoinMode mode = RejoinMode::kCold) {
    rejoin.enabled = true;
    rejoin.delay = delay;
    rejoin.mode = mode;
    return *this;
  }
  FaultPlan& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  /// Concatenate another plan's faults into this one (rejoin/seed: the
  /// other plan's settings win when it has rejoin enabled).
  FaultPlan& merge(const FaultPlan& other);

  [[nodiscard]] std::string describe() const;
};

}  // namespace splice::net
