// Composable fault plans (§1 fault model, generalised).
//
// The paper's analysis injects fail-silent whole-processor crashes one at a
// time. Real machines lose power to a mesh quadrant, watch a failure cascade
// roll outward from a hot node, and repair boards that later rejoin blank.
// A FaultPlan composes all of these:
//
//  * timed crashes      kill P at absolute time T;
//  * triggered crashes  kill P when the runtime reports a named trigger
//                       (used by the Fig. 6 residue experiment);
//  * regional crashes   kill a topology-shaped set — a mesh/torus rectangle,
//                       a ring arc, a hypercube subcube, or the k-hop
//                       neighbourhood of a node — resolved against the
//                       Topology when the injector arms;
//  * cascades           a seed crash plus RNG-driven staggered follow-on
//                       crashes of nodes near the seed, with per-hop
//                       probability decay;
//  * recurring faults   Poisson-style inter-fault arrivals over a node set,
//                       so experiments sweep fault *rates*, not counts;
//  * rejoin             every crashed node is repaired after a fixed repair
//                       delay and revives blank (cold) or warm — replaying
//                       its durable checkpoint log and catching up from
//                       survivors (crash-recovery model, store/ subsystem);
//  * partitions         a topology-shaped side is cut off from the rest of
//                       the machine for a window (scheduled or exponential
//                       heal); cross-cut traffic bounces like traffic to a
//                       dead node — "the unreachable node is considered
//                       faulty" (§1);
//  * link quality       per-link drop/duplicate/reorder probabilities plus
//                       fixed delay and jitter, applied send-side so every
//                       transport backend sees identical perturbations;
//  * gray failures      a node that stays alive — never detected dead —
//                       but whose payload traffic starves while control
//                       traffic (heartbeats, notices) trickles through slow.
//
// Every stochastic choice flows through util::rng seeded from `seed`, so a
// (plan, topology) pair expands to a bit-identical kill schedule on every
// run; link-level perturbations are a pure function of (seed, directed
// link, per-link sequence number) — see net/link_faults.h.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/topology.h"
#include "sim/time.h"

namespace splice::net {

struct TimedFault {
  ProcId target = kNoProc;
  sim::SimTime when;
};

struct TriggeredFault {
  ProcId target = kNoProc;
  std::string trigger;  // fired by the runtime via fire_trigger()
  sim::SimTime delay;   // extra delay after the trigger fires
};

/// A topology-shaped processor set, resolved against the concrete Topology
/// when the injector arms (the plan itself stays machine-independent).
struct RegionSpec {
  enum class Kind : std::uint8_t {
    kGridRect,      // mesh/torus rectangle
    kRingArc,       // consecutive arc of a ring
    kSubcube,       // hypercube subcube (fixed address bits)
    kNeighborhood,  // all nodes within k hops of a centre (any topology)
  };

  Kind kind = Kind::kNeighborhood;
  // Meaning by kind: kGridRect (a=row0, b=col0, c=rows, d=cols),
  // kRingArc (a=start, c=length), kSubcube (a=fixed mask, b=fixed value),
  // kNeighborhood (a=centre, c=radius in hops).
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t d = 0;

  [[nodiscard]] static RegionSpec grid_rect(std::uint32_t row0,
                                            std::uint32_t col0,
                                            std::uint32_t rows,
                                            std::uint32_t cols) {
    return {Kind::kGridRect, row0, col0, rows, cols};
  }
  [[nodiscard]] static RegionSpec ring_arc(ProcId start, std::uint32_t length) {
    return {Kind::kRingArc, start, 0, length, 0};
  }
  [[nodiscard]] static RegionSpec subcube(ProcId fixed_mask,
                                          ProcId fixed_value) {
    return {Kind::kSubcube, fixed_mask, fixed_value, 0, 0};
  }
  [[nodiscard]] static RegionSpec neighborhood(ProcId center,
                                               std::uint32_t radius) {
    return {Kind::kNeighborhood, center, 0, radius, 0};
  }

  /// The processor set this region denotes on `topology`, ascending and
  /// duplicate-free. Throws std::invalid_argument when the region kind does
  /// not apply to the topology (e.g. a ring arc on a mesh).
  [[nodiscard]] std::vector<ProcId> resolve(const Topology& topology) const;

  [[nodiscard]] std::string describe() const;
};

struct RegionalFault {
  RegionSpec region;
  sim::SimTime when;
};

/// A correlated failure wave: the seed dies at `when`; every node at hop
/// distance h (1 <= h <= max_hops) from the seed then dies with probability
/// `probability * decay^(h-1)`, at `when + h * stagger`.
struct CascadeFault {
  ProcId seed = kNoProc;
  sim::SimTime when;
  double probability = 0.9;
  double decay = 0.5;
  std::uint32_t max_hops = 2;
  sim::SimTime stagger = sim::SimTime(200);
};

/// Stochastic background failures: Poisson arrivals with the given mean
/// inter-fault time over `candidates` (empty = the whole machine), between
/// `start` and `stop`, capped at `max_faults` draws.
struct RecurringFault {
  std::vector<ProcId> candidates;
  sim::SimTime start;
  sim::SimTime stop = sim::SimTime::max();
  double mean_interval = 10000.0;
  std::uint32_t max_faults = 64;
};

/// How a repaired node re-enters the machine.
enum class RejoinMode : std::uint8_t {
  kCold,  // blank rejoin: all state lost (the paper's model)
  kWarm,  // replay the durable checkpoint log, then survivor-assisted
          // state transfer (store/ subsystem)
};

[[nodiscard]] constexpr std::string_view to_string(RejoinMode mode) noexcept {
  return mode == RejoinMode::kWarm ? "warm" : "cold";
}

/// Crash-recovery model: every kill schedules a revive of the same node
/// after `delay` ticks of repair; the node rejoins blank (cold) or via
/// state transfer (warm).
struct RejoinSpec {
  bool enabled = false;
  sim::SimTime delay = sim::SimTime(5000);
  RejoinMode mode = RejoinMode::kCold;
};

/// Network partition: the processors of `side` are cut off from the rest of
/// the machine from `at` until the cut heals. Cross-cut traffic is lost and
/// bounces to its sender after the failure timeout (the §1 "unreachable
/// node is considered faulty" rule, applied per observer); intra-side
/// traffic is untouched. The heal is scheduled (`heal_after` ticks) or
/// probabilistic (`heal_mean` > 0: the delay is drawn from an exponential
/// with that mean when the injector arms — still a pure function of the
/// plan seed). With neither set, the cut never heals.
struct PartitionSpec {
  RegionSpec side;
  sim::SimTime at;
  sim::SimTime heal_after;   // > 0: deterministic heal delay
  double heal_mean = 0.0;    // > 0: exponential heal delay (mean ticks)
};

/// Per-link quality degradation, applied send-side to every message whose
/// (src, dst) matches — kNoProc is a wildcard endpoint, and `symmetric`
/// also matches the reverse direction. Dropped messages are lost in transit
/// and bounce to the sender after the failure timeout (the destination is
/// alive, so no false crash detection); duplicates deliver twice; reorder
/// holds a message back long enough for later traffic to overtake it.
struct LinkQuality {
  ProcId src = kNoProc;  // kNoProc: any sender
  ProcId dst = kNoProc;  // kNoProc: any destination
  bool symmetric = true;
  double drop_p = 0.0;
  double dup_p = 0.0;
  double reorder_p = 0.0;
  std::int64_t delay = 0;   // fixed extra latency per matching message
  std::int64_t jitter = 0;  // plus uniform extra in [0, jitter]
  sim::SimTime start;       // active window
  sim::SimTime stop = sim::SimTime::max();
};

/// Gray failure: `node` stays alive — heartbeats and notices keep arriving,
/// so failure detection must NOT fire — but every payload-class message to
/// or from it is dropped with `payload_drop_p` and the survivors (payload
/// and control alike) are slowed by `slow_factor`x the nominal latency.
struct GraySpec {
  ProcId node = kNoProc;
  sim::SimTime start;
  sim::SimTime stop = sim::SimTime::max();
  double payload_drop_p = 0.5;
  std::int64_t slow_factor = 4;
};

struct FaultPlan {
  std::vector<TimedFault> timed;
  std::vector<TriggeredFault> triggered;
  std::vector<RegionalFault> regional;
  std::vector<CascadeFault> cascades;
  std::vector<RecurringFault> recurring;
  std::vector<PartitionSpec> partitions;
  std::vector<LinkQuality> links;
  std::vector<GraySpec> grays;
  RejoinSpec rejoin;
  /// Seed for the RNG streams driving cascades, recurring faults, partition
  /// heals, and every link-level perturbation draw.
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const noexcept {
    return timed.empty() && triggered.empty() && regional.empty() &&
           cascades.empty() && recurring.empty() && partitions.empty() &&
           links.empty() && grays.empty();
  }
  /// Number of plan entries (a regional/cascade/recurring entry counts once
  /// however many kills it expands to; link-level entries count once each).
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return timed.size() + triggered.size() + regional.size() +
           cascades.size() + recurring.size() + partitions.size() +
           links.size() + grays.size();
  }
  /// True when the plan carries message/link-level faults (the injector
  /// then installs a LinkFaultModel into the network).
  [[nodiscard]] bool has_link_faults() const noexcept {
    return !partitions.empty() || !links.empty() || !grays.empty();
  }

  // ---- factories ----------------------------------------------------------
  [[nodiscard]] static FaultPlan none() { return {}; }
  [[nodiscard]] static FaultPlan single(ProcId target, sim::SimTime when) {
    FaultPlan plan;
    plan.timed.push_back({target, when});
    return plan;
  }
  [[nodiscard]] static FaultPlan at_trigger(ProcId target, std::string trigger,
                                            sim::SimTime delay = {}) {
    FaultPlan plan;
    plan.triggered.push_back({target, std::move(trigger), delay});
    return plan;
  }
  [[nodiscard]] static FaultPlan region(RegionSpec spec, sim::SimTime when) {
    FaultPlan plan;
    plan.regional.push_back({spec, when});
    return plan;
  }
  [[nodiscard]] static FaultPlan cascade(CascadeFault wave) {
    FaultPlan plan;
    plan.cascades.push_back(std::move(wave));
    return plan;
  }
  [[nodiscard]] static FaultPlan poisson(RecurringFault arrivals) {
    FaultPlan plan;
    plan.recurring.push_back(std::move(arrivals));
    return plan;
  }
  /// Partition `side` off at `at`; heal after `heal_after` ticks (0: never).
  [[nodiscard]] static FaultPlan partition(RegionSpec side, sim::SimTime at,
                                           sim::SimTime heal_after = {}) {
    FaultPlan plan;
    plan.partitions.push_back({side, at, heal_after, 0.0});
    return plan;
  }
  [[nodiscard]] static FaultPlan link(LinkQuality quality) {
    FaultPlan plan;
    plan.links.push_back(quality);
    return plan;
  }
  [[nodiscard]] static FaultPlan gray(GraySpec spec) {
    FaultPlan plan;
    plan.grays.push_back(spec);
    return plan;
  }

  // ---- chainable modifiers ------------------------------------------------
  FaultPlan& with_rejoin(sim::SimTime delay,
                         RejoinMode mode = RejoinMode::kCold) {
    rejoin.enabled = true;
    rejoin.delay = delay;
    rejoin.mode = mode;
    return *this;
  }
  FaultPlan& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  /// Concatenate another plan's faults into this one (rejoin/seed: the
  /// other plan's settings win when it has rejoin enabled).
  FaultPlan& merge(const FaultPlan& other);

  [[nodiscard]] std::string describe() const;
};

}  // namespace splice::net
