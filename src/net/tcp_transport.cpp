#include "net/tcp_transport.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/codec.h"
#include "util/logging.h"

#if defined(__unix__) || defined(__APPLE__)

// NB: <fcntl.h> is off limits here — glibc declares the splice(2) syscall
// at global scope, which collides with our `namespace splice`. Nonblocking
// mode goes through ioctl(FIONBIO) instead of fcntl(F_SETFL).
#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace splice::net {

namespace {

constexpr std::uint32_t kHelloMagic = 0x53504C43;  // "SPLC"

// Group bring-up is skewed: rank 0 may dial rank 3 before rank 3 has bound
// its listener. For this window after construction a refused connection is
// retried instead of bounced, so startup order cannot fake a process death.
// After the grace, ECONNREFUSED means what it says (peer crashed) and fails
// fast so the §1 failure bounce fires promptly.
constexpr std::uint64_t kDialGraceNs = 5'000'000'000;  // 5 s
constexpr auto kDialRetryDelay = std::chrono::milliseconds(25);

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_nonblocking(int fd) {
  int one = 1;
  ::ioctl(fd, FIONBIO, &one);
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(sim::Simulator& sim, ProcId self, std::vector<TcpPeer> peers)
      : sim_(sim),
        self_(self),
        peers_(std::move(peers)),
        out_fds_(peers_.size(), -1) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("tcp: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(peers_[self_].port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(listen_fd_, 64) < 0) {
      ::close(listen_fd_);
      throw std::runtime_error("tcp: cannot listen on port " +
                               std::to_string(peers_[self_].port));
    }
    set_nonblocking(listen_fd_);
  }

  ~TcpTransport() override {
    for (int fd : out_fds_) {
      if (fd >= 0) ::close(fd);
    }
    for (const Inbound& in : inbound_) {
      if (in.fd >= 0) ::close(in.fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  [[nodiscard]] TransportKind kind() const noexcept override {
    return TransportKind::kTcp;
  }
  [[nodiscard]] bool local(ProcId p) const noexcept override {
    return p == self_;
  }
  [[nodiscard]] bool distributed() const noexcept override { return true; }

  void submit(Envelope&& env, sim::SimTime delay) override {
    if (env.to == self_) {
      // Loopback rides the event queue like the in-process backend. Local
      // traffic is sparse in TCP mode (self-sends plus synthesized
      // bounces), so a heap box per message is fine here.
      auto boxed = std::make_unique<Envelope>(std::move(env));
      sim_.after(delay, [this, boxed = std::move(boxed)]() mutable {
        deliver_(std::move(*boxed));
      });
      return;
    }

    frame_.clear();
    const std::uint64_t t0 = now_ns();
    codec::encode_frame(env, frame_);
    wire_.encode_ns += now_ns() - t0;
    ++wire_.frames;
    wire_.frame_bytes += frame_.size();
    wire_.payload_bytes += frame_.size() - codec::kFrameHeaderBytes;

    if (!write_all(env.to, frame_.data(), frame_.size())) {
      // Destination process is gone (or unreachable): hand the envelope
      // back so the Network can synthesize the §1 bounce.
      if (unreachable_) unreachable_(std::move(env));
      return;
    }
  }

  std::size_t poll() override {
    accept_pending();
    std::size_t delivered = 0;
    for (std::size_t i = 0; i < inbound_.size(); ++i) {
      delivered += drain(inbound_[i]);
    }
    // Compact links that saw EOF.
    std::erase_if(inbound_, [](const Inbound& in) { return in.fd < 0; });
    return delivered;
  }

 private:
  struct Inbound {
    int fd = -1;
    ProcId rank = kNoProc;
    std::vector<std::uint8_t> buf;
  };

  bool ensure_connected(ProcId p) {
    if (out_fds_[p] >= 0) return true;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(peers_[p].port);
    if (::inet_pton(AF_INET, peers_[p].host.c_str(), &addr.sin_addr) != 1) {
      return false;
    }
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return false;
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        break;
      }
      const int err = errno;
      ::close(fd);
      if (err != ECONNREFUSED || now_ns() - boot_ns_ > kDialGraceNs) {
        return false;
      }
      std::this_thread::sleep_for(kDialRetryDelay);
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Hello: [magic][rank], so the acceptor knows who is talking.
    std::uint32_t hello[2] = {kHelloMagic, self_};
    if (!write_fd(fd, reinterpret_cast<const std::uint8_t*>(hello),
                  sizeof(hello))) {
      ::close(fd);
      return false;
    }
    out_fds_[p] = fd;
    return true;
  }

  bool write_all(ProcId p, const std::uint8_t* data, std::size_t n) {
    if (!ensure_connected(p)) return false;
    if (write_fd(out_fds_[p], data, n)) return true;
    // Stale link (peer died and restarted, or died outright): retry once
    // on a fresh connection before declaring the peer unreachable.
    ::close(out_fds_[p]);
    out_fds_[p] = -1;
    if (!ensure_connected(p)) return false;
    if (write_fd(out_fds_[p], data, n)) return true;
    ::close(out_fds_[p]);
    out_fds_[p] = -1;
    return false;
  }

  static bool write_fd(int fd, const std::uint8_t* data, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

  void accept_pending() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      // Read the 8-byte hello synchronously (bounded by a 1s timeout so a
      // garbage connection cannot wedge the driver loop).
      timeval tv{1, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      std::uint32_t hello[2] = {0, 0};
      std::size_t got = 0;
      while (got < sizeof(hello)) {
        const ssize_t r = ::recv(fd, reinterpret_cast<std::uint8_t*>(hello) +
                                         got,
                                 sizeof(hello) - got, 0);
        if (r <= 0) break;
        got += static_cast<std::size_t>(r);
      }
      if (got != sizeof(hello) || hello[0] != kHelloMagic ||
          hello[1] >= peers_.size()) {
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      Inbound in;
      in.fd = fd;
      in.rank = hello[1];
      inbound_.push_back(std::move(in));
      SPLICE_DEBUG() << "tcp: rank " << self_ << " accepted link from rank "
                     << hello[1];
    }
  }

  std::size_t drain(Inbound& in) {
    std::size_t delivered = 0;
    std::uint8_t chunk[16384];
    for (;;) {
      const ssize_t r = ::recv(in.fd, chunk, sizeof(chunk), 0);
      if (r > 0) {
        in.buf.insert(in.buf.end(), chunk, chunk + r);
        continue;
      }
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (r < 0 && errno == EINTR) continue;
      // EOF or hard error: peer is gone (fail-silent); keep buffered
      // complete frames, drop the link.
      ::close(in.fd);
      in.fd = -1;
      break;
    }
    std::size_t off = 0;
    std::uint32_t body = 0;
    while (codec::read_frame_header(in.buf.data() + off, in.buf.size() - off,
                                    &body) &&
           in.buf.size() - off - codec::kFrameHeaderBytes >= body) {
      off += codec::kFrameHeaderBytes;
      const std::uint64_t t0 = now_ns();
      Envelope env = codec::decode_envelope(in.buf.data() + off, body);
      wire_.decode_ns += now_ns() - t0;
      off += body;
      deliver_(std::move(env));
      ++delivered;
    }
    if (off > 0) {
      in.buf.erase(in.buf.begin(),
                   in.buf.begin() + static_cast<std::ptrdiff_t>(off));
    }
    return delivered;
  }

  sim::Simulator& sim_;
  ProcId self_;
  std::vector<TcpPeer> peers_;
  int listen_fd_ = -1;
  std::vector<int> out_fds_;
  std::vector<Inbound> inbound_;
  std::vector<std::uint8_t> frame_;
  std::uint64_t boot_ns_ = now_ns();
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(sim::Simulator& sim, ProcId self,
                                              std::vector<TcpPeer> peers) {
  return std::make_unique<TcpTransport>(sim, self, std::move(peers));
}

}  // namespace splice::net

#else  // non-POSIX: the TCP backend is unavailable.

namespace splice::net {

std::unique_ptr<Transport> make_tcp_transport(sim::Simulator&, ProcId,
                                              std::vector<TcpPeer>) {
  throw std::runtime_error("tcp transport requires a POSIX platform");
}

}  // namespace splice::net

#endif
