#include "net/link_faults.h"

#include <cassert>

#include "util/rng.h"

namespace splice::net {

namespace {
// Keeps link-fault draws independent of the cascade/Poisson streams that
// share the plan seed (net/fault_injector.cpp).
constexpr std::uint64_t kLinkStream = 0x117CFA0170000000ULL;
}  // namespace

LinkFaultModel::LinkFaultModel(std::uint64_t seed, ProcId processors)
    : seed_(seed),
      procs_(processors),
      seq_(static_cast<std::size_t>(processors) * processors, 0) {}

void LinkFaultModel::add_partition(const std::vector<ProcId>& side,
                                   sim::SimTime start, sim::SimTime end) {
  ArmedPartition armed;
  armed.side.assign(procs_, false);
  for (const ProcId p : side) {
    assert(p < procs_);
    armed.side[p] = true;
  }
  armed.start = start;
  armed.end = end;
  partitions_.push_back(std::move(armed));
}

void LinkFaultModel::add_link(const LinkQuality& quality) {
  links_.push_back(quality);
  if (quality.dup_p > 0.0) may_duplicate_ = true;
}

void LinkFaultModel::add_gray(const GraySpec& spec) {
  assert(spec.node < procs_);
  grays_.push_back(spec);
}

bool LinkFaultModel::reachable(ProcId a, ProcId b, sim::SimTime now) const {
  if (a == b) return true;
  for (const ArmedPartition& cut : partitions_) {
    if (now >= cut.start && now < cut.end && cut.side[a] != cut.side[b]) {
      return false;
    }
  }
  return true;
}

LinkFaultModel::Verdict LinkFaultModel::shape(MsgKind kind, ProcId from,
                                              ProcId to, sim::SimTime now,
                                              sim::SimTime nominal) {
  Verdict verdict;
  const std::size_t link =
      static_cast<std::size_t>(from) * procs_ + to;
  const std::uint64_t seq = seq_[link]++;

  if (!reachable(from, to, now)) {
    verdict.cut = true;
    return verdict;  // the cut decides; no draws are spent on a lost link
  }

  // One generator per (seed, link, seq); draws below happen in a fixed
  // order regardless of outcome, so the verdict is a pure function of the
  // triple and nothing else.
  util::Xoshiro256 rng(util::hash_combine(
      seed_, util::hash_combine(kLinkStream + link, seq)));

  std::int64_t extra = 0;
  for (const LinkQuality& q : links_) {
    if (now < q.start || now >= q.stop) continue;
    const bool forward = (q.src == kNoProc || q.src == from) &&
                         (q.dst == kNoProc || q.dst == to);
    const bool reverse = q.symmetric && (q.src == kNoProc || q.src == to) &&
                         (q.dst == kNoProc || q.dst == from);
    if (!forward && !reverse) continue;
    if (q.drop_p > 0.0 && rng.next_bool(q.drop_p)) verdict.drop = true;
    if (q.dup_p > 0.0 && rng.next_bool(q.dup_p)) verdict.duplicate = true;
    if (q.reorder_p > 0.0 && rng.next_bool(q.reorder_p)) {
      verdict.reordered = true;
      // Hold back 1-3 nominal latencies: enough for traffic sent after
      // this message to arrive before it.
      extra += nominal.ticks() *
               (1 + static_cast<std::int64_t>(rng.next_below(3)));
    }
    extra += q.delay;
    if (q.jitter > 0) {
      extra += static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(q.jitter) + 1));
    }
  }

  for (const GraySpec& g : grays_) {
    if (now < g.start || now >= g.stop) continue;
    if (g.node != from && g.node != to) continue;
    if (!is_control_kind(kind) && g.payload_drop_p > 0.0 &&
        rng.next_bool(g.payload_drop_p)) {
      verdict.gray_drop = true;
    }
    // Survivors crawl: control traffic keeps proving the node alive while
    // everything it carries arrives late.
    extra += nominal.ticks() * (g.slow_factor - 1);
  }

  if (verdict.duplicate) {
    // The clone trails the original by its own offset (drawn last, after
    // every spec's draws, to keep the order fixed).
    verdict.dup_extra =
        sim::SimTime(1 + static_cast<std::int64_t>(
                             rng.next_below(static_cast<std::uint64_t>(
                                 nominal.ticks() > 0 ? nominal.ticks() : 1))));
  }
  verdict.extra = sim::SimTime(extra);
  return verdict;
}

}  // namespace splice::net
