// Message envelope.
//
// Packet kinds mirror the paper's protocol loop (§4.2): task packets,
// forward-result, fetch-data, error-detection — plus the plumbing the paper
// assumes implicitly: spawn acknowledgements (Fig. 6 states b/c), delivery-
// failure notifications (best-effort send + timeout, §1), heartbeats, load
// updates for the gradient scheduler, and checkpoint-transfer for the
// periodic-global baseline.
#pragma once

#include <any>
#include <cstdint>
#include <string_view>

#include "net/topology.h"
#include "sim/time.h"

namespace splice::net {

enum class MsgKind : std::uint8_t {
  kTaskPacket,       // parent spawns child (carries TaskPacket payload)
  kSpawnAck,         // child's host acknowledges the spawn (Fig. 6 state c)
  kForwardResult,    // child returns its value (level-stamped, §4.2)
  kFetchData,        // demand for a remote datum (§4.2 "fetch data")
  kDataReply,        // answer to kFetchData
  kErrorDetection,   // "processor P is faulty" notification (§4.2)
  kDeliveryFailure,  // network tells sender the destination is unreachable
  kHeartbeat,        // liveness probe (optional detector)
  kLoadUpdate,       // gradient-model pressure exchange
  kCheckpointXfer,   // periodic-global baseline state transfer
  kRejoinNotice,     // repaired processor announces it is back
  kStateRequest,     // warm rejoiner asks peers for state held against it
  kStateChunk,       // bounded slice of checkpoints + liveness (transfer)
  kControl,          // runtime-internal control (super-root start, etc.)
};

inline constexpr std::size_t kMsgKindCount = 14;

[[nodiscard]] std::string_view to_string(MsgKind kind) noexcept;

/// An in-flight message. `payload` is owned; receivers any_cast to the
/// concrete runtime payload type keyed by `kind`.
struct Envelope {
  MsgKind kind = MsgKind::kControl;
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  /// Abstract size in "data units"; scales transfer latency.
  std::uint32_t size_units = 1;
  sim::SimTime sent_at;
  std::any payload;
};

}  // namespace splice::net
