// Message envelope.
//
// Packet kinds mirror the paper's protocol loop (§4.2): task packets,
// forward-result, fetch-data, error-detection — plus the plumbing the paper
// assumes implicitly: spawn acknowledgements (Fig. 6 states b/c), delivery-
// failure notifications (best-effort send + timeout, §1), heartbeats, load
// updates for the gradient scheduler, and checkpoint-transfer for the
// periodic-global baseline.
//
// Payloads are a *closed* variant over the concrete protocol message types,
// not std::any: a send costs zero payload allocations (the variant lives
// inline in the envelope), receivers dispatch with std::get, and adding a
// kind without a payload alternative is a compile-time error at the
// construction site instead of a bad_any_cast at delivery time. The one
// recursive case — a delivery-failure notice carries the lost envelope —
// is boxed through EnvelopeBox (a unique_ptr, so still one allocation, but
// bounces are the cold path by construction).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>
#include <variant>

#include "net/topology.h"
#include "runtime/task_packet.h"
#include "sim/time.h"
#include "store/state_transfer.h"

namespace splice::net {

enum class MsgKind : std::uint8_t {
  kTaskPacket,       // parent spawns child (carries TaskPacket payload)
  kSpawnAck,         // child's host acknowledges the spawn (Fig. 6 state c)
  kForwardResult,    // child returns its value (level-stamped, §4.2)
  kFetchData,        // demand for a remote datum (§4.2 "fetch data")
  kDataReply,        // answer to kFetchData
  kErrorDetection,   // "processor P is faulty" notification (§4.2)
  kDeliveryFailure,  // network tells sender the destination is unreachable
  kHeartbeat,        // liveness probe (optional detector)
  kLoadUpdate,       // gradient-model pressure exchange
  kCheckpointXfer,   // periodic-global baseline state transfer
  kRejoinNotice,     // repaired processor announces it is back
  kStateRequest,     // warm rejoiner asks peers for state held against it
  kStateChunk,       // bounded slice of checkpoints + liveness (transfer)
  kCancel,           // abort a duplicate task lineage (subtree-scoped)
  kControl,          // runtime-internal control (super-root start, etc.)
};

inline constexpr std::size_t kMsgKindCount = 15;

[[nodiscard]] std::string_view to_string(MsgKind kind) noexcept;

struct Envelope;

/// Heap box for the recursive delivery-failure payload (the notice carries
/// the envelope that could not be delivered). Move-only, nothrow-movable.
class EnvelopeBox {
 public:
  EnvelopeBox() noexcept;
  explicit EnvelopeBox(Envelope&& env);
  EnvelopeBox(EnvelopeBox&&) noexcept;
  EnvelopeBox& operator=(EnvelopeBox&&) noexcept;
  EnvelopeBox(const EnvelopeBox&) = delete;
  EnvelopeBox& operator=(const EnvelopeBox&) = delete;
  ~EnvelopeBox();

  [[nodiscard]] Envelope& operator*() noexcept { return *boxed_; }
  [[nodiscard]] const Envelope& operator*() const noexcept { return *boxed_; }
  [[nodiscard]] Envelope* operator->() noexcept { return boxed_.get(); }
  [[nodiscard]] const Envelope* operator->() const noexcept {
    return boxed_.get();
  }
  [[nodiscard]] bool has_value() const noexcept { return boxed_ != nullptr; }

 private:
  std::unique_ptr<Envelope> boxed_;
};

/// The closed set of wire payloads, one alternative per payload-bearing
/// MsgKind (monostate covers the kinds that are pure signals). Keep this in
/// sync with MsgKind: receivers std::get the alternative keyed by `kind`.
using Payload = std::variant<std::monostate,
                             runtime::TaskPacket,       // kTaskPacket
                             runtime::AckMsg,           // kSpawnAck
                             runtime::ResultMsg,        // kForwardResult
                             runtime::ErrorMsg,         // kErrorDetection
                             runtime::HeartbeatMsg,     // kHeartbeat
                             runtime::RejoinMsg,        // kRejoinNotice
                             runtime::LoadMsg,          // kLoadUpdate
                             runtime::ControlMsg,       // kControl
                             runtime::CancelMsg,        // kCancel
                             store::StateRequestMsg,    // kStateRequest
                             store::StateChunkMsg,      // kStateChunk
                             EnvelopeBox>;              // kDeliveryFailure

/// An in-flight message. `payload` is owned; receivers std::get the
/// concrete payload alternative keyed by `kind`. Envelopes are move-only:
/// delivery hands each message through the network exactly once, and the
/// type system now proves no path copies one.
struct Envelope {
  MsgKind kind = MsgKind::kControl;
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  /// Abstract size in "data units"; scales transfer latency.
  std::uint32_t size_units = 1;
  sim::SimTime sent_at;
  Payload payload;

  Envelope() = default;
  Envelope(Envelope&&) = default;
  Envelope& operator=(Envelope&&) = default;
  Envelope(const Envelope&) = delete;
  Envelope& operator=(const Envelope&) = delete;
};

// The scheduler-facing guarantee: envelopes relocate (through the event
// queue, the in-flight pool, and receiver dispatch) without throwing and
// without copying.
static_assert(std::is_nothrow_move_constructible_v<Envelope>);
static_assert(std::is_nothrow_move_assignable_v<Envelope>);
static_assert(!std::is_copy_constructible_v<Envelope>);

/// The variant index of the payload alternative each kind carries
/// (monostate for the pure-signal kinds). This is the single kind→payload
/// table shared by the wire codec (encode/decode), the dispatch assert in
/// Processor::handle, and the round-trip tests — a new MsgKind that is not
/// added here fails the static_assert below, and a new payload alternative
/// without a kind fails the codec's exhaustive visit.
[[nodiscard]] constexpr std::size_t payload_index_of(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kTaskPacket:      return 1;
    case MsgKind::kSpawnAck:        return 2;
    case MsgKind::kForwardResult:   return 3;
    case MsgKind::kFetchData:       return 0;
    case MsgKind::kDataReply:       return 0;
    case MsgKind::kErrorDetection:  return 4;
    case MsgKind::kDeliveryFailure: return 12;
    case MsgKind::kHeartbeat:       return 5;
    case MsgKind::kLoadUpdate:      return 7;
    case MsgKind::kCheckpointXfer:  return 0;
    case MsgKind::kRejoinNotice:    return 6;
    case MsgKind::kStateRequest:    return 10;
    case MsgKind::kStateChunk:      return 11;
    case MsgKind::kCancel:          return 9;
    case MsgKind::kControl:         return 8;
  }
  return 0;
}

// Pin the table to the variant layout: renumbering Payload without
// updating payload_index_of is a compile error, not a wire corruption.
static_assert(std::variant_size_v<Payload> == 13);
static_assert(std::is_same_v<std::variant_alternative_t<1, Payload>,
                             runtime::TaskPacket>);
static_assert(std::is_same_v<std::variant_alternative_t<2, Payload>,
                             runtime::AckMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<3, Payload>,
                             runtime::ResultMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<4, Payload>,
                             runtime::ErrorMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<5, Payload>,
                             runtime::HeartbeatMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<6, Payload>,
                             runtime::RejoinMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<7, Payload>,
                             runtime::LoadMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<8, Payload>,
                             runtime::ControlMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<9, Payload>,
                             runtime::CancelMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<10, Payload>,
                             store::StateRequestMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<11, Payload>,
                             store::StateChunkMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<12, Payload>,
                             EnvelopeBox>);

/// Does the envelope's payload alternative match its declared kind?
/// (Debug-assert guard at the dispatch and encode boundaries.)
[[nodiscard]] inline bool payload_consistent(MsgKind kind,
                                             const Payload& payload) noexcept {
  return payload.index() == payload_index_of(kind);
}

}  // namespace splice::net
