#include "net/codec.h"

#include <cassert>
#include <utility>
#include <variant>

namespace splice::net::codec {

namespace {

using runtime::AckMsg;
using runtime::CancelMsg;
using runtime::ErrorMsg;
using runtime::HeartbeatMsg;
using runtime::LevelStamp;
using runtime::LoadMsg;
using runtime::RejoinMsg;
using runtime::ResultMsg;
using runtime::TaskPacket;
using runtime::TaskRef;

// Deltas over full-range 64-bit fields (uids, list integers) must wrap:
// computing INT64_MIN - INT64_MAX as signed is UB, but the two's-complement
// wrapped difference is still a bijection, so encoding stays canonical.
// Subtract/add in uint64 and cast — C++20 defines both conversions.
[[nodiscard]] std::int64_t wrap_delta(std::uint64_t value,
                                      std::uint64_t prev) noexcept {
  return static_cast<std::int64_t>(value - prev);
}
[[nodiscard]] std::uint64_t wrap_add(std::uint64_t prev,
                                     std::int64_t delta) noexcept {
  return prev + static_cast<std::uint64_t>(delta);
}

// ---- field encoders --------------------------------------------------------

void put_stamp(Writer& w, const LevelStamp& stamp) {
  const auto& digits = stamp.digits();
  w.varint(digits.size());
  // Call-site digits along one root path cluster tightly (they are ExprIds
  // of neighbouring Call nodes), so deltas are almost always one byte.
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i == 0) {
      w.varint(digits[0]);
    } else {
      w.svarint(static_cast<std::int64_t>(digits[i]) -
                static_cast<std::int64_t>(prev));
    }
    prev = digits[i];
  }
}

LevelStamp get_stamp(Reader& r) {
  const std::uint64_t depth = r.varint();
  if (depth > r.remaining()) throw CodecError("codec: stamp depth overruns");
  LevelStamp::Digits digits;
  digits.reserve(depth);
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < depth; ++i) {
    // Wrapped add: a malformed delta must land in the range check below,
    // not in signed-overflow UB.
    const std::int64_t digit =
        i == 0 ? static_cast<std::int64_t>(r.varint())
               : static_cast<std::int64_t>(wrap_add(
                     static_cast<std::uint64_t>(prev), r.svarint()));
    if (digit < 0 || digit > UINT32_MAX) {
      throw CodecError("codec: stamp digit out of range");
    }
    digits.push_back(static_cast<runtime::StampDigit>(digit));
    prev = digit;
  }
  return LevelStamp(std::move(digits));
}

void put_ref(Writer& w, TaskRef ref) {
  w.varint(ref.proc);
  w.varint(ref.uid);
}

TaskRef get_ref(Reader& r) {
  TaskRef ref;
  const std::uint64_t proc = r.varint();
  if (proc > UINT32_MAX) throw CodecError("codec: proc out of range");
  ref.proc = static_cast<ProcId>(proc);
  ref.uid = r.varint();
  return ref;
}

// Ancestor chains are spawn-ordered: uids of parent, grandparent, ... were
// allocated close together, so the uid run delta-encodes against the
// previous entry. Procs stay plain varints (no ordering to exploit).
void put_ancestors(Writer& w, const util::SmallVec<TaskRef, 4>& chain) {
  w.varint(chain.size());
  std::uint64_t prev_uid = 0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    w.varint(chain[i].proc);
    if (i == 0) {
      w.varint(chain[i].uid);
    } else {
      w.svarint(wrap_delta(chain[i].uid, prev_uid));
    }
    prev_uid = chain[i].uid;
  }
}

util::SmallVec<TaskRef, 4> get_ancestors(Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) throw CodecError("codec: chain overruns");
  util::SmallVec<TaskRef, 4> chain;
  chain.reserve(count);
  std::uint64_t prev_uid = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    TaskRef ref;
    const std::uint64_t proc = r.varint();
    if (proc > UINT32_MAX) throw CodecError("codec: proc out of range");
    ref.proc = static_cast<ProcId>(proc);
    ref.uid = i == 0 ? r.varint() : wrap_add(prev_uid, r.svarint());
    prev_uid = ref.uid;
    chain.push_back(ref);
  }
  return chain;
}

void put_value(Writer& w, const lang::Value& value) {
  if (value.is_int()) {
    w.u8(0);
    w.svarint(value.as_int());
    return;
  }
  w.u8(1);
  const auto& items = value.as_list();
  w.varint(items.size());
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    // Workload lists (iota runs, sorted merges) are near-monotone; deltas
    // keep a 10k-element list at ~1 byte per element.
    if (i == 0) {
      w.svarint(items[0]);
    } else {
      w.svarint(wrap_delta(static_cast<std::uint64_t>(items[i]),
                           static_cast<std::uint64_t>(prev)));
    }
    prev = items[i];
  }
}

lang::Value get_value(Reader& r) {
  const std::uint8_t tag = r.u8();
  if (tag == 0) return lang::Value::integer(r.svarint());
  if (tag != 1) throw CodecError("codec: bad value tag");
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) throw CodecError("codec: list overruns");
  std::vector<std::int64_t> items;
  items.reserve(count);
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t v =
        i == 0 ? r.svarint()
               : static_cast<std::int64_t>(wrap_add(
                     static_cast<std::uint64_t>(prev), r.svarint()));
    items.push_back(v);
    prev = v;
  }
  return lang::Value::list(std::move(items));
}

void put_args(Writer& w, const TaskPacket::Args& args) {
  w.varint(args.size());
  for (const lang::Value& v : args) put_value(w, v);
}

TaskPacket::Args get_args(Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) throw CodecError("codec: args overrun");
  TaskPacket::Args args;
  args.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) args.push_back(get_value(r));
  return args;
}

void put_packet(Writer& w, const TaskPacket& p) {
  put_stamp(w, p.stamp);
  w.varint(p.fn);
  w.varint(p.call_site);
  put_args(w, p.args);
  put_ancestors(w, p.ancestors);
  w.varint(p.replica);
  w.varint(p.lineage);
  w.svarint(p.zone);
}

TaskPacket get_packet(Reader& r) {
  TaskPacket p;
  p.stamp = get_stamp(r);
  const std::uint64_t fn = r.varint();
  const std::uint64_t site = r.varint();
  if (fn > UINT32_MAX || site > UINT32_MAX) {
    throw CodecError("codec: expr id out of range");
  }
  p.fn = static_cast<lang::FuncId>(fn);
  p.call_site = static_cast<lang::ExprId>(site);
  p.args = get_args(r);
  p.ancestors = get_ancestors(r);
  const std::uint64_t replica = r.varint();
  const std::uint64_t lineage = r.varint();
  const std::int64_t zone = r.svarint();
  if (replica > UINT32_MAX || lineage > UINT32_MAX || zone < INT32_MIN ||
      zone > INT32_MAX) {
    throw CodecError("codec: packet field out of range");
  }
  p.replica = static_cast<std::uint32_t>(replica);
  p.lineage = static_cast<std::uint32_t>(lineage);
  p.zone = static_cast<std::int32_t>(zone);
  return p;
}

// ---- payload encoders (exhaustive over the closed variant) -----------------

struct PayloadEncoder {
  Writer& w;

  void operator()(const std::monostate&) const {}
  void operator()(const TaskPacket& p) const { put_packet(w, p); }
  void operator()(const AckMsg& m) const {
    put_stamp(w, m.stamp);
    w.varint(m.call_site);
    put_ref(w, m.parent);
    put_ref(w, m.child);
    w.varint(m.replica);
    w.varint(m.lineage);
  }
  void operator()(const ResultMsg& m) const {
    put_stamp(w, m.stamp);
    w.varint(m.call_site);
    put_value(w, m.value);
    put_ref(w, m.target);
    w.u8(static_cast<std::uint8_t>(m.relation));
    w.varint(m.ancestor_index);
    put_ancestors(w, m.ancestors);
    w.varint(m.replica);
    w.u8(m.relayed ? 1 : 0);
  }
  void operator()(const ErrorMsg& m) const {
    w.varint(m.dead);
    w.varint(m.reporter);
  }
  void operator()(const HeartbeatMsg& m) const { w.varint(m.sequence); }
  void operator()(const RejoinMsg& m) const { w.varint(m.who); }
  void operator()(const LoadMsg& m) const {
    w.varint(m.pressure);
    w.varint(m.proximity);
  }
  void operator()(const runtime::ControlMsg& m) const {
    w.u8(static_cast<std::uint8_t>(m.kind));
  }
  void operator()(const CancelMsg& m) const {
    put_stamp(w, m.stamp);
    w.varint(m.replica);
    w.varint(m.uid);
    put_ref(w, m.parent);
    w.svarint(m.issued_at.ticks());
  }
  void operator()(const store::StateRequestMsg& m) const {
    w.varint(m.who);
    w.varint(m.incarnation);
  }
  void operator()(const store::StateChunkMsg& m) const {
    w.varint(m.incarnation);
    w.varint(m.seq);
    w.u8(m.last ? 1 : 0);
    w.varint(m.packets.size());
    for (const TaskPacket& p : m.packets) put_packet(w, p);
    // The dead set ships sorted (the streamer sorts for determinism), so
    // deltas are small positives; svarint tolerates unsorted input too.
    w.varint(m.known_dead.size());
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < m.known_dead.size(); ++i) {
      if (i == 0) {
        w.varint(m.known_dead[0]);
      } else {
        w.svarint(static_cast<std::int64_t>(m.known_dead[i]) - prev);
      }
      prev = static_cast<std::int64_t>(m.known_dead[i]);
    }
  }
  void operator()(const EnvelopeBox& box) const {
    // Recursive: a delivery-failure notice carries the lost envelope.
    w.u8(box.has_value() ? 1 : 0);
    if (box.has_value()) {
      std::vector<std::uint8_t> inner;
      encode_envelope(*box, inner);
      w.varint(inner.size());
      for (std::uint8_t b : inner) w.u8(b);
    }
  }
};

ProcId get_proc(Reader& r) {
  const std::uint64_t p = r.varint();
  if (p > UINT32_MAX) throw CodecError("codec: proc out of range");
  return static_cast<ProcId>(p);
}

std::uint32_t get_u32(Reader& r, const char* what) {
  const std::uint64_t v = r.varint();
  if (v > UINT32_MAX) throw CodecError(std::string("codec: ") + what +
                                       " out of range");
  return static_cast<std::uint32_t>(v);
}

Payload decode_payload(MsgKind kind, Reader& r) {
  // Exhaustive over MsgKind (-Werror=switch): a new kind that reaches the
  // wire without a decode arm fails the build, mirroring PayloadEncoder's
  // compile-time closure over the variant.
  switch (kind) {
    case MsgKind::kFetchData:
    case MsgKind::kDataReply:
    case MsgKind::kCheckpointXfer:
      return std::monostate{};
    case MsgKind::kTaskPacket:
      return get_packet(r);
    case MsgKind::kSpawnAck: {
      AckMsg m;
      m.stamp = get_stamp(r);
      m.call_site = static_cast<lang::ExprId>(get_u32(r, "call_site"));
      m.parent = get_ref(r);
      m.child = get_ref(r);
      m.replica = get_u32(r, "replica");
      m.lineage = get_u32(r, "lineage");
      return m;
    }
    case MsgKind::kForwardResult: {
      ResultMsg m;
      m.stamp = get_stamp(r);
      m.call_site = static_cast<lang::ExprId>(get_u32(r, "call_site"));
      m.value = get_value(r);
      m.target = get_ref(r);
      const std::uint8_t relation = r.u8();
      if (relation > 1) throw CodecError("codec: bad result relation");
      m.relation = static_cast<runtime::ResultRelation>(relation);
      m.ancestor_index = get_u32(r, "ancestor_index");
      m.ancestors = get_ancestors(r);
      m.replica = get_u32(r, "replica");
      const std::uint8_t relayed = r.u8();
      if (relayed > 1) throw CodecError("codec: bad relayed flag");
      m.relayed = relayed != 0;
      return m;
    }
    case MsgKind::kErrorDetection: {
      ErrorMsg m;
      m.dead = get_proc(r);
      m.reporter = get_proc(r);
      return m;
    }
    case MsgKind::kHeartbeat: {
      HeartbeatMsg m;
      m.sequence = r.varint();
      return m;
    }
    case MsgKind::kRejoinNotice: {
      RejoinMsg m;
      m.who = get_proc(r);
      return m;
    }
    case MsgKind::kLoadUpdate: {
      LoadMsg m;
      m.pressure = get_u32(r, "pressure");
      m.proximity = get_u32(r, "proximity");
      return m;
    }
    case MsgKind::kControl: {
      const std::uint8_t raw = r.u8();
      if (raw > static_cast<std::uint8_t>(runtime::ControlKind::kShutdown)) {
        throw CodecError("codec: bad control kind");
      }
      runtime::ControlMsg m;
      m.kind = static_cast<runtime::ControlKind>(raw);
      return m;
    }
    case MsgKind::kCancel: {
      CancelMsg m;
      m.stamp = get_stamp(r);
      m.replica = get_u32(r, "replica");
      m.uid = r.varint();
      m.parent = get_ref(r);
      m.issued_at = sim::SimTime(r.svarint());
      return m;
    }
    case MsgKind::kStateRequest: {
      store::StateRequestMsg m;
      m.who = get_proc(r);
      m.incarnation = r.varint();
      return m;
    }
    case MsgKind::kStateChunk: {
      store::StateChunkMsg m;
      m.incarnation = r.varint();
      m.seq = get_u32(r, "seq");
      const std::uint8_t last = r.u8();
      if (last > 1) throw CodecError("codec: bad last flag");
      m.last = last != 0;
      const std::uint64_t packets = r.varint();
      if (packets > r.remaining()) throw CodecError("codec: chunk overruns");
      m.packets.reserve(packets);
      for (std::uint64_t i = 0; i < packets; ++i) {
        m.packets.push_back(get_packet(r));
      }
      const std::uint64_t dead = r.varint();
      if (dead > r.remaining()) throw CodecError("codec: dead set overruns");
      m.known_dead.reserve(dead);
      std::int64_t prev = 0;
      for (std::uint64_t i = 0; i < dead; ++i) {
        const std::int64_t p =
            i == 0 ? static_cast<std::int64_t>(r.varint())
                   : static_cast<std::int64_t>(wrap_add(
                         static_cast<std::uint64_t>(prev), r.svarint()));
        if (p < 0 || p > UINT32_MAX) {
          throw CodecError("codec: dead proc out of range");
        }
        m.known_dead.push_back(static_cast<ProcId>(p));
        prev = p;
      }
      return m;
    }
    case MsgKind::kDeliveryFailure: {
      const std::uint8_t present = r.u8();
      if (present > 1) throw CodecError("codec: bad box flag");
      if (present == 0) return EnvelopeBox{};
      const std::uint64_t len = r.varint();
      if (len > r.remaining()) throw CodecError("codec: boxed overruns");
      std::vector<std::uint8_t> inner;
      inner.reserve(len);
      for (std::uint64_t i = 0; i < len; ++i) inner.push_back(r.u8());
      return EnvelopeBox(decode_envelope(inner.data(), inner.size()));
    }
  }
  throw CodecError("codec: unknown kind");
}

}  // namespace

void encode_envelope(const Envelope& env, std::vector<std::uint8_t>& out) {
  assert(payload_consistent(env.kind, env.payload));
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(env.kind));
  w.varint(env.from);
  w.varint(env.to);
  w.varint(env.size_units);
  w.svarint(env.sent_at.ticks());
  std::visit(PayloadEncoder{w}, env.payload);
}

Envelope decode_envelope(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  const std::uint8_t raw_kind = r.u8();
  if (raw_kind >= kMsgKindCount) throw CodecError("codec: bad kind byte");
  Envelope env;
  env.kind = static_cast<MsgKind>(raw_kind);
  env.from = get_proc(r);
  env.to = get_proc(r);
  env.size_units = get_u32(r, "size_units");
  env.sent_at = sim::SimTime(r.svarint());
  env.payload = decode_payload(env.kind, r);
  if (!r.done()) throw CodecError("codec: trailing bytes");
  return env;
}

std::size_t encode_frame(const Envelope& env, std::vector<std::uint8_t>& out) {
  const std::size_t header_at = out.size();
  out.resize(header_at + kFrameHeaderBytes);
  encode_envelope(env, out);
  const std::size_t body = out.size() - header_at - kFrameHeaderBytes;
  out[header_at + 0] = static_cast<std::uint8_t>(body);
  out[header_at + 1] = static_cast<std::uint8_t>(body >> 8);
  out[header_at + 2] = static_cast<std::uint8_t>(body >> 16);
  out[header_at + 3] = static_cast<std::uint8_t>(body >> 24);
  return body;
}

bool read_frame_header(const std::uint8_t* data, std::size_t size,
                       std::uint32_t* body_length) noexcept {
  if (size < kFrameHeaderBytes) return false;
  *body_length = static_cast<std::uint32_t>(data[0]) |
                 static_cast<std::uint32_t>(data[1]) << 8 |
                 static_cast<std::uint32_t>(data[2]) << 16 |
                 static_cast<std::uint32_t>(data[3]) << 24;
  return true;
}

}  // namespace splice::net::codec
