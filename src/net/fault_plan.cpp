#include "net/fault_plan.h"

#include <sstream>

namespace splice::net {

std::vector<ProcId> RegionSpec::resolve(const Topology& topology) const {
  switch (kind) {
    case Kind::kGridRect:
      return topology.grid_rect(a, b, c, d);
    case Kind::kRingArc:
      return topology.ring_arc(a, c);
    case Kind::kSubcube:
      return topology.subcube(a, b);
    case Kind::kNeighborhood:
      return topology.neighborhood(a, c);
  }
  return {};
}

std::string RegionSpec::describe() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kGridRect:
      out << "rect(" << a << "," << b << " " << c << "x" << d << ")";
      break;
    case Kind::kRingArc:
      out << "arc(" << a << "+" << c << ")";
      break;
    case Kind::kSubcube:
      out << "subcube(mask=" << a << ",value=" << b << ")";
      break;
    case Kind::kNeighborhood:
      out << "hood(" << a << ",r" << c << ")";
      break;
  }
  return out.str();
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  timed.insert(timed.end(), other.timed.begin(), other.timed.end());
  triggered.insert(triggered.end(), other.triggered.begin(),
                   other.triggered.end());
  regional.insert(regional.end(), other.regional.begin(),
                  other.regional.end());
  cascades.insert(cascades.end(), other.cascades.begin(),
                  other.cascades.end());
  recurring.insert(recurring.end(), other.recurring.begin(),
                   other.recurring.end());
  partitions.insert(partitions.end(), other.partitions.begin(),
                    other.partitions.end());
  links.insert(links.end(), other.links.begin(), other.links.end());
  grays.insert(grays.end(), other.grays.begin(), other.grays.end());
  if (other.rejoin.enabled) rejoin = other.rejoin;
  return *this;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "plan{";
  const char* sep = "";
  for (const TimedFault& f : timed) {
    out << sep << "kill P" << f.target << "@" << f.when.ticks();
    sep = "; ";
  }
  for (const TriggeredFault& f : triggered) {
    out << sep << "kill P" << f.target << " on '" << f.trigger << "'";
    if (f.delay.ticks() > 0) out << "+" << f.delay.ticks();
    sep = "; ";
  }
  for (const RegionalFault& f : regional) {
    out << sep << "kill " << f.region.describe() << "@" << f.when.ticks();
    sep = "; ";
  }
  for (const CascadeFault& f : cascades) {
    out << sep << "cascade P" << f.seed << "@" << f.when.ticks() << " p="
        << f.probability << " decay=" << f.decay << " hops=" << f.max_hops
        << " stagger=" << f.stagger.ticks();
    sep = "; ";
  }
  for (const RecurringFault& f : recurring) {
    out << sep << "poisson mean=" << f.mean_interval << " ["
        << f.start.ticks() << ",";
    if (f.stop == sim::SimTime::max()) {
      out << "inf";
    } else {
      out << f.stop.ticks();
    }
    out << ") max=" << f.max_faults;
    if (!f.candidates.empty()) out << " over " << f.candidates.size();
    sep = "; ";
  }
  for (const PartitionSpec& f : partitions) {
    out << sep << "partition " << f.side.describe() << "@" << f.at.ticks();
    if (f.heal_mean > 0.0) {
      out << " heal~" << f.heal_mean;
    } else if (f.heal_after.ticks() > 0) {
      out << " heal+" << f.heal_after.ticks();
    }
    sep = "; ";
  }
  for (const LinkQuality& f : links) {
    out << sep << "link ";
    if (f.src == kNoProc) {
      out << "*";
    } else {
      out << "P" << f.src;
    }
    out << (f.symmetric ? "-" : ">");
    if (f.dst == kNoProc) {
      out << "*";
    } else {
      out << "P" << f.dst;
    }
    if (f.drop_p > 0) out << " drop=" << f.drop_p;
    if (f.dup_p > 0) out << " dup=" << f.dup_p;
    if (f.reorder_p > 0) out << " reorder=" << f.reorder_p;
    if (f.delay > 0) out << " delay=" << f.delay;
    if (f.jitter > 0) out << " jitter=" << f.jitter;
    sep = "; ";
  }
  for (const GraySpec& f : grays) {
    out << sep << "gray P" << f.node << "@" << f.start.ticks() << " drop="
        << f.payload_drop_p << " slow=" << f.slow_factor << "x";
    sep = "; ";
  }
  if (rejoin.enabled) {
    out << sep << "rejoin+" << rejoin.delay.ticks();
    if (rejoin.mode == RejoinMode::kWarm) out << "(warm)";
    sep = "; ";
  }
  if (*sep != '\0' && (!cascades.empty() || !recurring.empty() ||
                       has_link_faults())) {
    out << "; seed=" << seed;
  }
  out << "}";
  return out.str();
}

}  // namespace splice::net
