#include "net/fault_plan.h"

#include <sstream>

namespace splice::net {

std::vector<ProcId> RegionSpec::resolve(const Topology& topology) const {
  switch (kind) {
    case Kind::kGridRect:
      return topology.grid_rect(a, b, c, d);
    case Kind::kRingArc:
      return topology.ring_arc(a, c);
    case Kind::kSubcube:
      return topology.subcube(a, b);
    case Kind::kNeighborhood:
      return topology.neighborhood(a, c);
  }
  return {};
}

std::string RegionSpec::describe() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kGridRect:
      out << "rect(" << a << "," << b << " " << c << "x" << d << ")";
      break;
    case Kind::kRingArc:
      out << "arc(" << a << "+" << c << ")";
      break;
    case Kind::kSubcube:
      out << "subcube(mask=" << a << ",value=" << b << ")";
      break;
    case Kind::kNeighborhood:
      out << "hood(" << a << ",r" << c << ")";
      break;
  }
  return out.str();
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  timed.insert(timed.end(), other.timed.begin(), other.timed.end());
  triggered.insert(triggered.end(), other.triggered.begin(),
                   other.triggered.end());
  regional.insert(regional.end(), other.regional.begin(),
                  other.regional.end());
  cascades.insert(cascades.end(), other.cascades.begin(),
                  other.cascades.end());
  recurring.insert(recurring.end(), other.recurring.begin(),
                   other.recurring.end());
  if (other.rejoin.enabled) rejoin = other.rejoin;
  return *this;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "plan{";
  const char* sep = "";
  for (const TimedFault& f : timed) {
    out << sep << "kill P" << f.target << "@" << f.when.ticks();
    sep = "; ";
  }
  for (const TriggeredFault& f : triggered) {
    out << sep << "kill P" << f.target << " on '" << f.trigger << "'";
    if (f.delay.ticks() > 0) out << "+" << f.delay.ticks();
    sep = "; ";
  }
  for (const RegionalFault& f : regional) {
    out << sep << "kill " << f.region.describe() << "@" << f.when.ticks();
    sep = "; ";
  }
  for (const CascadeFault& f : cascades) {
    out << sep << "cascade P" << f.seed << "@" << f.when.ticks() << " p="
        << f.probability << " decay=" << f.decay << " hops=" << f.max_hops
        << " stagger=" << f.stagger.ticks();
    sep = "; ";
  }
  for (const RecurringFault& f : recurring) {
    out << sep << "poisson mean=" << f.mean_interval << " ["
        << f.start.ticks() << ",";
    if (f.stop == sim::SimTime::max()) {
      out << "inf";
    } else {
      out << f.stop.ticks();
    }
    out << ") max=" << f.max_faults;
    if (!f.candidates.empty()) out << " over " << f.candidates.size();
    sep = "; ";
  }
  if (rejoin.enabled) {
    out << sep << "rejoin+" << rejoin.delay.ticks();
    if (rejoin.mode == RejoinMode::kWarm) out << "(warm)";
    sep = "; ";
  }
  if (*sep != '\0' && (!cascades.empty() || !recurring.empty())) {
    out << "; seed=" << seed;
  }
  out << "}";
  return out.str();
}

}  // namespace splice::net
