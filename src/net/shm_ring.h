// Single-producer single-consumer byte ring in shared memory.
//
// The backing pages come from mmap(MAP_SHARED | MAP_ANONYMOUS): the region
// is inheritable across fork() and its layout is position-independent (the
// control block lives at offset 0, data follows), so the same ring works
// between OS processes; in-simulator use simply keeps producer and consumer
// in one process. Indices are monotonically increasing byte counts
// (head = consumed, tail = produced) with acquire/release ordering — the
// classic SPSC contract: the producer only writes tail, the consumer only
// writes head.
//
// Records are [u32 length][u64 sequence][length bytes], byte-wrapped at the
// capacity boundary. The sequence number is the delivery-ordering handle:
// the simulator-driven consumer pops records until it finds the one its
// delivery event names, parking any that arrived ahead of their event.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define SPLICE_SHM_RING_MMAP 1
#else
#include <cstdlib>
#define SPLICE_SHM_RING_MMAP 0
#endif

#include <atomic>
#include <new>

namespace splice::net {

class ShmRing {
 public:
  struct Record {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bytes;
  };

  explicit ShmRing(std::uint32_t capacity_bytes)
      : capacity_(capacity_bytes < kMinCapacity ? kMinCapacity
                                                : capacity_bytes) {
    const std::size_t total = sizeof(Control) + capacity_;
#if SPLICE_SHM_RING_MMAP
    void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) throw std::bad_alloc();
#else
    void* mem = std::calloc(1, total);
    if (mem == nullptr) throw std::bad_alloc();
#endif
    region_ = mem;
    region_bytes_ = total;
    ctrl_ = ::new (mem) Control();
    data_ = static_cast<std::uint8_t*>(mem) + sizeof(Control);
  }

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  ~ShmRing() {
#if SPLICE_SHM_RING_MMAP
    ::munmap(region_, region_bytes_);
#else
    std::free(region_);
#endif
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Bytes a record of body length `n` occupies in the ring.
  [[nodiscard]] static constexpr std::uint64_t record_bytes(
      std::uint32_t n) noexcept {
    return kRecordHeader + n;
  }

  /// Producer side. Returns false (ring unchanged) when the record does
  /// not fit in the free space.
  bool push(std::uint64_t seq, const std::uint8_t* bytes, std::uint32_t len) {
    const std::uint64_t head = ctrl_->head.load(std::memory_order_acquire);
    const std::uint64_t tail = ctrl_->tail.load(std::memory_order_relaxed);
    const std::uint64_t need = record_bytes(len);
    if (need > capacity_ - (tail - head)) return false;
    std::uint8_t header[kRecordHeader];
    std::memcpy(header, &len, sizeof(len));
    std::memcpy(header + sizeof(len), &seq, sizeof(seq));
    write_at(tail, header, kRecordHeader);
    write_at(tail + kRecordHeader, bytes, len);
    ctrl_->tail.store(tail + need, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool pop(Record* out) {
    const std::uint64_t tail = ctrl_->tail.load(std::memory_order_acquire);
    const std::uint64_t head = ctrl_->head.load(std::memory_order_relaxed);
    if (head == tail) return false;
    std::uint8_t header[kRecordHeader];
    read_at(head, header, kRecordHeader);
    std::uint32_t len = 0;
    std::memcpy(&len, header, sizeof(len));
    std::memcpy(&out->seq, header + sizeof(len), sizeof(out->seq));
    out->bytes.resize(len);
    read_at(head + kRecordHeader, out->bytes.data(), len);
    ctrl_->head.store(head + record_bytes(len), std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const noexcept {
    return ctrl_->head.load(std::memory_order_acquire) ==
           ctrl_->tail.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t used_bytes() const noexcept {
    return ctrl_->tail.load(std::memory_order_acquire) -
           ctrl_->head.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::uint32_t kRecordHeader =
      sizeof(std::uint32_t) + sizeof(std::uint64_t);
  static constexpr std::uint32_t kMinCapacity = 256;

  struct Control {
    std::atomic<std::uint64_t> head{0};  // consumed bytes (consumer-owned)
    std::atomic<std::uint64_t> tail{0};  // produced bytes (producer-owned)
  };

  void write_at(std::uint64_t pos, const std::uint8_t* src, std::uint64_t n) {
    const std::uint64_t off = pos % capacity_;
    const std::uint64_t first = std::min<std::uint64_t>(n, capacity_ - off);
    std::memcpy(data_ + off, src, first);
    if (first < n) std::memcpy(data_, src + first, n - first);
  }

  void read_at(std::uint64_t pos, std::uint8_t* dst, std::uint64_t n) const {
    const std::uint64_t off = pos % capacity_;
    const std::uint64_t first = std::min<std::uint64_t>(n, capacity_ - off);
    std::memcpy(dst, data_ + off, first);
    if (first < n) std::memcpy(dst + first, data_, n - first);
  }

  std::uint32_t capacity_;
  void* region_ = nullptr;
  std::size_t region_bytes_ = 0;
  Control* ctrl_ = nullptr;
  std::uint8_t* data_ = nullptr;
};

}  // namespace splice::net
