// TCP socket backend: one OS process per rank.
//
// Each rank listens on its own port and lazily dials a unidirectional
// outgoing connection to each peer on first send (incoming connections,
// identified by an 8-byte hello, are used only for reading — no dial-race
// arbitration needed). Frames are the codec's length-prefixed envelopes.
//
// Failure semantics map onto the paper's §1 model:
//  * a write failure (ECONNRESET / EPIPE / refused redial) means the
//    destination process is gone — the transport hands the undelivered
//    envelope to the unreachable callback and the Network synthesizes the
//    kDeliveryFailure bounce after the usual timeout, feeding the existing
//    detection/recovery machinery with zero protocol changes;
//  * a read-side EOF just closes the link (fail-silent peer);
//  * a killed rank that restarts is re-dialed transparently on the next
//    send, so a warm rejoiner's kRejoinNotice/kStateRequest traffic flows
//    as soon as its listener is back.
//
// Local (same-rank) submits bypass the sockets and ride the simulator
// event queue like the in-process backend; the driver paces simulated time
// against the wall clock and calls poll() between event batches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"

namespace splice::net {

struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Build the socket backend for rank `self` of `peers.size()` ranks.
/// Binds and listens on peers[self].port immediately (throws
/// std::runtime_error on bind failure); outgoing connections are dialed
/// lazily. Only built on POSIX platforms.
[[nodiscard]] std::unique_ptr<Transport> make_tcp_transport(
    sim::Simulator& sim, ProcId self, std::vector<TcpPeer> peers);

}  // namespace splice::net
