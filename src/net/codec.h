// Binary wire codec for protocol envelopes.
//
// Every one of the 15 MsgKinds has a canonical byte encoding, so the same
// Processor/Runtime/StateStreamer/kCancel stack can run over a real byte
// surface (shared-memory rings, TCP sockets) instead of the in-process
// mailbox. Canonical means bijective: decode(encode(e)) == e and
// encode(decode(b)) == b byte for byte — the round-trip property the fuzz
// suite enforces for every kind.
//
// Encoding scheme (docs/ARCHITECTURE.md has the per-kind byte tables):
//  * integers are LEB128 varints, least-significant group first;
//  * signed quantities zig-zag first (0,-1,1,-2,... -> 0,1,2,3,...), so
//    small magnitudes of either sign stay short;
//  * LevelStamp digit strings and ancestor-chain uid runs delta-encode
//    against the previous element — call-site digits and spawn-ordered
//    uids cluster, so deltas are mostly 1-byte;
//  * frames are length-prefixed: [u32 LE body length][body], the only
//    fixed-width field (stream resynchronisation needs a known width).
//
// Incarnation, lineage, replica and fence fields ride through exactly:
// recovery correctness depends on them, so the codec treats them as opaque
// integers, never as compressible metadata.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message.h"

namespace splice::net::codec {

/// Malformed or truncated input. Decoding never reads past the given
/// buffer and never trusts a length field without bounds-checking it.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Append-only byte sink with the varint primitives.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void svarint(std::int64_t v) { varint(zigzag(v)); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked cursor over an encoded buffer. Throws CodecError on
/// truncation or malformed varints instead of reading out of bounds.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  [[nodiscard]] std::uint8_t u8() {
    if (p_ == end_) throw CodecError("codec: truncated (u8)");
    return *p_++;
  }
  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (p_ == end_) throw CodecError("codec: truncated (varint)");
      const std::uint8_t byte = *p_++;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    throw CodecError("codec: varint exceeds 64 bits");
  }
  [[nodiscard]] std::int64_t svarint() { return unzigzag(varint()); }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  [[nodiscard]] bool done() const noexcept { return p_ == end_; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// Append the canonical encoding of `env` (header + payload, unframed).
/// The payload alternative must match env.kind (payload_consistent).
void encode_envelope(const Envelope& env, std::vector<std::uint8_t>& out);

[[nodiscard]] inline std::vector<std::uint8_t> encode_envelope(
    const Envelope& env) {
  std::vector<std::uint8_t> out;
  encode_envelope(env, out);
  return out;
}

/// Decode one envelope from exactly [data, data+size). Throws CodecError
/// on malformed input or trailing garbage.
[[nodiscard]] Envelope decode_envelope(const std::uint8_t* data,
                                       std::size_t size);

// ---- framing ---------------------------------------------------------------

/// Byte width of the frame length prefix (u32 little-endian).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Append a framed encoding: [u32 LE body length][body]. Returns the body
/// length in bytes.
std::size_t encode_frame(const Envelope& env, std::vector<std::uint8_t>& out);

/// Parse a frame header at `data`. Returns true and sets *body_length when
/// at least kFrameHeaderBytes are available; false means "need more bytes".
[[nodiscard]] bool read_frame_header(const std::uint8_t* data,
                                     std::size_t size,
                                     std::uint32_t* body_length) noexcept;

}  // namespace splice::net::codec
