#include "net/network.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace splice::net {

std::string_view to_string(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kTaskPacket:
      return "task-packet";
    case MsgKind::kSpawnAck:
      return "spawn-ack";
    case MsgKind::kForwardResult:
      return "forward-result";
    case MsgKind::kFetchData:
      return "fetch-data";
    case MsgKind::kDataReply:
      return "data-reply";
    case MsgKind::kErrorDetection:
      return "error-detection";
    case MsgKind::kDeliveryFailure:
      return "delivery-failure";
    case MsgKind::kHeartbeat:
      return "heartbeat";
    case MsgKind::kLoadUpdate:
      return "load-update";
    case MsgKind::kCheckpointXfer:
      return "checkpoint-xfer";
    case MsgKind::kRejoinNotice:
      return "rejoin-notice";
    case MsgKind::kStateRequest:
      return "state-request";
    case MsgKind::kStateChunk:
      return "state-chunk";
    case MsgKind::kControl:
      return "control";
  }
  return "?";
}

Network::Network(sim::Simulator& simulator, Topology topology,
                 LatencyModel latency)
    : sim_(simulator),
      topology_(std::move(topology)),
      latency_(latency),
      receivers_(topology_.size()),
      alive_(topology_.size(), true) {}

void Network::set_receiver(ProcId p, Receiver receiver) {
  receivers_.at(p) = std::move(receiver);
}

void Network::send(Envelope envelope) {
  assert(envelope.from < size() && envelope.to < size());
  envelope.sent_at = sim_.now();
  ++stats_.sent[static_cast<std::size_t>(envelope.kind)];
  stats_.total_units += envelope.size_units;

  // A dead processor transmits nothing (fail-silent, §1). Sends attempted
  // by a processor after its death are artefacts of same-tick event
  // ordering; drop them.
  if (!alive_[envelope.from]) {
    ++stats_.dropped_dead_sender;
    return;
  }

  const std::uint32_t hops = topology_.hops(envelope.from, envelope.to);
  stats_.total_hop_units +=
      static_cast<std::uint64_t>(hops) * envelope.size_units;
  const sim::SimTime delay = latency_.latency(hops, envelope.size_units);
  sim_.after(delay, [this, env = std::move(envelope)]() mutable {
    deliver(std::move(env));
  });
}

void Network::deliver(Envelope envelope) {
  if (!alive_[envelope.to]) {
    bounce(std::move(envelope));
    return;
  }
  ++stats_.delivered[static_cast<std::size_t>(envelope.kind)];
  Receiver& receiver = receivers_[envelope.to];
  if (!receiver) {
    throw std::logic_error("no receiver installed for processor " +
                           std::to_string(envelope.to));
  }
  receiver(std::move(envelope));
}

void Network::bounce(Envelope envelope) {
  ++stats_.dropped_dead_dest;
  // Sender learns of unreachability after the failure timeout (§1: coding /
  // timeout mechanisms). The dead envelope rides along as payload so the
  // protocol layer can tell *what* failed to arrive.
  const ProcId sender = envelope.from;
  if (!alive_[sender]) return;  // nobody left to notify
  Envelope notice;
  notice.kind = MsgKind::kDeliveryFailure;
  notice.from = envelope.to;  // nominally "from" the dead node
  notice.to = sender;
  notice.size_units = 1;
  notice.payload = std::move(envelope);
  ++stats_.failure_notices;
  sim_.after(sim::SimTime(latency_.failure_timeout),
             [this, n = std::move(notice)]() mutable {
               if (!alive_[n.to]) return;
               ++stats_.delivered[static_cast<std::size_t>(n.kind)];
               Receiver& receiver = receivers_[n.to];
               if (receiver) receiver(std::move(n));
             });
}

void Network::kill(ProcId p) {
  assert(p < size());
  if (!alive_[p]) return;
  alive_[p] = false;
  SPLICE_DEBUG() << "network: processor " << p << " killed at t="
                 << sim_.now().ticks();
}

void Network::revive(ProcId p) {
  assert(p < size());
  if (alive_[p]) return;
  alive_[p] = true;
  ++stats_.revives;
  SPLICE_DEBUG() << "network: processor " << p << " revived at t="
                 << sim_.now().ticks();
}

std::uint32_t Network::alive_count() const noexcept {
  std::uint32_t n = 0;
  for (bool a : alive_) {
    n += a ? 1 : 0;
  }
  return n;
}

}  // namespace splice::net
