#include "net/network.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace splice::net {

Network::Network(sim::Simulator& simulator, Topology topology,
                 LatencyModel latency)
    : sim_(simulator),
      topology_(std::move(topology)),
      latency_(latency),
      receivers_(topology_.size()),
      alive_(topology_.size(), true) {}

void Network::set_receiver(ProcId p, Receiver receiver) {
  receivers_.at(p) = std::move(receiver);
}

std::uint32_t Network::pool_acquire(Envelope&& envelope) {
  if (inflight_free_.empty()) {
    inflight_.push_back(std::move(envelope));
    return static_cast<std::uint32_t>(inflight_.size() - 1);
  }
  const std::uint32_t slot = inflight_free_.back();
  inflight_free_.pop_back();
  inflight_[slot] = std::move(envelope);
  return slot;
}

Envelope Network::pool_release(std::uint32_t slot) noexcept {
  Envelope env = std::move(inflight_[slot]);
  inflight_free_.push_back(slot);
  return env;
}

void Network::send(Envelope envelope) {
  assert(envelope.from < size() && envelope.to < size());
  envelope.sent_at = sim_.now();
  ++stats_.sent[static_cast<std::size_t>(envelope.kind)];
  stats_.total_units += envelope.size_units;

  // A dead processor transmits nothing (fail-silent, §1). Sends attempted
  // by a processor after its death are artefacts of same-tick event
  // ordering; drop them.
  if (!alive_[envelope.from]) {
    ++stats_.dropped_dead_sender;
    return;
  }

  const std::uint32_t hops = topology_.hops(envelope.from, envelope.to);
  stats_.total_hop_units +=
      static_cast<std::uint64_t>(hops) * envelope.size_units;
  const sim::SimTime delay = latency_.latency(hops, envelope.size_units);
  const std::uint32_t slot = pool_acquire(std::move(envelope));
  sim_.after(delay, [this, slot] { deliver_from_pool(slot); });
}

void Network::deliver_from_pool(std::uint32_t slot) {
  Envelope& envelope = inflight_[slot];
  if (!alive_[envelope.to]) {
    Envelope dead = pool_release(slot);
    bounce(std::move(dead));
    return;
  }
  ++stats_.delivered[static_cast<std::size_t>(envelope.kind)];
  Receiver& receiver = receivers_[envelope.to];
  if (!receiver) {
    throw std::logic_error("no receiver installed for processor " +
                           std::to_string(envelope.to));
  }
  // Dispatch straight out of the pool slot. Safe against nested sends from
  // inside the receiver: the pool is a deque (growth never relocates this
  // slot) and the slot joins the free list only after the receiver returns
  // (so it cannot be reused mid-dispatch). Receivers still should consume
  // the payload promptly — the moved-from envelope is theirs only for the
  // duration of the call.
  receiver(std::move(envelope));
  inflight_free_.push_back(slot);
}

void Network::bounce(Envelope envelope) {
  ++stats_.dropped_dead_dest;
  // Sender learns of unreachability after the failure timeout (§1: coding /
  // timeout mechanisms). The dead envelope rides along as payload so the
  // protocol layer can tell *what* failed to arrive.
  const ProcId sender = envelope.from;
  if (!alive_[sender]) return;  // nobody left to notify
  Envelope notice;
  notice.kind = MsgKind::kDeliveryFailure;
  notice.from = envelope.to;  // nominally "from" the dead node
  notice.to = sender;
  notice.size_units = 1;
  notice.payload = EnvelopeBox(std::move(envelope));
  ++stats_.failure_notices;
  const std::uint32_t slot = pool_acquire(std::move(notice));
  sim_.after(sim::SimTime(latency_.failure_timeout), [this, slot] {
    Envelope n = pool_release(slot);
    if (!alive_[n.to]) return;
    ++stats_.delivered[static_cast<std::size_t>(n.kind)];
    Receiver& receiver = receivers_[n.to];
    if (receiver) receiver(std::move(n));
  });
}

void Network::kill(ProcId p) {
  assert(p < size());
  if (!alive_[p]) return;
  alive_[p] = false;
  SPLICE_DEBUG() << "network: processor " << p << " killed at t="
                 << sim_.now().ticks();
}

void Network::revive(ProcId p) {
  assert(p < size());
  if (alive_[p]) return;
  alive_[p] = true;
  ++stats_.revives;
  SPLICE_DEBUG() << "network: processor " << p << " revived at t="
                 << sim_.now().ticks();
}

std::uint32_t Network::alive_count() const noexcept {
  std::uint32_t n = 0;
  for (bool a : alive_) {
    n += a ? 1 : 0;
  }
  return n;
}

}  // namespace splice::net
