#include "net/network.h"

#include <cassert>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace splice::net {

Network::Network(sim::Simulator& simulator, Topology topology,
                 LatencyModel latency, std::unique_ptr<Transport> transport)
    : sim_(simulator),
      topology_(std::move(topology)),
      latency_(latency),
      transport_(transport ? std::move(transport)
                           : make_in_process_transport(simulator)),
      receivers_(topology_.size()),
      alive_(topology_.size(), true),
      lanes_(1) {
  transport_->set_deliver(
      [this](Envelope&& envelope) { deliver(std::move(envelope)); });
  transport_->set_unreachable([this](Envelope&& envelope) {
    ++lane().stats.dropped_dead_dest;
    bounce(std::move(envelope));
  });
}

Network::Network(sim::Simulator& coordinator_sim, Topology topology,
                 LatencyModel latency, RouterMode mode)
    : sim_(coordinator_sim),
      topology_(std::move(topology)),
      latency_(latency),
      receivers_(topology_.size()),
      alive_(topology_.size(), true),
      lanes_(mode.shards + 1) {}

void Network::set_receiver(ProcId p, Receiver receiver) {
  receivers_.at(p) = std::move(receiver);
}

void Network::dispatch(Envelope&& envelope, sim::SimTime delay) {
  if (router_ != nullptr) {
    router_->route(std::move(envelope), net_now() + delay);
    return;
  }
  transport_->submit(std::move(envelope), delay);
}

void Network::send(Envelope envelope) {
  assert(envelope.from < size() && envelope.to < size());
  const sim::SimTime now = net_now();
  Lane& ln = lane();
  envelope.sent_at = now;
  ++ln.stats.sent[static_cast<std::size_t>(envelope.kind)];
  ln.stats.total_units += envelope.size_units;

  // A dead processor transmits nothing (fail-silent, §1). Sends attempted
  // by a processor after its death are artefacts of same-tick event
  // ordering; drop them.
  if (!alive_[envelope.from]) {
    ++ln.stats.dropped_dead_sender;
    return;
  }

  const std::uint32_t hops = topology_.hops(envelope.from, envelope.to);
  ln.stats.total_hop_units +=
      static_cast<std::uint64_t>(hops) * envelope.size_units;
  sim::SimTime delay = latency_.latency(hops, envelope.size_units);

  // Link-fault shaping, send-side so every transport backend perturbs
  // identically. Loopback never touches a link; bounce notices model the
  // sender's own timeout, not a wire transit.
  if (link_faults_ != nullptr && envelope.from != envelope.to &&
      envelope.kind != MsgKind::kDeliveryFailure) {
    const LinkFaultModel::Verdict verdict = link_faults_->shape(
        envelope.kind, envelope.from, envelope.to, now, delay);
    if (verdict.cut) {
      // Crossing an active partition: undeliverable, and the sender's
      // timeout legitimately concludes the peer is faulty (§1).
      ++ln.stats.partition_cut;
      bounce(std::move(envelope));
      return;
    }
    if (verdict.drop || verdict.gray_drop) {
      // Lost in transit to a live destination. The bounce is the modelled
      // timeout; handle_delivery_failure sees the peer alive and reachable,
      // so recovery retransmits at the payload level without any false
      // crash detection.
      ++(verdict.gray_drop ? ln.stats.gray_dropped : ln.stats.link_dropped);
      bounce(std::move(envelope));
      return;
    }
    if (verdict.reordered) ++ln.stats.link_reordered;
    if (verdict.extra.ticks() > 0) {
      ln.stats.link_delay_ticks +=
          static_cast<std::uint64_t>(verdict.extra.ticks());
      delay = delay + verdict.extra;
    }
    if (verdict.duplicate) {
      ++ln.stats.link_duplicated;
      ++ln.in_flight;
      dispatch(clone_envelope(envelope), delay + verdict.dup_extra);
    }
  }
  ++ln.in_flight;
  dispatch(std::move(envelope), delay);
}

Envelope Network::clone_envelope(const Envelope& envelope) {
  Envelope clone;
  clone.kind = envelope.kind;
  clone.from = envelope.from;
  clone.to = envelope.to;
  clone.size_units = envelope.size_units;
  clone.sent_at = envelope.sent_at;
  std::visit(
      [&clone](const auto& payload) {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, EnvelopeBox>) {
          // kDeliveryFailure is exempt from shaping, so a box never gets
          // here.
          assert(false && "cannot duplicate a bounce notice");
        } else {
          clone.payload = payload;
        }
      },
      envelope.payload);
  return clone;
}

void Network::deliver(Envelope&& envelope) {
  Lane& ln = lane();
  // In-flight gauge: the substrate just handed the envelope back. In router
  // mode the executing shard decrements its own lane — individual lanes go
  // signed-negative and only the sum matters. On the classic path remote
  // arrivals on the TCP backend were never submitted locally, so the single
  // lane saturates at zero instead.
  if (router_ != nullptr) {
    --ln.in_flight;
  } else if (ln.in_flight > 0) {
    --ln.in_flight;
  }
  if (!alive_[envelope.to]) {
    // A bounce notice whose addressee has since died notifies nobody; a
    // regular message to a dead destination is lost and bounces to its
    // sender.
    if (envelope.kind != MsgKind::kDeliveryFailure) {
      ++ln.stats.dropped_dead_dest;
      bounce(std::move(envelope));
    }
    return;
  }
  ++ln.stats.delivered[static_cast<std::size_t>(envelope.kind)];
  Receiver& receiver = receivers_[envelope.to];
  if (!receiver) {
    // Synthetic notices tolerate a missing receiver (the addressee may be
    // mid-teardown); real protocol traffic does not.
    if (envelope.kind == MsgKind::kDeliveryFailure) return;
    throw std::logic_error("no receiver installed for processor " +
                           std::to_string(envelope.to));
  }
  // The envelope is the receiver's only for the duration of the call —
  // transports may recycle the backing storage once dispatch returns.
  receiver(std::move(envelope));
}

void Network::bounce(Envelope envelope) {
  // Sender learns of unreachability after the failure timeout (§1: coding /
  // timeout mechanisms). The dead envelope rides along as payload so the
  // protocol layer can tell *what* failed to arrive. Callers count the
  // cause (dead destination, partition cut, lossy link) before calling.
  const ProcId sender = envelope.from;
  if (!alive_[sender]) return;  // nobody left to notify
  Envelope notice;
  notice.kind = MsgKind::kDeliveryFailure;
  notice.from = envelope.to;  // nominally "from" the dead node
  notice.to = sender;
  notice.size_units = 1;
  notice.sent_at = net_now();
  notice.payload = EnvelopeBox(std::move(envelope));
  Lane& ln = lane();
  ++ln.stats.failure_notices;
  ++ln.in_flight;
  dispatch(std::move(notice), sim::SimTime(latency_.failure_timeout));
}

void Network::kill(ProcId p) {
  assert(p < size());
  if (!alive_[p]) return;
  alive_[p] = false;
  SPLICE_DEBUG() << "network: processor " << p << " killed at t="
                 << net_now().ticks();
}

void Network::revive(ProcId p) {
  assert(p < size());
  if (alive_[p]) return;
  alive_[p] = true;
  ++lane().stats.revives;
  SPLICE_DEBUG() << "network: processor " << p << " revived at t="
                 << net_now().ticks();
}

std::uint32_t Network::alive_count() const noexcept {
  std::uint32_t n = 0;
  for (bool a : alive_) {
    n += a ? 1 : 0;
  }
  return n;
}

}  // namespace splice::net
