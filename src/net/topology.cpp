#include "net/topology.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace splice::net {

std::string_view to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kComplete:
      return "complete";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kMesh2D:
      return "mesh";
    case TopologyKind::kTorus2D:
      return "torus";
    case TopologyKind::kHypercube:
      return "hypercube";
  }
  return "?";
}

TopologyKind parse_topology(std::string_view name) {
  if (name == "complete") return TopologyKind::kComplete;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "star") return TopologyKind::kStar;
  if (name == "mesh") return TopologyKind::kMesh2D;
  if (name == "torus") return TopologyKind::kTorus2D;
  if (name == "hypercube") return TopologyKind::kHypercube;
  throw std::invalid_argument("unknown topology: " + std::string(name));
}

namespace {
/// Most-square factorisation r*c == n with r <= c.
std::pair<std::uint32_t, std::uint32_t> squarest_grid(std::uint32_t n) {
  std::uint32_t best = 1;
  for (std::uint32_t r = 1; r * r <= n; ++r) {
    if (n % r == 0) best = r;
  }
  return {best, n / best};
}
}  // namespace

Topology::Topology(TopologyKind kind, ProcId count)
    : kind_(kind), count_(count) {
  if (count_ == 0) throw std::invalid_argument("topology needs >= 1 node");
  if (kind_ == TopologyKind::kHypercube && !std::has_single_bit(count_)) {
    throw std::invalid_argument("hypercube size must be a power of two");
  }
  auto [r, c] = squarest_grid(count_);
  rows_ = r;
  cols_ = c;
  build_neighbors();
  for (ProcId a = 0; a < count_; ++a) {
    for (ProcId b = a + 1; b < count_; ++b) {
      diameter_ = std::max(diameter_, hops(a, b));
    }
  }
}

std::uint32_t Topology::hops(ProcId a, ProcId b) const {
  assert(a < count_ && b < count_);
  if (a == b) return 0;
  switch (kind_) {
    case TopologyKind::kComplete:
      return 1;
    case TopologyKind::kRing: {
      const std::uint32_t d = a > b ? a - b : b - a;
      return std::min(d, count_ - d);
    }
    case TopologyKind::kStar:
      return (a == 0 || b == 0) ? 1 : 2;
    case TopologyKind::kMesh2D: {
      const std::uint32_t ra = a / cols_, ca = a % cols_;
      const std::uint32_t rb = b / cols_, cb = b % cols_;
      const std::uint32_t dr = ra > rb ? ra - rb : rb - ra;
      const std::uint32_t dc = ca > cb ? ca - cb : cb - ca;
      return dr + dc;
    }
    case TopologyKind::kTorus2D: {
      const std::uint32_t ra = a / cols_, ca = a % cols_;
      const std::uint32_t rb = b / cols_, cb = b % cols_;
      std::uint32_t dr = ra > rb ? ra - rb : rb - ra;
      std::uint32_t dc = ca > cb ? ca - cb : cb - ca;
      dr = std::min(dr, rows_ - dr);
      dc = std::min(dc, cols_ - dc);
      return dr + dc;
    }
    case TopologyKind::kHypercube:
      return static_cast<std::uint32_t>(std::popcount(a ^ b));
  }
  return 1;
}

const std::vector<ProcId>& Topology::neighbors(ProcId p) const {
  assert(p < count_);
  return neighbors_[p];
}

void Topology::build_neighbors() {
  neighbors_.assign(count_, {});
  for (ProcId p = 0; p < count_; ++p) {
    auto& out = neighbors_[p];
    switch (kind_) {
      case TopologyKind::kComplete:
        for (ProcId q = 0; q < count_; ++q) {
          if (q != p) out.push_back(q);
        }
        break;
      case TopologyKind::kRing:
        if (count_ > 1) {
          out.push_back((p + 1) % count_);
          if (count_ > 2) out.push_back((p + count_ - 1) % count_);
        }
        break;
      case TopologyKind::kStar:
        if (p == 0) {
          for (ProcId q = 1; q < count_; ++q) out.push_back(q);
        } else {
          out.push_back(0);
        }
        break;
      case TopologyKind::kMesh2D:
      case TopologyKind::kTorus2D: {
        const std::uint32_t r = p / cols_, c = p % cols_;
        const bool wrap = kind_ == TopologyKind::kTorus2D;
        auto push = [&](std::uint32_t rr, std::uint32_t cc) {
          const ProcId q = rr * cols_ + cc;
          if (q != p) out.push_back(q);
        };
        if (c + 1 < cols_) {
          push(r, c + 1);
        } else if (wrap && cols_ > 1) {
          push(r, 0);
        }
        if (c > 0) {
          push(r, c - 1);
        } else if (wrap && cols_ > 2) {
          push(r, cols_ - 1);
        }
        if (r + 1 < rows_) {
          push(r + 1, c);
        } else if (wrap && rows_ > 1) {
          push(0, c);
        }
        if (r > 0) {
          push(r - 1, c);
        } else if (wrap && rows_ > 2) {
          push(rows_ - 1, c);
        }
        break;
      }
      case TopologyKind::kHypercube:
        for (std::uint32_t bit = 1; bit < count_; bit <<= 1) {
          out.push_back(p ^ bit);
        }
        break;
    }
  }
}

std::vector<ProcId> Topology::grid_rect(std::uint32_t row0, std::uint32_t col0,
                                        std::uint32_t rect_rows,
                                        std::uint32_t rect_cols) const {
  if (kind_ != TopologyKind::kMesh2D && kind_ != TopologyKind::kTorus2D) {
    throw std::invalid_argument("grid_rect: not a mesh/torus topology");
  }
  if (row0 >= rows_ || col0 >= cols_) {
    throw std::invalid_argument("grid_rect: corner outside the grid");
  }
  const bool wrap = kind_ == TopologyKind::kTorus2D;
  if (!wrap) {
    rect_rows = std::min(rect_rows, rows_ - row0);
    rect_cols = std::min(rect_cols, cols_ - col0);
  } else {
    rect_rows = std::min(rect_rows, rows_);
    rect_cols = std::min(rect_cols, cols_);
  }
  std::vector<ProcId> out;
  out.reserve(static_cast<std::size_t>(rect_rows) * rect_cols);
  for (std::uint32_t dr = 0; dr < rect_rows; ++dr) {
    for (std::uint32_t dc = 0; dc < rect_cols; ++dc) {
      const std::uint32_t r = (row0 + dr) % rows_;
      const std::uint32_t c = (col0 + dc) % cols_;
      out.push_back(r * cols_ + c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ProcId> Topology::ring_arc(ProcId start,
                                       std::uint32_t length) const {
  if (kind_ != TopologyKind::kRing) {
    throw std::invalid_argument("ring_arc: not a ring topology");
  }
  if (start >= count_) {
    throw std::invalid_argument("ring_arc: start outside the ring");
  }
  length = std::min(length, count_);
  std::vector<ProcId> out;
  out.reserve(length);
  for (std::uint32_t i = 0; i < length; ++i) {
    out.push_back((start + i) % count_);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ProcId> Topology::subcube(ProcId fixed_mask,
                                      ProcId fixed_value) const {
  if (kind_ != TopologyKind::kHypercube) {
    throw std::invalid_argument("subcube: not a hypercube topology");
  }
  if (fixed_mask >= count_ || (fixed_value & fixed_mask) != fixed_value) {
    throw std::invalid_argument(
        "subcube: mask/value outside the cube's address bits");
  }
  std::vector<ProcId> out;
  for (ProcId p = 0; p < count_; ++p) {
    if ((p & fixed_mask) == fixed_value) out.push_back(p);
  }
  return out;
}

std::vector<ProcId> Topology::neighborhood(ProcId center,
                                           std::uint32_t radius) const {
  if (center >= count_) {
    throw std::invalid_argument("neighborhood: centre outside the machine");
  }
  std::vector<ProcId> out;
  for (ProcId p = 0; p < count_; ++p) {
    if (hops(center, p) <= radius) out.push_back(p);
  }
  return out;
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << to_string(kind_) << "(" << count_;
  if (kind_ == TopologyKind::kMesh2D || kind_ == TopologyKind::kTorus2D) {
    out << " = " << rows_ << "x" << cols_;
  }
  out << ", diameter " << diameter_ << ")";
  return out.str();
}

}  // namespace splice::net
