#include "obs/metrics.h"

#include <bit>

namespace splice::obs {

std::size_t LogHistogram::bucket_of(std::uint64_t value) noexcept {
  // Values below 2^kSubBits map to their own buckets (octave 0); above
  // that, the octave is the extra bit width and the sub-bucket the next
  // kSubBits bits below the leading one.
  if (value < (std::uint64_t{1} << kSubBits)) {
    return static_cast<std::size_t>(value);
  }
  const unsigned width = 64u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned octave = width - kSubBits;
  const unsigned sub = static_cast<unsigned>(
      (value >> (width - 1 - kSubBits)) & ((1u << kSubBits) - 1));
  return (static_cast<std::size_t>(octave) << kSubBits) | sub;
}

std::uint64_t LogHistogram::bucket_upper(std::size_t index) noexcept {
  const std::size_t octave = index >> kSubBits;
  const std::uint64_t sub = index & ((std::size_t{1} << kSubBits) - 1);
  if (octave == 0) return sub;
  // Reconstruct the largest value mapping to (octave, sub): leading one at
  // bit (octave + kSubBits - 1), sub-bucket bits below it, rest ones.
  const unsigned width = static_cast<unsigned>(octave) + kSubBits;
  const std::uint64_t base =
      (std::uint64_t{1} << (width - 1)) | (sub << (width - 1 - kSubBits));
  const std::uint64_t slack = (std::uint64_t{1} << (width - 1 - kSubBits)) - 1;
  return base + slack;
}

void LogHistogram::add(std::uint64_t value) noexcept {
  ++buckets_[bucket_of(value)];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

std::uint64_t LogHistogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile observation (1-based, ceil convention).
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank || (seen == rank && rank == count_)) {
      const std::uint64_t upper = bucket_upper(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

void LogHistogram::clear() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void Metrics::sample(std::int64_t now, std::uint64_t queue_depth,
                     std::uint64_t in_flight,
                     std::uint64_t checkpoint_residency) {
  TimePoint point;
  point.window_start = window_start_;
  point.spawned = window_spawned_;
  point.completed = window_completed_;
  point.queue_depth = queue_depth;
  point.in_flight = in_flight;
  point.checkpoint_residency = checkpoint_residency;
  point.latency_count = window_latency_.count();
  point.latency_p50 = window_latency_.percentile(0.50);
  point.latency_p99 = window_latency_.percentile(0.99);
  point.latency_p999 = window_latency_.percentile(0.999);
  series_.push_back(point);

  window_start_ = now;
  window_spawned_ = 0;
  window_completed_ = 0;
  window_latency_.clear();
}

void Metrics::clear() {
  series_.clear();
  window_start_ = 0;
  window_spawned_ = 0;
  window_completed_ = 0;
  window_latency_.clear();
  run_latency_.clear();
}

}  // namespace splice::obs
