#include "obs/journal.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "net/codec.h"

namespace splice::obs {

namespace {

// One name per EventKind, in enum order. These are the historical
// core::Trace kind strings (tests assert on them via Trace::contains), plus
// the four kinds PR 8 introduces (state-chunk/partition/heal/gray).
// The array bound pins the entry *count*; the lint marker additionally
// requires every enumerator to be named in the block, so a new kind cannot
// silently value-initialize an empty name at the end of the table.
// splice-lint: exhaustive(EventKind)
constexpr std::string_view kKindNames[kEventKindCount] = {
    "place",          // kPlace
    "spawn",          // kSpawn
    "checkpoint",     // kCheckpoint
    "complete",       // kComplete
    "abort",          // kAbort
    "crash",          // kCrash
    "detect",         // kDetect
    "revive",         // kRevive
    "rejoin",         // kRejoin
    "peer-rejoin",    // kPeerRejoin
    "reissue",        // kReissue
    "twin",           // kTwin
    "relay",          // kRelay
    "salvage",        // kSalvage
    "ack-of-corpse",  // kAckOfCorpse
    "cancel",         // kCancel
    "stranded",       // kStranded
    "defer",          // kDefer
    "grace-expired",  // kGraceExpired
    "oracle-leak",    // kOracleLeak
    "state-chunk",    // kStateChunk
    "transfer-in",    // kTransferIn
    "pre-link",       // kPreLink
    "catch-up",       // kCatchUp
    "partition",      // kPartition
    "heal",           // kHeal
    "gray",           // kGray
    "inject-root",    // kInjectRoot
    "done",           // kDone
    "answer",         // kAnswer
    "snapshot",       // kSnapshot
    "restore",        // kRestore
    "unpark",         // kUnpark
    "park-expired",   // kParkExpired
};

template <typename Map, typename Key>
EventId lookup(const Map& map, const Key& key) {
  auto it = map.find(key);
  return it == map.end() ? kNoEvent : it->second;
}

std::uint64_t stamp_key(const runtime::LevelStamp& stamp) {
  return runtime::LevelStamp::Hash{}(stamp);
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  const auto index = static_cast<std::size_t>(kind);
  return index < kEventKindCount ? kKindNames[index] : "?";
}

const Event* Journal::find(EventId id) const {
  if (id == kNoEvent || events.empty()) return nullptr;
  // Retained ids are consecutive (the ring keeps the newest window), so
  // lookup is an offset from the first event.
  const EventId first = events.front().id;
  if (id < first || id >= first + events.size()) return nullptr;
  return &events[static_cast<std::size_t>(id - first)];
}

void Recorder::configure(bool enabled, std::uint32_t capacity,
                         bool keep_details) {
  enabled_ = enabled && capacity > 0;
  keep_details_ = keep_details;
  capacity_ = capacity;
  slots_.clear();
  details_.clear();
  if (enabled_) {
    slots_.reserve(capacity_);
    if (keep_details_) details_.reserve(capacity_);
    // Pre-size the stamp-keyed linker maps: rehashing them mid-run would
    // recompute every stamp hash.
    reissue_of_.reserve(1024);
    place_of_.reserve(4096);
  }
  head_ = 0;
  next_id_ = 1;
  dropped_ = 0;
  metrics_.clear();
  fault_of_.clear();
  detect_of_.clear();
  detect_by_.clear();
  rejoin_of_.clear();
  place_of_.clear();
  reissue_of_.clear();
  cancel_of_.clear();
  relay_of_.clear();
  last_fault_ = kNoEvent;
  last_partition_ = kNoEvent;
}

EventId Recorder::record_slow(sim::SimTime t, EventKind kind,
                              const Fields& fields, std::string* detail) {
  // Claim the ring slot first and build the Event in place: the ring is
  // large and cache-cold, so one pass over the destination lines beats a
  // local Event plus a copy.
  Event* slot;
  std::string* detail_slot = nullptr;
  if (slots_.size() < capacity_) {
    slot = &slots_.emplace_back();
    if (keep_details_) detail_slot = &details_.emplace_back();
  } else {
    // Ring full: overwrite the oldest retained slot and count the drop.
    slot = &slots_[head_];
    if (keep_details_) detail_slot = &details_[head_];
    head_ = (head_ + 1) % slots_.size();
    ++dropped_;
  }
  Event& event = *slot;
  event.id = next_id_++;
  event.ticks = t.ticks();
  event.kind = kind;
  event.proc = fields.proc;
  event.peer = fields.peer;
  event.uid = fields.uid;
  event.cause =
      fields.cause != kNoEvent ? fields.cause : infer_cause(kind, fields);
  if (fields.stamp != nullptr) {
    event.stamp = *fields.stamp;
  } else {
    event.stamp = runtime::LevelStamp{};  // reused slots must not leak one
  }
  event.arg = fields.arg;
  if (detail_slot != nullptr) {
    if (detail != nullptr) {
      *detail_slot = std::move(*detail);
    } else {
      detail_slot->clear();
    }
  }

  note_links(event);

  // Metrics feed: spawn/complete drive the goodput window, completion
  // carries spawn→complete latency in arg.
  if (kind == EventKind::kPlace) {
    metrics_.on_task_spawn();
  } else if (kind == EventKind::kComplete) {
    metrics_.on_task_complete(fields.arg);
  }
  return event.id;
}

EventId Recorder::placed_at(std::uint64_t uid) const {
  return uid < place_of_.size() ? place_of_[uid] : kNoEvent;
}

EventId Recorder::infer_cause(EventKind kind, const Fields& f) const {
  switch (kind) {
    case EventKind::kPlace:
      // The packet that placed this task came from a spawn, reissue or
      // twin addressed at the same stamp.
      return f.stamp ? lookup(reissue_of_, stamp_key(*f.stamp)) : kNoEvent;
    case EventKind::kSpawn:
    case EventKind::kCheckpoint:
    case EventKind::kComplete:
    case EventKind::kOracleLeak:
      return placed_at(f.uid);
    case EventKind::kAbort: {
      if (f.stamp) {
        if (EventId c = lookup(cancel_of_, stamp_key(*f.stamp)); c != kNoEvent) return c;
      }
      return placed_at(f.uid);
    }
    case EventKind::kCrash:
    case EventKind::kPartition:
    case EventKind::kGray:
      return kNoEvent;  // root causes
    case EventKind::kHeal:
      return last_partition_;
    case EventKind::kDetect: {
      if (EventId c = lookup(fault_of_, f.peer); c != kNoEvent) return c;
      return last_fault_;
    }
    case EventKind::kTwin:
    case EventKind::kReissue:
    case EventKind::kRelay: {
      if (EventId c = lookup(detect_by_, f.proc); c != kNoEvent) return c;
      return last_fault_;
    }
    case EventKind::kCancel: {
      if (f.stamp) {
        if (EventId c = lookup(reissue_of_, stamp_key(*f.stamp)); c != kNoEvent) return c;
      }
      return lookup(detect_by_, f.proc);
    }
    case EventKind::kSalvage:
    case EventKind::kStranded: {
      if (f.stamp) {
        if (EventId c = lookup(relay_of_, stamp_key(*f.stamp)); c != kNoEvent) return c;
      }
      return last_fault_;
    }
    case EventKind::kAckOfCorpse: {
      if (EventId c = placed_at(f.uid); c != kNoEvent) return c;
      return last_fault_;
    }
    case EventKind::kDefer:
    case EventKind::kGraceExpired:
    case EventKind::kParkExpired: {
      if (EventId c = lookup(fault_of_, f.peer); c != kNoEvent) return c;
      return last_fault_;
    }
    case EventKind::kRevive:
      return lookup(fault_of_, f.proc);
    case EventKind::kRejoin: {
      // Chains revive → rejoin when the injector journaled the repair.
      if (EventId c = lookup(rejoin_of_, f.proc); c != kNoEvent) return c;
      return lookup(fault_of_, f.proc);
    }
    case EventKind::kStateChunk:
    case EventKind::kPeerRejoin:
      return lookup(rejoin_of_, f.peer);
    case EventKind::kTransferIn:
    case EventKind::kPreLink:
    case EventKind::kCatchUp:
      return lookup(rejoin_of_, f.proc);
    case EventKind::kUnpark: {
      if (EventId c = lookup(rejoin_of_, f.peer); c != kNoEvent) return c;
      return lookup(rejoin_of_, f.proc);
    }
    case EventKind::kRestore:
      return last_fault_;
    // Run milestones are causal roots: nothing upstream explains them.
    // Exhaustive by SPL003 and -Wswitch-enum — a 35th EventKind must pick
    // its causal-inference rule here explicitly, not inherit "no cause".
    case EventKind::kInjectRoot:
    case EventKind::kDone:
    case EventKind::kAnswer:
    case EventKind::kSnapshot:
    case EventKind::kCount:
      return kNoEvent;
  }
  return kNoEvent;
}

void Recorder::note_links(const Event& event) {
  switch (event.kind) {
    case EventKind::kCrash:
      fault_of_[event.proc] = event.id;
      last_fault_ = event.id;
      break;
    case EventKind::kPartition:
      last_fault_ = event.id;
      last_partition_ = event.id;
      break;
    case EventKind::kGray:
      last_fault_ = event.id;
      break;
    case EventKind::kDetect:
      detect_of_[event.peer] = event.id;
      detect_by_[event.proc] = event.id;
      break;
    case EventKind::kSpawn:
    case EventKind::kTwin:
    case EventKind::kReissue:
      reissue_of_[stamp_key(event.stamp)] = event.id;
      break;
    case EventKind::kPlace:
      if (event.uid != 0) {
        if (event.uid >= place_of_.size()) {
          place_of_.resize(
              std::max<std::size_t>(event.uid + 1, place_of_.size() * 2),
              kNoEvent);
        }
        place_of_[event.uid] = event.id;
      }
      break;
    case EventKind::kComplete:
    case EventKind::kAbort:
      // Uids are never reused, so clear the entry: a stale placement can
      // never be relinked.
      if (event.uid < place_of_.size()) place_of_[event.uid] = kNoEvent;
      break;
    case EventKind::kCancel:
      cancel_of_[stamp_key(event.stamp)] = event.id;
      break;
    case EventKind::kRelay:
      relay_of_[stamp_key(event.stamp)] = event.id;
      break;
    case EventKind::kRevive:
    case EventKind::kRejoin:
      rejoin_of_[event.proc] = event.id;
      break;
    // Kinds that feed no linker map. Exhaustive by SPL003 and
    // -Wswitch-enum: a new EventKind must state here that nothing links
    // *through* it (it can still be linked *from*, via infer_cause).
    case EventKind::kCheckpoint:
    case EventKind::kPeerRejoin:
    case EventKind::kSalvage:
    case EventKind::kAckOfCorpse:
    case EventKind::kStranded:
    case EventKind::kDefer:
    case EventKind::kGraceExpired:
    case EventKind::kOracleLeak:
    case EventKind::kStateChunk:
    case EventKind::kTransferIn:
    case EventKind::kPreLink:
    case EventKind::kCatchUp:
    case EventKind::kHeal:
    case EventKind::kInjectRoot:
    case EventKind::kDone:
    case EventKind::kAnswer:
    case EventKind::kSnapshot:
    case EventKind::kRestore:
    case EventKind::kUnpark:
    case EventKind::kParkExpired:
    case EventKind::kCount:
      break;
  }
}

Journal Recorder::snapshot() const {
  Journal journal;
  journal.header.rank = header_rank_;
  journal.header.processors = header_procs_;
  journal.header.total_recorded = total_recorded();
  journal.header.dropped = dropped_;
  journal.events.reserve(slots_.size());
  for_each([&](const Event& event, const std::string&) {
    journal.events.push_back(event);
  });
  return journal;
}

std::vector<std::uint8_t> serialize(const Journal& journal) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + journal.events.size() * 12);
  for (const char c : kJournalMagic) out.push_back(static_cast<std::uint8_t>(c));
  net::codec::Writer w(out);
  w.varint(journal.header.version);
  w.varint(journal.header.rank);
  w.varint(journal.header.processors);
  w.varint(journal.header.total_recorded);
  w.varint(journal.header.dropped);
  w.varint(journal.events.size());
  // Ids are consecutive in a snapshot, ticks nondecreasing: both delta-
  // encode to ~1 byte. Proc ids shift by one so kNoProc encodes as 0.
  EventId prev_id = 0;
  std::int64_t prev_ticks = 0;
  for (const Event& e : journal.events) {
    w.varint(e.id - prev_id);
    prev_id = e.id;
    w.svarint(e.ticks - prev_ticks);
    prev_ticks = e.ticks;
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.varint(e.proc == net::kNoProc ? 0 : std::uint64_t{e.proc} + 1);
    w.varint(e.peer == net::kNoProc ? 0 : std::uint64_t{e.peer} + 1);
    w.varint(e.uid);
    w.varint(e.cause);
    w.varint(e.arg);
    w.varint(e.stamp.depth());
    for (const runtime::StampDigit digit : e.stamp.digits()) w.varint(digit);
  }
  return out;
}

Journal deserialize(const std::uint8_t* data, std::size_t size) {
  if (size < 4 || std::memcmp(data, kJournalMagic, 4) != 0) {
    throw std::runtime_error("journal: bad magic (not an SPLJ dump)");
  }
  net::codec::Reader r(data + 4, size - 4);
  Journal journal;
  journal.header.version = static_cast<std::uint32_t>(r.varint());
  if (journal.header.version != 1) {
    throw std::runtime_error("journal: unsupported version");
  }
  journal.header.rank = static_cast<std::uint32_t>(r.varint());
  journal.header.processors = static_cast<std::uint32_t>(r.varint());
  journal.header.total_recorded = r.varint();
  journal.header.dropped = r.varint();
  const std::uint64_t count = r.varint();
  if (count > size) {  // each event is >= 1 byte; cheap sanity bound
    throw std::runtime_error("journal: event count exceeds dump size");
  }
  journal.events.reserve(static_cast<std::size_t>(count));
  EventId prev_id = 0;
  std::int64_t prev_ticks = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Event e;
    e.id = prev_id + r.varint();
    prev_id = e.id;
    e.ticks = prev_ticks + r.svarint();
    prev_ticks = e.ticks;
    const std::uint8_t kind = r.u8();
    if (kind >= kEventKindCount) {
      throw std::runtime_error("journal: unknown event kind");
    }
    e.kind = static_cast<EventKind>(kind);
    const std::uint64_t proc = r.varint();
    e.proc = proc == 0 ? net::kNoProc : static_cast<net::ProcId>(proc - 1);
    const std::uint64_t peer = r.varint();
    e.peer = peer == 0 ? net::kNoProc : static_cast<net::ProcId>(peer - 1);
    e.uid = r.varint();
    e.cause = r.varint();
    e.arg = r.varint();
    const std::uint64_t depth = r.varint();
    if (depth > 4096) throw std::runtime_error("journal: stamp too deep");
    runtime::LevelStamp::Digits digits;
    for (std::uint64_t d = 0; d < depth; ++d) {
      digits.push_back(static_cast<runtime::StampDigit>(r.varint()));
    }
    e.stamp = runtime::LevelStamp(std::move(digits));
    journal.events.push_back(e);
  }
  if (!r.done()) throw std::runtime_error("journal: trailing bytes");
  return journal;
}

}  // namespace splice::obs
