// The recovery flight recorder: a typed, binary, ring-buffered journal of
// protocol events.
//
// The paper's recovery argument (§4.1) is about *causal* chains — spawn →
// checkpoint → crash → detect → reissue → cancel — and this journal is that
// argument made inspectable: every recovery-relevant protocol action is one
// fixed-shape Event carrying sim-time, processor, level stamp, task uid and
// a causal parent reference (the event that made this one happen). The
// string Trace the figure walkthroughs read is a thin rendering view over
// these typed events (Runtime::trace() materialises it on demand); the
// causal query engine (obs/causal.h), the Perfetto exporter (obs/export.h)
// and the splice_trace CLI all read the same journal.
//
// Cost discipline — identical to core::Trace's lazy-thunk contract:
//  * recorder off (the default, and every throughput bench): record() is a
//    single predictable branch, detail thunks are never evaluated, no
//    allocation, no stamp copy;
//  * recorder on: one ring-slot write per event (the ring overwrites the
//    oldest entry once full and counts the drop), detail strings are built
//    only when trace rendering is additionally enabled (collect_trace).
//
// Determinism: the journal is a pure function of (config, program, fault
// plan, seed) — the same run journals byte-identical event streams on the
// in-process and shm-ring transports (tests/obs_test.cpp A/Bs the
// serialized bytes, the same discipline transport_test.cpp applies to
// counters). Causal linking uses only keyed lookups, never container
// iteration order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "obs/metrics.h"
#include "runtime/level_stamp.h"
#include "sim/time.h"

namespace splice::obs {

/// Monotone 1-based journal event id; 0 = "no event" (absent cause).
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// The event taxonomy. One entry per protocol action worth explaining; the
/// string names (to_string) match the historical core::Trace kinds exactly,
/// so the rendered view stays assertion-compatible.
enum class EventKind : std::uint8_t {
  // Task lifecycle.
  kPlace = 0,     // packet accepted, task resident ("place")
  kSpawn,         // DEMAND_IT sent a child packet ("spawn")
  kCheckpoint,    // functional checkpoint recorded ("checkpoint")
  kComplete,      // task reduced to a value ("complete")
  kAbort,         // task reclaimed/aborted ("abort")
  // Faults and detection.
  kCrash,         // processor failed, fail-silent ("crash")
  kDetect,        // observer learned a peer is dead ("detect")
  kRevive,        // fault injector repaired a node ("revive")
  kRejoin,        // the repaired node reinitialised itself ("rejoin")
  kPeerRejoin,    // observer learned a peer is back ("peer-rejoin")
  // Recovery actions.
  kReissue,       // checkpoint reissued ("reissue")
  kTwin,          // splice step-parent spawned ("twin")
  kRelay,         // grandparent relayed an orphan result ("relay")
  kSalvage,       // relayed orphan result consumed ("salvage")
  kAckOfCorpse,   // ack addressed a gone parent instance ("ack-of-corpse")
  kCancel,        // kCancel issued against a duplicate ("cancel")
  kStranded,      // orphan result with no ancestor left ("stranded")
  kDefer,         // warm rejoin deferred a reissue ("defer")
  kGraceExpired,  // warm grace ran out, cold reissue ("grace-expired")
  kOracleLeak,    // gc oracle saw a duplicate outlive cancel ("oracle-leak")
  // Warm-rejoin state transfer (store subsystem).
  kStateChunk,    // survivor streamed a state chunk ("state-chunk")
  kTransferIn,    // packet re-hosted from a chunk ("transfer-in")
  kPreLink,       // re-hosted slot awaits a surviving orphan ("pre-link")
  kCatchUp,       // state transfer complete ("catch-up")
  // Link-level chaos (armed fault plan, scheduled alongside the injector).
  kPartition,     // a cut came up ("partition")
  kHeal,          // the cut healed ("heal")
  kGray,          // a gray failure window opened ("gray")
  // Host channel / run milestones.
  kInjectRoot,    // super-root injected the root program ("inject-root")
  kDone,          // the answer reached the super-root ("done")
  kAnswer,        // super-root accepted the answer value ("answer")
  // Periodic-global baseline.
  kSnapshot,      // coordinated global snapshot ("snapshot")
  kRestore,       // global restore after a failure ("restore")
  kUnpark,        // parked subtree resumed on rejoin ("unpark")
  kParkExpired,   // park grace ran out ("park-expired")
  kCount
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kCount);

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// One journal entry. Fixed shape; every field is optional except (ticks,
/// kind) — absent processors are net::kNoProc, absent uids are 0, an empty
/// stamp means "not stamp-addressed", cause 0 means "root cause / unknown".
struct Event {
  EventId id = kNoEvent;
  std::int64_t ticks = 0;
  EventKind kind = EventKind::kPlace;
  net::ProcId proc = net::kNoProc;  // the acting processor
  net::ProcId peer = net::kNoProc;  // the other party (dest, dead node, ...)
  std::uint64_t uid = 0;            // task uid when the event names one
  EventId cause = kNoEvent;         // causal parent event
  runtime::LevelStamp stamp;        // lineage identity (§3.1)
  std::uint64_t arg = 0;            // kind-specific scalar (latency, count)
};

/// Journal dump header (what serialize() writes before the events).
struct JournalHeader {
  std::uint32_t version = 1;
  std::uint32_t rank = 0;        // multi-process rank; 0 single-process
  std::uint32_t processors = 0;  // machine size of the run
  std::uint64_t total_recorded = 0;  // includes events the ring dropped
  std::uint64_t dropped = 0;         // overwritten-oldest count
};

/// A deserialized (or snapshotted) journal: header + events in id order.
struct Journal {
  JournalHeader header;
  std::vector<Event> events;

  /// Index of an event by id, or nullptr when the ring dropped it.
  [[nodiscard]] const Event* find(EventId id) const;
};

/// The serialized journal's magic prefix ("SPLJ").
inline constexpr char kJournalMagic[4] = {'S', 'P', 'L', 'J'};

[[nodiscard]] std::vector<std::uint8_t> serialize(const Journal& journal);
/// Throws std::runtime_error on a malformed dump.
[[nodiscard]] Journal deserialize(const std::uint8_t* data, std::size_t size);

class Recorder {
 public:
  /// Optional fields of a record() call, aggregate-initialisable at the
  /// hook sites: {.proc = id_, .uid = uid, .stamp = &stamp}.
  struct Fields {
    net::ProcId proc = net::kNoProc;
    net::ProcId peer = net::kNoProc;
    std::uint64_t uid = 0;
    const runtime::LevelStamp* stamp = nullptr;
    EventId cause = kNoEvent;  // explicit cause; 0 = infer from the linker
    std::uint64_t arg = 0;
  };

  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// `capacity` bounds the ring (entries); `keep_details` additionally
  /// stores the rendered detail string of every event for the Trace view.
  void configure(bool enabled, std::uint32_t capacity, bool keep_details);
  void set_rank(std::uint32_t rank) noexcept { header_rank_ = rank; }
  void set_processors(std::uint32_t n) noexcept { header_procs_ = n; }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] bool keeps_details() const noexcept { return keep_details_; }

  /// Record a typed event. Returns its id (kNoEvent when disabled).
  EventId record(sim::SimTime t, EventKind kind, const Fields& fields) {
    if (!enabled_) return kNoEvent;
    return record_slow(t, kind, fields, nullptr);
  }

  /// Hot-path overload: the detail thunk is evaluated only when details are
  /// kept (collect_trace), exactly like core::Trace's lazy add().
  template <typename DetailFn>
    requires std::is_invocable_r_v<std::string, DetailFn>
  EventId record(sim::SimTime t, EventKind kind, const Fields& fields,
                 DetailFn&& detail_fn) {
    if (!enabled_) return kNoEvent;
    if (!keep_details_) return record_slow(t, kind, fields, nullptr);
    std::string detail = std::forward<DetailFn>(detail_fn)();
    return record_slow(t, kind, fields, &detail);
  }

  /// Ring + drop introspection (unit tests; stats lines).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return next_id_ - 1;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Visit retained events oldest-first. Fn: void(const Event&, const
  /// std::string& detail) — detail is empty unless keeps_details().
  template <typename Fn>
  void for_each(Fn fn) const {
    static const std::string kNoDetail;
    const std::size_t n = slots_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = (head_ + i) % n;
      fn(slots_[at], details_.empty() ? kNoDetail : details_[at]);
    }
  }

  /// Copy the retained window out as a Journal (id order).
  [[nodiscard]] Journal snapshot() const;

  /// The time-series metrics registry riding along with the journal.
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

 private:
  EventId record_slow(sim::SimTime t, EventKind kind, const Fields& fields,
                      std::string* detail);
  /// Deterministic causal inference: keyed lookups against the maps below,
  /// maintained as events stream in. Returns kNoEvent when nothing links.
  [[nodiscard]] EventId infer_cause(EventKind kind, const Fields& fields) const;
  void note_links(const Event& event);
  /// place event of a live uid (kNoEvent once completed/aborted).
  [[nodiscard]] EventId placed_at(std::uint64_t uid) const;

  bool enabled_ = false;
  bool keep_details_ = false;
  std::uint32_t capacity_ = 0;
  std::uint32_t header_rank_ = 0;
  std::uint32_t header_procs_ = 0;
  // The ring proper. Detail strings live in a parallel vector that is only
  // populated under keep_details_, so the common recorder-on configuration
  // writes a fixed-size Event per record and nothing else.
  std::vector<Event> slots_;
  std::vector<std::string> details_;
  std::size_t head_ = 0;  // index of the oldest retained slot once full
  EventId next_id_ = 1;
  std::uint64_t dropped_ = 0;
  Metrics metrics_;

  // Causal-linker memory (lookup only; iteration order never observed).
  std::unordered_map<net::ProcId, EventId> fault_of_;     // crash per proc
  std::unordered_map<net::ProcId, EventId> detect_of_;    // last detect OF p
  std::unordered_map<net::ProcId, EventId> detect_by_;    // last detect BY p
  std::unordered_map<net::ProcId, EventId> rejoin_of_;    // rejoin per proc
  // Uids are allocated from one global counter (Runtime::next_uid), so the
  // live-uid -> place link is a dense array, not a hash map — placement and
  // completion are the two hottest record kinds.
  std::vector<EventId> place_of_;
  // Stamp-addressed links, keyed by the stamp's FNV fingerprint rather than
  // a full stamp copy: one spawn insert per task makes this the recorder's
  // hottest map, and the fingerprint (deterministic, process-independent)
  // spares the 48-byte key copy and digit-wise compares. A fingerprint
  // collision could mislink one cause edge — linker metadata, never
  // protocol state — at ~2^-64 odds per pair.
  std::unordered_map<std::uint64_t, EventId>
      reissue_of_;  // last reissue/twin/spawn per stamp
  std::unordered_map<std::uint64_t, EventId>
      cancel_of_;   // last cancel per stamp
  std::unordered_map<std::uint64_t, EventId>
      relay_of_;    // last relay per stamp
  EventId last_fault_ = kNoEvent;      // most recent crash/partition/gray
  EventId last_partition_ = kNoEvent;  // most recent partition (heal cause)
};

}  // namespace splice::obs
