// Thread-local Recorder override for the sharded (PDES) engine.
//
// The classic runtime records into one Recorder owned by the Runtime. Under
// the engine every worker thread records into its *own* shard ring (the
// whole point of the per-shard journal satellite: no global lock on the
// record hot path), and the rings are merged into the canonical journal by
// (time, phase, proc) at the end of the run. Runtime::recorder() resolves
// through this context exactly like sim::ctx resolves the clock, so the
// hundreds of existing record sites stay untouched.
//
// This lives in obs/ (not sim/) because sim must not depend on obs.
#pragma once

#include "obs/journal.h"

namespace splice::obs {

namespace detail {
inline Recorder*& recorder_tls() noexcept {
  thread_local Recorder* current = nullptr;
  return current;
}
}  // namespace detail

/// The calling thread's Recorder: the scoped override when inside a shard
/// window, else the fallback (the Runtime's own recorder).
[[nodiscard]] inline Recorder& recorder_ctx(Recorder& fallback) noexcept {
  Recorder* r = detail::recorder_tls();
  return r != nullptr ? *r : fallback;
}

/// RAII: install `recorder` as this thread's Recorder for the current scope.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* recorder) noexcept
      : previous_(detail::recorder_tls()) {
    detail::recorder_tls() = recorder;
  }
  ~ScopedRecorder() { detail::recorder_tls() = previous_; }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* previous_;
};

}  // namespace splice::obs
