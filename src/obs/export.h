// Journal exporters.
//
// write_perfetto emits Chrome/Perfetto `trace_event` JSON (the
// {"traceEvents": [...]} object form): one track (tid) per processor plus
// a host track, every journal event as a 1-tick complete slice, flow
// arrows ("s"/"f" pairs keyed by the effect's event id) along causal
// edges, and counter tracks ("ph":"C") from the metrics time series —
// load either into ui.perfetto.dev or chrome://tracing. Ticks map 1:1 to
// trace microseconds (one tick nominally models 1 µs, sim/time.h).
//
// write_series_csv / write_series_json emit the per-window goodput +
// gauge + latency-quantile series; bench_json.py folds the JSON form into
// the recorded trajectory (E20).
//
// merge stitches per-rank journals (splice_noded --journal dumps) into one
// timeline: events re-sorted by time, re-numbered consecutively, causal
// edges remapped — rank-local ids never leak into the merged journal.
#pragma once

#include <ostream>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace splice::obs {

void write_perfetto(const Journal& journal, const std::vector<TimePoint>& series,
                    std::ostream& out);

inline void write_perfetto(const Journal& journal, std::ostream& out) {
  write_perfetto(journal, {}, out);
}

void write_series_csv(const std::vector<TimePoint>& series, std::ostream& out);
void write_series_json(const std::vector<TimePoint>& series, std::ostream& out);

/// Merge per-rank journals into one consecutive-id timeline. Header totals
/// sum; processors takes the max (ranks report the same machine size).
[[nodiscard]] Journal merge(const std::vector<Journal>& journals);

}  // namespace splice::obs
