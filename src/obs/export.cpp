#include "obs/export.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace splice::obs {

namespace {

// Track ids: processors use their own id, host-side events (super-root,
// injector milestones) share one synthetic track past the last processor.
std::uint32_t track_of(const Event& event, std::uint32_t host_track) {
  return event.proc == net::kNoProc ? host_track : event.proc;
}

void write_event_args(const Event& event, std::ostream& out) {
  out << "{\"id\":" << event.id;
  if (event.cause != kNoEvent) out << ",\"cause\":" << event.cause;
  if (event.uid != 0) out << ",\"uid\":" << event.uid;
  if (!event.stamp.is_root()) {
    out << ",\"stamp\":\"" << event.stamp.to_string() << '"';
  }
  if (event.peer != net::kNoProc) out << ",\"peer\":" << event.peer;
  if (event.arg != 0) out << ",\"arg\":" << event.arg;
  out << '}';
}

}  // namespace

void write_perfetto(const Journal& journal,
                    const std::vector<TimePoint>& series, std::ostream& out) {
  const std::uint32_t host_track =
      journal.header.processors != 0 ? journal.header.processors : 100000;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  // Thread-name metadata: one track per processor that actually appears.
  std::set<std::uint32_t> tracks;
  for (const Event& event : journal.events) {
    tracks.insert(track_of(event, host_track));
  }
  for (const std::uint32_t track : tracks) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (track == host_track) {
      out << "host";
    } else {
      out << "proc " << track;
    }
    out << "\"}}";
  }

  // Every event is a 1-tick complete slice on its processor's track;
  // causal edges become flow arrows keyed by the effect's id. Perfetto
  // binds flows to enclosing slices, which is why events are slices
  // rather than instants.
  for (const Event& event : journal.events) {
    const std::uint32_t track = track_of(event, host_track);
    sep();
    out << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << track
        << ",\"ts\":" << event.ticks << ",\"dur\":1,\"cat\":\""
        << to_string(event.kind) << "\",\"name\":\"" << to_string(event.kind)
        << "\",\"args\":";
    write_event_args(event, out);
    out << '}';
    const Event* cause = journal.find(event.cause);
    if (cause != nullptr) {
      const std::uint32_t cause_track = track_of(*cause, host_track);
      sep();
      out << "{\"ph\":\"s\",\"pid\":0,\"tid\":" << cause_track
          << ",\"ts\":" << cause->ticks << ",\"id\":" << event.id
          << ",\"cat\":\"causal\",\"name\":\"causal\"}";
      sep();
      out << "{\"ph\":\"f\",\"pid\":0,\"tid\":" << track
          << ",\"ts\":" << event.ticks << ",\"id\":" << event.id
          << ",\"bp\":\"e\",\"cat\":\"causal\",\"name\":\"causal\"}";
    }
  }

  // Metrics counters: one counter track per series column.
  for (const TimePoint& point : series) {
    sep();
    out << "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << point.window_start
        << ",\"name\":\"goodput\",\"args\":{\"completed\":" << point.completed
        << ",\"spawned\":" << point.spawned << "}}";
    sep();
    out << "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << point.window_start
        << ",\"name\":\"depth\",\"args\":{\"queue\":" << point.queue_depth
        << ",\"in_flight\":" << point.in_flight
        << ",\"checkpoints\":" << point.checkpoint_residency << "}}";
    sep();
    out << "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << point.window_start
        << ",\"name\":\"latency\",\"args\":{\"p50\":" << point.latency_p50
        << ",\"p99\":" << point.latency_p99
        << ",\"p999\":" << point.latency_p999 << "}}";
  }

  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_series_csv(const std::vector<TimePoint>& series,
                      std::ostream& out) {
  out << "window_start,spawned,completed,queue_depth,in_flight,"
         "checkpoint_residency,latency_count,latency_p50,latency_p99,"
         "latency_p999\n";
  for (const TimePoint& p : series) {
    out << p.window_start << ',' << p.spawned << ',' << p.completed << ','
        << p.queue_depth << ',' << p.in_flight << ','
        << p.checkpoint_residency << ',' << p.latency_count << ','
        << p.latency_p50 << ',' << p.latency_p99 << ',' << p.latency_p999
        << '\n';
  }
}

void write_series_json(const std::vector<TimePoint>& series,
                       std::ostream& out) {
  out << "[\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const TimePoint& p = series[i];
    out << "  {\"window_start\":" << p.window_start
        << ",\"spawned\":" << p.spawned << ",\"completed\":" << p.completed
        << ",\"queue_depth\":" << p.queue_depth
        << ",\"in_flight\":" << p.in_flight
        << ",\"checkpoint_residency\":" << p.checkpoint_residency
        << ",\"latency_count\":" << p.latency_count
        << ",\"latency_p50\":" << p.latency_p50
        << ",\"latency_p99\":" << p.latency_p99
        << ",\"latency_p999\":" << p.latency_p999 << '}'
        << (i + 1 < series.size() ? "," : "") << '\n';
  }
  out << "]\n";
}

Journal merge(const std::vector<Journal>& journals) {
  Journal merged;
  struct Tagged {
    std::size_t rank_index;
    const Event* event;
  };
  std::vector<Tagged> all;
  for (std::size_t i = 0; i < journals.size(); ++i) {
    const Journal& j = journals[i];
    merged.header.total_recorded += j.header.total_recorded;
    merged.header.dropped += j.header.dropped;
    merged.header.processors =
        std::max(merged.header.processors, j.header.processors);
    for (const Event& event : j.events) all.push_back({i, &event});
  }
  // Deterministic timeline order: time, then rank, then rank-local id.
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.event->ticks != b.event->ticks) {
                       return a.event->ticks < b.event->ticks;
                     }
                     if (a.rank_index != b.rank_index) {
                       return a.rank_index < b.rank_index;
                     }
                     return a.event->id < b.event->id;
                   });
  // Re-number consecutively and remap causal edges; a cause the source
  // ring dropped remaps to kNoEvent.
  std::map<std::pair<std::size_t, EventId>, EventId> new_id;
  for (std::size_t i = 0; i < all.size(); ++i) {
    new_id[{all[i].rank_index, all[i].event->id}] = i + 1;
  }
  merged.events.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    Event event = *all[i].event;
    event.id = i + 1;
    if (event.cause != kNoEvent) {
      auto it = new_id.find({all[i].rank_index, event.cause});
      event.cause = it == new_id.end() ? kNoEvent : it->second;
    }
    merged.events.push_back(std::move(event));
  }
  return merged;
}

}  // namespace splice::obs
