// Time-series metrics riding along with the flight recorder.
//
// End-of-run Counters answer "how many"; these answer "when". The registry
// keeps a log-bucket latency histogram (HDR-style: octave + 4 sub-bucket
// bits, ≈ ±3% relative error, fixed 512-slot footprint) plus a per-window
// time series of goodput and gauge samples — event-queue depth, in-flight
// envelopes, checkpoint residency — closed every `sample_interval` ticks by
// the runtime's sampling tick. This is HEAL's framing (ROADMAP): measure
// goodput *during* recovery, not a recovery-latency scalar.
//
// Everything here is plain arithmetic on the sim thread; no locks, no
// allocation after the first window, nothing when the recorder is off.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace splice::obs {

/// Log-bucket histogram over non-negative 64-bit values.
///
/// Bucket index = (octave << kSubBits) | sub-bucket, where octave is the
/// value's bit width past kSubBits and sub-bucket is its next kSubBits
/// significant bits — the classic HDR layout, sized for tick latencies.
class LogHistogram {
 public:
  static constexpr unsigned kSubBits = 4;
  static constexpr std::size_t kBuckets = (64 - kSubBits) << kSubBits;

  void add(std::uint64_t value) noexcept;

  /// Value at quantile q in [0, 1] (upper bound of the holding bucket, so
  /// percentile error is bounded by the bucket width: ≈ 2^-kSubBits).
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

  void clear() noexcept;
  /// Fold `other` into *this (per-rank journal merge).
  void merge(const LogHistogram& other) noexcept;

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// One closed sampling window of the run.
struct TimePoint {
  std::int64_t window_start = 0;  // ticks; window is [start, start+interval)
  std::uint64_t spawned = 0;      // tasks placed in the window
  std::uint64_t completed = 0;    // tasks completed in the window (goodput)
  std::uint64_t queue_depth = 0;  // sim event-queue depth at window close
  std::uint64_t in_flight = 0;    // network envelopes in flight at close
  std::uint64_t checkpoint_residency = 0;  // live checkpoint entries at close
  std::uint64_t latency_count = 0;         // completions the quantiles cover
  std::uint64_t latency_p50 = 0;           // spawn→complete latency, ticks
  std::uint64_t latency_p99 = 0;
  std::uint64_t latency_p999 = 0;
};

class Metrics {
 public:
  /// Event-driven feeds (called from Recorder::record on the matching
  /// kinds, so hook sites stay single calls).
  void on_task_spawn() noexcept { ++window_spawned_; }
  void on_task_complete(std::uint64_t latency_ticks) noexcept {
    ++window_completed_;
    window_latency_.add(latency_ticks);
    run_latency_.add(latency_ticks);
  }

  /// Close the current window at time `now` with the given gauge readings
  /// and start the next one. Called by the runtime's sampling tick.
  void sample(std::int64_t now, std::uint64_t queue_depth,
              std::uint64_t in_flight, std::uint64_t checkpoint_residency);

  [[nodiscard]] const std::vector<TimePoint>& series() const noexcept {
    return series_;
  }
  /// Whole-run spawn→complete latency distribution.
  [[nodiscard]] const LogHistogram& latency() const noexcept {
    return run_latency_;
  }

  void clear();

 private:
  std::vector<TimePoint> series_;
  std::int64_t window_start_ = 0;
  std::uint64_t window_spawned_ = 0;
  std::uint64_t window_completed_ = 0;
  LogHistogram window_latency_;
  LogHistogram run_latency_;
};

}  // namespace splice::obs
