// Causal query engine over the flight-recorder journal.
//
// Answers "explain task X": starting from the task's terminal event, walk
// the causal parent references back to the root cause (the crash, partition
// or gray window that doomed the lineage) and render the chain — fault →
// detection → reissue/twin → place → cancel/abort — as the paper's §4.1
// recovery argument, instantiated on a concrete run. RecoveryOracle invokes
// this to attach an explanation to every invariant violation; the
// splice_trace CLI exposes it as `explain`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/journal.h"

namespace splice::obs {

/// Render one event as a single human-readable line:
///   "t=1234  p3    reissue        stamp=1.2 uid=42".
[[nodiscard]] std::string render_event(const Event& event);

/// The causal chain ending at `leaf`: ids root-cause-first, leaf last.
/// Stops at events the ring dropped (chain then starts mid-story) and
/// defends against cycles (cause ids always point backwards, but a merged
/// journal from a hostile dump might not).
[[nodiscard]] std::vector<EventId> chain_of(const Journal& journal,
                                            EventId leaf);

/// Multi-line rendering of chain_of(), one "  <event>" line per link with
/// "└─>" connectors. Empty string when leaf is unknown.
[[nodiscard]] std::string render_chain(const Journal& journal, EventId leaf);

/// The last event naming task `uid`, or kNoEvent. A task's story ends at
/// its complete/abort/oracle-leak event; earlier events (place, checkpoint)
/// are reached by the chain walk.
[[nodiscard]] EventId last_event_of_task(const Journal& journal,
                                         std::uint64_t uid);

/// The first reissue-or-twin event (a recovery action implying a reclaimed
/// duplicate somewhere), or kNoEvent. The CI smoke job explains this one.
[[nodiscard]] EventId first_reissued(const Journal& journal);

/// "explain task X" end to end: locate the task's terminal event, walk the
/// chain, render it. Falls back to an explanatory message when the uid
/// never appears (or the ring dropped its window).
[[nodiscard]] std::string explain_task(const Journal& journal,
                                       std::uint64_t uid);

}  // namespace splice::obs
