#include "obs/causal.h"

#include <algorithm>
#include <cstdio>

namespace splice::obs {

std::string render_event(const Event& event) {
  char head[96];
  if (event.proc == net::kNoProc) {
    std::snprintf(head, sizeof(head), "t=%-8lld host  %-14s",
                  static_cast<long long>(event.ticks),
                  std::string(to_string(event.kind)).c_str());
  } else {
    std::snprintf(head, sizeof(head), "t=%-8lld p%-4u %-14s",
                  static_cast<long long>(event.ticks), event.proc,
                  std::string(to_string(event.kind)).c_str());
  }
  std::string line = head;
  if (!event.stamp.is_root()) line += " stamp=" + event.stamp.to_string();
  if (event.uid != 0) line += " uid=" + std::to_string(event.uid);
  if (event.peer != net::kNoProc) line += " peer=p" + std::to_string(event.peer);
  if (event.arg != 0) line += " arg=" + std::to_string(event.arg);
  return line;
}

std::vector<EventId> chain_of(const Journal& journal, EventId leaf) {
  std::vector<EventId> chain;
  EventId cursor = leaf;
  // A cause id is always smaller than its effect's id in a well-formed
  // journal; requiring strict descent makes cycles impossible to follow.
  EventId floor = ~EventId{0};
  while (cursor != kNoEvent && cursor < floor) {
    const Event* event = journal.find(cursor);
    if (event == nullptr) break;  // dropped by the ring
    chain.push_back(cursor);
    floor = cursor;
    cursor = event->cause;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::string render_chain(const Journal& journal, EventId leaf) {
  const std::vector<EventId> chain = chain_of(journal, leaf);
  std::string out;
  bool first = true;
  for (const EventId id : chain) {
    const Event* event = journal.find(id);
    if (event == nullptr) continue;
    out += first ? "  " : "  └─> ";
    out += render_event(*event);
    out += '\n';
    first = false;
  }
  return out;
}

EventId last_event_of_task(const Journal& journal, std::uint64_t uid) {
  if (uid == 0) return kNoEvent;
  EventId last = kNoEvent;
  for (const Event& event : journal.events) {
    if (event.uid == uid) last = event.id;
  }
  return last;
}

EventId first_reissued(const Journal& journal) {
  for (const Event& event : journal.events) {
    if (event.kind == EventKind::kReissue || event.kind == EventKind::kTwin) {
      return event.id;
    }
  }
  return kNoEvent;
}

std::string explain_task(const Journal& journal, std::uint64_t uid) {
  const EventId leaf = last_event_of_task(journal, uid);
  if (leaf == kNoEvent) {
    return "task uid=" + std::to_string(uid) +
           ": no journal events (wrong uid, recorder off, or the ring "
           "dropped its window; total recorded " +
           std::to_string(journal.header.total_recorded) + ", dropped " +
           std::to_string(journal.header.dropped) + ")\n";
  }
  std::string out = "task uid=" + std::to_string(uid) + " causal chain:\n";
  out += render_chain(journal, leaf);
  return out;
}

}  // namespace splice::obs
