#include "checkpoint/super_root.h"

#include "util/logging.h"

namespace splice::checkpoint {

using runtime::ResultMsg;
using runtime::ResultRelation;
using runtime::TaskPacket;

SuperRoot::SuperRoot(Env env) : env_(std::move(env)) {}

void SuperRoot::start(TaskPacket root_packet) {
  checkpoint_ = root_packet;  // the preevaluation functional checkpoint
  started_ = true;
  roots_.assign(env_.replicas, {});
  for (std::uint32_t r = 0; r < env_.replicas; ++r) {
    TaskPacket packet = checkpoint_;
    packet.replica = r;
    roots_[r].proc = env_.spawn(std::move(packet));
    roots_[r].acked = false;
    roots_[r].uid = runtime::kNoTask;
  }
}

void SuperRoot::on_result(ResultMsg msg) {
  if (done_) return;
  if (msg.relation == ResultRelation::kToParent && msg.stamp.is_root()) {
    // The answer of the program. With replication, majority consensus:
    // results are identical by determinacy, so the vote is a count.
    ++votes_;
    if (votes_ >= env_.quorum) {
      done_ = true;
      answer_ = msg.value;
      if (env_.recorder != nullptr) {
        env_.recorder->record(sim::SimTime::zero(), obs::EventKind::kAnswer,
                              {}, [&] { return msg.value.to_string(); });
      }
    }
    return;
  }
  // Orphan of a dead root (§4: the super-root is the grandparent of every
  // level-1 task). Buffer, make sure a root twin exists, relay on ack.
  if (!env_.recover_root) {
    if (env_.on_stranded) env_.on_stranded();
    return;
  }
  pending_orphans_.push_back(std::move(msg));
  flush_orphans();
}

void SuperRoot::on_ack(const runtime::AckMsg& msg) {
  if (msg.replica < roots_.size()) {
    roots_[msg.replica].proc = msg.child.proc;
    roots_[msg.replica].uid = msg.child.uid;
    roots_[msg.replica].acked = true;
  }
  flush_orphans();
}

void SuperRoot::on_processor_dead(net::ProcId dead) {
  if (!started_ || done_ || !env_.recover_root) return;
  for (std::uint32_t r = 0; r < roots_.size(); ++r) {
    if (roots_[r].proc == dead) respawn_replica(r);
  }
}

void SuperRoot::restart_program() {
  if (!started_ || done_) return;
  for (std::uint32_t r = 0; r < roots_.size(); ++r) respawn_replica(r);
}

void SuperRoot::respawn_replica(std::uint32_t replica) {
  TaskPacket packet = checkpoint_;
  packet.replica = replica;
  ++root_respawns_;
  roots_[replica].proc = env_.spawn(std::move(packet));
  roots_[replica].uid = runtime::kNoTask;
  roots_[replica].acked = false;
  SPLICE_INFO() << "super-root: respawned root replica " << replica << " onto "
                << roots_[replica].proc;
}

void SuperRoot::flush_orphans() {
  if (pending_orphans_.empty()) return;
  // Relay through the primary incarnation once it is acknowledged.
  const Incarnation* target = nullptr;
  for (const Incarnation& inc : roots_) {
    if (inc.acked) {
      target = &inc;
      break;
    }
  }
  if (target == nullptr) return;
  std::vector<ResultMsg> msgs = std::move(pending_orphans_);
  pending_orphans_.clear();
  for (ResultMsg& msg : msgs) {
    msg.target = runtime::TaskRef{target->proc, target->uid};
    // Depth gap from the root (depth 0) decides how the receiving processor
    // interprets the stamp: a level-1 producer is the root's direct child.
    msg.relation = msg.stamp.depth() == 1 ? ResultRelation::kToParent
                                          : ResultRelation::kToAncestor;
    env_.relay(std::move(msg));
  }
}

}  // namespace splice::checkpoint
