#include "checkpoint/checkpoint_table.h"

#include <algorithm>

#include "util/small_vec.h"

namespace splice::checkpoint {

CheckpointTable::CheckpointTable(net::ProcId self, net::ProcId processors)
    : self_(self), processors_(processors) {
  stripes_.reserve(kStripeCount);
  for (std::uint32_t s = 0; s < kStripeCount; ++s) {
    // Stripe s owns dests s, s + kStripeCount, ...
    const std::uint32_t owned =
        (processors > s) ? (processors - s - 1) / kStripeCount + 1 : 0;
    stripes_.emplace_back(arena_);
    stripes_.back().entries.resize(owned);
  }
}

void CheckpointTable::index_add(net::ProcId dest,
                                const runtime::LevelStamp& stamp) {
  stripes_[stripe_of(dest)].by_stamp.emplace(
      runtime::LevelStamp::Hash{}(stamp), dest);
}

void CheckpointTable::index_remove(net::ProcId dest,
                                   const runtime::LevelStamp& stamp) {
  auto& index = stripes_[stripe_of(dest)].by_stamp;
  auto [it, end] = index.equal_range(runtime::LevelStamp::Hash{}(stamp));
  for (; it != end; ++it) {
    if (it->second == dest) {
      index.erase(it);
      return;
    }
  }
}

void CheckpointTable::on_insert(const CheckpointRecord& record) noexcept {
  ++total_records_;
  total_units_ += record.packet.size_units();
  peak_records_ = std::max(peak_records_, total_records_);
  peak_units_ = std::max(peak_units_, total_units_);
}

void CheckpointTable::on_erase(const CheckpointRecord& record) noexcept {
  --total_records_;
  total_units_ -= record.packet.size_units();
}

RecordOutcome CheckpointTable::record(net::ProcId dest,
                                      CheckpointRecord record) {
  auto& entry = entry_mut(dest);
  // §3.2: descendant of an existing checkpoint -> nothing to store.
  for (const CheckpointRecord& existing : entry) {
    if (existing.packet.stamp.subsumes(record.packet.stamp)) {
      ++subsumed_;
      return RecordOutcome::kSubsumed;
    }
  }
  // Maintain the antichain: drop records the new stamp subsumes. (With
  // ancestor-before-descendant spawn order this rarely fires, but recovery
  // respawns can reorder arrivals.)
  std::erase_if(entry, [&](const CheckpointRecord& existing) {
    if (record.packet.stamp.is_ancestor_of(existing.packet.stamp)) {
      on_erase(existing);
      index_remove(dest, existing.packet.stamp);
      ++evicted_;
      return true;
    }
    return false;
  });
  entry.push_back(std::move(record));
  on_insert(entry.back());
  index_add(dest, entry.back().packet.stamp);
  ++records_made_;
  if (listener_ != nullptr) listener_->on_record(dest, entry.back());
  return RecordOutcome::kRecorded;
}

std::vector<CheckpointRecord> CheckpointTable::take(net::ProcId dead) {
  auto& entry = entry_mut(dead);
  std::vector<CheckpointRecord> out = std::move(entry);
  entry.clear();
  for (const CheckpointRecord& record : out) {
    on_erase(record);
    index_remove(dead, record.packet.stamp);
    ++taken_;
  }
  if (listener_ != nullptr && !out.empty()) listener_->on_take(dead);
  return out;
}

bool CheckpointTable::release(net::ProcId dest,
                              const runtime::LevelStamp& stamp) {
  auto& entry = entry_mut(dest);
  const auto before = entry.size();
  std::erase_if(entry, [&](const CheckpointRecord& existing) {
    if (existing.packet.stamp == stamp) {
      on_erase(existing);
      return true;
    }
    return false;
  });
  const bool found = entry.size() != before;
  if (found) {
    index_remove(dest, stamp);
    ++released_;
    if (listener_ != nullptr) listener_->on_release(dest, stamp);
  }
  return found;
}

bool CheckpointTable::release_anywhere(const runtime::LevelStamp& stamp) {
  const std::size_t hash = runtime::LevelStamp::Hash{}(stamp);
  for (Stripe& stripe : stripes_) {
    // Collect candidates first: release() edits the index being ranged.
    util::SmallVec<net::ProcId, 8> candidates;
    auto [it, end] = stripe.by_stamp.equal_range(hash);
    for (; it != end; ++it) candidates.push_back(it->second);
    for (const net::ProcId dest : candidates) {
      // Hash hit: confirm against the actual records (collisions between
      // distinct stamps are possible, release() re-checks equality).
      if (release(dest, stamp)) return true;
    }
  }
  return false;
}

bool CheckpointTable::contains(net::ProcId dest,
                               const runtime::LevelStamp& stamp) const {
  const Stripe& stripe = stripes_[stripe_of(dest)];
  auto [it, end] =
      stripe.by_stamp.equal_range(runtime::LevelStamp::Hash{}(stamp));
  for (; it != end; ++it) {
    if (it->second != dest) continue;
    // Hash hit on this destination: confirm against the actual records
    // (distinct stamps may collide).
    for (const CheckpointRecord& record :
         stripe.entries.at(dest / kStripeCount)) {
      if (record.packet.stamp == stamp) return true;
    }
    return false;
  }
  return false;
}

void CheckpointTable::clear() {
  cleared_ += total_records_;
  for (Stripe& stripe : stripes_) {
    for (auto& entry : stripe.entries) entry.clear();
    stripe.by_stamp.clear();
  }
  total_records_ = 0;
  total_units_ = 0;
}

std::vector<std::pair<net::ProcId, CheckpointRecord*>>
CheckpointTable::restored_children_of(const runtime::LevelStamp& parent) {
  std::vector<std::pair<net::ProcId, CheckpointRecord*>> out;
  for (net::ProcId dest = 0; dest < processors_; ++dest) {
    for (CheckpointRecord& record : entry_mut(dest)) {
      if (record.restored && record.packet.stamp.depth() == parent.depth() + 1 &&
          parent.is_ancestor_of(record.packet.stamp)) {
        out.emplace_back(dest, &record);
      }
    }
  }
  return out;
}

}  // namespace splice::checkpoint
