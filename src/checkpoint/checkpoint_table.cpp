#include "checkpoint/checkpoint_table.h"

#include <algorithm>

namespace splice::checkpoint {

CheckpointTable::CheckpointTable(net::ProcId self, net::ProcId processors)
    : self_(self), entries_(processors) {}

RecordOutcome CheckpointTable::record(net::ProcId dest,
                                      CheckpointRecord record) {
  auto& entry = entries_.at(dest);
  // §3.2: descendant of an existing checkpoint -> nothing to store.
  for (const CheckpointRecord& existing : entry) {
    if (existing.packet.stamp.subsumes(record.packet.stamp)) {
      ++subsumed_;
      return RecordOutcome::kSubsumed;
    }
  }
  // Maintain the antichain: drop records the new stamp subsumes. (With
  // ancestor-before-descendant spawn order this rarely fires, but recovery
  // respawns can reorder arrivals.)
  std::erase_if(entry, [&](const CheckpointRecord& existing) {
    return record.packet.stamp.is_ancestor_of(existing.packet.stamp);
  });
  entry.push_back(std::move(record));
  ++records_made_;
  note_peak();
  if (listener_ != nullptr) listener_->on_record(dest, entry.back());
  return RecordOutcome::kRecorded;
}

std::vector<CheckpointRecord> CheckpointTable::take(net::ProcId dead) {
  auto& entry = entries_.at(dead);
  std::vector<CheckpointRecord> out = std::move(entry);
  entry.clear();
  if (listener_ != nullptr && !out.empty()) listener_->on_take(dead);
  return out;
}

bool CheckpointTable::release(net::ProcId dest,
                              const runtime::LevelStamp& stamp) {
  auto& entry = entries_.at(dest);
  const auto before = entry.size();
  std::erase_if(entry, [&](const CheckpointRecord& existing) {
    return existing.packet.stamp == stamp;
  });
  const bool found = entry.size() != before;
  if (found) {
    ++released_;
    if (listener_ != nullptr) listener_->on_release(dest, stamp);
  }
  return found;
}

bool CheckpointTable::release_anywhere(const runtime::LevelStamp& stamp) {
  for (net::ProcId dest = 0; dest < entries_.size(); ++dest) {
    if (release(dest, stamp)) return true;
  }
  return false;
}

void CheckpointTable::clear() {
  for (auto& entry : entries_) entry.clear();
}

std::vector<std::pair<net::ProcId, CheckpointRecord*>>
CheckpointTable::restored_children_of(const runtime::LevelStamp& parent) {
  std::vector<std::pair<net::ProcId, CheckpointRecord*>> out;
  for (net::ProcId dest = 0; dest < entries_.size(); ++dest) {
    for (CheckpointRecord& record : entries_[dest]) {
      if (record.restored && record.packet.stamp.depth() == parent.depth() + 1 &&
          parent.is_ancestor_of(record.packet.stamp)) {
        out.emplace_back(dest, &record);
      }
    }
  }
  return out;
}

std::size_t CheckpointTable::total_records() const noexcept {
  std::size_t n = 0;
  for (const auto& entry : entries_) n += entry.size();
  return n;
}

std::uint64_t CheckpointTable::total_units() const noexcept {
  std::uint64_t units = 0;
  for (const auto& entry : entries_) {
    for (const CheckpointRecord& record : entry) {
      units += record.packet.size_units();
    }
  }
  return units;
}

void CheckpointTable::note_peak() {
  peak_records_ = std::max(peak_records_, total_records());
  peak_units_ = std::max(peak_units_, total_units());
}

}  // namespace splice::checkpoint
