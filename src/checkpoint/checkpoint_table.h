// The functional checkpoint table (§3.2).
//
// "Each processor maintains a table of linked lists. The Nth entry of the
//  table contains all topmost checkpoints from the host processor to
//  processor N. ... If B2 is a descendant of an existing functional
//  checkpoint, C does nothing. Otherwise, processor C makes a checkpoint
//  for B2 in entry B."
//
// Invariant (property-tested): every entry is an antichain under the
// level-stamp ancestry order — no record subsumes another.
//
// Layout: entries are sharded into kStripeCount stripes by destination
// processor (dest mod kStripeCount), each stripe carrying a stamp-hash
// index of its records. release_anywhere() — executed for every returning
// result — consults the per-stripe indexes instead of scanning all P
// entries, so its cost is independent of machine size; this is what lets
// the table scale to 256+ processor machines. Record/unit totals are
// maintained incrementally for the same reason (the peak-tracking used to
// recount every record on every mutation).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lang/expr.h"
#include "net/topology.h"
#include "runtime/level_stamp.h"
#include "runtime/task_packet.h"
#include "util/slab.h"

namespace splice::checkpoint {

/// One retained checkpoint: enough to reissue the child and to route its
/// eventual result back into the owning slot.
struct CheckpointRecord {
  runtime::TaskUid owner = runtime::kNoTask;  // local parent task
  lang::ExprId site = lang::kNoExpr;          // slot in the owner's body
  runtime::TaskPacket packet;                 // the retained task packet
  /// True when this record was rebuilt from a DurableStore log replay after
  /// a crash: its owner task died with the node, so reissue must go through
  /// a re-accepted owner (matched by stamp) or directly from the packet.
  bool restored = false;
};

enum class RecordOutcome : std::uint8_t {
  kRecorded,   // inserted as a (new) topmost checkpoint
  kSubsumed,   // an existing checkpoint is an ancestor: nothing stored
};

class CheckpointTable {
 public:
  /// Destination-processor stripes (power of two for cheap modulo).
  static constexpr std::uint32_t kStripeCount = 8;

  /// Mutation observer: the durable store subscribes to mirror every table
  /// mutation into its append-only log (store/durable_store.h). Callbacks
  /// fire after the mutation applied; a null listener costs nothing.
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void on_record(net::ProcId dest, const CheckpointRecord& record) = 0;
    virtual void on_release(net::ProcId dest,
                            const runtime::LevelStamp& stamp) = 0;
    virtual void on_take(net::ProcId dead) = 0;
  };

  CheckpointTable(net::ProcId self, net::ProcId processors);

  /// Install (or detach, with nullptr) the mutation listener.
  void set_listener(Listener* listener) noexcept { listener_ = listener; }

  /// Record a spawn of `record.packet` onto `dest`. Applies the §3.2
  /// subsumption rule and maintains the antichain (descendants of the new
  /// stamp are dropped — they are recoverable through it).
  RecordOutcome record(net::ProcId dest, CheckpointRecord record);

  /// Remove and return every checkpoint held against `dead` — the
  /// processor's reissue obligation when `dead` fails.
  [[nodiscard]] std::vector<CheckpointRecord> take(net::ProcId dead);

  /// Release the checkpoint for `stamp` held against `dest` (child result
  /// arrived; the checkpoint is no longer needed). Returns true if found.
  bool release(net::ProcId dest, const runtime::LevelStamp& stamp);

  /// Release wherever it is held (used when the destination moved due to a
  /// prior respawn). Returns true if found. O(1) expected via the stripe
  /// stamp indexes — never a scan over all destinations.
  bool release_anywhere(const runtime::LevelStamp& stamp);

  /// Is a checkpoint for `stamp` currently held against `dest`? O(1)
  /// expected via the stripe stamp index. Used by the state-transfer pump
  /// to drop packets whose record was released (result arrived, or the
  /// lineage was cancelled) after the stream snapshot was taken — a
  /// released checkpoint must never resurrect as a re-hosted task.
  [[nodiscard]] bool contains(net::ProcId dest,
                              const runtime::LevelStamp& stamp) const;

  /// Drop every live record (the table is volatile state: a crashed node
  /// that rejoins starts blank). Lifetime counters are preserved — they
  /// describe the run, not the node's current contents.
  void clear();

  [[nodiscard]] const std::vector<CheckpointRecord>& entry(
      net::ProcId dest) const {
    return stripes_[stripe_of(dest)].entries.at(dest / kStripeCount);
  }

  [[nodiscard]] net::ProcId processors() const noexcept { return processors_; }

  /// Replay-restored records whose packet is a direct child of `parent`,
  /// with the destination entry each lives in. Mutable so a warm rejoin can
  /// rebind them to the re-accepted owner task; pointers are invalidated by
  /// the next table mutation, so use immediately.
  [[nodiscard]] std::vector<std::pair<net::ProcId, CheckpointRecord*>>
  restored_children_of(const runtime::LevelStamp& parent);

  [[nodiscard]] std::size_t total_records() const noexcept {
    return total_records_;
  }
  [[nodiscard]] std::uint64_t total_units() const noexcept {
    return total_units_;
  }
  [[nodiscard]] std::size_t peak_records() const noexcept {
    return peak_records_;
  }
  [[nodiscard]] std::uint64_t peak_units() const noexcept {
    return peak_units_;
  }
  [[nodiscard]] std::uint64_t records_made() const noexcept {
    return records_made_;
  }
  [[nodiscard]] std::uint64_t subsumed() const noexcept { return subsumed_; }
  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }
  /// Lifetime removal counters besides release: records claimed by take()
  /// (reissue obligation on a crash), evicted to keep the antichain in
  /// record(), and dropped wholesale by clear(). Together with released()
  /// and the resident total_records() they account for every records_made()
  /// — the conservation equation the RecoveryOracle checks.
  [[nodiscard]] std::uint64_t taken() const noexcept { return taken_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept { return evicted_; }
  [[nodiscard]] std::uint64_t cleared() const noexcept { return cleared_; }
  [[nodiscard]] net::ProcId self() const noexcept { return self_; }

 private:
  /// The stamp index allocates one node per live record; a churn-heavy run
  /// (record on spawn, release on result) makes and frees millions of them,
  /// so the nodes come from the table's slab arena and recycle through its
  /// free lists instead of hitting the global allocator every time.
  using StampIndex = std::unordered_multimap<
      std::size_t, net::ProcId, std::hash<std::size_t>,
      std::equal_to<std::size_t>,
      util::PoolAllocator<std::pair<const std::size_t, net::ProcId>>>;

  struct Stripe {
    explicit Stripe(util::SlabArena& arena)
        : by_stamp(StampIndex::allocator_type(arena)) {}
    /// entries[d] holds the checkpoints against processor
    /// d * kStripeCount + stripe_index (the §3.2 "table of linked lists",
    /// striped).
    std::vector<std::vector<CheckpointRecord>> entries;
    /// stamp-hash -> destination, one value per live record in this stripe.
    /// A multimap because distinct stamps may collide; hits re-verify
    /// against the actual records.
    StampIndex by_stamp;
  };

  [[nodiscard]] static std::uint32_t stripe_of(net::ProcId dest) noexcept {
    return dest & (kStripeCount - 1);
  }
  [[nodiscard]] std::vector<CheckpointRecord>& entry_mut(net::ProcId dest) {
    return stripes_[stripe_of(dest)].entries.at(dest / kStripeCount);
  }

  void index_add(net::ProcId dest, const runtime::LevelStamp& stamp);
  void index_remove(net::ProcId dest, const runtime::LevelStamp& stamp);
  void on_insert(const CheckpointRecord& record) noexcept;
  void on_erase(const CheckpointRecord& record) noexcept;

  net::ProcId self_;
  net::ProcId processors_;
  Listener* listener_ = nullptr;
  util::SlabArena arena_;  // must outlive stripes_ (backs their indexes)
  std::vector<Stripe> stripes_;

  std::size_t total_records_ = 0;
  std::uint64_t total_units_ = 0;
  std::size_t peak_records_ = 0;
  std::uint64_t peak_units_ = 0;
  std::uint64_t records_made_ = 0;
  std::uint64_t subsumed_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t taken_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t cleared_ = 0;
};

}  // namespace splice::checkpoint
