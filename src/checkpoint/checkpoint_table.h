// The functional checkpoint table (§3.2).
//
// "Each processor maintains a table of linked lists. The Nth entry of the
//  table contains all topmost checkpoints from the host processor to
//  processor N. ... If B2 is a descendant of an existing functional
//  checkpoint, C does nothing. Otherwise, processor C makes a checkpoint
//  for B2 in entry B."
//
// Invariant (property-tested): every entry is an antichain under the
// level-stamp ancestry order — no record subsumes another.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/expr.h"
#include "net/topology.h"
#include "runtime/level_stamp.h"
#include "runtime/task_packet.h"

namespace splice::checkpoint {

/// One retained checkpoint: enough to reissue the child and to route its
/// eventual result back into the owning slot.
struct CheckpointRecord {
  runtime::TaskUid owner = runtime::kNoTask;  // local parent task
  lang::ExprId site = lang::kNoExpr;          // slot in the owner's body
  runtime::TaskPacket packet;                 // the retained task packet
};

enum class RecordOutcome : std::uint8_t {
  kRecorded,   // inserted as a (new) topmost checkpoint
  kSubsumed,   // an existing checkpoint is an ancestor: nothing stored
};

class CheckpointTable {
 public:
  CheckpointTable(net::ProcId self, net::ProcId processors);

  /// Record a spawn of `record.packet` onto `dest`. Applies the §3.2
  /// subsumption rule and maintains the antichain (descendants of the new
  /// stamp are dropped — they are recoverable through it).
  RecordOutcome record(net::ProcId dest, CheckpointRecord record);

  /// Remove and return every checkpoint held against `dead` — the
  /// processor's reissue obligation when `dead` fails.
  [[nodiscard]] std::vector<CheckpointRecord> take(net::ProcId dead);

  /// Release the checkpoint for `stamp` held against `dest` (child result
  /// arrived; the checkpoint is no longer needed). Returns true if found.
  bool release(net::ProcId dest, const runtime::LevelStamp& stamp);

  /// Release wherever it is held (used when the destination moved due to a
  /// prior respawn). Returns true if found.
  bool release_anywhere(const runtime::LevelStamp& stamp);

  /// Drop every live record (the table is volatile state: a crashed node
  /// that rejoins starts blank). Lifetime counters are preserved — they
  /// describe the run, not the node's current contents.
  void clear();

  [[nodiscard]] const std::vector<CheckpointRecord>& entry(
      net::ProcId dest) const {
    return entries_.at(dest);
  }

  [[nodiscard]] std::size_t total_records() const noexcept;
  [[nodiscard]] std::uint64_t total_units() const noexcept;
  [[nodiscard]] std::size_t peak_records() const noexcept {
    return peak_records_;
  }
  [[nodiscard]] std::uint64_t peak_units() const noexcept {
    return peak_units_;
  }
  [[nodiscard]] std::uint64_t records_made() const noexcept {
    return records_made_;
  }
  [[nodiscard]] std::uint64_t subsumed() const noexcept { return subsumed_; }
  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }
  [[nodiscard]] net::ProcId self() const noexcept { return self_; }

 private:
  void note_peak();

  net::ProcId self_;
  std::vector<std::vector<CheckpointRecord>> entries_;
  std::size_t peak_records_ = 0;
  std::uint64_t peak_units_ = 0;
  std::uint64_t records_made_ = 0;
  std::uint64_t subsumed_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace splice::checkpoint
