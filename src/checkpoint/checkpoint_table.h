// The functional checkpoint table (§3.2).
//
// "Each processor maintains a table of linked lists. The Nth entry of the
//  table contains all topmost checkpoints from the host processor to
//  processor N. ... If B2 is a descendant of an existing functional
//  checkpoint, C does nothing. Otherwise, processor C makes a checkpoint
//  for B2 in entry B."
//
// Invariant (property-tested): every entry is an antichain under the
// level-stamp ancestry order — no record subsumes another.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/expr.h"
#include "net/topology.h"
#include "runtime/level_stamp.h"
#include "runtime/task_packet.h"

namespace splice::checkpoint {

/// One retained checkpoint: enough to reissue the child and to route its
/// eventual result back into the owning slot.
struct CheckpointRecord {
  runtime::TaskUid owner = runtime::kNoTask;  // local parent task
  lang::ExprId site = lang::kNoExpr;          // slot in the owner's body
  runtime::TaskPacket packet;                 // the retained task packet
  /// True when this record was rebuilt from a DurableStore log replay after
  /// a crash: its owner task died with the node, so reissue must go through
  /// a re-accepted owner (matched by stamp) or directly from the packet.
  bool restored = false;
};

enum class RecordOutcome : std::uint8_t {
  kRecorded,   // inserted as a (new) topmost checkpoint
  kSubsumed,   // an existing checkpoint is an ancestor: nothing stored
};

class CheckpointTable {
 public:
  /// Mutation observer: the durable store subscribes to mirror every table
  /// mutation into its append-only log (store/durable_store.h). Callbacks
  /// fire after the mutation applied; a null listener costs nothing.
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void on_record(net::ProcId dest, const CheckpointRecord& record) = 0;
    virtual void on_release(net::ProcId dest,
                            const runtime::LevelStamp& stamp) = 0;
    virtual void on_take(net::ProcId dead) = 0;
  };

  CheckpointTable(net::ProcId self, net::ProcId processors);

  /// Install (or detach, with nullptr) the mutation listener.
  void set_listener(Listener* listener) noexcept { listener_ = listener; }

  /// Record a spawn of `record.packet` onto `dest`. Applies the §3.2
  /// subsumption rule and maintains the antichain (descendants of the new
  /// stamp are dropped — they are recoverable through it).
  RecordOutcome record(net::ProcId dest, CheckpointRecord record);

  /// Remove and return every checkpoint held against `dead` — the
  /// processor's reissue obligation when `dead` fails.
  [[nodiscard]] std::vector<CheckpointRecord> take(net::ProcId dead);

  /// Release the checkpoint for `stamp` held against `dest` (child result
  /// arrived; the checkpoint is no longer needed). Returns true if found.
  bool release(net::ProcId dest, const runtime::LevelStamp& stamp);

  /// Release wherever it is held (used when the destination moved due to a
  /// prior respawn). Returns true if found.
  bool release_anywhere(const runtime::LevelStamp& stamp);

  /// Drop every live record (the table is volatile state: a crashed node
  /// that rejoins starts blank). Lifetime counters are preserved — they
  /// describe the run, not the node's current contents.
  void clear();

  [[nodiscard]] const std::vector<CheckpointRecord>& entry(
      net::ProcId dest) const {
    return entries_.at(dest);
  }

  [[nodiscard]] net::ProcId processors() const noexcept {
    return static_cast<net::ProcId>(entries_.size());
  }

  /// Replay-restored records whose packet is a direct child of `parent`,
  /// with the destination entry each lives in. Mutable so a warm rejoin can
  /// rebind them to the re-accepted owner task; pointers are invalidated by
  /// the next table mutation, so use immediately.
  [[nodiscard]] std::vector<std::pair<net::ProcId, CheckpointRecord*>>
  restored_children_of(const runtime::LevelStamp& parent);

  [[nodiscard]] std::size_t total_records() const noexcept;
  [[nodiscard]] std::uint64_t total_units() const noexcept;
  [[nodiscard]] std::size_t peak_records() const noexcept {
    return peak_records_;
  }
  [[nodiscard]] std::uint64_t peak_units() const noexcept {
    return peak_units_;
  }
  [[nodiscard]] std::uint64_t records_made() const noexcept {
    return records_made_;
  }
  [[nodiscard]] std::uint64_t subsumed() const noexcept { return subsumed_; }
  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }
  [[nodiscard]] net::ProcId self() const noexcept { return self_; }

 private:
  void note_peak();

  net::ProcId self_;
  Listener* listener_ = nullptr;
  std::vector<std::vector<CheckpointRecord>> entries_;
  std::size_t peak_records_ = 0;
  std::uint64_t peak_units_ = 0;
  std::uint64_t records_made_ = 0;
  std::uint64_t subsumed_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace splice::checkpoint
