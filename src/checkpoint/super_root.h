// The super-root (§4.3.1).
//
// "One simple method to generate a preevaluation checkpoint is to create a
//  super-root which acts as the parent processor of all user programs. When
//  a user program is initiated, the super-root checkpoints the program so
//  that a duplicate copy of the program can be found in the system should
//  the root fail. With this modification, every task in an applicative
//  program has a parent."
//
// We model the super-root as the always-alive host interface (the user's
// terminal): it checkpoints the root packet, injects it, collects the
// answer, and — because it is the grandparent of every level-1 task — plays
// the splice-recovery ancestor role for orphans of a dead root.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lang/value.h"
#include "obs/journal.h"
#include "runtime/task_packet.h"
#include "sim/simulator.h"

namespace splice::checkpoint {

class SuperRoot {
 public:
  /// Sentinel uid: TaskRef{proc = kNoProc, uid = kSuperRootUid} addresses
  /// the super-root.
  static constexpr runtime::TaskUid kSuperRootUid = 1;

  struct Env {
    /// Inject a root packet into the system; returns the destination chosen
    /// by the (dynamic-allocation) scheduler, or kNoProc if none alive.
    std::function<net::ProcId(runtime::TaskPacket)> spawn;
    /// Relay a (buffered orphan) result to a task somewhere in the system.
    std::function<void(runtime::ResultMsg)> relay;
    /// Count a stranded orphan (super-root disabled or no recovery).
    std::function<void()> on_stranded;
    /// Flight recorder for the "answer" milestone (null = don't journal).
    obs::Recorder* recorder = nullptr;
    /// Votes needed before the answer is accepted (§5.3 with a replicated
    /// root; 1 otherwise).
    std::uint32_t quorum = 1;
    std::uint32_t replicas = 1;
    bool recover_root = true;  // false: §4.3.1's "user must restart" regime
  };

  explicit SuperRoot(Env env);

  [[nodiscard]] runtime::TaskRef ref() const {
    return runtime::TaskRef{net::kNoProc, kSuperRootUid};
  }

  /// Checkpoint and inject the root application.
  void start(runtime::TaskPacket root_packet);

  /// A result addressed to the super-root arrived: the root's answer
  /// (kToParent) or an orphan diverted around a dead root (kToAncestor).
  void on_result(runtime::ResultMsg msg);

  /// Spawn acknowledgement for a root (re)incarnation.
  void on_ack(const runtime::AckMsg& msg);

  /// A processor died; respawn root replicas that were hosted (or pending)
  /// there.
  void on_processor_dead(net::ProcId dead);

  /// Restart-from-scratch baseline: reinject every root replica.
  void restart_program();

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const lang::Value& answer() const noexcept { return answer_; }
  [[nodiscard]] std::uint32_t root_respawns() const noexcept {
    return root_respawns_;
  }

 private:
  void respawn_replica(std::uint32_t replica);
  void flush_orphans();

  Env env_;
  runtime::TaskPacket checkpoint_;
  bool started_ = false;
  bool done_ = false;
  lang::Value answer_;
  std::uint32_t votes_ = 0;
  std::uint32_t root_respawns_ = 0;

  struct Incarnation {
    net::ProcId proc = net::kNoProc;   // tentative (pre-ack) or acked host
    runtime::TaskUid uid = runtime::kNoTask;  // known after ack
    bool acked = false;
  };
  std::vector<Incarnation> roots_;

  std::vector<runtime::ResultMsg> pending_orphans_;
};

}  // namespace splice::checkpoint
