#include "recovery/policy.h"

#include "recovery/periodic_global.h"
#include "recovery/rollback.h"
#include "recovery/splice_recovery.h"
#include "runtime/processor.h"
#include "runtime/runtime.h"

namespace splice::recovery {

using runtime::CallSlot;
using runtime::Processor;
using runtime::ResultMsg;
using runtime::Task;
using runtime::TaskPacket;

void RecoveryPolicy::on_spawn_undeliverable(Processor& proc,
                                            const TaskPacket& packet) {
  // Fig. 6 state b: the child never arrived, no ack will come. The parent
  // "times out and reissues a new task P" — through the owning slot so the
  // replacement's result lands correctly.
  Task* owner = proc.find_task(packet.parent().uid);
  if (owner == nullptr) return;
  CallSlot* slot = owner->find_slot(packet.call_site);
  if (slot == nullptr || slot->resolved() || !slot->spawned) return;
  if (packet.lineage < slot->retained.lineage) {
    // Late bounce of a superseded spawn generation: the slot was respawned
    // after this packet left (a death-path reissue, or an earlier bounce)
    // and the current generation is unaffected. Reacting would cancel a
    // healthy copy and churn out yet another lineage.
    return;
  }
  // With replication, respawn only when the surviving (or still-possible)
  // incarnations can no longer reach quorum.
  const std::uint32_t quorum =
      proc.runtime().quorum_for(packet.stamp.depth());
  std::uint32_t possible = slot->votes;
  for (std::size_t i = 0; i < slot->sent_to.size(); ++i) {
    // The copy that bounced can never ack — the packet itself was lost,
    // even if its destination has since been repaired (rejoin).
    if (i == packet.replica) continue;
    net::ProcId where = slot->sent_to[i];
    if (i < slot->child_procs.size() &&
        slot->child_procs[i] != net::kNoProc) {
      where = slot->child_procs[i];
    }
    if (!proc.knows_dead(where)) ++possible;
  }
  if (possible >= quorum) return;
  proc.respawn_slot(*owner, *slot, /*as_twin=*/false, "spawn bounce");
}

void NoRecoveryPolicy::on_result_undeliverable(Processor& proc,
                                               ResultMsg /*msg*/) {
  ++proc.counters().late_results_discarded;
}

void NoRecoveryPolicy::on_ancestor_result(Processor& proc,
                                          ResultMsg /*msg*/) {
  ++proc.counters().late_results_discarded;
}

void RestartPolicy::on_global_failure(runtime::Runtime& rt,
                                      net::ProcId /*dead*/) {
  // No checkpoints anywhere: the only recovery is to run the whole program
  // again from the super-root's preevaluation copy.
  rt.super_root().restart_program();
}

void RestartPolicy::on_result_undeliverable(Processor& proc,
                                            ResultMsg /*msg*/) {
  ++proc.counters().late_results_discarded;
}

void RestartPolicy::on_ancestor_result(Processor& proc, ResultMsg /*msg*/) {
  ++proc.counters().late_results_discarded;
}

std::unique_ptr<RecoveryPolicy> make_policy(
    const core::RecoveryConfig& config) {
  switch (config.kind) {
    case core::RecoveryKind::kNone:
      return std::make_unique<NoRecoveryPolicy>();
    case core::RecoveryKind::kRestart:
      return std::make_unique<RestartPolicy>();
    case core::RecoveryKind::kRollback:
      return std::make_unique<RollbackPolicy>();
    case core::RecoveryKind::kSplice:
      return std::make_unique<SplicePolicy>(config.eager_respawn);
    case core::RecoveryKind::kPeriodicGlobal:
      return std::make_unique<PeriodicGlobalPolicy>(config);
  }
  return std::make_unique<SplicePolicy>(false);
}

}  // namespace splice::recovery
