// Splice recovery (§4).
//
// Rollback's checkpoint reissue, plus salvage of orphan partial results:
//  * a completed task that cannot reach its parent forwards the result up
//    its ancestor chain (grandparent pointer; §5.2's great-grandparent
//    extension is the same chain, longer);
//  * an ancestor receiving an orphan result creates a step-parent twin of
//    the dead intermediate from its retained packet ("processor C forms the
//    recovery task B2' by duplicating the task packet of B2") and relays
//    the result to it;
//  * the twin inherits offspring: relayed results pre-fill its call slots,
//    so already-computed subtrees are not re-demanded (cases 4-6 of §4.1).
#pragma once

#include "recovery/policy.h"

namespace splice::recovery {

class SplicePolicy final : public RecoveryPolicy {
 public:
  /// eager_respawn=false reissues only topmost checkpoints (§4.2's
  /// "find the topmost offspring of all branches"); true makes every live
  /// parent respawn every trapped child (aggressive-salvage ablation).
  explicit SplicePolicy(bool eager_respawn)
      : eager_respawn_(eager_respawn) {}

  [[nodiscard]] core::RecoveryKind kind() const override {
    return core::RecoveryKind::kSplice;
  }
  [[nodiscard]] bool salvages_orphans() const override { return true; }
  void on_error_detected(runtime::Processor& proc, net::ProcId dead) override;
  void reissue_against(runtime::Processor& proc, net::ProcId dead) override;
  void on_result_undeliverable(runtime::Processor& proc,
                               runtime::ResultMsg msg) override;
  void on_ancestor_result(runtime::Processor& proc,
                          runtime::ResultMsg msg) override;

 private:
  /// Route an undeliverable result to the next live ancestor in its chain;
  /// counts the orphan stranded when the chain is exhausted (§5.2: "if both
  /// the parent and grandparent processors fail simultaneously, the orphan
  /// task would be stranded").
  void escalate(runtime::Processor& proc, runtime::ResultMsg msg);

  bool eager_respawn_;
};

}  // namespace splice::recovery
