#include "recovery/recovery_oracle.h"

#include <sstream>

#include "obs/causal.h"

namespace splice::recovery {

std::string OracleReport::to_string() const {
  if (violations.empty()) return "ok";
  std::ostringstream out;
  for (const OracleViolation& v : violations) {
    out << v.invariant << ": " << v.detail << "\n";
  }
  return out.str();
}

OracleReport RecoveryOracle::check(const core::RunResult& result,
                                   const Expect& expect) {
  OracleReport report;
  const core::Counters& c = result.counters;
  const auto fail = [&report](std::string invariant, std::string detail) {
    report.violations.push_back(
        OracleViolation{std::move(invariant), std::move(detail)});
  };

  if (expect.completion && !result.completed) {
    fail("completion", "run did not complete (makespan=" +
                           std::to_string(result.makespan_ticks) + ")");
  }
  if (result.completed && result.answer_checked && !result.answer_correct) {
    fail("determinacy", "surviving answer " + result.answer.to_string() +
                            " differs from the reference interpreter's");
  }
  if (expect.no_detection && result.detection_ticks >= 0) {
    fail("no-detection",
         "failure detection fired at t=" +
             std::to_string(result.detection_ticks) +
             " though every node stayed alive (gray, not dead)");
  }
  if (c.gc_oracle_orphans > 0) {
    fail("task-leak", std::to_string(c.gc_oracle_orphans) +
                          " duplicate lineage(s) outlived the cancel "
                          "protocol");
  }

  // Task conservation. Snapshot restores (periodic-global) re-materialise
  // tasks without re-accepting them, so the ledger cannot balance there.
  if (c.restores == 0) {
    const std::uint64_t accounted = c.tasks_completed + c.tasks_aborted +
                                    c.tasks_lost_to_crash +
                                    result.stranded_tasks;
    if (c.tasks_created != accounted) {
      fail("task-conservation",
           "created=" + std::to_string(c.tasks_created) +
               " != completed=" + std::to_string(c.tasks_completed) +
               " + aborted=" + std::to_string(c.tasks_aborted) +
               " + lost_to_crash=" + std::to_string(c.tasks_lost_to_crash) +
               " + stranded=" + std::to_string(result.stranded_tasks) +
               " (= " + std::to_string(accounted) + ")");
    }
  }

  // Checkpoint conservation: one exit per record.
  const std::uint64_t ckpt_accounted =
      c.checkpoint_released + c.checkpoint_taken + c.checkpoint_evicted +
      c.checkpoint_cleared + c.checkpoint_resident;
  if (c.checkpoint_records != ckpt_accounted) {
    fail("checkpoint-conservation",
         "records=" + std::to_string(c.checkpoint_records) +
             " != released=" + std::to_string(c.checkpoint_released) +
             " + taken=" + std::to_string(c.checkpoint_taken) +
             " + evicted=" + std::to_string(c.checkpoint_evicted) +
             " + cleared=" + std::to_string(c.checkpoint_cleared) +
             " + resident=" + std::to_string(c.checkpoint_resident) + " (= " +
             std::to_string(ckpt_accounted) + ")");
  }

  return report;
}

OracleReport RecoveryOracle::check(const core::RunResult& result,
                                   const obs::Journal& journal,
                                   const Expect& expect) {
  OracleReport report = check(result, expect);
  if (report.violations.empty()) return report;
  // Leaf selection is a linear scan over the journal's id order — no
  // container-iteration nondeterminism — so a violation renders the same
  // chain on every transport backend.
  const auto last_of = [&journal](auto&& pred) {
    obs::EventId leaf = obs::kNoEvent;
    for (const obs::Event& event : journal.events) {
      if (pred(event)) leaf = event.id;
    }
    return leaf;
  };
  const obs::EventId last_chaos = last_of([](const obs::Event& e) {
    return e.kind == obs::EventKind::kCrash ||
           e.kind == obs::EventKind::kPartition ||
           e.kind == obs::EventKind::kGray;
  });
  for (OracleViolation& violation : report.violations) {
    obs::EventId leaf = obs::kNoEvent;
    if (violation.invariant == "task-leak") {
      leaf = last_of([](const obs::Event& e) {
        return e.kind == obs::EventKind::kOracleLeak;
      });
    }
    if (leaf == obs::kNoEvent) leaf = last_chaos;
    if (leaf == obs::kNoEvent) continue;  // recorder off or fault-free run
    const std::string chain = obs::render_chain(journal, leaf);
    if (!chain.empty()) violation.detail += "\ncausal chain:\n" + chain;
  }
  return report;
}

}  // namespace splice::recovery
