// The weak-recovery oracle: did a chaotic run actually recover?
//
// The paper's §4.1 argument is qualitative — duplicate results are
// harmless, orphan returns are salvage material, checkpoints are released
// when children return. This oracle turns the argument into checkable
// invariants over a finished RunResult, so every chaos-matrix run (crash ×
// partition × gray × lossy links) is validated mechanically instead of by
// eyeballing counters:
//
//   completion     the program finished before the deadline — weak
//                  recovery's whole promise ("the system proceeds as if no
//                  failure occurred");
//   determinacy    the surviving answer equals the reference interpreter's
//                  (§2.1: an applicative program has one value);
//   task-leak      no duplicate lineage outlived the cancel protocol
//                  (Counters::gc_oracle_orphans, fed by the read-only
//                  validation sweep when ReclaimConfig::gc_oracle is on);
//   task-conservation
//                  every accepted task is accounted for:
//                    created == completed + aborted + lost_to_crash
//                               + stranded
//                  (a task either reduced, was cancelled/aborted, died with
//                  its host, or is a counted leftover — nothing vanishes
//                  and nothing is double-erased);
//   checkpoint-conservation
//                  every checkpoint record is released exactly once:
//                    records == released + taken + evicted + cleared
//                               + resident
//                  (returned result, crash reissue obligation, antichain
//                  eviction, node wipe, or still held — one exit each);
//   no-detection   (opt-in, gray-failure runs) failure detection must NOT
//                  have fired: a gray node is alive, its heartbeats and
//                  bounce notices flow, so §1's timeout never condemns it.
//
// Conservation is skipped for snapshot-restoring runs (periodic-global):
// restore re-materialises tasks without re-accepting them, so the ledger
// intentionally does not balance there.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.h"
#include "obs/journal.h"

namespace splice::recovery {

/// One violated invariant, named and explained with the numbers involved.
struct OracleViolation {
  std::string invariant;
  std::string detail;
};

struct OracleReport {
  std::vector<OracleViolation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// All violations on one line each — ready for a test failure message.
  [[nodiscard]] std::string to_string() const;
};

class RecoveryOracle {
 public:
  struct Expect {
    /// The run must have completed (set false for runs that legitimately
    /// cannot finish, e.g. a never-healing partition isolating the root).
    bool completion = true;
    /// Gray-failure runs: assert detection never fired.
    bool no_detection = false;

    Expect() {}  // = default rejects {} for a const& default argument
  };

  /// Validate every applicable invariant; the report lists what failed.
  [[nodiscard]] static OracleReport check(const core::RunResult& result,
                                          const Expect& expect = {});

  /// Journal-aware variant: every violation's detail gains the causal chain
  /// the flight recorder journaled for it — the leak's lineage walked back
  /// to the fault for task-leak, the last chaos event's chain otherwise —
  /// so a failed invariant arrives with its §4.1 story attached.
  [[nodiscard]] static OracleReport check(const core::RunResult& result,
                                          const obs::Journal& journal,
                                          const Expect& expect = {});
};

}  // namespace splice::recovery
