#include "recovery/replicated.h"

#include <cmath>

namespace splice::recovery {

double replication_work_multiplier(std::uint32_t factor,
                                   std::uint32_t max_depth,
                                   std::uint32_t fanout,
                                   std::uint32_t tree_depth) {
  if (factor <= 1 || max_depth == 0) return 1.0;
  // Node count at level d: fanout^d; instances at level d:
  // fanout^d * factor^min(d+1, max_depth)  (the root is level 0 and is
  // itself replicated when max_depth >= 1).
  long double nodes = 0.0L;
  long double instances = 0.0L;
  for (std::uint32_t d = 0; d <= tree_depth; ++d) {
    const long double level = std::pow(static_cast<long double>(fanout), d);
    const auto replication_levels = std::min(d + 1, max_depth);
    const long double mult =
        std::pow(static_cast<long double>(factor), replication_levels);
    nodes += level;
    instances += level * mult;
  }
  return static_cast<double>(instances / nodes);
}

std::uint32_t majority_quorum(std::uint32_t factor) noexcept {
  return factor / 2 + 1;
}

std::uint32_t replicas_tolerated(std::uint32_t factor,
                                 bool majority) noexcept {
  if (factor == 0) return 0;
  const std::uint32_t quorum = majority ? majority_quorum(factor) : 1;
  return factor - quorum;
}

}  // namespace splice::recovery
