// Replicated-task redundancy analysis (§5.3).
//
// The mechanism itself lives in the runtime spawn path (replication factor /
// quorum per stamp depth) and in CallSlot voting; this header provides the
// closed-form cost model the replication experiment compares measurements
// against:
//
//   "An applicative system can emulate hardware redundancy by simply
//    replicating the task packets. ... The originating node compares these
//    results and selects a majority consensus as the correct answer."
#pragma once

#include <cstdint>

namespace splice::recovery {

/// Expected multiplier on total task count when tasks at depth < max_depth
/// are replicated `factor` times in a tree of uniform fanout `fanout` and
/// depth `tree_depth`. Each replicated instance spawns its own children, so
/// levels below the replication horizon inherit the product of their
/// ancestors' replication factors.
[[nodiscard]] double replication_work_multiplier(std::uint32_t factor,
                                                 std::uint32_t max_depth,
                                                 std::uint32_t fanout,
                                                 std::uint32_t tree_depth);

/// Majority quorum for `factor` replicas (the §5.3 consensus rule).
[[nodiscard]] std::uint32_t majority_quorum(std::uint32_t factor) noexcept;

/// Maximum number of crashed replicas a slot can tolerate while still
/// reaching quorum without any respawn.
[[nodiscard]] std::uint32_t replicas_tolerated(std::uint32_t factor,
                                               bool majority) noexcept;

}  // namespace splice::recovery
