#include "recovery/splice_recovery.h"

#include "recovery/rollback.h"
#include "runtime/processor.h"
#include "runtime/runtime.h"

namespace splice::recovery {

using runtime::CallSlot;
using runtime::Processor;
using runtime::ResultMsg;
using runtime::ResultRelation;
using runtime::Task;
using runtime::TaskRef;
using runtime::TaskState;

void SplicePolicy::on_error_detected(Processor& proc, net::ProcId dead) {
  if (proc.runtime().defer_reissue(proc, dead)) return;
  reissue_against(proc, dead);
}

void SplicePolicy::reissue_against(Processor& proc, net::ProcId dead) {
  if (eager_respawn_) {
    // Ablation variant: every live parent regenerates every child whose
    // every incarnation is trapped in dead processors.
    proc.for_each_task([&](Task& task) {
      if (task.state() == TaskState::kCompleted ||
          task.state() == TaskState::kAborted) {
        return;
      }
      for (auto& slot : task.slots_mut()) {
        if (slot.outstanding() && all_destinations_dead(proc, slot)) {
          proc.respawn_slot(task, slot, /*as_twin=*/true,
                            "eager step-parent");
        }
      }
    });
    return;
  }
  // Paper-faithful: "Find the topmost offspring of all branches, respawn
  // all of these apply tasks." — the checkpoint table's entry for the dead
  // node is exactly that set.
  auto records = proc.table().take(dead);
  for (auto& record : records) {
    auto [owner, slot] = resolve_record_owner(proc, record);
    if (owner == nullptr) {
      if (record.restored) {
        proc.respawn_from_record(std::move(record), "splice restored");
      }
      continue;
    }
    if (slot == nullptr || slot->resolved()) continue;
    proc.respawn_slot(*owner, *slot, /*as_twin=*/true, "step-parent");
  }
  // No aborts: orphans keep computing; their results are salvage material.
}

void SplicePolicy::on_result_undeliverable(Processor& proc, ResultMsg msg) {
  escalate(proc, std::move(msg));
}

void SplicePolicy::escalate(Processor& proc, ResultMsg msg) {
  // "If the parent is dead, notify the grandparent and send the result to
  //  the grandparent." The ancestor chain extends this beyond depth 2 when
  //  §5.2's extension is configured.
  for (std::uint32_t idx = msg.ancestor_index + 1; idx < msg.ancestors.size();
       ++idx) {
    const TaskRef ancestor = msg.ancestors[idx];
    ResultMsg next = msg;
    next.target = ancestor;
    next.relation = ResultRelation::kToAncestor;
    next.ancestor_index = idx;
    if (ancestor.proc == net::kNoProc) {
      // The super-root is the root's parent (§4.3.1): it buffers and relays.
      proc.runtime().deliver_to_super_root(std::move(next), proc.id());
      return;
    }
    if (ancestor.proc == proc.id()) {
      on_ancestor_result(proc, std::move(next));
      return;
    }
    if (!proc.knows_dead(ancestor.proc)) {
      proc.send_result_msg(std::move(next), ancestor.proc);
      return;
    }
  }
  ++proc.counters().orphans_stranded;
  proc.runtime().recorder().record(
      proc.runtime().sim().now(), obs::EventKind::kStranded,
      {.proc = proc.id(), .stamp = &msg.stamp},
      [&] { return msg.stamp.to_string() + " (ancestor chain exhausted)"; });
}

void SplicePolicy::on_ancestor_result(Processor& proc, ResultMsg msg) {
  Task* ancestor = proc.find_task(msg.target.uid);
  if (ancestor == nullptr && proc.warm_rejoined() &&
      msg.stamp.depth() > msg.ancestor_index + 1) {
    // The targeted ancestor uid belongs to this node's previous
    // incarnation; re-derive it by stamp (the producer's stamp truncated
    // to the ancestor's depth) against the re-accepted task set.
    const std::size_t depth = msg.stamp.depth() - (msg.ancestor_index + 1);
    ancestor = proc.find_task_by_stamp(msg.stamp.truncated(depth));
  }
  if (ancestor == nullptr || ancestor->state() == TaskState::kCompleted ||
      ancestor->state() == TaskState::kAborted) {
    // Case 8: nobody recognises the answer any more.
    ++proc.counters().late_results_discarded;
    return;
  }
  const std::size_t ancestor_depth = ancestor->stamp().depth();
  if (msg.stamp.depth() <= ancestor_depth ||
      !ancestor->stamp().is_ancestor_of(msg.stamp)) {
    ++proc.counters().late_results_discarded;  // "others: Ignore the packet"
    return;
  }
  const auto gap = msg.stamp.depth() - ancestor_depth;
  if (gap == 1) {
    // Escalation landed on the direct parent after all (e.g. a relay raced
    // a respawn): treat as a normal, salvaged return.
    msg.relayed = true;
    proc.deliver_parent_result(*ancestor, msg);
    return;
  }
  // The grandchild's path through this task goes via the call site encoded
  // in the stamp digit right below our depth ("Interpret the level stamp").
  const lang::ExprId site = msg.stamp.digits()[ancestor_depth];
  CallSlot& slot = ancestor->slot(site);
  if (slot.resolved()) {
    ++proc.counters().late_results_discarded;  // cases 7/8
    return;
  }
  // "Create a step-parent for the grandchild if there isn't one already."
  if (slot.spawned && all_destinations_dead(proc, slot)) {
    proc.respawn_slot(*ancestor, slot, /*as_twin=*/true,
                      "step-parent (orphan arrival)");
    if (proc.crashed()) return;  // respawn trigger killed the relay host
  }
  // "Transfer the result to its step-parent" — now, or when the twin acks.
  proc.relay_or_buffer(*ancestor, slot, std::move(msg));
}

}  // namespace splice::recovery
