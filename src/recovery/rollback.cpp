#include "recovery/rollback.h"

#include "runtime/processor.h"
#include "runtime/runtime.h"

namespace splice::recovery {

using runtime::CallSlot;
using runtime::Processor;
using runtime::ResultMsg;
using runtime::Task;

bool all_destinations_dead(Processor& proc, const CallSlot& slot) {
  if (slot.sent_to.empty()) return false;
  for (std::size_t i = 0; i < slot.sent_to.size(); ++i) {
    // Prefer the acknowledged location (the packet may have been accepted
    // by a node that later forwarded nothing), else the send destination.
    net::ProcId where = slot.sent_to[i];
    if (i < slot.child_procs.size() && slot.child_procs[i] != net::kNoProc) {
      where = slot.child_procs[i];
    }
    if (!proc.knows_dead(where)) return false;
  }
  return true;
}

/// Rollback-specific recoverability: deaths are learned one at a time, and
/// the doomed sweep can run between learning a destination dead and
/// discharging the reissue obligation against it. A checkpoint still
/// retained against any destination means the slot is recoverable — the
/// pending reissue_against(that destination) will regrow the child — so
/// the owning task must not be doomed out from under it. (The eager-splice
/// variant must NOT use this: splice never takes records, so a record's
/// presence there says nothing about a pending reissue.)
bool slot_still_checkpointed(Processor& proc, const CallSlot& slot) {
  for (std::size_t i = 0; i < slot.sent_to.size(); ++i) {
    net::ProcId where = slot.sent_to[i];
    if (i < slot.child_procs.size() && slot.child_procs[i] != net::kNoProc) {
      where = slot.child_procs[i];
    }
    if (proc.table().contains(where, slot.retained.stamp)) return true;
  }
  return false;
}

std::pair<Task*, CallSlot*> resolve_record_owner(
    Processor& proc, checkpoint::CheckpointRecord& record) {
  Task* owner = proc.find_task(record.owner);
  if (owner == nullptr && record.restored &&
      !record.packet.stamp.is_root()) {
    // Restored across a crash: the uid names the previous incarnation.
    owner = proc.find_task_by_stamp(record.packet.stamp.parent());
  }
  if (owner == nullptr) return {nullptr, nullptr};
  CallSlot* slot = owner->find_slot(record.site);
  if (slot == nullptr || !slot->spawned) {
    // A stamp-matched owner re-accepted after the crash may not have
    // reached this call site yet; re-link the slot from the checkpoint.
    owner->note_spawned(record.site, record.packet);
    slot = owner->find_slot(record.site);
  }
  return {owner, slot};
}

void RollbackPolicy::on_error_detected(Processor& proc, net::ProcId dead) {
  if (proc.runtime().defer_reissue(proc, dead)) return;
  reissue_against(proc, dead);
}

void RollbackPolicy::reissue_against(Processor& proc, net::ProcId dead) {
  // Under the cancellation protocol a doomed lineage's descendants on
  // *other* processors are reclaimed too: the abort forwards kCancel down
  // every outstanding slot instead of letting the subtree compute to run
  // end for a result nobody can consume.
  const bool cascade = proc.runtime().config().reclaim.cancellation;
  // (a) Abort direct orphans: their results could only flow to the dead
  //     parent ("the result of the task cannot be forwarded").
  const auto orphaned = [&](Task& task) {
    return task.packet().parent().proc == dead;
  };
  if (cascade) {
    proc.cancel_tasks_if(orphaned, "orphan: parent processor failed");
  } else {
    proc.abort_tasks_if(orphaned, "orphan: parent processor failed");
  }

  // (b) Reissue the topmost checkpoints held against the dead processor.
  auto records = proc.table().take(dead);
  for (auto& record : records) {
    auto [owner, slot] = resolve_record_owner(proc, record);
    if (owner == nullptr) {
      if (record.restored) {
        // The owner died with this node's previous incarnation and was not
        // re-accepted; the retained packet alone regrows the branch.
        proc.respawn_from_record(std::move(record), "rollback restored");
      }
      continue;  // owner was aborted in (a): its branch regrows from a
                 // higher ancestor
    }
    if (slot == nullptr || slot->resolved()) continue;
    proc.respawn_slot(*owner, *slot, /*as_twin=*/false, "rollback reissue");
  }

  // (c) Abort doomed descendants: tasks waiting on children trapped in the
  //     dead node whose checkpoints were subsumed — their own topmost
  //     ancestor is being regrown elsewhere, so "new arguments of the task
  //     cannot be obtained". (Reissued slots in (b) already point at live
  //     destinations and are skipped.)
  const auto doomed = [&](Task& task) {
    for (const auto& slot : task.slots()) {
      if (slot.outstanding() && all_destinations_dead(proc, slot) &&
          !slot_still_checkpointed(proc, slot)) {
        return true;
      }
    }
    return false;
  };
  if (cascade) {
    proc.cancel_tasks_if(doomed, "doomed: child lost and not topmost");
  } else {
    proc.abort_tasks_if(doomed, "doomed: child lost and not topmost");
  }
}

void RollbackPolicy::on_result_undeliverable(Processor& proc,
                                             ResultMsg /*msg*/) {
  // "Returns from orphan tasks are theoretically harmless since they are
  //  forwarded to a faulty processor." Rollback abandons the partial result.
  ++proc.counters().late_results_discarded;
}

void RollbackPolicy::on_ancestor_result(Processor& proc, ResultMsg /*msg*/) {
  // Rollback has no grandparent transport; "others: ignore the packet".
  ++proc.counters().late_results_discarded;
}

}  // namespace splice::recovery
