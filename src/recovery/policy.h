// Recovery policy interface (strategy pattern over the §4.2 protocol loop).
//
// The Processor implements the policy-independent plumbing — task execution,
// acks, result routing, failure detection, broadcast. Policies supply the
// reactions that distinguish the paper's schemes:
//   * what to do when a processor is first learned dead,
//   * what to do with a result whose target is dead,
//   * what to do with a spawn that never arrived,
//   * what to do with an orphan result addressed to an ancestor.
#pragma once

#include <cstdint>
#include <memory>

#include "core/config.h"
#include "core/metrics.h"
#include "net/topology.h"
#include "runtime/task_packet.h"

namespace splice::runtime {
class Processor;
class Runtime;
}  // namespace splice::runtime

namespace splice::recovery {

class RecoveryPolicy {
 public:
  virtual ~RecoveryPolicy() = default;

  [[nodiscard]] virtual core::RecoveryKind kind() const = 0;

  /// Do parents retain packets and populate the checkpoint table? True for
  /// the paper's schemes; false for the baselines (their overhead lives
  /// elsewhere).
  [[nodiscard]] virtual bool functional_checkpointing() const { return true; }

  /// Does this policy route orphan results onward (ancestor escalation +
  /// relay)? Warm rejoin only pre-links re-accepted tasks to surviving
  /// orphan children when it does — without salvage the orphan's result
  /// can be abandoned in flight and an awaiting slot would starve.
  [[nodiscard]] virtual bool salvages_orphans() const { return false; }

  /// Called once, after construction, with the runtime (periodic-global
  /// uses it to schedule snapshot cycles).
  virtual void attach(runtime::Runtime& /*rt*/) {}

  /// First time `proc` learns that `dead` failed (error-detection, §4.2).
  virtual void on_error_detected(runtime::Processor& proc,
                                 net::ProcId dead) = 0;

  /// The cold reissue action for the checkpoints `proc` holds against
  /// `dead`. Checkpoint-based policies implement their on_error_detected
  /// body here so warm rejoin can defer it: while a warm-mode repair is
  /// pending, obligations stay in the table (state transfer re-hosts them)
  /// and this runs only if the grace period expires with the node still
  /// down (Runtime::defer_reissue).
  virtual void reissue_against(runtime::Processor& /*proc*/,
                               net::ProcId /*dead*/) {}

  /// Runtime-level notification, fired once per dead processor system-wide
  /// (restart and periodic-global act globally).
  virtual void on_global_failure(runtime::Runtime& /*rt*/,
                                 net::ProcId /*dead*/) {}

  /// A repaired processor rejoined blank (crash-recovery model). Fired after
  /// the node reinitialised and announced itself; by default nothing more is
  /// needed — the checkpoint-based schemes already regrew the lost subtree
  /// when the node died, and the scheduler resumes placing work on the
  /// revived node as soon as peers process its rejoin notice.
  virtual void on_rejoin(runtime::Runtime& /*rt*/, net::ProcId /*back*/) {}

  /// A completed task's result could not reach msg.target.
  virtual void on_result_undeliverable(runtime::Processor& proc,
                                       runtime::ResultMsg msg) = 0;

  /// A spawned task packet never arrived (Fig. 6 state b: "processor G
  /// times out and reissues a new task P"). Default: respawn through the
  /// owning slot.
  virtual void on_spawn_undeliverable(runtime::Processor& proc,
                                      const runtime::TaskPacket& packet);

  /// An orphan result addressed to a live local ancestor arrived
  /// (relation kToAncestor).
  virtual void on_ancestor_result(runtime::Processor& proc,
                                  runtime::ResultMsg msg) = 0;

  /// Extra counters this policy accumulated outside any processor.
  virtual void contribute(core::Counters& /*counters*/) const {}
};

/// No fault tolerance: failures lose subtrees permanently (control arm).
class NoRecoveryPolicy final : public RecoveryPolicy {
 public:
  [[nodiscard]] core::RecoveryKind kind() const override {
    return core::RecoveryKind::kNone;
  }
  [[nodiscard]] bool functional_checkpointing() const override {
    return false;
  }
  void on_error_detected(runtime::Processor&, net::ProcId) override {}
  void on_result_undeliverable(runtime::Processor& proc,
                               runtime::ResultMsg msg) override;
  void on_spawn_undeliverable(runtime::Processor&,
                              const runtime::TaskPacket&) override {}
  void on_ancestor_result(runtime::Processor& proc,
                          runtime::ResultMsg msg) override;
};

/// Restart the whole program from the super-root's preevaluation checkpoint
/// on any failure (the no-checkpoint baseline).
class RestartPolicy final : public RecoveryPolicy {
 public:
  [[nodiscard]] core::RecoveryKind kind() const override {
    return core::RecoveryKind::kRestart;
  }
  [[nodiscard]] bool functional_checkpointing() const override {
    return false;
  }
  void on_error_detected(runtime::Processor&, net::ProcId) override {}
  void on_global_failure(runtime::Runtime& rt, net::ProcId dead) override;
  void on_result_undeliverable(runtime::Processor& proc,
                               runtime::ResultMsg msg) override;
  void on_spawn_undeliverable(runtime::Processor&,
                              const runtime::TaskPacket&) override {}
  void on_ancestor_result(runtime::Processor& proc,
                          runtime::ResultMsg msg) override;
};

/// Factory over the full policy set (rollback/splice/periodic included).
[[nodiscard]] std::unique_ptr<RecoveryPolicy> make_policy(
    const core::RecoveryConfig& config);

}  // namespace splice::recovery
