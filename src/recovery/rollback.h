// Rollback recovery (§3).
//
// "When processor C identifies the failure of processor B, C simply
//  reissues all the checkpointed tasks found in entry B of the table. By
//  doing so, processor C fulfills its responsibility of recovering B. ...
//  an efficient way to salvage a group of genealogical dependents is to
//  redo only the most ancient ancestor and ignore the rest."
//
// Orphan handling: "a processor is required to abort a task if new
// arguments of the task cannot be obtained due to failures of other
// processors. A task is also aborted if the result of the task cannot be
// forwarded to the parent task."
#pragma once

#include <utility>

#include "checkpoint/checkpoint_table.h"
#include "recovery/policy.h"
#include "runtime/task.h"

namespace splice::recovery {

class RollbackPolicy final : public RecoveryPolicy {
 public:
  [[nodiscard]] core::RecoveryKind kind() const override {
    return core::RecoveryKind::kRollback;
  }
  void on_error_detected(runtime::Processor& proc, net::ProcId dead) override;
  void reissue_against(runtime::Processor& proc, net::ProcId dead) override;
  void on_result_undeliverable(runtime::Processor& proc,
                               runtime::ResultMsg msg) override;
  void on_ancestor_result(runtime::Processor& proc,
                          runtime::ResultMsg msg) override;
};

/// Resolve a checkpoint record's owner task: by uid for live owners, by
/// stamp for records restored across a crash (their uid died with the old
/// incarnation; warm rejoin re-accepts the owner under a fresh one). When
/// found by stamp, the slot is re-linked from the record if needed.
/// Returns the owner and the slot to respawn through, or {nullptr,
/// nullptr} when reissue must go directly from the record.
[[nodiscard]] std::pair<runtime::Task*, runtime::CallSlot*>
resolve_record_owner(runtime::Processor& proc,
                     checkpoint::CheckpointRecord& record);

/// True when every destination the slot's packet was last sent to is known
/// dead (no live or potentially-live incarnation of the child remains).
/// Shared by rollback's doomed-orphan rule and splice's twin-creation rule.
[[nodiscard]] bool all_destinations_dead(runtime::Processor& proc,
                                         const runtime::CallSlot& slot);

}  // namespace splice::recovery
