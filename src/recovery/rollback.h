// Rollback recovery (§3).
//
// "When processor C identifies the failure of processor B, C simply
//  reissues all the checkpointed tasks found in entry B of the table. By
//  doing so, processor C fulfills its responsibility of recovering B. ...
//  an efficient way to salvage a group of genealogical dependents is to
//  redo only the most ancient ancestor and ignore the rest."
//
// Orphan handling: "a processor is required to abort a task if new
// arguments of the task cannot be obtained due to failures of other
// processors. A task is also aborted if the result of the task cannot be
// forwarded to the parent task."
#pragma once

#include "recovery/policy.h"
#include "runtime/task.h"

namespace splice::recovery {

class RollbackPolicy final : public RecoveryPolicy {
 public:
  [[nodiscard]] core::RecoveryKind kind() const override {
    return core::RecoveryKind::kRollback;
  }
  void on_error_detected(runtime::Processor& proc, net::ProcId dead) override;
  void on_result_undeliverable(runtime::Processor& proc,
                               runtime::ResultMsg msg) override;
  void on_ancestor_result(runtime::Processor& proc,
                          runtime::ResultMsg msg) override;
};

/// True when every destination the slot's packet was last sent to is known
/// dead (no live or potentially-live incarnation of the child remains).
/// Shared by rollback's doomed-orphan rule and splice's twin-creation rule.
[[nodiscard]] bool all_destinations_dead(runtime::Processor& proc,
                                         const runtime::CallSlot& slot);

}  // namespace splice::recovery
