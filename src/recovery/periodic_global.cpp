#include "recovery/periodic_global.h"

#include "runtime/processor.h"
#include "runtime/runtime.h"
#include "util/logging.h"

namespace splice::recovery {

using runtime::ResultMsg;
using runtime::Task;

void PeriodicGlobalPolicy::attach(runtime::Runtime& rt) {
  rt_ = &rt;
  schedule_snapshot();
}

void PeriodicGlobalPolicy::schedule_snapshot() {
  rt_->sim().after(sim::SimTime(cfg_.checkpoint_interval),
                   [this] { begin_snapshot(); });
}

void PeriodicGlobalPolicy::begin_snapshot() {
  if (rt_->done()) return;
  rt_->freeze_all();
  const std::uint64_t units = rt_->total_state_units();
  snapshot_.assign(rt_->processor_count(), {});
  for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
    auto& proc = rt_->processor(p);
    if (!proc.crashed()) snapshot_[p] = proc.snapshot_tasks();
  }
  snapshot_valid_ = true;
  ++snapshots_;
  snapshot_units_total_ += units;
  rt_->trace().add(rt_->sim().now(), net::kNoProc, "snapshot",
                   [&] { return std::to_string(units) + " units"; });
  // "Virtually stop all computational operations while ... checkpointing
  // takes place": frozen for a state-size-dependent window.
  const auto freeze =
      cfg_.freeze_base +
      static_cast<std::int64_t>(cfg_.freeze_per_unit *
                                static_cast<double>(units));
  freeze_ticks_ += freeze;
  rt_->sim().after(sim::SimTime(freeze), [this] {
    rt_->unfreeze_all();
    if (!rt_->done()) schedule_snapshot();
  });
}

void PeriodicGlobalPolicy::on_global_failure(runtime::Runtime& rt,
                                             net::ProcId /*dead*/) {
  rt.sim().after(sim::SimTime(cfg_.restore_delay), [this] { restore(); });
}

void PeriodicGlobalPolicy::restore() {
  if (rt_->done()) return;
  ++restores_;
  rt_->trace().add(rt_->sim().now(), net::kNoProc, "restore",
                   snapshot_valid_ ? "from last snapshot" : "from scratch");
  if (!snapshot_valid_) {
    // Failure before the first snapshot: nothing saved, restart everything.
    for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
      auto& proc = rt_->processor(p);
      if (!proc.crashed()) proc.restore_tasks({});
    }
    rt_->super_root().restart_program();
    return;
  }
  // Global rollback: every live processor reverts to the snapshot; tasks of
  // dead processors are redistributed round-robin over the living.
  std::vector<std::vector<Task>> plan(rt_->processor_count());
  std::vector<net::ProcId> alive;
  for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
    if (!rt_->processor(p).crashed()) alive.push_back(p);
  }
  if (alive.empty()) return;
  // Tasks whose packets were in flight at snapshot time are in nobody's
  // snapshot; their parents' slots must be reset so the rescan re-demands
  // them (otherwise the parent waits forever for a task the restore
  // destroyed). The coordinator has global knowledge — this baseline is a
  // global scheme by design.
  std::set<runtime::LevelStamp> present;
  bool root_present = false;
  for (const auto& home : snapshot_) {
    for (const Task& task : home) {
      present.insert(task.stamp());
      root_present |= task.stamp().is_root();
    }
  }
  std::size_t rr = 0;
  for (net::ProcId home = 0; home < snapshot_.size(); ++home) {
    for (Task& task : snapshot_[home]) {
      Task copy = task;
      for (auto& slot : copy.slots_mut()) {
        if (slot.outstanding() && !present.contains(slot.retained.stamp)) {
          slot.spawned = false;
          slot.sent_to.clear();
          slot.child_procs.clear();
          slot.child_uids.clear();
        }
      }
      if (!rt_->processor(home).crashed()) {
        plan[home].push_back(std::move(copy));
      } else {
        const net::ProcId host = alive[rr++ % alive.size()];
        relocation_[copy.uid()] = host;
        plan[host].push_back(std::move(copy));
      }
    }
  }
  for (net::ProcId p : alive) {
    rt_->processor(p).restore_tasks(std::move(plan[p]));
  }
  if (!root_present) {
    // The root itself was in flight when the snapshot was cut: only the
    // super-root's preevaluation checkpoint can regenerate it.
    rt_->super_root().restart_program();
  }
}

void PeriodicGlobalPolicy::on_result_undeliverable(runtime::Processor& proc,
                                                   ResultMsg msg) {
  const auto it = relocation_.find(msg.target.uid);
  if (it != relocation_.end() && !proc.knows_dead(it->second)) {
    msg.target.proc = it->second;
    const net::ProcId to = it->second;
    proc.send_result_msg(std::move(msg), to);
    return;
  }
  ++proc.counters().late_results_discarded;
}

void PeriodicGlobalPolicy::on_ancestor_result(runtime::Processor& proc,
                                              ResultMsg /*msg*/) {
  ++proc.counters().late_results_discarded;
}

void PeriodicGlobalPolicy::contribute(core::Counters& counters) const {
  counters.snapshots_taken += snapshots_;
  counters.snapshot_units += snapshot_units_total_;
  counters.restores += restores_;
  counters.freeze_ticks += freeze_ticks_;
}

}  // namespace splice::recovery
