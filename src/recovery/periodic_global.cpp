#include "recovery/periodic_global.h"

#include "runtime/processor.h"
#include "runtime/runtime.h"
#include "util/logging.h"

namespace splice::recovery {

using runtime::ResultMsg;
using runtime::Task;

void PeriodicGlobalPolicy::attach(runtime::Runtime& rt) {
  rt_ = &rt;
  schedule_snapshot();
}

void PeriodicGlobalPolicy::schedule_snapshot() {
  rt_->sim().after(sim::SimTime(cfg_.checkpoint_interval),
                   [this] { begin_snapshot(); });
}

void PeriodicGlobalPolicy::begin_snapshot() {
  if (rt_->done()) return;
  for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
    if (rt_->processor(p).crashed() && !accounted_dead_.contains(p)) {
      // A processor died and its rollback has not landed yet (kills precede
      // detection). Committing a snapshot now would drop its slice — keep
      // the last good snapshot and try again next interval.
      schedule_snapshot();
      return;
    }
  }
  rt_->freeze_all();
  const std::uint64_t units = rt_->total_state_units();
  snapshot_.assign(rt_->processor_count(), {});
  for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
    auto& proc = rt_->processor(p);
    if (!proc.crashed()) snapshot_[p] = proc.snapshot_tasks();
  }
  snapshot_valid_ = true;
  ++snapshots_;
  snapshot_units_total_ += units;
  rt_->recorder().record(rt_->sim().now(), obs::EventKind::kSnapshot,
                         {.arg = units},
                         [&] { return std::to_string(units) + " units"; });
  // "Virtually stop all computational operations while ... checkpointing
  // takes place": frozen for a state-size-dependent window.
  const auto freeze =
      cfg_.freeze_base +
      static_cast<std::int64_t>(cfg_.freeze_per_unit *
                                static_cast<double>(units));
  freeze_ticks_ += freeze;
  rt_->sim().after(sim::SimTime(freeze), [this] {
    rt_->unfreeze_all();
    if (!rt_->done()) schedule_snapshot();
  });
}

void PeriodicGlobalPolicy::on_global_failure(runtime::Runtime& rt,
                                             net::ProcId /*dead*/) {
  rt.sim().after(sim::SimTime(cfg_.restore_delay), [this] { restore(); });
}

void PeriodicGlobalPolicy::restore() {
  if (rt_->done()) return;
  accounted_dead_.clear();
  for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
    if (rt_->processor(p).crashed()) accounted_dead_.insert(p);
  }
  ++restores_;
  // A new restore supersedes any slice still parked from a previous one:
  // the fresh snapshot is the authoritative state now, and buffered
  // results for superseded uids would only resolve slots the rescan is
  // about to re-demand anyway (determinacy makes the recomputation
  // equivalent).
  parked_.clear();
  parked_results_.clear();
  rt_->recorder().record(rt_->sim().now(), obs::EventKind::kRestore, {}, [&] {
    return std::string(snapshot_valid_ ? "from last snapshot"
                                       : "from scratch");
  });
  if (!snapshot_valid_) {
    // Failure before the first snapshot: nothing saved, restart everything.
    for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
      auto& proc = rt_->processor(p);
      if (!proc.crashed()) proc.restore_tasks({});
    }
    rt_->super_root().restart_program();
    return;
  }
  // Global rollback: every live processor reverts to the snapshot; tasks of
  // dead processors are redistributed round-robin over the living.
  std::vector<std::vector<Task>> plan(rt_->processor_count());
  std::vector<net::ProcId> alive;
  for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
    if (!rt_->processor(p).crashed()) alive.push_back(p);
  }
  if (alive.empty()) return;
  // Tasks whose packets were in flight at snapshot time are in nobody's
  // snapshot; their parents' slots must be reset so the rescan re-demands
  // them (otherwise the parent waits forever for a task the restore
  // destroyed). The coordinator has global knowledge — this baseline is a
  // global scheme by design.
  std::set<runtime::LevelStamp> present;
  bool root_present = false;
  for (const auto& home : snapshot_) {
    for (const Task& task : home) {
      present.insert(task.stamp());
      root_present |= task.stamp().is_root();
    }
  }
  std::size_t rr = 0;
  for (net::ProcId home = 0; home < snapshot_.size(); ++home) {
    for (Task& task : snapshot_[home]) {
      Task copy = task;
      for (auto& slot : copy.slots_mut()) {
        if (slot.outstanding() && !present.contains(slot.retained.stamp)) {
          slot.spawned = false;
          slot.sent_to.clear();
          slot.child_procs.clear();
          slot.child_uids.clear();
        }
      }
      if (!rt_->processor(home).crashed()) {
        plan[home].push_back(std::move(copy));
      } else if (rt_->warm_rejoin()) {
        // Crash-recovery model: the node is being repaired. Park its slice
        // so the rejoiner resumes its own work instead of scattering it.
        parked_[home].push_back(std::move(copy));
      } else {
        const net::ProcId host = alive[rr++ % alive.size()];
        relocation_[copy.uid()] = host;
        plan[host].push_back(std::move(copy));
      }
    }
  }
  for (net::ProcId p : alive) {
    rt_->processor(p).restore_tasks(std::move(plan[p]));
  }
  // Bound the wait for each parked slice by the same grace the splice
  // stack's warm deferral uses; generation-stamped so a later restore's
  // fresh park is not clobbered by this one's timer.
  const auto generation = restores_;
  for (const auto& [home, tasks] : parked_) {
    const net::ProcId h = home;
    rt_->sim().after(sim::SimTime(rt_->config().store.warm_grace),
                     [this, h, generation] {
                       if (rt_->done() || generation != restores_) return;
                       if (!parked_.contains(h)) return;  // rejoined in time
                       redistribute_parked(h);
                     });
  }
  if (!root_present) {
    // The root itself was in flight when the snapshot was cut: only the
    // super-root's preevaluation checkpoint can regenerate it.
    rt_->super_root().restart_program();
  }
}

void PeriodicGlobalPolicy::on_rejoin(runtime::Runtime& rt, net::ProcId back) {
  accounted_dead_.erase(back);
  const auto it = parked_.find(back);
  if (it == parked_.end()) return;
  std::vector<Task> tasks = std::move(it->second);
  parked_.erase(it);
  rt.recorder().record(
      rt.sim().now(), obs::EventKind::kUnpark,
      {.proc = back, .arg = static_cast<std::uint64_t>(tasks.size())}, [&] {
        return std::to_string(tasks.size()) + " parked tasks resumed";
      });
  // Each resumed task is a redistribution (and the reissue traffic it
  // implies) the park avoided — the counter E15/E18 compare against the
  // splice stack's transfer-avoided reissues.
  rt.processor(back).counters().reissues_avoided += tasks.size();
  rt.processor(back).restore_tasks(std::move(tasks));
  const auto rit = parked_results_.find(back);
  if (rit == parked_results_.end()) return;
  std::vector<ResultMsg> buffered = std::move(rit->second);
  parked_results_.erase(rit);
  for (ResultMsg& msg : buffered) {
    // Buffered returns target the rejoined node's own uids; the host
    // channel redelivers them now that the addressee is back.
    rt.host_send_result(std::move(msg));
  }
}

void PeriodicGlobalPolicy::redistribute_parked(net::ProcId home) {
  const auto it = parked_.find(home);
  if (it == parked_.end()) return;
  std::vector<Task> tasks = std::move(it->second);
  parked_.erase(it);
  std::vector<net::ProcId> alive;
  for (net::ProcId p = 0; p < rt_->processor_count(); ++p) {
    if (!rt_->processor(p).crashed()) alive.push_back(p);
  }
  if (alive.empty()) return;
  rt_->recorder().record(
      rt_->sim().now(), obs::EventKind::kParkExpired,
      {.proc = home, .arg = static_cast<std::uint64_t>(tasks.size())}, [&] {
        return std::to_string(tasks.size()) + " tasks redistributed cold";
      });
  std::vector<std::vector<Task>> plan(rt_->processor_count());
  std::size_t rr = 0;
  for (Task& task : tasks) {
    const net::ProcId host = alive[rr++ % alive.size()];
    relocation_[task.uid()] = host;
    plan[host].push_back(std::move(task));
  }
  for (net::ProcId p : alive) {
    if (!plan[p].empty()) rt_->processor(p).adopt_tasks(std::move(plan[p]));
  }
  const auto rit = parked_results_.find(home);
  if (rit == parked_results_.end()) return;
  std::vector<ResultMsg> buffered = std::move(rit->second);
  parked_results_.erase(rit);
  for (ResultMsg& msg : buffered) {
    const auto rel = relocation_.find(msg.target.uid);
    if (rel == relocation_.end()) continue;  // slot reset; rescan re-demands
    msg.target.proc = rel->second;
    rt_->host_send_result(std::move(msg));
  }
}

void PeriodicGlobalPolicy::on_result_undeliverable(runtime::Processor& proc,
                                                   ResultMsg msg) {
  const auto it = relocation_.find(msg.target.uid);
  if (it != relocation_.end() && !proc.knows_dead(it->second)) {
    msg.target.proc = it->second;
    const net::ProcId to = it->second;
    proc.send_result_msg(std::move(msg), to);
    return;
  }
  // Warm mode: the target may sit in a parked slice awaiting its home's
  // repair. Hold the result for redelivery instead of discarding it.
  const auto parked = parked_.find(msg.target.proc);
  if (parked != parked_.end()) {
    parked_results_[msg.target.proc].push_back(std::move(msg));
    return;
  }
  ++proc.counters().late_results_discarded;
}

void PeriodicGlobalPolicy::on_ancestor_result(runtime::Processor& proc,
                                              ResultMsg /*msg*/) {
  ++proc.counters().late_results_discarded;
}

void PeriodicGlobalPolicy::contribute(core::Counters& counters) const {
  counters.snapshots_taken += snapshots_;
  counters.snapshot_units += snapshot_units_total_;
  counters.restores += restores_;
  counters.freeze_ticks += freeze_ticks_;
}

}  // namespace splice::recovery
