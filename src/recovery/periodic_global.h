// Periodic global checkpointing baseline.
//
// The conventional scheme the paper positions against (§2): "The basic idea
// is to virtually stop all computational operations while periodic global
// checkpointing takes place" (cf. Tamir & Sequin [15], Hughes [7]). Every
// `checkpoint_interval` ticks the coordinator freezes all processors, copies
// their logical state to stable storage (the host), and resumes; on failure
// the whole system is rolled back to the last snapshot, with the dead
// node's tasks redistributed.
//
// Modelling notes (DESIGN.md §3): in-flight messages are not revoked at
// restore; determinacy makes stale deliveries either duplicates (ignored)
// or early results (benign). Tasks keep their uids across restore; a
// relocation map re-routes returns addressed to the dead processor.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "recovery/policy.h"
#include "runtime/task.h"

namespace splice::recovery {

class PeriodicGlobalPolicy final : public RecoveryPolicy {
 public:
  explicit PeriodicGlobalPolicy(const core::RecoveryConfig& config)
      : cfg_(config) {}

  [[nodiscard]] core::RecoveryKind kind() const override {
    return core::RecoveryKind::kPeriodicGlobal;
  }
  [[nodiscard]] bool functional_checkpointing() const override {
    return false;
  }

  void attach(runtime::Runtime& rt) override;
  void on_error_detected(runtime::Processor&, net::ProcId) override {}
  void on_global_failure(runtime::Runtime& rt, net::ProcId dead) override;
  void on_rejoin(runtime::Runtime& rt, net::ProcId back) override;
  void on_result_undeliverable(runtime::Processor& proc,
                               runtime::ResultMsg msg) override;
  void on_ancestor_result(runtime::Processor& proc,
                          runtime::ResultMsg msg) override;
  void contribute(core::Counters& counters) const override;

 private:
  void schedule_snapshot();
  void begin_snapshot();
  void restore();
  /// Warm-mode fallback: the grace period elapsed with `home` still down —
  /// redistribute its parked slice over the living (the cold action the
  /// park deferred) and redirect any buffered results.
  void redistribute_parked(net::ProcId home);

  core::RecoveryConfig cfg_;
  runtime::Runtime* rt_ = nullptr;

  /// Last committed snapshot: tasks per home processor.
  std::vector<std::vector<runtime::Task>> snapshot_;
  bool snapshot_valid_ = false;
  /// Dead processors whose loss a restore has already rolled back around
  /// (their snapshot tasks were redistributed or parked). A crashed
  /// processor *not* in this set means a rollback is still coming — kills
  /// precede detection by a failure-timeout, so a snapshot in that window
  /// would commit state missing the dead node's slice and silently shrink
  /// what the restore (and a warm park) can recover. begin_snapshot defers
  /// until the pending rollback lands.
  std::set<net::ProcId> accounted_dead_;

  /// Where restored tasks of dead processors went (uid -> new host).
  std::unordered_map<runtime::TaskUid, net::ProcId> relocation_;

  /// Warm rejoin (crash-recovery model): a dead home's snapshot slice is
  /// parked here instead of being redistributed, so the repaired node
  /// resumes its own work — the apples-to-apples counterpart of the splice
  /// stack's survivor-assisted warm rejoin. Results bounced off the dead
  /// home meanwhile buffer in parked_results_ for redelivery. A slice
  /// still parked when the store.warm_grace expires falls back to the cold
  /// round-robin redistribution.
  std::unordered_map<net::ProcId, std::vector<runtime::Task>> parked_;
  std::unordered_map<net::ProcId, std::vector<runtime::ResultMsg>>
      parked_results_;

  std::uint64_t snapshots_ = 0;
  std::uint64_t snapshot_units_total_ = 0;
  std::uint64_t restores_ = 0;
  std::int64_t freeze_ticks_ = 0;
};

}  // namespace splice::recovery
