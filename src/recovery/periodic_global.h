// Periodic global checkpointing baseline.
//
// The conventional scheme the paper positions against (§2): "The basic idea
// is to virtually stop all computational operations while periodic global
// checkpointing takes place" (cf. Tamir & Sequin [15], Hughes [7]). Every
// `checkpoint_interval` ticks the coordinator freezes all processors, copies
// their logical state to stable storage (the host), and resumes; on failure
// the whole system is rolled back to the last snapshot, with the dead
// node's tasks redistributed.
//
// Modelling notes (DESIGN.md §3): in-flight messages are not revoked at
// restore; determinacy makes stale deliveries either duplicates (ignored)
// or early results (benign). Tasks keep their uids across restore; a
// relocation map re-routes returns addressed to the dead processor.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "recovery/policy.h"
#include "runtime/task.h"

namespace splice::recovery {

class PeriodicGlobalPolicy final : public RecoveryPolicy {
 public:
  explicit PeriodicGlobalPolicy(const core::RecoveryConfig& config)
      : cfg_(config) {}

  [[nodiscard]] core::RecoveryKind kind() const override {
    return core::RecoveryKind::kPeriodicGlobal;
  }
  [[nodiscard]] bool functional_checkpointing() const override {
    return false;
  }

  void attach(runtime::Runtime& rt) override;
  void on_error_detected(runtime::Processor&, net::ProcId) override {}
  void on_global_failure(runtime::Runtime& rt, net::ProcId dead) override;
  void on_result_undeliverable(runtime::Processor& proc,
                               runtime::ResultMsg msg) override;
  void on_ancestor_result(runtime::Processor& proc,
                          runtime::ResultMsg msg) override;
  void contribute(core::Counters& counters) const override;

 private:
  void schedule_snapshot();
  void begin_snapshot();
  void restore();

  core::RecoveryConfig cfg_;
  runtime::Runtime* rt_ = nullptr;

  /// Last committed snapshot: tasks per home processor.
  std::vector<std::vector<runtime::Task>> snapshot_;
  bool snapshot_valid_ = false;

  /// Where restored tasks of dead processors went (uid -> new host).
  std::unordered_map<runtime::TaskUid, net::ProcId> relocation_;

  std::uint64_t snapshots_ = 0;
  std::uint64_t snapshot_units_total_ = 0;
  std::uint64_t restores_ = 0;
  std::int64_t freeze_ticks_ = 0;
};

}  // namespace splice::recovery
